//! # conga — a Rust reproduction of CONGA (SIGCOMM 2014)
//!
//! *CONGA: Distributed Congestion-Aware Load Balancing for Datacenters*
//! (Alizadeh et al.) built from scratch on a deterministic packet-level
//! network simulator. This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — discrete-event engine (clock, event queue, seeded RNG);
//! * [`net`] — packets with the CONGA overlay header, drop-tail ports,
//!   Leaf-Spine topologies with failure injection, the forwarding engine;
//! * [`transport`] — per-packet TCP (SACK-style recovery, configurable
//!   minRTO), MPTCP with LIA coupling, CBR senders;
//! * [`core`] — the CONGA dataplane (DRE, flowlet table, leaf-to-leaf
//!   congestion feedback) and the baseline load balancers;
//! * [`workloads`] — empirical flow-size distributions and traffic
//!   generators (Poisson, Incast, HDFS-write, bursty traces);
//! * [`analysis`] — FCT statistics, throughput imbalance, the bottleneck
//!   routing game (Price of Anarchy), the Theorem-2 imbalance model;
//! * [`telemetry`] — run-level metrics registry and the deterministic
//!   [`RunReport`](telemetry::RunReport) JSON artifact;
//! * [`trace`] — structured event tracing with decision provenance,
//!   deterministic JSONL + Chrome `trace_event` exporters, and the
//!   `trace_explain` replay tool;
//! * [`fleet`] — the experiment orchestrator: hashable scenario specs, a
//!   work-stealing parallel executor with deterministic merge, and the
//!   content-addressed result cache behind the `fleet` binary;
//! * [`experiments`] — the figure harness (testbed topologies, the scheme
//!   matrix, the open-loop FCT runner).
//!
//! ## Quickstart
//!
//! ```
//! use conga::net::{LeafSpineBuilder, Network, HostId};
//! use conga::core::FabricPolicy;
//! use conga::transport::{TransportLayer, FlowSpec, TransportKind, TcpConfig};
//! use conga::sim::SimTime;
//!
//! // The paper's testbed: 64 hosts, 2 leaves, 2 spines, 2x40G uplinks.
//! let topo = LeafSpineBuilder::new(2, 2, 32)
//!     .host_rate_gbps(10)
//!     .fabric_rate_gbps(40)
//!     .parallel_links(2)
//!     .build();
//! let mut net = Network::new(topo, FabricPolicy::conga(), TransportLayer::new(), 42);
//! net.agent_call(|a, now, em| {
//!     a.start_flow(
//!         FlowSpec {
//!             src: HostId(0),
//!             dst: HostId(40),
//!             bytes: 1_000_000,
//!             kind: TransportKind::Tcp(TcpConfig::standard()),
//!         },
//!         now,
//!         em,
//!     )
//! });
//! net.run_until(SimTime::from_millis(50));
//! assert!(net.agent.records[0].fct().is_some());
//! ```

pub use conga_analysis as analysis;
pub use conga_core as core;
pub use conga_experiments as experiments;
pub use conga_fleet as fleet;
pub use conga_net as net;
pub use conga_sim as sim;
pub use conga_telemetry as telemetry;
pub use conga_trace as trace;
pub use conga_transport as transport;
pub use conga_workloads as workloads;
