pub fn _bench_crate() {}
