//! A tiny self-timing benchmark harness.
//!
//! The workspace carries no external benchmark framework; each
//! `[[bench]]` target sets `harness = false` and drives the two entry
//! points below from its own `main`. Numbers print as `ns/iter` (best of
//! three passes) — indicative, not statistically rigorous.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark `f`, auto-calibrating the iteration count so one pass runs
/// for at least ~60 ms, then reporting the best of three passes.
pub fn bench(name: &str, mut f: impl FnMut()) {
    let budget = Duration::from_millis(60);
    let mut n: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..n {
            f();
        }
        if t.elapsed() >= budget || n >= (1 << 28) {
            break;
        }
        n *= 2;
    }
    bench_passes(name, n, 3, &mut f);
}

/// Benchmark `f` with a fixed iteration count per pass (for expensive
/// bodies where doubling calibration would take too long).
pub fn bench_n(name: &str, iters: u64, mut f: impl FnMut()) {
    bench_passes(name, iters, 2, &mut f);
}

fn bench_passes(name: &str, iters: u64, passes: u32, f: &mut impl FnMut()) {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = t.elapsed().as_nanos() as f64 / iters as f64;
        if per < best {
            best = per;
        }
    }
    if best >= 1e6 {
        println!(
            "{name:<32} {:>14.3} ms/iter  ({iters} iters/pass)",
            best / 1e6
        );
    } else {
        println!("{name:<32} {best:>14.1} ns/iter  ({iters} iters/pass)");
    }
}
