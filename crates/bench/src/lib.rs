//! A tiny self-timing benchmark harness.
//!
//! The workspace carries no external benchmark framework; each
//! `[[bench]]` target sets `harness = false` and drives the entry
//! points below from its own `main`. Numbers print as `ns/iter` (best of
//! three passes) — indicative, not statistically rigorous.
//!
//! The `regression` bench target additionally collects its measurements
//! into a [`BenchReport`] and writes `results/BENCH_engine.json`, so the
//! engine's bench trajectory accumulates in-repo. The report's
//! *structure* (schema tag, suite name, bench names and their order) is
//! deterministic; only `iters` and `ns_per_iter` vary run-to-run.

use std::fmt::Write as _;
pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark `f`, auto-calibrating the iteration count so one pass runs
/// for at least ~60 ms, then reporting the best of three passes.
pub fn bench(name: &str, mut f: impl FnMut()) {
    calibrate_and_run(name, 3, &mut f);
}

/// Benchmark `f` with a fixed iteration count per pass (for expensive
/// bodies where doubling calibration would take too long).
pub fn bench_n(name: &str, iters: u64, mut f: impl FnMut()) {
    bench_passes(name, iters, 2, &mut f);
}

/// One measured benchmark: a stable name plus its (machine-dependent)
/// iteration count and best-pass nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Stable benchmark identifier, e.g. `event_queue/heap_hot`.
    pub name: String,
    /// Iterations per timing pass (calibrated or fixed).
    pub iters: u64,
    /// Best-of-passes nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// An ordered collection of benchmark measurements destined for
/// `results/BENCH_engine.json`.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Entries in execution order (the order is part of the schema).
    pub entries: Vec<BenchEntry>,
}

/// The schema tag stamped into every report; bump when the JSON layout
/// changes incompatibly.
pub const BENCH_SCHEMA: &str = "conga-bench-engine/v1";

impl BenchReport {
    /// Benchmark `f` with auto-calibration, print the usual line, and
    /// record the measurement.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        let (iters, best) = calibrate_and_run(name, 3, &mut f);
        self.entries.push(BenchEntry {
            name: name.to_string(),
            iters,
            ns_per_iter: best,
        });
    }

    /// Benchmark `f` with a fixed per-pass iteration count, print, and
    /// record.
    pub fn bench_n(&mut self, name: &str, iters: u64, mut f: impl FnMut()) {
        let best = bench_passes(name, iters, 2, &mut f);
        self.entries.push(BenchEntry {
            name: name.to_string(),
            iters,
            ns_per_iter: best,
        });
    }

    /// Render the deterministic-structure JSON document.
    ///
    /// Keys appear in a fixed order; entry order is execution order.
    /// Timing values are rounded to 0.1 ns so the file stays readable.
    pub fn to_json(&self, suite: &str) -> String {
        let mut out = String::with_capacity(256 + self.entries.len() * 96);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BENCH_SCHEMA}\",");
        let _ = writeln!(out, "  \"suite\": \"{suite}\",");
        out.push_str("  \"benches\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"iters\": {}, \"ns_per_iter\": {:.1}}}",
                e.name, e.iters, e.ns_per_iter
            );
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn calibrate_and_run(name: &str, passes: u32, f: &mut impl FnMut()) -> (u64, f64) {
    let budget = Duration::from_millis(60);
    let mut n: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..n {
            f();
        }
        if t.elapsed() >= budget || n >= (1 << 28) {
            break;
        }
        n *= 2;
    }
    (n, bench_passes(name, n, passes, f))
}

fn bench_passes(name: &str, iters: u64, passes: u32, f: &mut impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = t.elapsed().as_nanos() as f64 / iters as f64;
        if per < best {
            best = per;
        }
    }
    if best >= 1e6 {
        println!(
            "{name:<32} {:>14.3} ms/iter  ({iters} iters/pass)",
            best / 1e6
        );
    } else {
        println!("{name:<32} {best:>14.1} ns/iter  ({iters} iters/pass)");
    }
    best
}
