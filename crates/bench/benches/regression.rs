//! The committed regression-bench harness.
//!
//! Runs a fixed set of engine benchmarks — event-queue push/pop for both
//! future-event-list kinds, raw packet forwarding, and one small
//! end-to-end FCT cell — and writes `results/BENCH_engine.json` so the
//! engine's bench trajectory accumulates in the repository.
//!
//! Usage:
//!
//! ```text
//! cargo bench -p conga-bench --bench regression              # write results/BENCH_engine.json
//! cargo bench -p conga-bench --bench regression -- --out X   # write elsewhere
//! cargo bench -p conga-bench --bench regression -- --check A [B]
//! ```
//!
//! `--check` validates an existing report (schema tag, required fields,
//! the full expected bench-name list in order) and exits nonzero on any
//! violation; with two paths it additionally requires the two reports to
//! agree on every *non-timing* key, which is how CI detects a
//! non-deterministic harness. Timing values (`iters`, `ns_per_iter`) are
//! machine- and run-dependent by design and are never compared.

use conga_bench::{black_box, BenchReport, BENCH_SCHEMA};
use conga_core::FabricPolicy;
use conga_experiments::{run_fct, FctRun, Scheme, TestbedOpts};
use conga_net::{inject, HostId, LeafSpineBuilder, Network, Packet, SinkAgent};
use conga_sim::{EventQueue, QueueKind, SimTime};
use conga_trace::json::{parse, Value};
use conga_workloads::FlowSizeDist;

/// The stable bench-name list, in execution order. `--check` enforces
/// exactly this set; extend it together with `run_all`.
const EXPECTED: &[&str] = &[
    "event_queue/heap_hot",
    "event_queue/calendar_hot",
    "event_queue/heap_churn",
    "event_queue/calendar_churn",
    "forwarding/conga_100pkts_e2e",
    "fct_cell/conga_quick",
    "fct_cell/conga_quick_shards2",
    "fct_cell/conga_quick_dctcp",
    "fct_cell/conga_quick_cubic",
    "fct_cell/conga_quick_bbr",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Ignore the harness flag `cargo bench` appends.
    let args: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| *a != "--bench")
        .collect();
    if let Some(i) = args.iter().position(|a| *a == "--check") {
        let paths = &args[i + 1..];
        if paths.is_empty() || paths.len() > 2 {
            eprintln!("usage: regression --check <report.json> [second-report.json]");
            std::process::exit(2);
        }
        match check(paths) {
            Ok(()) => println!("BENCH_engine report ok: {}", paths.join(", ")),
            Err(e) => {
                eprintln!("BENCH_engine report invalid: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    // `cargo bench` runs with the package dir as cwd, so the default
    // path is anchored at the workspace root, not the invocation cwd.
    let default_out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_engine.json"
    );
    let out = args
        .iter()
        .position(|a| *a == "--out")
        .and_then(|i| args.get(i + 1))
        .copied()
        .unwrap_or(default_out);

    let report = run_all();
    let json = report.to_json("engine-regression");
    if let Some(parent) = std::path::Path::new(out).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(out, &json) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
}

fn run_all() -> BenchReport {
    let mut r = BenchReport::default();
    bench_event_queues(&mut r);
    bench_forwarding(&mut r);
    bench_cell(&mut r);
    assert_eq!(
        r.entries
            .iter()
            .map(|e| e.name.as_str())
            .collect::<Vec<_>>(),
        EXPECTED,
        "EXPECTED list out of sync with run_all"
    );
    r
}

/// Hot rotation (pop one, push one ~100 ns out, steady population) and
/// churn (drain-and-refill across bucket years) for both queue kinds.
fn bench_event_queues(r: &mut BenchReport) {
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        let tag = match kind {
            QueueKind::Heap => "heap",
            QueueKind::Calendar => "calendar",
        };
        let mut q: EventQueue<u64> = EventQueue::with_kind(kind, 1 << 12);
        for i in 0..1024u64 {
            q.push(SimTime::from_nanos(i * 100), i);
        }
        let mut t = 1024 * 100;
        r.bench(&format!("event_queue/{tag}_hot"), || {
            let (at, e) = q.pop().expect("non-empty");
            t += 100;
            q.push(SimTime::from_nanos(t), black_box(e));
            black_box(at);
        });
    }
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        let tag = match kind {
            QueueKind::Heap => "heap",
            QueueKind::Calendar => "calendar",
        };
        let mut q: EventQueue<u64> = EventQueue::with_kind(kind, 1 << 12);
        let mut t = 0u64;
        r.bench(&format!("event_queue/{tag}_churn"), || {
            // Burst of mixed horizons (some beyond a calendar year),
            // then drain — exercises bucket migration and the far heap.
            for i in 0..64u64 {
                q.push(SimTime::from_nanos(t + 1 + i * 97_000), i);
            }
            while let Some((at, e)) = q.pop() {
                t = at.as_nanos();
                black_box(e);
            }
        });
    }
}

fn bench_forwarding(r: &mut BenchReport) {
    let topo = LeafSpineBuilder::new(2, 2, 8).parallel_links(2).build();
    let mut net = Network::new(topo, FabricPolicy::conga(), SinkAgent::default(), 1);
    let mut f = 0u32;
    r.bench("forwarding/conga_100pkts_e2e", || {
        for i in 0..100u32 {
            f = f.wrapping_add(1);
            let pkt = Packet::data(
                f,
                0,
                conga_net::flow_tuple_hash(f, 0),
                HostId(i % 8),
                HostId(8 + i % 8),
                0,
                1460,
                net.now(),
            );
            inject(&mut net, pkt);
        }
        net.run_to_quiescence();
    });
}

fn bench_cell(r: &mut BenchReport) {
    let cell = |shards: usize, cc: conga_transport::CcKind| {
        let mut cfg = FctRun::new(
            TestbedOpts::paper_baseline().quick(),
            Scheme::Conga,
            FlowSizeDist::enterprise(),
            0.5,
        );
        cfg.n_flows = 60;
        cfg.seed = 1;
        cfg.shards = shards;
        cfg.cc = cc;
        cfg
    };
    use conga_transport::CcKind;
    r.bench_n("fct_cell/conga_quick", 3, || {
        black_box(run_fct(&cell(1, CcKind::Aimd)));
    });
    // The shards axis: the same cell on two worker threads. Artifacts are
    // byte-identical (tests/shards.rs); only the wall-clock may move.
    r.bench_n("fct_cell/conga_quick_shards2", 3, || {
        black_box(run_fct(&cell(2, CcKind::Aimd)));
    });
    // The congestion-controller axis: the same cell under each non-default
    // controller, so per-controller event-loop cost (ECN marking for
    // DCTCP, cubic window math, pacing timers for BBR) accumulates a
    // trajectory next to the AIMD baseline.
    for (name, cc) in [
        ("fct_cell/conga_quick_dctcp", CcKind::Dctcp),
        ("fct_cell/conga_quick_cubic", CcKind::Cubic),
        ("fct_cell/conga_quick_bbr", CcKind::Bbr),
    ] {
        r.bench_n(name, 3, || {
            black_box(run_fct(&cell(1, cc)));
        });
    }
}

/// Validate one report, or compare the non-timing keys of two.
fn check(paths: &[&str]) -> Result<(), String> {
    let mut shapes = Vec::new();
    for p in paths {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        shapes.push(validate(p, &text)?);
    }
    if shapes.len() == 2 && shapes[0] != shapes[1] {
        return Err(format!(
            "non-timing keys differ between {} and {}:\n  {:?}\nvs\n  {:?}",
            paths[0], paths[1], shapes[0], shapes[1]
        ));
    }
    Ok(())
}

/// Check one report's structure and return its non-timing projection
/// (schema, suite, ordered bench names).
fn validate(path: &str, text: &str) -> Result<Vec<String>, String> {
    let doc = parse(text).map_err(|e| format!("{path}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{path}: missing \"schema\""))?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "{path}: schema {schema:?}, expected {BENCH_SCHEMA:?}"
        ));
    }
    let suite = doc
        .get("suite")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{path}: missing \"suite\""))?;
    let Some(Value::Arr(benches)) = doc.get("benches") else {
        return Err(format!("{path}: missing \"benches\" array"));
    };
    let mut names = Vec::new();
    for (i, b) in benches.iter().enumerate() {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: benches[{i}] missing \"name\""))?;
        for field in ["iters", "ns_per_iter"] {
            if b.get(field).and_then(Value::as_f64).is_none() {
                return Err(format!("{path}: benches[{i}] ({name}) missing \"{field}\""));
            }
        }
        names.push(name.to_string());
    }
    if names != EXPECTED {
        return Err(format!(
            "{path}: bench names {names:?} do not match the expected list {EXPECTED:?}"
        ));
    }
    Ok([schema.to_string(), suite.to_string()]
        .into_iter()
        .chain(names)
        .collect())
}
