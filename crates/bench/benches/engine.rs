//! Engine-level benchmarks: event-queue throughput and raw packet
//! forwarding through the fabric (no transport).

use conga_bench::{bench, black_box};
use conga_core::FabricPolicy;
use conga_net::{inject, HostId, LeafSpineBuilder, Network, Packet, SinkAgent};
use conga_sim::{EventQueue, SimTime};

fn bench_event_queue() {
    let mut q: EventQueue<u64> = EventQueue::with_capacity(1 << 12);
    for i in 0..1024u64 {
        q.push(SimTime::from_nanos(i * 100), i);
    }
    let mut t = 1024 * 100;
    bench("event_queue/push_pop_hot", || {
        let (at, e) = q.pop().expect("non-empty");
        t += 100;
        q.push(SimTime::from_nanos(t), black_box(e));
        black_box(at);
    });
}

fn bench_forwarding() {
    for (name, mk) in [
        ("ecmp", FabricPolicy::ecmp as fn() -> FabricPolicy),
        ("conga", FabricPolicy::conga),
        ("spray", FabricPolicy::spray),
    ] {
        let topo = LeafSpineBuilder::new(2, 2, 8).parallel_links(2).build();
        let mut net = Network::new(topo, mk(), SinkAgent::default(), 1);
        let mut f = 0u32;
        bench(&format!("forwarding/{name}_100pkts_e2e"), || {
            for i in 0..100u32 {
                f = f.wrapping_add(1);
                let pkt = Packet::data(
                    f,
                    0,
                    conga_net::flow_tuple_hash(f, 0),
                    HostId(i % 8),
                    HostId(8 + i % 8),
                    0,
                    1460,
                    net.now(),
                );
                inject(&mut net, pkt);
            }
            net.run_to_quiescence();
        });
    }
}

fn main() {
    bench_event_queue();
    bench_forwarding();
}
