//! Macro-benchmark: simulated-seconds-per-wall-second for a realistic FCT
//! workload cell under each scheme — how fast the whole reproduction runs.

use conga_bench::{bench_n, black_box};
use conga_experiments::{run_fct, FctRun, Scheme, TestbedOpts};
use conga_workloads::FlowSizeDist;

fn main() {
    for scheme in [Scheme::Ecmp, Scheme::Conga, Scheme::Mptcp] {
        bench_n(&format!("fct_cell/{}", scheme.name()), 3, || {
            let mut cfg = FctRun::new(
                TestbedOpts::paper_baseline().quick(),
                scheme,
                FlowSizeDist::enterprise(),
                0.5,
            );
            cfg.n_flows = 60;
            cfg.seed = 1;
            black_box(run_fct(&cfg));
        });
    }
}
