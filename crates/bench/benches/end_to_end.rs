//! Macro-benchmark: simulated-seconds-per-wall-second for a realistic FCT
//! workload cell under each scheme — how fast the whole reproduction runs.

use conga_experiments::{run_fct, FctRun, Scheme, TestbedOpts};
use conga_workloads::FlowSizeDist;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_fct_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("fct_cell");
    g.sample_size(10);
    for scheme in [Scheme::Ecmp, Scheme::Conga, Scheme::Mptcp] {
        g.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let mut cfg = FctRun::new(
                    TestbedOpts::paper_baseline().quick(),
                    scheme,
                    FlowSizeDist::enterprise(),
                    0.5,
                );
                cfg.n_flows = 60;
                cfg.seed = 1;
                black_box(run_fct(&cfg));
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fct_cell);
criterion_main!(benches);
