//! Micro-benchmarks of CONGA's dataplane primitives — the operations the
//! ASIC performs per packet or per flowlet.

use conga_bench::{bench, black_box};
use conga_core::{CongaParams, Dre, FlowletTable, GapMode};
use conga_net::{ecmp_mix, ChannelId};
use conga_sim::{SimDuration, SimTime};

fn bench_dre() {
    {
        let mut d = Dre::new(40_000_000_000, SimDuration::from_micros(16), 0.1);
        let mut t = 0u64;
        bench("dre/on_send", || {
            t += 300;
            d.on_send(black_box(1560), SimTime::from_nanos(t));
        });
    }
    {
        let mut d = Dre::new(40_000_000_000, SimDuration::from_micros(16), 0.1);
        for i in 0..10_000 {
            d.on_send(1560, SimTime::from_nanos(i * 300));
        }
        let mut t = 10_000 * 300;
        bench("dre/quantized_read", || {
            t += 300;
            black_box(d.quantized(SimTime::from_nanos(t), 3));
        });
    }
}

fn bench_flowlet_table() {
    let p = CongaParams::paper_default();
    {
        let mut t = FlowletTable::new(p.flowlet_entries, p.tfl, GapMode::AgeBit);
        t.lookup(42, SimTime::ZERO);
        t.commit(42, ChannelId(1), SimTime::ZERO);
        let mut now = 0u64;
        bench("flowlet_table/lookup_hit", || {
            now += 100;
            black_box(t.lookup(black_box(42), SimTime::from_nanos(now)));
        });
    }
    {
        let mut t = FlowletTable::new(p.flowlet_entries, p.tfl, GapMode::AgeBit);
        let mut now = 0u64;
        let mut f = 0u64;
        bench("flowlet_table/lookup_mixed_flows", || {
            now += 100;
            f = f.wrapping_add(0x9E37_79B9_7F4A_7C15);
            if let conga_core::Lookup::NewFlowlet { .. } =
                t.lookup(black_box(f), SimTime::from_nanos(now))
            {
                t.commit(f, ChannelId((f % 4) as u32), SimTime::from_nanos(now));
            }
        });
    }
}

fn bench_hash() {
    let mut x = 0u64;
    bench("ecmp_mix", || {
        x = x.wrapping_add(1);
        black_box(ecmp_mix(black_box(x), 0x5B1E));
    });
}

fn main() {
    bench_dre();
    bench_flowlet_table();
    bench_hash();
}
