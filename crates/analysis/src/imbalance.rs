//! Throughput-imbalance analysis (paper §5.2.3, Figure 12).
//!
//! The paper samples the throughput of the 4 uplinks of Leaf 0
//! synchronously every 10 ms and reports the CDF of
//! `(MAX − MIN) / AVG` across sample windows.

/// Per-window imbalance values computed from synchronous cumulative byte
/// counters: `tx[ch][row]` are cumulative bytes of channel `ch` at sample
/// `row`. Windows where the average throughput is below `min_avg_bytes`
/// are skipped (idle fabric tells us nothing about balance).
pub fn throughput_imbalance(tx: &[Vec<u64>], min_avg_bytes: f64) -> Vec<f64> {
    if tx.is_empty() {
        return Vec::new();
    }
    let rows = tx[0].len();
    let mut out = Vec::new();
    for r in 1..rows {
        let deltas: Vec<f64> = tx.iter().map(|col| (col[r] - col[r - 1]) as f64).collect();
        let avg = deltas.iter().sum::<f64>() / deltas.len() as f64;
        if avg < min_avg_bytes {
            continue;
        }
        let max = deltas.iter().fold(f64::MIN, |a, &b| a.max(b));
        let min = deltas.iter().fold(f64::MAX, |a, &b| a.min(b));
        out.push((max - min) / avg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_balanced_is_zero() {
        let tx = vec![vec![0, 100, 200, 300], vec![0, 100, 200, 300]];
        let v = throughput_imbalance(&tx, 1.0);
        assert_eq!(v, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn computes_max_minus_min_over_avg() {
        // Window deltas: [100, 300] -> avg 200, (300-100)/200 = 1.0.
        let tx = vec![vec![0, 100], vec![0, 300]];
        let v = throughput_imbalance(&tx, 1.0);
        assert_eq!(v, vec![1.0]);
    }

    #[test]
    fn idle_windows_are_skipped() {
        let tx = vec![vec![0, 0, 100], vec![0, 1, 300]];
        let v = throughput_imbalance(&tx, 10.0);
        assert_eq!(v.len(), 1, "first (near-idle) window skipped");
    }

    #[test]
    fn one_dead_uplink_gives_imbalance_of_n() {
        // 4 uplinks, one carries nothing: (max-min)/avg = (4/3 x - 0)/x... with
        // equal share x among 3: avg = 3x/4, max = x -> 4/3.
        let tx = vec![vec![0, 1000], vec![0, 1000], vec![0, 1000], vec![0, 0]];
        let v = throughput_imbalance(&tx, 1.0);
        assert!((v[0] - 4.0 / 3.0).abs() < 1e-12);
    }
}
