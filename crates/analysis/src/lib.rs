//! # conga-analysis — statistics, FCT reporting, and the paper's math
//!
//! * [`stats`] — means, percentiles, empirical CDFs, histograms;
//! * [`fct`] — flow-completion-time aggregation in the paper's reporting
//!   format (overall normalized to optimal, small < 100 KB, large > 10 MB);
//! * [`sketch`] — streaming FCT aggregation for large-scale cells: a
//!   deterministic log-bucketed percentile sketch plus exact fixed-point
//!   running-mean accumulators (O(sketch) memory instead of
//!   O(completed-flows));
//! * [`imbalance`] — the `(MAX − MIN)/AVG` uplink throughput-imbalance
//!   metric of Figure 12;
//! * [`poa`] — the §6.1 bottleneck routing game: exact best responses,
//!   Nash dynamics, social optimum, Price-of-Anarchy experiments;
//! * [`model`] — the §6.2 stochastic imbalance model (Theorem 2) with
//!   Monte-Carlo validation;
//! * [`tournament`] — price-of-anarchy-style comparison tables for the
//!   policy-zoo tournament.

#![warn(missing_docs)]

pub mod fct;
pub mod imbalance;
pub mod model;
pub mod poa;
pub mod sketch;
pub mod stats;
pub mod tournament;
