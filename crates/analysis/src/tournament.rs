//! Policy-tournament comparison tables: price-of-anarchy-style ratios of
//! every load-balancing policy against the best policy in its group.
//!
//! The fleet's `tournament` subcommand runs the full policy zoo through
//! identical (arena, load) cells and hands each group's per-policy
//! [`FctSummary`] here. This module is pure math + deterministic text
//! rendering: given the same inputs it produces byte-identical tables,
//! which the CI tournament gate diffs across cold/warm-cache runs and
//! shard counts.

use crate::fct::FctSummary;
use std::fmt::Write as _;

/// One policy's aggregate result within a group (same arena, same load).
#[derive(Clone, Debug)]
pub struct PolicyCell {
    /// Stable snake_case policy key (`ecmp`, `conga`, `letflow`, ...).
    pub policy: String,
    /// The cell's FCT summary.
    pub summary: FctSummary,
    /// Load-balancer re-routing decisions taken during the run (new
    /// flowlets for flowlet-based policies; 0 for stateless ones).
    pub decisions: u64,
}

/// One comparison row: a policy's metrics normalized to the group's best.
#[derive(Clone, Debug)]
pub struct Row {
    /// Policy key.
    pub policy: String,
    /// Mean FCT divided by the best policy's mean FCT (>= 1.0).
    pub mean_ratio: f64,
    /// p95 FCT divided by the best policy's p95 FCT.
    pub p95_ratio: f64,
    /// p99 FCT divided by the best policy's p99 FCT.
    pub p99_ratio: f64,
    /// Throughput proxy: optimal FCT over achieved FCT (1.0 = ideal).
    pub norm_throughput: f64,
    /// Absolute mean FCT, seconds.
    pub avg_s: f64,
    /// Absolute p99 FCT, seconds.
    pub p99_s: f64,
    /// Re-routing decisions.
    pub decisions: u64,
    /// Flows that never completed.
    pub incomplete: usize,
}

/// A rendered comparison group: every policy of one (arena, load) cell
/// normalized against the group's best policy.
#[derive(Clone, Debug)]
pub struct GroupTable {
    /// Group name, e.g. `enterprise/load60`.
    pub group: String,
    /// The policy with the lowest mean FCT (ties break in input order).
    pub best: String,
    /// The price of anarchy: the worst policy's mean-FCT ratio vs the
    /// best — how much choosing the wrong policy can cost in this group.
    pub poa: f64,
    /// Per-policy rows, in input order.
    pub rows: Vec<Row>,
}

/// Compare a group of policy cells against the group's best policy.
///
/// "Best" is the lowest mean FCT among policies that completed at least
/// one flow; ties break toward the earlier cell so the result is
/// independent of float noise in downstream consumers. Cells with `n == 0`
/// get ratio 0.0 rows (nothing finished, nothing to normalize).
pub fn compare(group: &str, cells: &[PolicyCell]) -> GroupTable {
    let best_idx = cells
        .iter()
        .enumerate()
        .filter(|(_, c)| c.summary.n > 0)
        .min_by(|(_, a), (_, b)| a.summary.avg_s.total_cmp(&b.summary.avg_s))
        .map(|(i, _)| i);
    let best = best_idx.map(|i| &cells[i].summary);
    let ratio = |v: f64, b: f64| if b > 0.0 { v / b } else { 0.0 };
    let rows: Vec<Row> = cells
        .iter()
        .map(|c| {
            let s = &c.summary;
            let (mean_ratio, p95_ratio, p99_ratio) = match best {
                Some(b) if s.n > 0 => (
                    ratio(s.avg_s, b.avg_s),
                    ratio(s.p95_s, b.p95_s),
                    ratio(s.p99_s, b.p99_s),
                ),
                _ => (0.0, 0.0, 0.0),
            };
            Row {
                policy: c.policy.clone(),
                mean_ratio,
                p95_ratio,
                p99_ratio,
                norm_throughput: if s.avg_norm_optimal > 0.0 {
                    1.0 / s.avg_norm_optimal
                } else {
                    0.0
                },
                avg_s: s.avg_s,
                p99_s: s.p99_s,
                decisions: c.decisions,
                incomplete: s.incomplete,
            }
        })
        .collect();
    let poa = rows.iter().map(|r| r.mean_ratio).fold(0.0f64, f64::max);
    GroupTable {
        group: group.to_string(),
        best: best_idx
            .map(|i| cells[i].policy.clone())
            .unwrap_or_default(),
        poa,
        rows,
    }
}

/// Render the comparison groups as one deterministic plain-text table
/// (fixed decimals, fixed column widths — byte-identical for identical
/// inputs; this is the artifact the CI gate compares).
pub fn render(tables: &[GroupTable]) -> String {
    let mut out = String::new();
    for t in tables {
        let _ = writeln!(
            out,
            "== {} (best: {}, price of anarchy {:.3}) ==",
            t.group, t.best, t.poa
        );
        let _ = writeln!(
            out,
            "{:<14}{:>10}{:>10}{:>10}{:>10}{:>12}{:>12}{:>8}",
            "policy",
            "mean/best",
            "p95/best",
            "p99/best",
            "norm-thr",
            "avg (ms)",
            "decisions",
            "inc"
        );
        for r in &t.rows {
            let _ = writeln!(
                out,
                "{:<14}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>12.3}{:>12}{:>8}",
                r.policy,
                r.mean_ratio,
                r.p95_ratio,
                r.p99_ratio,
                r.norm_throughput,
                r.avg_s * 1e3,
                r.decisions,
                r.incomplete
            );
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(policy: &str, avg_s: f64, p95_s: f64, p99_s: f64, decisions: u64) -> PolicyCell {
        PolicyCell {
            policy: policy.into(),
            summary: FctSummary {
                n: 100,
                avg_s,
                avg_norm_optimal: avg_s / 0.001,
                mean_slowdown: 1.0,
                small_avg_s: None,
                large_avg_s: None,
                p50_s: avg_s,
                p95_s,
                p99_s,
                incomplete: 0,
            },
            decisions,
        }
    }

    #[test]
    fn best_policy_gets_unit_ratios_and_poa_tracks_the_worst() {
        let t = compare(
            "enterprise/load60",
            &[
                cell("ecmp", 0.004, 0.008, 0.010, 0),
                cell("conga", 0.002, 0.004, 0.005, 37),
                cell("spray", 0.003, 0.006, 0.008, 0),
            ],
        );
        assert_eq!(t.best, "conga");
        let conga = &t.rows[1];
        assert_eq!(conga.mean_ratio, 1.0);
        assert_eq!(conga.p99_ratio, 1.0);
        assert_eq!(conga.decisions, 37);
        let ecmp = &t.rows[0];
        assert!((ecmp.mean_ratio - 2.0).abs() < 1e-12);
        assert!((t.poa - 2.0).abs() < 1e-12, "poa = worst mean ratio");
        // Throughput proxy inverts the optimal-normalized mean.
        assert!((conga.norm_throughput - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cells_do_not_win_or_divide_by_zero() {
        let mut dead = cell("dead", 0.0, 0.0, 0.0, 0);
        dead.summary.n = 0;
        let t = compare("g", &[dead, cell("ecmp", 0.004, 0.008, 0.010, 0)]);
        assert_eq!(t.best, "ecmp");
        assert_eq!(t.rows[0].mean_ratio, 0.0);
        assert!(t.rows.iter().all(|r| r.mean_ratio.is_finite()));
    }

    #[test]
    fn ties_break_toward_the_earlier_policy() {
        let t = compare(
            "g",
            &[
                cell("a", 0.002, 0.004, 0.005, 0),
                cell("b", 0.002, 0.004, 0.005, 0),
            ],
        );
        assert_eq!(t.best, "a");
    }

    #[test]
    fn render_is_deterministic_and_names_every_policy() {
        let tables = [compare(
            "g",
            &[
                cell("ecmp", 0.004, 0.008, 0.010, 0),
                cell("conga", 0.002, 0.004, 0.005, 37),
            ],
        )];
        let a = render(&tables);
        let b = render(&tables);
        assert_eq!(a, b);
        assert!(a.contains("ecmp") && a.contains("conga"));
        assert!(a.contains("price of anarchy"));
    }
}
