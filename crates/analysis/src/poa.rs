//! The bottleneck routing game of paper §6.1 (Banner & Orda's model,
//! specialized to 2-tier Leaf-Spine as in Theorem 1).
//!
//! Players are (source leaf → destination leaf) demands; a strategy splits
//! the demand across the spines; each unit placed on spine `s` loads both
//! the uplink `(l, s)` and the downlink `(s, m)`. A player's cost is the
//! utilization of the most congested link it uses; the *network bottleneck*
//! is the most congested link overall.
//!
//! * [`BottleneckGame::best_response`] is exact: a water-filling split
//!   computed by bisection on the player's achievable bottleneck level
//!   (this mirrors CONGA's own rule — send on the paths whose `max(local,
//!   remote)` metric is smallest).
//! * [`BottleneckGame::nash`] iterates best responses to a fixed point —
//!   the idealized CONGA of §6.1.
//! * [`BottleneckGame::min_max_utilization`] computes the social optimum
//!   (a convex min-max program) by projected coordinate descent with a
//!   diminishing step, which converges on this piecewise-linear convex
//!   objective; tests pin it against analytically solvable instances.

use conga_sim::SimRng;

/// One player: `demand` units from `src` leaf to `dst` leaf.
#[derive(Clone, Copy, Debug)]
pub struct User {
    /// Source leaf.
    pub src: usize,
    /// Destination leaf.
    pub dst: usize,
    /// Traffic demand (same unit as capacities).
    pub demand: f64,
}

/// A Leaf-Spine bottleneck routing game.
#[derive(Clone, Debug)]
pub struct BottleneckGame {
    /// Uplink capacity `[leaf][spine]` (0 = absent link).
    pub up_cap: Vec<Vec<f64>>,
    /// Downlink capacity `[spine][leaf]`.
    pub down_cap: Vec<Vec<f64>>,
    /// The players.
    pub users: Vec<User>,
}

/// A strategy profile: `x[user][spine]` ≥ 0 with rows summing to demands.
pub type Flow = Vec<Vec<f64>>;

impl BottleneckGame {
    /// Number of spines.
    pub fn n_spines(&self) -> usize {
        self.down_cap.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.up_cap.len()
    }

    /// A fully symmetric game: every link has capacity `cap`.
    pub fn symmetric(n_leaves: usize, n_spines: usize, cap: f64, users: Vec<User>) -> Self {
        BottleneckGame {
            up_cap: vec![vec![cap; n_spines]; n_leaves],
            down_cap: vec![vec![cap; n_leaves]; n_spines],
            users,
        }
    }

    /// Per-link loads for a flow: `(up[l][s], down[s][m])`.
    fn loads(&self, x: &Flow) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut up = vec![vec![0.0; self.n_spines()]; self.n_leaves()];
        let mut down = vec![vec![0.0; self.n_leaves()]; self.n_spines()];
        for (u, user) in self.users.iter().enumerate() {
            for s in 0..self.n_spines() {
                let v = x[u][s];
                if v > 0.0 {
                    up[user.src][s] += v;
                    down[s][user.dst] += v;
                }
            }
        }
        (up, down)
    }

    /// Network bottleneck: utilization of the most congested link.
    pub fn network_bottleneck(&self, x: &Flow) -> f64 {
        let (up, down) = self.loads(x);
        let mut b: f64 = 0.0;
        for l in 0..self.n_leaves() {
            for s in 0..self.n_spines() {
                if self.up_cap[l][s] > 0.0 {
                    b = b.max(up[l][s] / self.up_cap[l][s]);
                }
                if self.down_cap[s][l] > 0.0 {
                    b = b.max(down[s][l] / self.down_cap[s][l]);
                }
            }
        }
        b
    }

    /// A player's bottleneck: the most congested link it places traffic on.
    pub fn user_bottleneck(&self, x: &Flow, u: usize) -> f64 {
        let (up, down) = self.loads(x);
        let user = self.users[u];
        let mut b: f64 = 0.0;
        for s in 0..self.n_spines() {
            if x[u][s] > 1e-12 {
                b = b.max(up[user.src][s] / self.up_cap[user.src][s]);
                b = b.max(down[s][user.dst] / self.down_cap[s][user.dst]);
            }
        }
        b
    }

    /// The exact best response of player `u` against the rest of `x`:
    /// water-filling by bisection on the achievable bottleneck level `B`
    /// (at level `B`, spine `s` can absorb
    /// `min(B·c_up − other_up, B·c_down − other_down)` of the player's
    /// traffic). Returns the new row for `u`.
    pub fn best_response(&self, x: &Flow, u: usize) -> Vec<f64> {
        let user = self.users[u];
        let (mut up, mut down) = self.loads(x);
        // Remove the player's own contribution.
        for s in 0..self.n_spines() {
            up[user.src][s] -= x[u][s];
            down[s][user.dst] -= x[u][s];
        }
        let room = |b: f64| -> f64 {
            (0..self.n_spines())
                .map(|s| {
                    let cu = self.up_cap[user.src][s];
                    let cd = self.down_cap[s][user.dst];
                    if cu <= 0.0 || cd <= 0.0 {
                        return 0.0;
                    }
                    (b * cu - up[user.src][s])
                        .min(b * cd - down[s][user.dst])
                        .max(0.0)
                })
                .sum()
        };
        // Bisection for the smallest B with enough room for the demand.
        let mut lo = 0.0;
        let mut hi = 1.0;
        while room(hi) < user.demand {
            hi *= 2.0;
            assert!(hi < 1e12, "demand cannot be routed at any level");
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if room(mid) >= user.demand {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        // Allocate at level hi, scaling down the slack so rows sum exactly.
        let mut alloc: Vec<f64> = (0..self.n_spines())
            .map(|s| {
                let cu = self.up_cap[user.src][s];
                let cd = self.down_cap[s][user.dst];
                if cu <= 0.0 || cd <= 0.0 {
                    return 0.0;
                }
                (hi * cu - up[user.src][s])
                    .min(hi * cd - down[s][user.dst])
                    .max(0.0)
            })
            .collect();
        let total: f64 = alloc.iter().sum();
        debug_assert!(total >= user.demand - 1e-9);
        let scale = user.demand / total;
        for a in &mut alloc {
            *a *= scale;
        }
        alloc
    }

    /// Run best-response dynamics to (approximate) Nash equilibrium from a
    /// given start; returns the flow and the number of sweeps used.
    pub fn nash(&self, start: Flow, max_sweeps: usize, tol: f64) -> (Flow, usize) {
        let mut x = start;
        for sweep in 0..max_sweeps {
            let mut moved = 0.0f64;
            for u in 0..self.users.len() {
                let before = self.user_bottleneck(&x, u);
                let br = self.best_response(&x, u);
                let after_cost = {
                    let mut y = x.clone();
                    y[u] = br.clone();
                    self.user_bottleneck(&y, u)
                };
                if after_cost < before - tol {
                    let delta: f64 = br.iter().zip(&x[u]).map(|(a, b)| (a - b).abs()).sum();
                    moved += delta;
                    x[u] = br;
                }
            }
            if moved < tol {
                return (x, sweep + 1);
            }
        }
        let n = max_sweeps;
        (x, n)
    }

    /// Even-split starting profile (ECMP-like): demand spread uniformly
    /// over spines with both links present.
    pub fn even_split(&self) -> Flow {
        self.users
            .iter()
            .map(|u| {
                let valid: Vec<usize> = (0..self.n_spines())
                    .filter(|&s| self.up_cap[u.src][s] > 0.0 && self.down_cap[s][u.dst] > 0.0)
                    .collect();
                let mut row = vec![0.0; self.n_spines()];
                for &s in &valid {
                    row[s] = u.demand / valid.len() as f64;
                }
                row
            })
            .collect()
    }

    /// All-on-one-spine adversarial start (spine chosen per user by `pick`).
    pub fn concentrated(&self, pick: impl Fn(usize) -> usize) -> Flow {
        self.users
            .iter()
            .enumerate()
            .map(|(i, u)| {
                let mut row = vec![0.0; self.n_spines()];
                row[pick(i)] = u.demand;
                row
            })
            .collect()
    }

    /// Social optimum: minimize the network bottleneck (convex min-max)
    /// by projected coordinate descent — repeatedly shift a diminishing
    /// step of traffic off the current bottleneck link onto the shifting
    /// user's best alternative spine. Returns `(bottleneck, flow)`.
    pub fn min_max_utilization(&self, iters: usize, rng: &mut SimRng) -> (f64, Flow) {
        let mut x = self.even_split();
        let mut best_b = self.network_bottleneck(&x);
        let mut best_x = x.clone();
        for it in 0..iters {
            let (up, down) = self.loads(&x);
            // Find the bottleneck link.
            let mut bott = (0.0f64, None);
            for l in 0..self.n_leaves() {
                for s in 0..self.n_spines() {
                    if self.up_cap[l][s] > 0.0 {
                        let u = up[l][s] / self.up_cap[l][s];
                        if u > bott.0 {
                            bott = (u, Some((true, l, s)));
                        }
                    }
                    if self.down_cap[s][l] > 0.0 {
                        let u = down[s][l] / self.down_cap[s][l];
                        if u > bott.0 {
                            bott = (u, Some((false, l, s)));
                        }
                    }
                }
            }
            let Some((is_up, l, s)) = bott.1 else { break };
            // Users that load this link.
            let users_on: Vec<usize> = self
                .users
                .iter()
                .enumerate()
                .filter(|(u, usr)| {
                    x[*u][s] > 1e-12 && if is_up { usr.src == l } else { usr.dst == l }
                })
                .map(|(u, _)| u)
                .collect();
            if users_on.is_empty() {
                break;
            }
            let u = *rng.choose(&users_on);
            let user = self.users[u];
            // Best alternative spine for this user (lowest resulting util).
            let mut best_alt: Option<(usize, f64)> = None;
            for s2 in 0..self.n_spines() {
                if s2 == s || self.up_cap[user.src][s2] <= 0.0 || self.down_cap[s2][user.dst] <= 0.0
                {
                    continue;
                }
                let alt = (up[user.src][s2] / self.up_cap[user.src][s2])
                    .max(down[s2][user.dst] / self.down_cap[s2][user.dst]);
                if best_alt.map(|(_, b)| alt < b).unwrap_or(true) {
                    best_alt = Some((s2, alt));
                }
            }
            let Some((s2, alt_util)) = best_alt else {
                continue;
            };
            if alt_util >= bott.0 {
                continue;
            }
            // Diminishing step.
            let step = (x[u][s]).min(user.demand * 0.5 / (1.0 + it as f64 / 50.0));
            x[u][s] -= step;
            x[u][s2] += step;
            let b = self.network_bottleneck(&x);
            if b < best_b {
                best_b = b;
                best_x = x.clone();
            }
        }
        (best_b, best_x)
    }

    /// Is `x` an (ε-approximate) Nash flow?
    pub fn is_nash(&self, x: &Flow, eps: f64) -> bool {
        (0..self.users.len()).all(|u| {
            let cur = self.user_bottleneck(x, u);
            let br = self.best_response(x, u);
            let mut y = x.clone();
            y[u] = br;
            self.user_bottleneck(&y, u) >= cur - eps
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single user, symmetric fabric: optimum is an even split.
    #[test]
    fn single_user_best_response_is_even_split() {
        let g = BottleneckGame::symmetric(
            2,
            4,
            1.0,
            vec![User {
                src: 0,
                dst: 1,
                demand: 2.0,
            }],
        );
        let x = g.concentrated(|_| 0);
        let br = g.best_response(&x, 0);
        for (s, &v) in br.iter().enumerate().take(4) {
            assert!((v - 0.5).abs() < 1e-6, "spine {s}: {v}");
        }
    }

    /// Figure 3(a): only L1→L2 traffic; optimal splits 50/50 over spines.
    /// Figure 3(b): L0→L2 sends 40 via S0 only (its only choice given the
    /// missing L0-S1 link); the L1→L2 user's best response shifts away
    /// from S0.
    #[test]
    fn fig3_traffic_matrix_dependence() {
        // 3 leaves, 2 spines, 40G links; leaf 0 lacks an uplink to spine 1.
        let mut g = BottleneckGame::symmetric(3, 2, 40.0, Vec::new());
        g.up_cap[0][1] = 0.0;
        // (a) only user: L1->L2, demand 40: even split.
        g.users = vec![User {
            src: 1,
            dst: 2,
            demand: 40.0,
        }];
        let (x, _) = g.nash(g.even_split(), 100, 1e-9);
        assert!((x[0][0] - 20.0).abs() < 0.5, "{:?}", x[0]);
        // (b) add L0->L2 demand 40 (forced through S0).
        g.users.push(User {
            src: 0,
            dst: 2,
            demand: 40.0,
        });
        let (x, _) = g.nash(g.even_split(), 200, 1e-9);
        // L1->L2 must avoid S0's loaded downlink: nearly all on S1.
        assert!(
            x[0][1] > 30.0,
            "L1->L2 should shift toward spine 1: {:?}",
            x[0]
        );
    }

    #[test]
    fn nash_reached_and_verified() {
        let rng = SimRng::new(5);
        let users = vec![
            User {
                src: 0,
                dst: 1,
                demand: 1.0,
            },
            User {
                src: 1,
                dst: 2,
                demand: 1.0,
            },
            User {
                src: 2,
                dst: 0,
                demand: 1.0,
            },
        ];
        let g = BottleneckGame::symmetric(3, 3, 1.0, users);
        let (x, sweeps) = g.nash(g.concentrated(|i| i % 3), 200, 1e-9);
        assert!(
            g.is_nash(&x, 1e-6),
            "best-response fixed point after {sweeps}"
        );
        let _ = rng;
    }

    #[test]
    fn optimum_matches_symmetric_analytic_value() {
        // 3 users of demand 1 in a 3x3 unit fabric: spreading every user
        // over all 3 spines gives every link 1/3 — the optimum.
        let users = vec![
            User {
                src: 0,
                dst: 1,
                demand: 1.0,
            },
            User {
                src: 1,
                dst: 2,
                demand: 1.0,
            },
            User {
                src: 2,
                dst: 0,
                demand: 1.0,
            },
        ];
        let g = BottleneckGame::symmetric(3, 3, 1.0, users);
        let mut rng = SimRng::new(6);
        let (b, _) = g.min_max_utilization(2000, &mut rng);
        assert!((b - 1.0 / 3.0).abs() < 0.02, "optimum {b}, want 1/3");
    }

    #[test]
    fn poa_bounded_by_two_on_random_instances() {
        // Theorem 1: Nash bottleneck <= 2x optimal in Leaf-Spine games.
        let mut rng = SimRng::new(7);
        let mut worst: f64 = 0.0;
        for trial in 0..30 {
            let nl = 2 + rng.below(3);
            let ns = 2 + rng.below(3);
            let mut users = Vec::new();
            for _ in 0..(2 + rng.below(4)) {
                let src = rng.below(nl);
                let mut dst = rng.below(nl);
                while dst == src {
                    dst = rng.below(nl);
                }
                users.push(User {
                    src,
                    dst,
                    demand: 0.5 + rng.f64(),
                });
            }
            let mut g = BottleneckGame::symmetric(nl, ns, 1.0, users);
            // Random capacity asymmetry.
            for l in 0..nl {
                for s in 0..ns {
                    if rng.chance(0.3) {
                        g.up_cap[l][s] *= 0.5;
                    }
                    if rng.chance(0.3) {
                        g.down_cap[s][l] *= 0.5;
                    }
                }
            }
            let start = g.concentrated(|i| i % ns);
            let (x, _) = g.nash(start, 300, 1e-9);
            let nash_b = g.network_bottleneck(&x);
            let (opt_b, _) = g.min_max_utilization(3000, &mut rng);
            let ratio = nash_b / opt_b.max(1e-12);
            worst = worst.max(ratio);
            assert!(
                ratio <= 2.0 + 0.05,
                "trial {trial}: PoA violated: {nash_b} vs {opt_b}"
            );
        }
        // Typical case should be near-optimal (the paper's empirical claim).
        assert!(worst >= 1.0);
    }

    #[test]
    fn even_split_respects_missing_links() {
        let mut g = BottleneckGame::symmetric(
            2,
            3,
            1.0,
            vec![User {
                src: 0,
                dst: 1,
                demand: 1.0,
            }],
        );
        g.up_cap[0][2] = 0.0;
        let x = g.even_split();
        assert_eq!(x[0][2], 0.0);
        assert!((x[0][0] - 0.5).abs() < 1e-12);
    }
}
