//! Small statistics toolkit shared by the experiments: means, percentiles,
//! empirical CDFs, and a fixed-bin histogram.

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `p`-th percentile (0–100) by linear interpolation on the sorted
/// sample. Returns `None` for an empty sample or an out-of-range rank
/// (experiment cells can legitimately produce zero observations — e.g. no
/// utilized windows, no completed flows — and a malformed rank from a CLI
/// flag must degrade the cell, not abort the whole fleet run).
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut s: Vec<f64> = xs.to_vec();
    s.sort_by(f64::total_cmp);
    percentile_sorted(&s, p)
}

/// [`percentile`] over an **already sorted** slice: no copy, no sort.
/// Callers that need several ranks of the same distribution sort once and
/// read each rank through this. Same `None` contract as [`percentile`];
/// the interpolation arithmetic is identical, so the two agree bit-for-bit
/// on sorted input.
pub fn percentile_sorted(s: &[f64], p: f64) -> Option<f64> {
    if s.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let rank = p / 100.0 * (s.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    Some(if lo == hi {
        s[lo]
    } else {
        let f = rank - lo as f64;
        s[lo] * (1.0 - f) + s[hi] * f
    })
}

/// An empirical CDF: sorted `(value, cumulative probability)` points
/// suitable for plotting.
pub fn ecdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut s: Vec<f64> = xs.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len() as f64;
    s.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Evaluate an ECDF (as returned by [`ecdf`]) at chosen probe points,
/// producing a compact plottable series.
pub fn ecdf_at(cdf: &[(f64, f64)], probes: &[f64]) -> Vec<(f64, f64)> {
    probes
        .iter()
        .map(|&x| {
            let idx = cdf.partition_point(|&(v, _)| v <= x);
            let p = if idx == 0 { 0.0 } else { cdf[idx - 1].1 };
            (x, p)
        })
        .collect()
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    width: f64,
    /// Per-bin counts; the last bin absorbs values ≥ `hi`.
    pub bins: Vec<u64>,
    /// Values below `lo`.
    pub underflow: u64,
}

impl Histogram {
    /// `n` bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0);
        Histogram {
            lo,
            width: (hi - lo) / n as f64,
            bins: vec![0; n],
            underflow: 0,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let i = ((x - self.lo) / self.width) as usize;
        let last = self.bins.len() - 1;
        self.bins[i.min(last)] += 1;
    }

    /// Total observations in bins.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 100.0), Some(40.0));
        assert_eq!(percentile(&xs, 50.0), Some(25.0));
        assert!((percentile(&xs, 90.0).unwrap() - 37.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_of_empty_sample_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[], 0.0), None);
    }

    #[test]
    fn percentile_of_out_of_range_rank_is_none_not_a_panic() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, -0.1), None);
        assert_eq!(percentile(&xs, 100.1), None);
        assert_eq!(percentile(&xs, f64::NAN), None);
        assert_eq!(percentile_sorted(&xs, -5.0), None);
        assert_eq!(percentile_sorted(&[], 50.0), None);
    }

    #[test]
    fn percentile_sorted_matches_percentile() {
        let xs = [40.0, 10.0, 30.0, 20.0];
        let mut s = xs.to_vec();
        s.sort_by(f64::total_cmp);
        for p in [0.0, 12.5, 50.0, 90.0, 100.0] {
            assert_eq!(percentile(&xs, p), percentile_sorted(&s, p));
        }
    }

    #[test]
    fn ecdf_shape() {
        let c = ecdf(&[3.0, 1.0, 2.0]);
        assert_eq!(c, vec![(1.0, 1.0 / 3.0), (2.0, 2.0 / 3.0), (3.0, 1.0)]);
        let probed = ecdf_at(&c, &[0.5, 1.5, 5.0]);
        assert_eq!(probed[0].1, 0.0);
        assert!((probed[1].1 - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(probed[2].1, 1.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 9.9, 10.5, -1.0] {
            h.add(x);
        }
        assert_eq!(h.bins[0], 2);
        assert_eq!(h.bins[4], 2, "overflow lands in the last bin");
        assert_eq!(h.underflow, 1);
        assert_eq!(h.count(), 4);
    }
}
