//! Streaming FCT aggregation: a deterministic log-bucketed percentile
//! sketch plus exact running-mean accumulators.
//!
//! Large-scale cells (the three-tier fig15 fabrics) complete millions of
//! flows; buffering one [`crate::fct::FctSample`] per flow for a
//! collect-then-sort [`crate::fct::summarize`] is O(completed-flows)
//! memory. The streaming path holds O(sketch) state instead:
//!
//! * [`FctSketch`] — percentiles. An HdrHistogram-style log-bucketed
//!   histogram keyed by the top bits of the IEEE-754 representation:
//!   bucket index = `value.to_bits() >> 44`, i.e. the sign-free exponent
//!   plus the top 8 mantissa bits. Buckets are geometrically spaced with
//!   relative width `2^(1/256) − 1 ≈ 0.27 %`, so reading a rank off the
//!   bucket midpoints is within ~0.14 % relative error — comfortably
//!   inside the 1 % differential-test budget. Bucket extraction is pure
//!   integer bit manipulation (no `log`), and merging adds `u64` counts
//!   bucket-wise, which is **exactly associative and commutative**: any
//!   shard-merge order produces identical state, the property the
//!   byte-identical-across-`--shards` contract rests on.
//! * [`FctAccumulator`] — the means of the paper's reporting format.
//!   Per-flow contributions are quantized to fixed-point integers (FCT in
//!   nanoseconds, ideal FCT in picoseconds, slowdown in Q32) and summed
//!   in `u128`, so integer addition — again exactly associative — replaces
//!   the order-sensitive f64 accumulation of the buffered path. Floats
//!   appear only once, in the final [`FctAccumulator::summary`] division.
//!
//! The streaming summary is *not* bit-identical to the exact
//! [`crate::fct::summarize`] (quantized means, bucketed percentiles); it
//! is a distinct opt-in mode, and every pre-existing figure keeps the
//! exact path. Differential tests pin the two within 1 % of each other.

use crate::fct::{FctSummary, LARGE_FLOW_BYTES, SMALL_FLOW_BYTES};
use std::collections::BTreeMap;

/// Bits dropped from an `f64` to form a bucket index: keep 11 exponent
/// bits + the top 8 mantissa bits (256 sub-buckets per octave).
const BUCKET_SHIFT: u32 = 52 - 8;

/// A deterministic log-bucketed percentile sketch over non-negative
/// values (seconds, here). See the module docs for the determinism and
/// error analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FctSketch {
    /// Bucket index → observation count. Sparse: FCTs span a few dozen
    /// octaves at most, so this stays at a few thousand entries no matter
    /// how many samples stream through.
    bins: BTreeMap<u32, u64>,
    n: u64,
}

impl FctSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of occupied buckets — the sketch's memory footprint.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// The bucket index for a value. Non-finite and negative inputs
    /// clamp to 0.0 (bucket 0) rather than aborting: a malformed sample
    /// must degrade one observation, not the run.
    fn bucket_of(v: f64) -> u32 {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        (v.to_bits() >> BUCKET_SHIFT) as u32
    }

    /// The representative value of a bucket: the arithmetic midpoint of
    /// its lower and upper bounds (reconstructed from the index by the
    /// inverse bit shift).
    fn value_of(idx: u32) -> f64 {
        let lo = f64::from_bits((idx as u64) << BUCKET_SHIFT);
        let hi = f64::from_bits(((idx as u64) + 1) << BUCKET_SHIFT);
        (lo + hi) / 2.0
    }

    /// Record one observation.
    pub fn add(&mut self, v: f64) {
        *self.bins.entry(Self::bucket_of(v)).or_insert(0) += 1;
        self.n += 1;
    }

    /// Merge another sketch into this one. Bucket-wise `u64` addition:
    /// exactly associative and commutative, so any merge order over any
    /// shard decomposition yields identical state.
    pub fn merge(&mut self, other: &FctSketch) {
        for (&k, &c) in &other.bins {
            *self.bins.entry(k).or_insert(0) += c;
        }
        self.n += other.n;
    }

    /// The representative value of the `k`-th smallest observation
    /// (0-indexed), or `None` for an empty sketch / out-of-range rank.
    fn value_at_rank(&self, k: u64) -> Option<f64> {
        if k >= self.n {
            return None;
        }
        let mut seen = 0u64;
        for (&idx, &c) in &self.bins {
            seen += c;
            if k < seen {
                return Some(Self::value_of(idx));
            }
        }
        None
    }

    /// The `p`-th percentile (0–100) using the same fractional-rank
    /// convention as [`crate::stats::percentile`] (`rank = p/100·(n−1)`,
    /// linear interpolation between adjacent ranks), read off bucket
    /// midpoints. `None` for an empty sketch or out-of-range `p`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.n == 0 || !(0.0..=100.0).contains(&p) {
            return None;
        }
        let rank = p / 100.0 * (self.n - 1) as f64;
        let lo = rank.floor() as u64;
        let hi = rank.ceil() as u64;
        let vlo = self.value_at_rank(lo)?;
        if lo == hi {
            return Some(vlo);
        }
        let vhi = self.value_at_rank(hi)?;
        let f = rank - lo as f64;
        Some(vlo * (1.0 - f) + vhi * f)
    }

    /// A deterministic canonical rendering — `n` then every
    /// `bucket:count` pair in ascending bucket order — used by the
    /// differential tests to assert byte-identical sketch state across
    /// shard counts and merge orders.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("n={}", self.n);
        for (&k, &c) in &self.bins {
            let _ = write!(out, ";{k}:{c}");
        }
        out
    }
}

/// Scale factor for Q32 fixed-point slowdown quantization.
const Q32: f64 = 4294967296.0; // 2^32

/// Streaming accumulator for the mean-based half of [`FctSummary`].
/// All state is integer; see the module docs for why.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FctAccumulator {
    n: u64,
    incomplete: u64,
    sum_fct_ns: u128,
    sum_ideal_ps: u128,
    sum_slowdown_q32: u128,
    sum_small_ns: u128,
    n_small: u64,
    sum_large_ns: u128,
    n_large: u64,
}

impl FctAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flows recorded so far (completed only).
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Record one completed flow: size in bytes, measured FCT in
    /// nanoseconds (the engine's native unit — summed exactly), and the
    /// ideal idle-network FCT in seconds (quantized to picoseconds).
    pub fn add(&mut self, bytes: u64, fct_ns: u64, ideal_s: f64) {
        let fct_s = fct_ns as f64 * 1e-9;
        let slowdown = fct_s / ideal_s.max(1e-12);
        self.n += 1;
        self.sum_fct_ns += fct_ns as u128;
        self.sum_ideal_ps += (ideal_s.max(0.0) * 1e12).round() as u128;
        self.sum_slowdown_q32 += (slowdown.max(0.0) * Q32).round() as u128;
        if bytes < SMALL_FLOW_BYTES {
            self.sum_small_ns += fct_ns as u128;
            self.n_small += 1;
        }
        if bytes > LARGE_FLOW_BYTES {
            self.sum_large_ns += fct_ns as u128;
            self.n_large += 1;
        }
    }

    /// Record one flow that never completed within the drain bound.
    pub fn add_incomplete(&mut self) {
        self.incomplete += 1;
    }

    /// Merge another accumulator into this one (integer adds — exactly
    /// associative and commutative).
    pub fn merge(&mut self, other: &FctAccumulator) {
        self.n += other.n;
        self.incomplete += other.incomplete;
        self.sum_fct_ns += other.sum_fct_ns;
        self.sum_ideal_ps += other.sum_ideal_ps;
        self.sum_slowdown_q32 += other.sum_slowdown_q32;
        self.sum_small_ns += other.sum_small_ns;
        self.n_small += other.n_small;
        self.sum_large_ns += other.sum_large_ns;
        self.n_large += other.n_large;
    }

    /// Assemble the [`FctSummary`], taking tail percentiles from the
    /// sketch. The single place integer state meets floating point.
    pub fn summary(&self, sketch: &FctSketch) -> FctSummary {
        if self.n == 0 {
            return FctSummary {
                incomplete: self.incomplete as usize,
                ..FctSummary::default()
            };
        }
        let n = self.n as f64;
        let avg_s = self.sum_fct_ns as f64 * 1e-9 / n;
        let avg_ideal_s = self.sum_ideal_ps as f64 * 1e-12 / n;
        let pct = |p: f64| sketch.quantile(p).unwrap_or(0.0);
        FctSummary {
            n: self.n as usize,
            avg_s,
            avg_norm_optimal: avg_s / avg_ideal_s.max(1e-12),
            mean_slowdown: self.sum_slowdown_q32 as f64 / Q32 / n,
            small_avg_s: (self.n_small > 0)
                .then(|| self.sum_small_ns as f64 * 1e-9 / self.n_small as f64),
            large_avg_s: (self.n_large > 0)
                .then(|| self.sum_large_ns as f64 * 1e-9 / self.n_large as f64),
            p50_s: pct(50.0),
            p95_s: pct(95.0),
            p99_s: pct(99.0),
            incomplete: self.incomplete as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fct::{summarize, FctSample};

    fn sample_set(seed: u64, n: usize) -> Vec<FctSample> {
        // A deterministic LCG spread over ~4 decades of FCTs with mixed
        // flow sizes — no external RNG needed.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                let fct_s = 1e-5 * (10f64).powf(4.0 * u);
                let bytes = 1_000 + (state % 20_000_000);
                FctSample {
                    bytes,
                    fct_s,
                    ideal_s: fct_s / (1.0 + 3.0 * u),
                }
            })
            .collect()
    }

    fn stream(samples: &[FctSample]) -> (FctAccumulator, FctSketch) {
        let mut acc = FctAccumulator::new();
        let mut sk = FctSketch::new();
        for s in samples {
            acc.add(s.bytes, (s.fct_s * 1e9).round() as u64, s.ideal_s);
            sk.add(s.fct_s);
        }
        (acc, sk)
    }

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1e-300)
    }

    #[test]
    fn sketch_percentiles_within_one_percent_of_exact() {
        for seed in [1u64, 7, 42] {
            let samples = sample_set(seed, 5000);
            let exact = summarize(&samples, 0);
            let (acc, sk) = stream(&samples);
            let s = acc.summary(&sk);
            for (got, want, what) in [
                (s.p50_s, exact.p50_s, "p50"),
                (s.p95_s, exact.p95_s, "p95"),
                (s.p99_s, exact.p99_s, "p99"),
            ] {
                assert!(
                    rel_err(got, want) < 0.01,
                    "seed {seed} {what}: sketch {got} vs exact {want}"
                );
            }
            // Means agree far tighter than 1% (only quantization noise).
            assert!(rel_err(s.avg_s, exact.avg_s) < 1e-6);
            assert!(rel_err(s.avg_norm_optimal, exact.avg_norm_optimal) < 1e-6);
            assert!(rel_err(s.mean_slowdown, exact.mean_slowdown) < 1e-6);
            assert_eq!(s.n, exact.n);
        }
    }

    #[test]
    fn empty_and_single_sample_edges() {
        let sk = FctSketch::new();
        assert_eq!(sk.quantile(50.0), None);
        let mut acc = FctAccumulator::new();
        acc.add_incomplete();
        let s = acc.summary(&sk);
        assert_eq!(s.n, 0);
        assert_eq!(s.incomplete, 1);
        assert_eq!(s.p50_s, 0.0);
        assert_eq!(s.small_avg_s, None);

        let mut sk = FctSketch::new();
        sk.add(0.003);
        for p in [0.0, 50.0, 100.0] {
            let q = sk.quantile(p).unwrap();
            assert!(rel_err(q, 0.003) < 0.002, "p{p}: {q}");
        }
        // Out-of-range ranks degrade to None, like stats::percentile.
        assert_eq!(sk.quantile(-1.0), None);
        assert_eq!(sk.quantile(101.0), None);
        // Non-finite observations clamp to the zero bucket.
        let mut sk = FctSketch::new();
        sk.add(f64::NAN);
        sk.add(-3.0);
        assert_eq!(sk.count(), 2);
        assert_eq!(sk.quantile(100.0), sk.quantile(0.0));
    }

    #[test]
    fn merge_is_associative_and_order_invariant() {
        let samples = sample_set(9, 3000);
        let parts: Vec<(FctAccumulator, FctSketch)> = samples.chunks(700).map(stream).collect();
        // Left fold, right fold, and a shuffled order must agree exactly.
        let fold = |order: &[usize]| {
            let mut acc = FctAccumulator::new();
            let mut sk = FctSketch::new();
            for &i in order {
                acc.merge(&parts[i].0);
                sk.merge(&parts[i].1);
            }
            (acc, sk)
        };
        let idx: Vec<usize> = (0..parts.len()).collect();
        let rev: Vec<usize> = idx.iter().rev().copied().collect();
        let shuffled = vec![2, 0, 4, 1, 3];
        let (a1, s1) = fold(&idx);
        let (a2, s2) = fold(&rev);
        let (a3, s3) = fold(&shuffled);
        assert_eq!(a1, a2);
        assert_eq!(a1, a3);
        assert_eq!(s1, s2);
        assert_eq!(s1, s3);
        assert_eq!(s1.canonical(), s2.canonical());
        // And the merged state equals the single-stream state.
        let (aw, sw) = stream(&samples);
        assert_eq!(a1, aw);
        assert_eq!(s1.canonical(), sw.canonical());
    }

    #[test]
    fn sketch_memory_is_bounded_by_bins_not_samples() {
        let samples = sample_set(3, 20_000);
        let (_, sk) = stream(&samples);
        assert_eq!(sk.count(), 20_000);
        // 4 decades of values at 256 sub-buckets/octave: a few thousand
        // bins at most, far below the sample count.
        assert!(sk.n_bins() < 4000, "{} bins", sk.n_bins());
    }

    #[test]
    fn bucket_midpoint_error_is_within_spec() {
        // Every bucket's relative half-width is (2^(1/256)-1)/2 < 0.14%.
        for v in [1e-6, 3.7e-4, 0.042, 1.0, 913.5] {
            let idx = FctSketch::bucket_of(v);
            let rep = FctSketch::value_of(idx);
            assert!(rel_err(rep, v) < 2.8e-3, "v={v} rep={rep}");
        }
    }
}
