//! The stochastic load-balancing model of paper §6.2 (Theorem 2).
//!
//! Flows arrive Poisson(λ) and are assigned to one of `n` links uniformly
//! at random (ECMP-style); sizes are i.i.d. from an arbitrary distribution.
//! The traffic imbalance at time `t`,
//!
//! ```text
//! χ(t) = (max_k A_k(t) − min_k A_k(t)) / (λ E[S] t / n)
//! ```
//!
//! satisfies `E[χ(t)] ≤ 1/√(λ_e t) + O(1/t)` with the *effective rate*
//!
//! ```text
//! λ_e = λ / (8 n log n (1 + (σ_S/E[S])²)).
//! ```
//!
//! The punchline: imbalance decays like `1/√t`, but the heavier the flow
//! size distribution (larger coefficient of variation), the longer it
//! takes — which is exactly why flowlets (which slash the effective
//! transfer-size CV) help heavy workloads and barely matter for light
//! ones. [`imbalance_trial`] Monte-Carlo-samples E[χ(t)];
//! [`theorem2_bound`] evaluates the bound.

use conga_sim::SimRng;

/// A sampled-size source for the model (kept as a trait so both the
/// empirical workload distributions and synthetic ones plug in without a
/// crate dependency cycle).
pub trait SizeSource {
    /// Draw one flow size in bytes.
    fn draw(&self, rng: &mut SimRng) -> f64;
    /// Mean size.
    fn mean(&self) -> f64;
    /// Coefficient of variation σ/μ.
    fn cv(&self) -> f64;
}

/// A deterministic (CV = 0) size.
pub struct FixedSize(pub f64);

impl SizeSource for FixedSize {
    fn draw(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
    fn cv(&self) -> f64 {
        0.0
    }
}

/// The effective arrival rate `λ_e` of Theorem 2.
pub fn lambda_e(lambda: f64, n_links: usize, cv: f64) -> f64 {
    lambda / (8.0 * n_links as f64 * (n_links as f64).ln() * (1.0 + cv * cv))
}

/// The Theorem 2 upper bound on `E[χ(t)]` (leading term).
pub fn theorem2_bound(lambda: f64, n_links: usize, cv: f64, t: f64) -> f64 {
    1.0 / (lambda_e(lambda, n_links, cv) * t).sqrt()
}

/// One Monte-Carlo estimate of `E[χ(t)]`: `trials` independent runs of
/// randomized assignment of Poisson arrivals over `[0, t]`.
pub fn imbalance_trial<S: SizeSource>(
    src: &S,
    lambda: f64,
    n_links: usize,
    t: f64,
    trials: usize,
    rng: &mut SimRng,
) -> f64 {
    let mean_per_link = lambda * src.mean() * t / n_links as f64;
    let mut acc = 0.0;
    for _ in 0..trials {
        let mut a = vec![0.0f64; n_links];
        let mut clock = 0.0;
        loop {
            clock += rng.exp(lambda);
            if clock > t {
                break;
            }
            let k = rng.below(n_links);
            a[k] += src.draw(rng);
        }
        let max = a.iter().fold(f64::MIN, |x, &y| x.max(y));
        let min = a.iter().fold(f64::MAX, |x, &y| x.min(y));
        acc += (max - min) / mean_per_link;
    }
    acc / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_e_formula() {
        // n = 4, cv = 1, lambda = 1000:
        // 8 * 4 * ln4 * 2 = 88.72...; lambda_e = 1000 / 88.72.
        let le = lambda_e(1000.0, 4, 1.0);
        assert!((le - 1000.0 / (8.0 * 4.0 * 4.0f64.ln() * 2.0)).abs() < 1e-9);
    }

    #[test]
    fn bound_decays_like_inverse_sqrt_t() {
        let b1 = theorem2_bound(1000.0, 4, 1.0, 1.0);
        let b4 = theorem2_bound(1000.0, 4, 1.0, 4.0);
        assert!((b1 / b4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_respects_the_bound() {
        // For fixed sizes the bound is loose; the MC estimate must sit
        // below it across a time sweep.
        let mut rng = SimRng::new(11);
        let src = FixedSize(1.0);
        for &t in &[0.5, 1.0, 2.0, 4.0] {
            let est = imbalance_trial(&src, 2000.0, 4, t, 40, &mut rng);
            let bound = theorem2_bound(2000.0, 4, 0.0, t);
            assert!(est <= bound, "t={t}: estimate {est} exceeds bound {bound}");
        }
    }

    #[test]
    fn imbalance_shrinks_with_time() {
        let mut rng = SimRng::new(12);
        let src = FixedSize(1.0);
        let early = imbalance_trial(&src, 5000.0, 4, 0.2, 60, &mut rng);
        let late = imbalance_trial(&src, 5000.0, 4, 5.0, 60, &mut rng);
        assert!(
            late < early / 2.0,
            "imbalance should decay with t: {early} -> {late}"
        );
    }

    #[test]
    fn heavier_sizes_imbalance_more() {
        // Two-point heavy distribution vs fixed: same mean, higher CV.
        struct Heavy;
        impl SizeSource for Heavy {
            fn draw(&self, rng: &mut SimRng) -> f64 {
                if rng.chance(0.01) {
                    91.0
                } else {
                    0.0909
                }
            }
            fn mean(&self) -> f64 {
                0.01 * 91.0 + 0.99 * 0.0909
            }
            fn cv(&self) -> f64 {
                let m = self.mean();
                let m2 = 0.01 * 91.0f64.powi(2) + 0.99 * 0.0909f64.powi(2);
                (m2 - m * m).sqrt() / m
            }
        }
        let mut rng = SimRng::new(13);
        let fixed = imbalance_trial(&FixedSize(1.0), 3000.0, 4, 1.0, 60, &mut rng);
        let heavy = imbalance_trial(&Heavy, 3000.0, 4, 1.0, 60, &mut rng);
        assert!(
            heavy > 2.0 * fixed,
            "heavy tail must worsen imbalance: {fixed} vs {heavy}"
        );
    }
}
