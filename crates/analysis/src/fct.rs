//! Flow-completion-time aggregation in the paper's exact reporting format
//! (Figures 9–11, 15): overall average FCT normalized to the optimal
//! (idle-network) FCT, plus small-flow (< 100 KB) and large-flow (> 10 MB)
//! breakdowns normalized to a baseline scheme.

/// Size boundaries used throughout the paper's FCT breakdowns.
pub const SMALL_FLOW_BYTES: u64 = 100_000;
/// Large-flow threshold (> 10 MB).
pub const LARGE_FLOW_BYTES: u64 = 10_000_000;

/// One completed flow, in analysis form.
#[derive(Clone, Copy, Debug)]
pub struct FctSample {
    /// Flow size in bytes.
    pub bytes: u64,
    /// Measured completion time, seconds.
    pub fct_s: f64,
    /// Ideal completion time on an idle network, seconds.
    pub ideal_s: f64,
}

/// Aggregated FCT statistics for one (scheme, load) cell.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FctSummary {
    /// Number of flows.
    pub n: usize,
    /// Mean FCT over all flows, seconds.
    pub avg_s: f64,
    /// Mean FCT divided by the mean optimal FCT (paper Fig 9a's y-axis).
    pub avg_norm_optimal: f64,
    /// Mean per-flow slowdown (mean of FCT/optimal ratios) — a tail-
    /// sensitive companion metric.
    pub mean_slowdown: f64,
    /// Mean FCT of flows < 100 KB, seconds (`None` when no such flow
    /// completed — distinct from a genuine 0-second mean).
    pub small_avg_s: Option<f64>,
    /// Mean FCT of flows > 10 MB, seconds (`None` when the bucket is
    /// empty).
    pub large_avg_s: Option<f64>,
    /// Median FCT, seconds (0.0 when no flow completed).
    pub p50_s: f64,
    /// 95th-percentile FCT, seconds (0.0 when no flow completed).
    pub p95_s: f64,
    /// 99th-percentile FCT, seconds (0.0 when no flow completed).
    pub p99_s: f64,
    /// Flows that never completed (counted, excluded from means).
    pub incomplete: usize,
}

impl FctSummary {
    /// Small-flow mean with empty buckets reading as 0.0 (the historical
    /// sentinel, still used by plain-text figure tables).
    pub fn small_avg_or_zero(&self) -> f64 {
        self.small_avg_s.unwrap_or(0.0)
    }

    /// Large-flow mean with empty buckets reading as 0.0.
    pub fn large_avg_or_zero(&self) -> f64 {
        self.large_avg_s.unwrap_or(0.0)
    }
}

/// Aggregate samples (plus a count of flows that never finished).
///
/// Means are accumulated in sample order in one pass, which keeps the
/// floating-point results bit-identical to the historical
/// collect-then-average implementation (f64 addition is performed in the
/// same order). Percentiles need the sorted distribution, so one FCT
/// vector is collected and sorted **once**, with all three ranks read off
/// it via [`crate::stats::percentile_sorted`] — not one clone-and-sort
/// per rank.
pub fn summarize(samples: &[FctSample], incomplete: usize) -> FctSummary {
    if samples.is_empty() {
        return FctSummary {
            incomplete,
            ..FctSummary::default()
        };
    }
    let mut sum_all = 0.0f64;
    let mut sum_ideal = 0.0f64;
    let mut sum_norm = 0.0f64;
    let (mut sum_small, mut n_small) = (0.0f64, 0usize);
    let (mut sum_large, mut n_large) = (0.0f64, 0usize);
    for s in samples {
        sum_all += s.fct_s;
        sum_ideal += s.ideal_s;
        sum_norm += s.fct_s / s.ideal_s.max(1e-12);
        if s.bytes < SMALL_FLOW_BYTES {
            sum_small += s.fct_s;
            n_small += 1;
        }
        if s.bytes > LARGE_FLOW_BYTES {
            sum_large += s.fct_s;
            n_large += 1;
        }
    }
    let n = samples.len() as f64;
    // Tail percentiles need the full distribution: one allocation, one
    // sort, three rank reads. (The means above stay in their historical
    // accumulation order, so they are unaffected by the sort.)
    let mut fcts: Vec<f64> = samples.iter().map(|s| s.fct_s).collect();
    fcts.sort_by(f64::total_cmp);
    let pct = |p: f64| crate::stats::percentile_sorted(&fcts, p).unwrap_or(0.0);
    FctSummary {
        n: samples.len(),
        avg_s: sum_all / n,
        avg_norm_optimal: (sum_all / n) / (sum_ideal / n).max(1e-12),
        mean_slowdown: sum_norm / n,
        small_avg_s: (n_small > 0).then(|| sum_small / n_small as f64),
        large_avg_s: (n_large > 0).then(|| sum_large / n_large as f64),
        p50_s: pct(50.0),
        p95_s: pct(95.0),
        p99_s: pct(99.0),
        incomplete,
    }
}

/// Ideal (idle-network) FCT model for a store-and-forward Leaf-Spine path:
/// per-hop serialization of one MTU plus propagation on every hop, plus
/// the transfer's serialization at the bottleneck edge rate.
///
/// * `bytes` — application payload;
/// * `edge_bps` — min(src NIC, dst NIC) rate;
/// * `hops` — number of store-and-forward hops (4 for inter-leaf paths:
///   host→leaf→spine→leaf→host; 2 for intra-leaf);
/// * `per_hop_delay_s` — propagation/pipeline delay per hop;
/// * `mtu_wire` — wire bytes of a full segment (payload + headers);
/// * `overhead` — header bytes per MTU of payload.
pub fn ideal_fct_s(
    bytes: u64,
    edge_bps: u64,
    hops: u32,
    per_hop_delay_s: f64,
    mtu_payload: u32,
    overhead: u32,
) -> f64 {
    let mtu_wire = (mtu_payload + overhead) as f64;
    let full_pkts = bytes / mtu_payload as u64;
    let tail = bytes % mtu_payload as u64;
    let wire_bytes = full_pkts as f64 * mtu_wire
        + if tail > 0 {
            tail as f64 + overhead as f64
        } else {
            0.0
        };
    // Serialization of the whole transfer at the edge, plus cut-through-free
    // pipelining: the last packet is serialized once more per extra hop.
    let last_pkt_wire = if tail > 0 {
        tail as f64 + overhead as f64
    } else {
        mtu_wire
    };
    let edge_bytes_per_s = edge_bps as f64 / 8.0;
    wire_bytes / edge_bytes_per_s
        + (hops.saturating_sub(1)) as f64 * (last_pkt_wire / edge_bytes_per_s)
        + hops as f64 * per_hop_delay_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_breaks_down_by_size() {
        let samples = vec![
            FctSample {
                bytes: 50_000,
                fct_s: 0.001,
                ideal_s: 0.0005,
            },
            FctSample {
                bytes: 50_000_000,
                fct_s: 0.05,
                ideal_s: 0.04,
            },
            FctSample {
                bytes: 500_000,
                fct_s: 0.002,
                ideal_s: 0.001,
            },
        ];
        let s = summarize(&samples, 1);
        assert_eq!(s.n, 3);
        assert_eq!(s.incomplete, 1);
        assert!((s.small_avg_s.unwrap() - 0.001).abs() < 1e-12);
        assert!((s.large_avg_s.unwrap() - 0.05).abs() < 1e-12);
        // Ratio of means: mean(fct)/mean(ideal) = 0.053/3 / (0.0415/3).
        assert!((s.avg_norm_optimal - 0.053 / 0.0415).abs() < 1e-9);
        // Mean slowdown = mean(2, 1.25, 2) = 1.75.
        assert!((s.mean_slowdown - 1.75).abs() < 1e-9);
    }

    #[test]
    fn summary_percentiles_interpolate_over_the_fct_distribution() {
        // FCTs 1..=5 ms (unsorted on input): p50 = 3 ms, p95 = 4.8 ms,
        // p99 = 4.96 ms under linear interpolation over sorted ranks.
        let samples: Vec<FctSample> = [0.003, 0.001, 0.005, 0.002, 0.004]
            .iter()
            .map(|&fct_s| FctSample {
                bytes: 1_000_000,
                fct_s,
                ideal_s: 0.001,
            })
            .collect();
        let s = summarize(&samples, 0);
        assert!((s.p50_s - 0.003).abs() < 1e-12, "{}", s.p50_s);
        assert!((s.p95_s - 0.0048).abs() < 1e-12, "{}", s.p95_s);
        assert!((s.p99_s - 0.00496).abs() < 1e-12, "{}", s.p99_s);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = summarize(&[], 4);
        assert_eq!(s.n, 0);
        assert_eq!(s.incomplete, 4);
        assert_eq!(s.avg_s, 0.0);
        assert_eq!(s.small_avg_s, None);
        assert_eq!(s.large_avg_s, None);
        assert_eq!(s.p50_s, 0.0);
        assert_eq!(s.p99_s, 0.0);
    }

    #[test]
    fn empty_size_buckets_are_none_not_zero() {
        // One mid-sized flow: neither small (<100KB) nor large (>10MB).
        let s = summarize(
            &[FctSample {
                bytes: 500_000,
                fct_s: 0.002,
                ideal_s: 0.001,
            }],
            0,
        );
        assert_eq!(s.small_avg_s, None);
        assert_eq!(s.large_avg_s, None);
        assert_eq!(s.small_avg_or_zero(), 0.0);
        assert!(s.avg_s > 0.0);
    }

    #[test]
    fn ideal_fct_scales_with_size_and_hops() {
        // 1 MB at 10G: ~0.8 ms + small constants.
        let f = ideal_fct_s(1_000_000, 10_000_000_000, 4, 2e-6, 1460, 100);
        assert!(f > 0.0008 && f < 0.001, "{f}");
        // More hops cost more; larger flows cost more.
        assert!(ideal_fct_s(1_000_000, 10_000_000_000, 2, 2e-6, 1460, 100) < f);
        assert!(ideal_fct_s(2_000_000, 10_000_000_000, 4, 2e-6, 1460, 100) > f);
        // A tiny flow is dominated by latency: ~hops * delay.
        let t = ideal_fct_s(100, 10_000_000_000, 4, 2e-6, 1460, 100);
        assert!(t > 8e-6 && t < 1e-5, "{t}");
    }
}
