//! The shared experiment runner: scheme matrix, testbed construction, and
//! the open-loop FCT experiment of paper §5.2.

use conga_analysis::fct::{ideal_fct_s, summarize, FctSample, FctSummary};
use conga_analysis::sketch::{FctAccumulator, FctSketch};
use conga_core::FabricPolicy;
use conga_net::{
    ChannelId, EcnConfig, HostId, LeafSpineBuilder, Network, ShardedNetwork, Topology,
    TopologyBuilder, WIRE_OVERHEAD,
};
use conga_sim::{QueueKind, SimDuration, SimRng, SimTime};
use conga_telemetry::{RunReport, SeriesRegistry};
use conga_transport::{
    CcKind, FlowRecord, FlowSpec, MptcpConfig, TcpConfig, TransportKind, TransportLayer,
};
use conga_workloads::{FlowSizeDist, PoissonPlan};

/// The schemes compared throughout the evaluation (§5, "Schemes compared").
/// MPTCP rides over ECMP hashing in the fabric, exactly as in the testbed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// Static per-flow ECMP + TCP.
    Ecmp,
    /// CONGA with the 13 ms flowlet timeout (one decision per flow) + TCP.
    CongaFlow,
    /// CONGA with default parameters + TCP.
    Conga,
    /// ECMP fabric + MPTCP with 8 subflows.
    Mptcp,
    /// Local congestion-aware strawman (§2.4) + TCP.
    Local,
    /// Per-packet round-robin spraying + TCP.
    Spray,
    /// Static weighted-random (oblivious) + TCP.
    Weighted,
    /// Flowlet switching with uniform-random choice (LetFlow) + TCP.
    LetFlow,
    /// Latency-EWMA exclusion (scylla-style) + TCP.
    LatencyAware,
}

impl Scheme {
    /// The four schemes of the main testbed figures.
    pub const PAPER: [Scheme; 4] = [
        Scheme::Ecmp,
        Scheme::CongaFlow,
        Scheme::Conga,
        Scheme::Mptcp,
    ];

    /// The full single-transport policy zoo the `fleet tournament`
    /// subcommand races (MPTCP is excluded: it changes the transport, not
    /// the fabric policy, so its cells would not be like-for-like).
    pub const TOURNAMENT: [Scheme; 8] = [
        Scheme::Ecmp,
        Scheme::CongaFlow,
        Scheme::Conga,
        Scheme::Local,
        Scheme::Spray,
        Scheme::Weighted,
        Scheme::LetFlow,
        Scheme::LatencyAware,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Ecmp => "ECMP",
            Scheme::CongaFlow => "CONGA-Flow",
            Scheme::Conga => "CONGA",
            Scheme::Mptcp => "MPTCP",
            Scheme::Local => "Local",
            Scheme::Spray => "Spray",
            Scheme::Weighted => "Weighted",
            Scheme::LetFlow => "LetFlow",
            Scheme::LatencyAware => "LatencyAware",
        }
    }

    /// Stable snake_case key for machine-readable artifacts (the tournament
    /// report keys its policy maps with this).
    pub fn key(self) -> &'static str {
        match self {
            Scheme::Ecmp => "ecmp",
            Scheme::CongaFlow => "conga_flow",
            Scheme::Conga => "conga",
            Scheme::Mptcp => "mptcp",
            Scheme::Local => "local",
            Scheme::Spray => "spray",
            Scheme::Weighted => "weighted",
            Scheme::LetFlow => "letflow",
            Scheme::LatencyAware => "latency_aware",
        }
    }

    /// The fabric policy for this scheme.
    pub fn policy(self) -> FabricPolicy {
        match self {
            Scheme::Ecmp | Scheme::Mptcp => FabricPolicy::ecmp(),
            Scheme::CongaFlow => FabricPolicy::conga_flow(),
            Scheme::Conga => FabricPolicy::conga(),
            Scheme::Local => FabricPolicy::local(),
            Scheme::Spray => FabricPolicy::spray(),
            Scheme::Weighted => FabricPolicy::weighted(),
            Scheme::LetFlow => FabricPolicy::letflow(),
            Scheme::LatencyAware => FabricPolicy::latency_aware(),
        }
    }

    /// The transport for a flow under this scheme.
    pub fn transport(self, tcp: TcpConfig) -> TransportKind {
        match self {
            Scheme::Mptcp => TransportKind::Mptcp(MptcpConfig {
                tcp,
                ..MptcpConfig::default()
            }),
            _ => TransportKind::Tcp(tcp),
        }
    }
}

/// Options for the paper's testbed topologies (Figure 7) and the
/// large-scale three-tier fabrics (Figure 15).
#[derive(Clone, Copy, Debug)]
pub struct TestbedOpts {
    /// Leaves (total, across all pods).
    pub leaves: u32,
    /// Spines (total, across all pods).
    pub spines: u32,
    /// Hosts per leaf.
    pub hosts_per_leaf: u32,
    /// Host NIC rate, Gbps.
    pub host_gbps: u64,
    /// Fabric link rate, Gbps.
    pub fabric_gbps: u64,
    /// Parallel links per leaf-spine pair.
    pub parallel: u32,
    /// Fail one parallel link (leaf, spine, index) — Figure 7(b).
    /// Two-tier fabrics only.
    pub fail: Option<(u32, u32, u32)>,
    /// Pods. `1` (the default everywhere but fig15's large-scale cases)
    /// keeps the two-tier leaf-spine fabric; `> 1` builds the
    /// pod-structured three-tier Clos, with `leaves`/`spines` split
    /// evenly across pods.
    pub pods: u32,
    /// Core switches above the spines (three-tier only; must be 0 when
    /// `pods == 1`).
    pub cores: u32,
}

impl TestbedOpts {
    /// The baseline testbed of Figure 7(a): 2 leaves, 2 spines, 32 hosts
    /// per leaf at 10 G, 2×40 G uplinks per pair (2:1 oversubscription).
    pub fn paper_baseline() -> Self {
        TestbedOpts {
            leaves: 2,
            spines: 2,
            hosts_per_leaf: 32,
            host_gbps: 10,
            fabric_gbps: 40,
            parallel: 2,
            fail: None,
            pods: 1,
            cores: 0,
        }
    }

    /// Figure 7(b): the baseline with one Leaf1–Spine1 link failed.
    pub fn paper_failure() -> Self {
        TestbedOpts {
            fail: Some((1, 1, 0)),
            ..Self::paper_baseline()
        }
    }

    /// A pod-structured three-tier Clos (fig15's large-scale cases):
    /// `pods × leaves_per_pod` leaves, `pods × spines_per_pod` spines,
    /// `cores` core switches, 10 G hosts on 40 G fabric links.
    pub fn three_tier(
        pods: u32,
        leaves_per_pod: u32,
        spines_per_pod: u32,
        cores: u32,
        hosts_per_leaf: u32,
    ) -> Self {
        TestbedOpts {
            leaves: pods * leaves_per_pod,
            spines: pods * spines_per_pod,
            hosts_per_leaf,
            host_gbps: 10,
            fabric_gbps: 40,
            parallel: 1,
            fail: None,
            pods,
            cores,
        }
    }

    /// Shrink host counts for `--quick` runs (keeps the fabric shape).
    pub fn quick(mut self) -> Self {
        self.hosts_per_leaf = self.hosts_per_leaf.min(8);
        self
    }
}

/// Build the topology for the given options.
pub fn build_testbed(o: TestbedOpts) -> Topology {
    if o.pods > 1 {
        assert!(
            o.leaves.is_multiple_of(o.pods) && o.spines.is_multiple_of(o.pods),
            "leaves ({}) and spines ({}) must split evenly across {} pods",
            o.leaves,
            o.spines,
            o.pods
        );
        assert!(
            o.fail.is_none(),
            "static link failure is a two-tier knob; use runtime fault schedules on three-tier fabrics"
        );
        return TopologyBuilder::three_tier(
            o.pods,
            o.leaves / o.pods,
            o.spines / o.pods,
            o.cores,
            o.hosts_per_leaf,
        )
        .host_rate_gbps(o.host_gbps)
        .fabric_rate_gbps(o.fabric_gbps)
        .core_rate_gbps(o.fabric_gbps)
        .parallel_links(o.parallel)
        .build();
    }
    assert_eq!(o.cores, 0, "core switches require pods > 1");
    let mut b = LeafSpineBuilder::new(o.leaves, o.spines, o.hosts_per_leaf)
        .host_rate_gbps(o.host_gbps)
        .fabric_rate_gbps(o.fabric_gbps)
        .parallel_links(o.parallel);
    if let Some((l, s, p)) = o.fail {
        b = b.fail_link(l, s, p);
    }
    b.build()
}

/// A scheduled runtime link transition: fail (or recover) one leaf–spine
/// link — both simplex channels — at an absolute simulation time. Unlike
/// [`TestbedOpts::fail`], which removes the link before the run starts,
/// these fire *mid-run* through the engine's fault-injection path:
/// queued and in-flight packets on a failing link are blackholed and the
/// FIB reconverges at the transition instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFaultSpec {
    /// When the transition fires.
    pub at: SimTime,
    /// Leaf side of the link.
    pub leaf: u32,
    /// Spine side of the link.
    pub spine: u32,
    /// Parallel-link index within the leaf–spine pair.
    pub parallel: u32,
    /// `false` = fail, `true` = recover.
    pub up: bool,
}

impl LinkFaultSpec {
    /// Fail link (leaf, spine, parallel) at `at`.
    pub fn fail(at: SimTime, leaf: u32, spine: u32, parallel: u32) -> Self {
        LinkFaultSpec {
            at,
            leaf,
            spine,
            parallel,
            up: false,
        }
    }

    /// Recover link (leaf, spine, parallel) at `at`.
    pub fn recover(at: SimTime, leaf: u32, spine: u32, parallel: u32) -> Self {
        LinkFaultSpec {
            at,
            leaf,
            spine,
            parallel,
            up: true,
        }
    }
}

/// A scheduled runtime transition on a spine–core link of a three-tier
/// fabric — the CAFT-style core failure scenario. Same semantics as
/// [`LinkFaultSpec`]: both simplex channels transition at `at`, in-flight
/// packets on a failing link are blackholed, and the FIB reconverges
/// (inter-pod traffic detours through the surviving cores).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreLinkFaultSpec {
    /// When the transition fires.
    pub at: SimTime,
    /// Spine side of the link.
    pub spine: u32,
    /// Core side of the link.
    pub core: u32,
    /// Parallel-link index within the spine–core pair.
    pub parallel: u32,
    /// `false` = fail, `true` = recover.
    pub up: bool,
}

impl CoreLinkFaultSpec {
    /// Fail link (spine, core, parallel) at `at`.
    pub fn fail(at: SimTime, spine: u32, core: u32, parallel: u32) -> Self {
        CoreLinkFaultSpec {
            at,
            spine,
            core,
            parallel,
            up: false,
        }
    }

    /// Recover link (spine, core, parallel) at `at`.
    pub fn recover(at: SimTime, spine: u32, core: u32, parallel: u32) -> Self {
        CoreLinkFaultSpec {
            at,
            spine,
            core,
            parallel,
            up: true,
        }
    }
}

/// Structured event-tracing options for a run: which flows to sample and
/// whether to bound the recorder to a flight-recorder ring.
#[derive(Clone, Debug, Default)]
pub struct TraceSpec {
    /// Sample only these flow ids (`None` = every flow).
    pub flows: Option<Vec<u32>>,
    /// Keep only the most recent N events (`None` = unbounded).
    pub ring: Option<usize>,
}

impl TraceSpec {
    /// The recorder configuration this spec describes.
    pub fn config(&self) -> conga_trace::TraceConfig {
        let mut cfg = match &self.flows {
            Some(f) => conga_trace::TraceConfig::for_flows(f.iter().copied()),
            None => conga_trace::TraceConfig::all(),
        };
        if let Some(n) = self.ring {
            cfg = cfg.with_ring(n);
        }
        cfg
    }

    /// Build the corresponding recorder handle.
    pub fn handle(&self) -> conga_trace::TraceHandle {
        conga_trace::TraceHandle::recording(self.config())
    }
}

/// An FCT experiment specification.
#[derive(Clone, Debug)]
pub struct FctRun {
    /// Topology options.
    pub topo: TestbedOpts,
    /// Scheme under test.
    pub scheme: Scheme,
    /// Flow-size distribution.
    pub dist: FlowSizeDist,
    /// Offered load as a fraction of the *baseline* bisection bandwidth
    /// (the paper keeps the reference fixed when links fail).
    pub load: f64,
    /// Flows per direction.
    pub n_flows: usize,
    /// RNG seed.
    pub seed: u64,
    /// TCP parameters.
    pub tcp: TcpConfig,
    /// Congestion controller every flow runs (`cc.with_cc` is applied to
    /// `tcp` at run time, so `tcp.cc` need not be kept in sync).
    pub cc: CcKind,
    /// ECN marking threshold in packets; `None` = the controller default
    /// ([`DCTCP_DEFAULT_ECN_PKTS`] for DCTCP, ECN off otherwise).
    pub ecn_threshold_pkts: Option<u32>,
    /// Enable 10 ms synchronous sampling of Leaf 0's uplinks (Figure 12) /
    /// queue statistics.
    pub sample_uplinks: bool,
    /// Runtime link fail/recover events, applied in order mid-run.
    pub faults: Vec<LinkFaultSpec>,
    /// Runtime spine–core link fail/recover events (three-tier fabrics).
    pub core_faults: Vec<CoreLinkFaultSpec>,
    /// Stream completed flows into the deterministic
    /// [`FctSketch`]/[`FctAccumulator`] pair instead of buffering one
    /// [`FctSample`] per flow for a collect-then-sort summary. Memory
    /// drops from O(completed flows) to O(sketch bins); percentiles come
    /// off bucket midpoints (within 1 % of exact — `tests/shards.rs`
    /// pins the differential). Off by default: every pre-existing figure
    /// keeps the exact path and its byte-identical goldens.
    pub sketch: bool,
    /// Structured event tracing (`None` = disabled; zero overhead).
    pub trace: Option<TraceSpec>,
    /// Future-event-list implementation. Purely a performance knob —
    /// both kinds are observationally identical (`tests/hotpath.rs`) —
    /// so it is deliberately *not* part of the cell's scenario hash.
    pub queue: QueueKind,
    /// Worker threads for the sharded engine. Purely a performance knob,
    /// exactly like `queue`: the run is always domain-decomposed (one
    /// domain per leaf) and the conservative-window schedule is
    /// independent of how many threads execute it, so it is deliberately
    /// *not* part of the cell's scenario hash. `tests/shards.rs` pins
    /// byte-identical artifacts across shard counts.
    pub shards: usize,
}

impl FctRun {
    /// Sensible defaults for a (scheme, load) cell.
    pub fn new(topo: TestbedOpts, scheme: Scheme, dist: FlowSizeDist, load: f64) -> Self {
        FctRun {
            topo,
            scheme,
            dist,
            load,
            n_flows: 2000,
            seed: 1,
            tcp: TcpConfig::standard(),
            cc: CcKind::Aimd,
            ecn_threshold_pkts: None,
            sample_uplinks: false,
            faults: Vec::new(),
            core_faults: Vec::new(),
            sketch: false,
            trace: None,
            // The calendar queue is the production default; the heap is
            // the reference implementation (tests/hotpath.rs proves the
            // two produce byte-identical artifacts).
            queue: QueueKind::Calendar,
            shards: 1,
        }
    }

    /// The ECN threshold actually in force for this run, in packets:
    /// the explicit `ecn_threshold_pkts` if set, the DCTCP default when
    /// running DCTCP, `None` (marking off) otherwise.
    pub fn effective_ecn_pkts(&self) -> Option<u32> {
        self.ecn_threshold_pkts.or(match self.cc {
            CcKind::Dctcp => Some(DCTCP_DEFAULT_ECN_PKTS),
            _ => None,
        })
    }

    /// The [`EcnConfig`] this run installs on every domain, if any: the
    /// packet threshold scaled by the full wire size of an MSS segment.
    pub fn ecn_config(&self) -> Option<EcnConfig> {
        self.effective_ecn_pkts().map(|pkts| EcnConfig {
            threshold_bytes: pkts as u64 * (self.tcp.mss + WIRE_OVERHEAD) as u64,
        })
    }
}

/// The DCTCP marking threshold used when `--ecn-threshold` is not given:
/// 65 full-MSS packets, the K the paper's testbed uses for 10 G edges
/// (DCTCP paper §3; ~100 KB of queue).
pub const DCTCP_DEFAULT_ECN_PKTS: u32 = 65;

/// What an FCT run produced.
#[derive(Clone, Debug)]
pub struct FctOutcome {
    /// The paper-format summary.
    pub summary: FctSummary,
    /// Total queue drops across the fabric.
    pub drops: u64,
    /// Total retransmitted bytes.
    pub retx_bytes: u64,
    /// Total RTO firings.
    pub timeouts: u64,
    /// Simulated time at which the run ended.
    pub end_time: SimTime,
    /// Leaf-0 uplink cumulative tx-byte samples (if sampling enabled).
    pub uplink_tx_samples: Vec<Vec<u64>>,
    /// Per-sampled-channel queue-depth samples (if sampling enabled).
    pub uplink_queue_samples: Vec<Vec<u64>>,
    /// Mean queue depth in bytes per fabric channel, by channel id.
    pub fabric_mean_queues: Vec<(ChannelId, f64)>,
    /// The run-level telemetry artifact: every engine, port, dataplane and
    /// transport counter, serializable to deterministic JSON.
    pub report: RunReport,
    /// Windowed time-series sampled on simulated-time boundaries (empty
    /// unless `sample_uplinks` was set): per-uplink queue depth and
    /// utilization, DRE estimates, flowlet occupancy, active flows, and
    /// the derived `imbalance.leaf0` (max−mean)/mean utilization series.
    /// Merged across shard domains by window — byte-identical for any
    /// `shards` value.
    pub series: SeriesRegistry,
    /// The trace recorder handle, if tracing was requested. Export with
    /// [`conga_trace::TraceHandle::export_jsonl`] / `export_chrome`.
    pub trace: Option<conga_trace::TraceHandle>,
    /// The streaming percentile sketch, when [`FctRun::sketch`] was set
    /// (`None` on the exact path). Its [`FctSketch::canonical`] form is
    /// byte-identical across `--shards` and merge orders.
    pub sketch: Option<FctSketch>,
}

/// Convert a [`PoissonPlan`] into a single time-ordered arrival list over
/// concrete hosts: group A = hosts under leaf 0, group B = hosts under
/// leaf 1 (clients under one leaf use servers under the other, §5.2).
pub fn merged_arrivals(
    plan: &PoissonPlan,
    group_a: &[HostId],
    group_b: &[HostId],
    kind_of: impl Fn(u64) -> TransportKind,
) -> Vec<(SimDuration, FlowSpec)> {
    // Convert per-direction gaps to absolute times.
    let mut abs: Vec<(u64, FlowSpec)> = Vec::with_capacity(plan.forward.len() * 2);
    let mut t = 0u64;
    for a in &plan.forward {
        t += a.gap.as_nanos();
        abs.push((
            t,
            FlowSpec {
                src: group_a[a.src as usize],
                dst: group_b[a.dst as usize],
                bytes: a.bytes,
                kind: kind_of(a.bytes),
            },
        ));
    }
    let mut t = 0u64;
    for a in &plan.reverse {
        t += a.gap.as_nanos();
        abs.push((
            t,
            FlowSpec {
                src: group_b[a.src as usize],
                dst: group_a[a.dst as usize],
                bytes: a.bytes,
                kind: kind_of(a.bytes),
            },
        ));
    }
    abs.sort_by_key(|&(t, _)| t);
    // Back to gaps.
    let mut prev = 0u64;
    abs.into_iter()
        .map(|(t, spec)| {
            let gap = SimDuration::from_nanos(t - prev);
            prev = t;
            (gap, spec)
        })
        .collect()
}

/// Uniform all-to-all arrivals for fabrics with more than two leaves:
/// every flow goes from a random host to a random host under a *different*
/// leaf; the aggregate rate makes each leaf's uplinks `load` utilized in
/// expectation.
pub fn uniform_arrivals(
    dist: &FlowSizeDist,
    topo: &Topology,
    per_leaf_capacity: u64,
    load: f64,
    n_flows: usize,
    rng: &mut SimRng,
    kind: TransportKind,
) -> Vec<(SimDuration, FlowSpec)> {
    let total_rate = load * (per_leaf_capacity as f64) * topo.n_leaves as f64 / (8.0 * dist.mean());
    (0..n_flows)
        .map(|_| {
            let src = HostId(rng.below(topo.n_hosts as usize) as u32);
            let dst = loop {
                let d = HostId(rng.below(topo.n_hosts as usize) as u32);
                if topo.leaf_of(d) != topo.leaf_of(src) {
                    break d;
                }
            };
            (
                SimDuration::from_secs_f64(rng.exp(total_rate)),
                FlowSpec {
                    src,
                    dst,
                    bytes: dist.sample(rng),
                    kind,
                },
            )
        })
        .collect()
}

/// A domain-decomposed simulation run: one replicated [`Network`] per leaf
/// domain, coordinated by [`ShardedNetwork`]'s conservative-window barrier.
///
/// Every domain sees the identical configuration (queue kind, fault
/// schedule, preregistered flow list) so that replica state stays in
/// lock-step; per-domain ownership masks ensure each metric is accumulated
/// exactly once, which is what makes the counter-ADD merge exact and the
/// artifacts byte-identical for any worker count.
pub struct ShardedRun {
    /// The coordinated per-domain networks.
    pub net: ShardedNetwork<FabricPolicy, TransportLayer>,
    tracer_parts: Vec<conga_trace::TraceHandle>,
    trace_cfg: Option<conga_trace::TraceConfig>,
}

impl ShardedRun {
    /// Build the per-domain networks: install the policy clone, queue kind,
    /// tracer, and fault schedule everywhere, then preregister every flow in
    /// every domain (ids align by position) with a start timer only in the
    /// sender's domain.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        topo: &Topology,
        policy: FabricPolicy,
        seed: u64,
        shards: usize,
        queue: QueueKind,
        ecn: Option<EcnConfig>,
        trace: Option<&TraceSpec>,
        faults: &[LinkFaultSpec],
        core_faults: &[CoreLinkFaultSpec],
        arrivals: &[(SimTime, FlowSpec)],
    ) -> Self {
        let trace_cfg = trace.map(|t| t.config());
        let mut net = ShardedNetwork::new(topo, seed, shards, |_| {
            (policy.clone(), TransportLayer::new())
        });
        let mut tracer_parts = Vec::new();
        net.each(|d, n| {
            n.set_queue_kind(queue);
            // Every domain marks the enqueues it owns; installing the same
            // config everywhere keeps replicas in lock-step.
            if let Some(e) = ecn {
                n.set_ecn(e);
            }
            if let Some(cfg) = &trace_cfg {
                let h = conga_trace::TraceHandle::recording(cfg.clone());
                n.set_tracer(h.clone());
                tracer_parts.push(h);
            }
            for f in faults {
                let (leaf, spine) = (conga_net::LeafId(f.leaf), conga_net::SpineId(f.spine));
                if f.up {
                    n.schedule_link_recovery(f.at, leaf, spine, f.parallel as usize);
                } else {
                    n.schedule_link_fault(f.at, leaf, spine, f.parallel as usize);
                }
            }
            for f in core_faults {
                let (spine, core) = (conga_net::SpineId(f.spine), conga_net::CoreId(f.core));
                if f.up {
                    n.schedule_core_link_recovery(f.at, spine, core, f.parallel as usize);
                } else {
                    n.schedule_core_link_fault(f.at, spine, core, f.parallel as usize);
                }
            }
            for (start, spec) in arrivals {
                let tx_local = topo.leaf_of(spec.src).0 as usize == d;
                let id = n.agent.preregister(*spec, *start, tx_local);
                if tx_local {
                    n.schedule_timer(
                        SimDuration::from_nanos(start.as_nanos()),
                        TransportLayer::start_token(id),
                    );
                }
            }
        });
        ShardedRun {
            net,
            tracer_parts,
            trace_cfg,
        }
    }

    /// Flows fully received, summed across domains (each flow's receiver
    /// lives in exactly one domain, so the sum is exact).
    pub fn completed_rx(&self) -> usize {
        (0..self.net.n_domains())
            .map(|d| self.net.domain(d).agent.completed_rx)
            .sum()
    }

    /// Flow records with sender-side counters from the sender's domain and
    /// `rx_done` taken from the receiver's domain.
    pub fn merged_records(&self, topo: &Topology) -> Vec<FlowRecord> {
        let n = self.net.domain(0).agent.records.len();
        (0..n).map(|i| self.merged_record(topo, i)).collect()
    }

    /// The per-index form of [`Self::merged_records`]: one flow's record
    /// with `rx_done` merged from the receiver's domain. The streaming
    /// drain uses this to consume completions incrementally without
    /// materializing the full record list every slice.
    pub fn merged_record(&self, topo: &Topology, i: usize) -> FlowRecord {
        let probe = self.net.domain(0).agent.records[i];
        let src_d = topo.leaf_of(probe.src).0 as usize;
        let dst_d = topo.leaf_of(probe.dst).0 as usize;
        let mut r = self.net.domain(src_d).agent.records[i];
        if dst_d != src_d {
            r.rx_done = self.net.domain(dst_d).agent.records[i].rx_done;
        }
        r
    }

    /// Sum an [`EngineStats`] counter across domains (ownership gating in
    /// the engine guarantees each event is counted in exactly one domain).
    pub fn stat(&self, f: impl Fn(&conga_net::EngineStats) -> u64) -> u64 {
        (0..self.net.n_domains())
            .map(|d| f(&self.net.domain(d).stats))
            .sum()
    }

    /// Total packet drops across domains.
    pub fn total_drops(&self) -> u64 {
        (0..self.net.n_domains())
            .map(|d| self.net.domain(d).total_drops())
            .sum()
    }

    /// The raw per-domain trace recorders (one per leaf domain, empty when
    /// tracing is off) — the property battery inspects these for
    /// within-shard event ordering before any merge.
    pub fn trace_parts(&self) -> &[conga_trace::TraceHandle] {
        &self.tracer_parts
    }

    /// Deterministically merge the per-domain trace streams, if tracing was
    /// requested. Call after the run has finished.
    pub fn merged_trace(&self) -> Option<conga_trace::TraceHandle> {
        self.trace_cfg
            .as_ref()
            .map(|cfg| conga_trace::TraceHandle::merged(cfg.clone(), &self.tracer_parts))
    }
}

/// Run one FCT experiment cell to completion (or a generous drain bound).
pub fn run_fct(cfg: &FctRun) -> FctOutcome {
    run_fct_with_policy(cfg, cfg.scheme.policy())
}

/// [`run_fct`] with an explicit fabric policy (for parameter ablations and
/// mixed-deployment experiments; the transport still follows `cfg.scheme`).
pub fn run_fct_with_policy(cfg: &FctRun, policy: FabricPolicy) -> FctOutcome {
    conga_fleet::stats::note_cell_run();
    let topo = build_testbed(cfg.topo);
    // Load is relative to the *baseline* (unfailed) leaf-to-leaf capacity.
    let baseline = TestbedOpts {
        fail: None,
        ..cfg.topo
    };
    let base_topo = build_testbed(baseline);
    // The effective bisection is bounded by both the uplinks and the access
    // capacity feeding them (matters for shrunken --quick topologies).
    let capacity = base_topo
        .leaf_uplink_capacity(conga_net::LeafId(0))
        .min(base_topo.access_capacity(conga_net::LeafId(0)));

    let mut wl_rng = SimRng::new(cfg.seed.wrapping_mul(0x9E37_79B9) ^ 0xC04A);
    let tcp = cfg.tcp.with_cc(cfg.cc);
    let scheme = cfg.scheme;
    let arrivals = if topo.n_leaves == 2 {
        // The paper's testbed pattern: clients under leaf 0 use servers
        // under leaf 1 and vice-versa.
        let group_a = topo.hosts_under(conga_net::LeafId(0));
        let group_b = topo.hosts_under(conga_net::LeafId(1));
        let plan = PoissonPlan::generate(
            &cfg.dist,
            group_a.len() as u32,
            group_b.len() as u32,
            capacity,
            cfg.load,
            cfg.n_flows,
            &mut wl_rng,
        );
        merged_arrivals(&plan, &group_a, &group_b, |_| scheme.transport(tcp))
    } else {
        uniform_arrivals(
            &cfg.dist,
            &topo,
            capacity,
            cfg.load,
            cfg.n_flows * 2,
            &mut wl_rng,
            scheme.transport(tcp),
        )
    };
    let span_ns: u64 = arrivals.iter().map(|(g, _)| g.as_nanos()).sum();

    // Gap-encoded arrivals become absolute start times: preregistration
    // needs the full schedule up front so every domain registers the same
    // flow list in the same order.
    let mut abs_arrivals = Vec::with_capacity(arrivals.len());
    let mut t_abs = SimTime::from_nanos(0);
    for (gap, spec) in &arrivals {
        t_abs += *gap;
        abs_arrivals.push((t_abs, *spec));
    }

    let mut run = ShardedRun::new(
        &topo,
        policy,
        cfg.seed,
        cfg.shards,
        cfg.queue,
        cfg.ecn_config(),
        cfg.trace.as_ref(),
        &cfg.faults,
        &cfg.core_faults,
        &abs_arrivals,
    );
    if cfg.sample_uplinks {
        // Leaf 0's uplinks are all owned by domain 0, so sampling there
        // observes exactly what the monolithic engine would. Every other
        // domain gets the same periodic tick with no port columns: the
        // dataplane/transport sampling hooks must fire on identical
        // window boundaries in the domains that own their state, so the
        // by-window series merge reproduces a monolithic run.
        let every = SimDuration::from_millis(10);
        let ups = run.net.domain(0).fib.leaf_uplinks[0].clone();
        run.net.domain_mut(0).enable_sampling(ups, every);
        for d in 1..run.net.n_domains() {
            run.net.domain_mut(d).enable_sampling(vec![], every);
        }
    }

    // Ideal FCT model parameters from the topology. Intra-leaf flows
    // traverse 2 hops, cross-leaf 4 (leaf–spine–leaf), inter-pod 6
    // (leaf–spine–core–spine–leaf); two-tier fabrics are one pod, so the
    // pre-existing 2/4 split — and every golden — is unchanged.
    let edge_bps = cfg.topo.host_gbps * 1_000_000_000;
    let mss = cfg.tcp.mss;
    let ideal_of = |r: &FlowRecord| {
        let (sl, dl) = (topo.leaf_of(r.src), topo.leaf_of(r.dst));
        let hops = if sl == dl {
            2
        } else if topo.pod_of_leaf(sl) != topo.pod_of_leaf(dl) {
            6
        } else {
            4
        };
        ideal_fct_s(r.bytes, edge_bps, hops, 2.5e-6, mss, WIRE_OVERHEAD)
    };
    // Only flows that start while the offered load is still arriving are
    // measured: flows arriving near or after the end of the Poisson window
    // would finish in a draining (emptying) fabric and dilute every
    // congestion effect. The last 30% of the window is the guard band.
    let measure_until = SimTime::from_nanos((span_ns as f64 * 0.7) as u64);

    // Run in slices until every flow completes (or the drain bound). In
    // sketch mode each slice also consumes newly-completed flows into the
    // streaming accumulators, so no per-flow sample list ever builds up.
    let total_flows = cfg.n_flows * 2;
    let drain_bound = SimTime::from_nanos(span_ns) + SimDuration::from_secs(8);
    let mut consumed = vec![false; if cfg.sketch { abs_arrivals.len() } else { 0 }];
    let mut acc = FctAccumulator::new();
    let mut sk = FctSketch::new();
    loop {
        let t = run.net.now() + SimDuration::from_millis(50);
        run.net.run_until(t);
        for (i, done) in consumed.iter_mut().enumerate() {
            if *done {
                continue;
            }
            let r = run.merged_record(&topo, i);
            if let Some(f) = r.fct() {
                *done = true;
                if r.start <= measure_until {
                    acc.add(r.bytes, f.as_nanos(), ideal_of(&r));
                    sk.add(f.as_secs_f64());
                }
            }
        }
        if run.completed_rx() >= total_flows {
            break;
        }
        if run.net.now() >= drain_bound {
            break;
        }
    }
    let records = run.merged_records(&topo);

    let summary = if cfg.sketch {
        // Whatever the slice drain never consumed missed the drain bound;
        // count it incomplete if it was inside the measure window.
        for (i, done) in consumed.iter().enumerate() {
            if !done && records[i].start <= measure_until {
                acc.add_incomplete();
            }
        }
        acc.summary(&sk)
    } else {
        let mut samples = Vec::new();
        let mut incomplete = 0;
        for r in &records {
            if r.start > measure_until {
                continue;
            }
            match r.fct() {
                Some(f) => samples.push(FctSample {
                    bytes: r.bytes,
                    fct_s: f.as_secs_f64(),
                    ideal_s: ideal_of(r),
                }),
                None => incomplete += 1,
            }
        }
        summarize(&samples, incomplete)
    };

    let retx_bytes = records.iter().map(|r| r.retx_bytes).sum();
    let timeouts = records.iter().map(|r| r.timeouts).sum();
    let fabric_mean_queues = {
        let now = run.net.now();
        let chans: Vec<ChannelId> = (0..topo.channels.len() as u32)
            .map(ChannelId)
            .filter(|c| topo.channel(*c).kind.is_fabric())
            .collect();
        chans
            .into_iter()
            .map(|c| {
                let d = run.net.tx_domain(c);
                (c, run.net.domain_mut(d).port_mut(c).mean_queue_bytes(now))
            })
            .collect()
    };
    let mut report = fct_meta(
        cfg,
        conga_net::Dataplane::name(&run.net.domain(0).dataplane),
        run.net.now(),
    );
    run.net.export_metrics(&mut report.metrics);
    conga_fleet::stats::note_engine(run.stat(|s| s.events), run.stat(|s| s.delivered_pkts));
    let mut series = run.net.export_series();
    if cfg.sample_uplinks {
        // The paper's Fig 12 imbalance score as a live observable:
        // (max − mean)/mean utilization over leaf 0's uplinks, per window.
        let inputs: Vec<String> = run.net.domain(0).fib.leaf_uplinks[0]
            .iter()
            .map(|c| format!("port.{:04}.util", c.idx()))
            .collect();
        series.derive("imbalance.leaf0", &inputs, |utils| {
            let mean = utils.iter().sum::<f64>() / utils.len() as f64;
            let max = utils.iter().cloned().fold(f64::MIN, f64::max);
            (mean > 0.0).then(|| (max - mean) / mean)
        });
    }
    let trace = run.merged_trace();
    FctOutcome {
        summary,
        drops: run.total_drops(),
        retx_bytes,
        timeouts,
        end_time: run.net.now(),
        uplink_tx_samples: run.net.domain(0).samples.tx_bytes.clone(),
        uplink_queue_samples: run.net.domain(0).samples.queue_bytes.clone(),
        fabric_mean_queues,
        report,
        series,
        trace,
        sketch: cfg.sketch.then_some(sk),
    }
}

/// Assemble the [`RunReport`] for a finished FCT run: configuration metadata
/// plus every counter the network exports. Pure function of the simulation
/// state — same seed, same bytes.
pub fn build_report(net: &Network<FabricPolicy, TransportLayer>, cfg: &FctRun) -> RunReport {
    let mut report = fct_meta(cfg, conga_net::Dataplane::name(&net.dataplane), net.now());
    net.export_metrics(&mut report.metrics);
    report
}

/// The configuration-metadata half of [`build_report`], shared between the
/// monolithic and sharded paths (metrics are exported by the caller).
fn fct_meta(cfg: &FctRun, policy_name: &str, end: SimTime) -> RunReport {
    let mut report = RunReport::new();
    report.set_meta("scheme", cfg.scheme.name());
    report.set_meta("policy", policy_name);
    report.set_meta("seed", cfg.seed.to_string());
    report.set_meta("load", format!("{}", cfg.load));
    report.set_meta("n_flows", cfg.n_flows.to_string());
    // Only non-default controller setups stamp extra keys, so pre-existing
    // AIMD reports (and their goldens) are byte-identical.
    if cfg.cc != CcKind::Aimd {
        report.set_meta("cc", cfg.cc.name());
    }
    if let Some(pkts) = cfg.effective_ecn_pkts() {
        report.set_meta("ecn_threshold_pkts", pkts.to_string());
    }
    // Two-tier fabrics keep the historical topology string (and their
    // byte-identical goldens); three-tier fabrics get an extended form
    // that names the pod structure and core tier.
    if cfg.topo.pods > 1 {
        report.set_meta(
            "topology",
            format!(
                "{}pods:{}x{}x{}+{}cores@{}G/{}G par{}",
                cfg.topo.pods,
                cfg.topo.leaves,
                cfg.topo.spines,
                cfg.topo.hosts_per_leaf,
                cfg.topo.cores,
                cfg.topo.host_gbps,
                cfg.topo.fabric_gbps,
                cfg.topo.parallel
            ),
        );
    } else {
        report.set_meta(
            "topology",
            format!(
                "{}x{}x{}@{}G/{}G par{}",
                cfg.topo.leaves,
                cfg.topo.spines,
                cfg.topo.hosts_per_leaf,
                cfg.topo.host_gbps,
                cfg.topo.fabric_gbps,
                cfg.topo.parallel
            ),
        );
    }
    if cfg.sketch {
        report.set_meta("fct_aggregation", "sketch");
    }
    if let Some((l, s, p)) = cfg.topo.fail {
        report.set_meta("failed_link", format!("leaf{l}-spine{s}#{p}"));
    }
    if !cfg.faults.is_empty() {
        let sched: Vec<String> = cfg
            .faults
            .iter()
            .map(|f| {
                format!(
                    "{}@{}ns:leaf{}-spine{}#{}",
                    if f.up { "recover" } else { "fail" },
                    f.at.as_nanos(),
                    f.leaf,
                    f.spine,
                    f.parallel
                )
            })
            .collect();
        report.set_meta("fault_schedule", sched.join(","));
    }
    if !cfg.core_faults.is_empty() {
        let sched: Vec<String> = cfg
            .core_faults
            .iter()
            .map(|f| {
                format!(
                    "{}@{}ns:spine{}-core{}#{}",
                    if f.up { "recover" } else { "fail" },
                    f.at.as_nanos(),
                    f.spine,
                    f.core,
                    f.parallel
                )
            })
            .collect();
        report.set_meta("core_fault_schedule", sched.join(","));
    }
    report.set_meta("end_time_ns", end.as_nanos().to_string());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_matrix_is_consistent() {
        for s in Scheme::PAPER.into_iter().chain(Scheme::TOURNAMENT) {
            let _ = s.policy();
            let k = s.transport(TcpConfig::standard());
            match (s, k) {
                (Scheme::Mptcp, TransportKind::Mptcp(_)) => {}
                (Scheme::Mptcp, _) => panic!("MPTCP scheme must use MPTCP"),
                (_, TransportKind::Tcp(_)) => {}
                _ => panic!("TCP schemes must use TCP"),
            }
        }
        assert_eq!(Scheme::Conga.name(), "CONGA");
        // Tournament keys are unique snake_case identifiers (they key JSON
        // maps in results/tournament.json).
        let keys: Vec<&str> = Scheme::TOURNAMENT.iter().map(|s| s.key()).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "keys must be unique");
        for k in keys {
            assert!(
                k.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{k} must be snake_case"
            );
        }
    }

    #[test]
    fn testbed_opts_match_paper() {
        let t = build_testbed(TestbedOpts::paper_baseline());
        assert_eq!(t.n_hosts, 64);
        assert_eq!(
            t.leaf_uplink_capacity(conga_net::LeafId(0)),
            160_000_000_000
        );
        let f = build_testbed(TestbedOpts::paper_failure());
        assert_eq!(f.fib().leaf_uplinks[1].len(), 3);
    }

    #[test]
    fn merged_arrivals_are_time_ordered_and_complete() {
        let dist = FlowSizeDist::enterprise();
        let mut rng = SimRng::new(2);
        let plan = PoissonPlan::generate(&dist, 4, 4, 80_000_000_000, 0.5, 50, &mut rng);
        let a: Vec<HostId> = (0..4).map(HostId).collect();
        let b: Vec<HostId> = (4..8).map(HostId).collect();
        let merged = merged_arrivals(&plan, &a, &b, |_| TransportKind::Tcp(TcpConfig::standard()));
        assert_eq!(merged.len(), 100);
        // Forward flows go a->b, reverse b->a.
        for (_, spec) in &merged {
            let fwd = spec.src.0 < 4;
            if fwd {
                assert!(spec.dst.0 >= 4);
            } else {
                assert!(spec.dst.0 < 4);
            }
        }
    }

    #[test]
    fn three_tier_testbed_builds_the_pod_structure() {
        let o = TestbedOpts::three_tier(2, 2, 2, 3, 4);
        assert_eq!((o.leaves, o.spines, o.pods, o.cores), (4, 4, 2, 3));
        let t = build_testbed(o);
        assert_eq!(t.n_hosts, 16);
        assert_eq!(t.n_pods, 2);
        assert_eq!(t.n_cores, 3);
        // Pod-local mesh only: each leaf sees its pod's 2 spines.
        assert_eq!(t.fib().leaf_uplinks[0].len(), 2);
    }

    #[test]
    fn small_three_tier_sketch_run_completes_all_flows() {
        let mut cfg = FctRun::new(
            TestbedOpts::three_tier(2, 2, 1, 2, 4),
            Scheme::Conga,
            FlowSizeDist::enterprise(),
            0.3,
        );
        cfg.n_flows = 30;
        cfg.sketch = true;
        let out = run_fct(&cfg);
        assert_eq!(out.summary.incomplete, 0);
        assert!(out.summary.avg_norm_optimal >= 1.0, "can't beat optimal");
        let sk = out.sketch.expect("sketch mode returns the sketch");
        assert_eq!(sk.count() as usize, out.summary.n);
        // Three-tier reports use the extended topology string and declare
        // the aggregation mode.
        let json = out.report.to_json();
        assert!(json.contains("2pods:4x2x4+2cores@10G/40G par1"), "{json}");
        assert!(json.contains("\"fct_aggregation\": \"sketch\""));
    }

    #[test]
    fn small_fct_run_completes_all_flows() {
        let mut cfg = FctRun::new(
            TestbedOpts::paper_baseline().quick(),
            Scheme::Conga,
            FlowSizeDist::enterprise(),
            0.3,
        );
        cfg.n_flows = 40;
        let out = run_fct(&cfg);
        // Flows arriving in the drain guard band (last 30% of the window)
        // are excluded from the summary.
        assert!(
            out.summary.n >= 40 && out.summary.n <= 80,
            "n = {}",
            out.summary.n
        );
        assert_eq!(out.summary.incomplete, 0);
        assert!(out.summary.avg_norm_optimal >= 1.0, "can't beat optimal");
    }
}
