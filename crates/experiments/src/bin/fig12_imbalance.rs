//! Figure 12: load-balancing efficiency — CDF of the throughput imbalance
//! `(MAX − MIN)/AVG` across Leaf 0's four uplinks, from synchronous 10 ms
//! samples, at 60 % load on the baseline topology, for both workloads.
//!
//! Paper: CONGA ≈ MPTCP ≪ ECMP; CONGA even beats MPTCP on the enterprise
//! workload; CONGA-Flow sits between.

use conga_analysis::imbalance::throughput_imbalance;
use conga_analysis::stats::percentile;
use conga_experiments::cli::banner;
use conga_experiments::figures::{trace_args, write_metrics_sidecar, write_trace_sidecars};
use conga_experiments::{run_fct, Args, FctRun, Scheme, TestbedOpts};
use conga_workloads::FlowSizeDist;

fn main() {
    let args = Args::parse();
    let tracing = trace_args(&args);
    let mut sidecar_failed = false;
    banner(
        "Figure 12 — uplink throughput imbalance (MAX-MIN)/AVG at 60% load",
        "synchronous 10ms samples of Leaf 0's four uplinks, baseline topology",
    );
    for (dist, flows) in [
        (FlowSizeDist::enterprise(), 3000),
        (FlowSizeDist::data_mining(), 600),
    ] {
        println!("\n({}) workload", dist.name());
        println!(
            "{:<12}{:>10}{:>10}{:>10}{:>10}",
            "scheme", "p25 (%)", "p50 (%)", "p75 (%)", "p95 (%)"
        );
        for scheme in Scheme::PAPER {
            let mut cfg = FctRun::new(
                if args.quick {
                    TestbedOpts::paper_baseline().quick()
                } else {
                    TestbedOpts::paper_baseline()
                },
                scheme,
                dist.clone(),
                0.6,
            );
            cfg.n_flows = if args.quick { 150 } else { flows };
            cfg.seed = args.seed;
            cfg.sample_uplinks = true;
            cfg.trace = tracing.as_ref().map(|t| t.spec.clone());
            let out = run_fct(&cfg);
            let label = format!("{}.{}", dist.name(), scheme.name());
            if let (Some(t), Some(handle)) = (&tracing, &out.trace) {
                if let Err(e) = write_trace_sidecars(&t.dir, "fig12_imbalance", &label, handle) {
                    eprintln!("trace sidecar write failed: {e}");
                    sidecar_failed = true;
                }
            }
            match write_metrics_sidecar("fig12_imbalance", &label, &out.report) {
                Ok(p) => eprintln!("metrics sidecar: {}", p.display()),
                Err(e) => {
                    eprintln!("metrics sidecar write failed: {e}");
                    sidecar_failed = true;
                }
            }
            // Only windows where the uplinks average at least 10% utilized
            // say anything about balance (idle head/tail windows would
            // otherwise dominate the percentiles).
            let min_avg = 0.10 * 40e9 * 0.010 / 8.0;
            let imb = throughput_imbalance(&out.uplink_tx_samples, min_avg);
            if imb.is_empty() {
                println!(
                    "{:<12}{:>10}{:>10}{:>10}{:>10}",
                    scheme.name(),
                    "-",
                    "-",
                    "-",
                    "-"
                );
                continue;
            }
            println!(
                "{:<12}{:>10.0}{:>10.0}{:>10.0}{:>10.0}",
                scheme.name(),
                percentile(&imb, 25.0) * 100.0,
                percentile(&imb, 50.0) * 100.0,
                percentile(&imb, 75.0) * 100.0,
                percentile(&imb, 95.0) * 100.0,
            );
        }
    }
    if sidecar_failed {
        std::process::exit(1);
    }
}
