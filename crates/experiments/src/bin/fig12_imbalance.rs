//! Figure 12: load-balancing efficiency — CDF of the throughput imbalance
//! `(MAX − MIN)/AVG` across Leaf 0's four uplinks, from synchronous 10 ms
//! samples, at 60 % load on the baseline topology, for both workloads.
//!
//! Paper: CONGA ≈ MPTCP ≪ ECMP; CONGA even beats MPTCP on the enterprise
//! workload; CONGA-Flow sits between.
//!
//! Cells route through the fleet executor (`--jobs N`, result cache); the
//! imbalance percentiles are derived in-worker so cache hits reproduce
//! the table without re-simulating.

use conga_experiments::{fleet, suite, Args};

fn main() {
    let args = Args::parse();
    let ok = suite::fig12(&args);
    fleet::finish("fig12_imbalance", &args);
    if !ok {
        std::process::exit(1);
    }
}
