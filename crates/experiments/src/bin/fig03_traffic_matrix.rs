//! Figure 3: the optimal traffic split in an asymmetric topology depends on
//! the **traffic matrix** — so no static (oblivious) weighting can be right
//! in both cases; only congestion-aware balancing adapts.
//!
//! Topology: 3 leaves, 2 spines, all 40 G links, except leaf 0 has no
//! uplink to spine 1 (so L0→L2 traffic is pinned through S0).
//!
//! * Case (a): only L1→L2 demand (40 G). Both of its paths are symmetric:
//!   optimal split 50/50, total 40 G.
//! * Case (b): plus 40 G of L0→L2 demand through S0. Now S0→L2 carries the
//!   pinned traffic, and the L1→L2 flows must shift to S1 to keep the
//!   total at 80 G.
//!
//! We run both cases under every scheme and report the L1→L2 split and the
//! aggregate throughput; the analytic game model (conga-analysis::poa)
//! cross-checks the optimum.

use conga_analysis::poa::{BottleneckGame, User};
use conga_core::FabricPolicy;
use conga_experiments::cli::banner;
use conga_experiments::Args;
use conga_net::{Dataplane, HostId, LeafSpineBuilder, Network, NodeId, SpineId};
use conga_sim::{SimDuration, SimRng, SimTime};
use conga_transport::{FlowSpec, TcpConfig, TransportKind, TransportLayer};

/// Returns (L1->L2 via S0 Gbps, via S1 Gbps, total delivered Gbps).
fn run(policy: FabricPolicy, with_l0_traffic: bool, args: &Args) -> (f64, f64, f64) {
    // 8 hosts per leaf at 10G. Leaf 1 offers 40G to leaf 2 (4 flows); in
    // case (b) leaf 0 offers another 40G — to *different* leaf-2 hosts so
    // receiver access links never bottleneck the fabric comparison.
    let topo = LeafSpineBuilder::new(3, 2, 8)
        .host_rate_gbps(10)
        .fabric_rate_gbps(40)
        .parallel_links(1)
        .fail_link(0, 1, 0)
        .build();
    let mut net = Network::new(topo, policy, TransportLayer::new(), args.seed);
    let mut tcp = TcpConfig::standard().with_min_rto(SimDuration::from_millis(2));
    tcp.rwnd = 4 << 20;
    net.agent_call(|a, now, em| {
        for i in 0..4u32 {
            // L0 hosts are 0..8; L1 hosts 8..16; L2 hosts 16..24.
            a.start_flow(
                FlowSpec {
                    src: HostId(8 + i),
                    dst: HostId(16 + i),
                    bytes: u64::MAX / 2,
                    kind: TransportKind::Tcp(tcp),
                },
                now,
                em,
            );
            if with_l0_traffic {
                a.start_flow(
                    FlowSpec {
                        src: HostId(i),
                        dst: HostId(20 + i),
                        bytes: u64::MAX / 2,
                        kind: TransportKind::Tcp(tcp),
                    },
                    now,
                    em,
                );
            }
        }
    });
    let warm = if args.quick { 30 } else { 80 };
    let window = if args.quick { 30 } else { 120 };
    net.run_until(SimTime::from_millis(warm));
    let up1 = net.fib.leaf_uplinks[1].clone();
    let start: Vec<u64> = up1.iter().map(|&c| net.port(c).tx_bytes).collect();
    let del0 = net.stats.delivered_payload;
    net.run_until(SimTime::from_millis(warm + window));
    let mut via = [0.0f64; 2];
    for (i, &c) in up1.iter().enumerate() {
        let gbps = (net.port(c).tx_bytes - start[i]) as f64 * 8.0 / (window as f64 * 1e-3) / 1e9;
        let NodeId::Spine(SpineId(s)) = net.topo.channel(c).dst else {
            unreachable!()
        };
        via[s as usize] += gbps;
    }
    let total = (net.stats.delivered_payload - del0) as f64 * 8.0 / (window as f64 * 1e-3) / 1e9;
    (via[0], via[1], total)
}

fn main() {
    let args = Args::parse();
    banner(
        "Figure 3 — optimal split depends on the traffic matrix",
        "3 leaves, 2 spines, 40G links; L0 has no uplink to S1.\n\
         (a) only L1->L2 (40G): optimal L1 split 50/50.\n\
         (b) plus 40G of L0->L2 pinned via S0: optimal L1 split ~0/100.",
    );
    for (case, with_l0) in [("(a) L0->L2 = 0", false), ("(b) L0->L2 = 40G", true)] {
        println!("\n{case}");
        println!(
            "{:<22}{:>14}{:>14}{:>12}",
            "scheme", "L1->L2 via S0", "L1->L2 via S1", "total Gbps"
        );
        for (label, policy) in [
            ("ECMP (static)", FabricPolicy::ecmp()),
            ("weighted-random", FabricPolicy::weighted()),
            ("CONGA (adaptive)", FabricPolicy::conga()),
        ] {
            let name = policy.name();
            let (s0, s1, total) = run(policy, with_l0, &args);
            let _ = name;
            println!("{label:<22}{s0:>14.1}{s1:>14.1}{total:>12.1}");
        }
    }

    // Analytic cross-check with the bottleneck-game optimizer.
    println!("\nAnalytic fluid optimum (bottleneck game, conga-analysis):");
    let mut rng = SimRng::new(args.seed);
    for (case, users) in [
        (
            "(a)",
            vec![User {
                src: 1,
                dst: 2,
                demand: 40.0,
            }],
        ),
        (
            "(b)",
            vec![
                User {
                    src: 1,
                    dst: 2,
                    demand: 40.0,
                },
                User {
                    src: 0,
                    dst: 2,
                    demand: 40.0,
                },
            ],
        ),
    ] {
        let mut g = BottleneckGame::symmetric(3, 2, 40.0, users);
        g.up_cap[0][1] = 0.0;
        let (b, x) = g.min_max_utilization(4000, &mut rng);
        println!(
            "  case {case}: min-max utilization {:.3}; L1->L2 split S0/S1 = {:.1}/{:.1}",
            b, x[0][0], x[0][1]
        );
    }
    conga_experiments::cli::exit_summary("fig03_traffic_matrix");
}
