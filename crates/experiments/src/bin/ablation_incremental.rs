//! §7 incremental deployment: CONGA applied to only a subset of leaves
//! still helps — uncontrolled (ECMP) traffic just looks like bandwidth
//! asymmetry that the CONGA leaves route around, and the reduced fabric
//! congestion benefits everyone.
//!
//! Setup: the failed-link testbed at 60 % load (enterprise workload);
//! sweep the deployment from no leaves running CONGA to all of them.

use conga_core::FabricPolicy;
use conga_experiments::cli::banner;
use conga_experiments::{run_fct_with_policy, Args, FctRun, Scheme, TestbedOpts};
use conga_workloads::FlowSizeDist;

fn main() {
    let args = Args::parse();
    banner(
        "Ablation (§7) — incremental deployment",
        "failed-link testbed, enterprise @ 60% load; CONGA rolled out leaf by leaf",
    );
    println!(
        "{:<28}{:>24}{:>12}",
        "deployment", "overall FCT (x optimal)", "drops"
    );
    for (label, flags) in [
        ("none (pure ECMP)", vec![false, false]),
        ("leaf 0 only", vec![true, false]),
        ("leaf 1 only", vec![false, true]),
        ("both leaves (full CONGA)", vec![true, true]),
    ] {
        let mut cfg = FctRun::new(
            if args.quick {
                TestbedOpts::paper_failure().quick()
            } else {
                TestbedOpts::paper_failure()
            },
            Scheme::Conga, // transport = TCP; policy passed explicitly
            FlowSizeDist::enterprise(),
            0.6,
        );
        cfg.n_flows = if args.quick { 150 } else { 600 };
        cfg.seed = args.seed;
        cfg.shards = args.shards;
        let out = run_fct_with_policy(&cfg, FabricPolicy::incremental(flags));
        println!(
            "{:<28}{:>24.3}{:>12}",
            label, out.summary.avg_norm_optimal, out.drops
        );
    }
    conga_experiments::cli::exit_summary("ablation_incremental");
}
