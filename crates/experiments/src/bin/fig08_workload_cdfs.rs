//! Figure 8: the empirical traffic distributions — flow-size CDF and
//! byte-weighted CDF for the enterprise and data-mining workloads (plus
//! the web-search workload used in Figures 15–16).

use conga_experiments::cli::banner;
use conga_experiments::Args;
use conga_workloads::FlowSizeDist;

fn main() {
    let _args = Args::parse();
    banner(
        "Figure 8 — empirical flow-size distributions",
        "P[S<=x] (\"Flow Size\") and byte-weighted fraction (\"Bytes\") at decade sizes",
    );
    let probes: Vec<f64> = (1..=9)
        .flat_map(|e| [10f64.powi(e), 3.16 * 10f64.powi(e)])
        .collect();
    for dist in [
        FlowSizeDist::enterprise(),
        FlowSizeDist::data_mining(),
        FlowSizeDist::web_search(),
    ] {
        println!(
            "\n{} — mean {:.2} KB, coeff. of variation {:.2}",
            dist.name(),
            dist.mean() / 1e3,
            dist.coeff_of_variation()
        );
        println!("{:>12} {:>10} {:>10}", "size (B)", "flow CDF", "byte CDF");
        for &x in &probes {
            let f = dist.cdf(x);
            let b = dist.byte_fraction_below(x);
            if f > 0.0005 && f < 0.9995 || (b > 0.0005 && b < 0.9995) {
                println!("{:>12.0} {:>10.3} {:>10.3}", x, f, b);
            }
        }
        println!(
            "  bytes from flows <= 35MB: {:.0}% (paper: enterprise ~50%, data-mining ~5%)",
            dist.byte_fraction_below(35e6) * 100.0
        );
    }
    conga_experiments::cli::exit_summary("fig08_workload_cdfs");
}
