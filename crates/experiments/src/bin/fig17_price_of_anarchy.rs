//! Figure 17 / Theorem 1: the Price of Anarchy of the CONGA game.
//!
//! CONGA's leaves selfishly minimize their own bottleneck (the bottleneck
//! routing game of Banner & Orda). Theorem 1: in 2-tier Leaf-Spine
//! networks the PoA is 2 — the worst-case Nash bottleneck is at most twice
//! the optimum, and a contrived example attains it. In practice Nash flows
//! are near-optimal; this harness shows both:
//!
//! 1. best-response dynamics (idealized CONGA) on many random Leaf-Spine
//!    games, reporting the Nash/optimal bottleneck ratio distribution;
//! 2. an adversarial search over small discrete instances for the largest
//!    ratio, verifying it never exceeds 2 (and gets close on interlocked
//!    ring-demand instances like the paper's Figure 17).

use conga_analysis::poa::{BottleneckGame, User};
use conga_analysis::stats::{mean, percentile};
use conga_experiments::cli::banner;
use conga_experiments::Args;
use conga_sim::SimRng;

fn main() {
    let args = Args::parse();
    banner(
        "Figure 17 / Theorem 1 — Price of Anarchy of the CONGA game",
        "bottleneck routing game on Leaf-Spine; Nash via best-response dynamics",
    );
    let mut rng = SimRng::new(args.seed);
    let trials = if args.quick { 60 } else { 400 };

    // --- random instances: typical near-optimality --------------------
    let mut ratios = Vec::new();
    for _ in 0..trials {
        let nl = 2 + rng.below(4);
        let ns = 2 + rng.below(3);
        let n_users = 2 + rng.below(2 * nl);
        let mut users = Vec::new();
        for _ in 0..n_users {
            let src = rng.below(nl);
            let mut dst = rng.below(nl);
            while dst == src {
                dst = rng.below(nl);
            }
            users.push(User {
                src,
                dst,
                demand: 0.25 + rng.f64() * 1.5,
            });
        }
        let mut g = BottleneckGame::symmetric(nl, ns, 1.0, users);
        for l in 0..nl {
            for s in 0..ns {
                if rng.chance(0.25) {
                    g.up_cap[l][s] *= 0.5;
                }
                if rng.chance(0.25) {
                    g.down_cap[s][l] *= 0.5;
                }
            }
        }
        // Adversarial start: everyone concentrated on one spine.
        let (nash, _) = g.nash(g.concentrated(|i| i % ns), 400, 1e-9);
        let nash_b = g.network_bottleneck(&nash);
        let (opt_b, _) = g.min_max_utilization(4000, &mut rng);
        ratios.push(nash_b / opt_b.max(1e-12));
    }
    ratios.retain(|r| r.is_finite());
    println!(
        "random Leaf-Spine games (n = {}): Nash/OPT bottleneck ratio",
        ratios.len()
    );
    // Every ratio could be non-finite (and filtered out above); an empty
    // sample is a degenerate-but-reportable outcome, not a crash.
    let p = |rank: f64| percentile(&ratios, rank).unwrap_or(f64::NAN);
    println!(
        "  mean {:.3}   p50 {:.3}   p95 {:.3}   max {:.3}   (Theorem 1 bound: 2.0)",
        mean(&ratios),
        p(50.0),
        p(95.0),
        p(100.0)
    );
    assert!(
        percentile(&ratios, 100.0).is_none_or(|max| max <= 2.0 + 0.05),
        "Price-of-Anarchy bound violated!"
    );

    // --- the paper's style of tight example: interlocked ring demands --
    // 3 leaves, 2 spines, ring demands both ways. Start from the "solid
    // paths" assignment (everyone concentrated) and check how bad a
    // *verified Nash* can be vs the optimum.
    println!("\ninterlocked ring instance (3 leaves x 2 spines, unit links, 6 unit demands):");
    let users: Vec<User> = [(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]
        .iter()
        .map(|&(src, dst)| User {
            src,
            dst,
            demand: 1.0,
        })
        .collect();
    let g = BottleneckGame::symmetric(3, 2, 1.0, users);
    let mut worst_nash: f64 = 0.0;
    for start in 0..16u64 {
        let mut srng = SimRng::new(start);
        let picks: Vec<usize> = (0..6).map(|_| srng.below(2)).collect();
        let init = g.concentrated(|i| picks[i]);
        let (x, _) = g.nash(init, 500, 1e-9);
        if g.is_nash(&x, 1e-6) {
            worst_nash = worst_nash.max(g.network_bottleneck(&x));
        }
    }
    let (opt, _) = g.min_max_utilization(6000, &mut rng);
    println!(
        "  worst verified Nash bottleneck {:.3}, optimal {:.3}, ratio {:.3} (<= 2)",
        worst_nash,
        opt,
        worst_nash / opt.max(1e-12)
    );
    conga_experiments::cli::exit_summary("fig17_price_of_anarchy");
}
