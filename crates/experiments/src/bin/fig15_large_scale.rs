//! Figure 15: large-scale simulations — overall average FCT (normalized to
//! ECMP) for a web-search workload on 3:1-oversubscribed fabrics with
//! 40 G fabric links:
//!
//! * (a) 192 hosts at 10 G (CONGA gains modest at low load: each fabric
//!   link fits ≥4 edge flows, so hash collisions rarely hurt);
//! * (b) 48 hosts at 40 G (edge rate = fabric rate: collisions are
//!   immediately painful, CONGA's advantage is large even at 30 % load);
//! * (c) a pod-structured three-tier Clos at 10,240 hosts — 8 pods of
//!   4 leaves × 2 spines, 4 cores, 320 hosts per leaf — streaming its
//!   FCTs through the deterministic sketch (no per-flow sample buffer);
//! * (d) a CAFT-style core-link failure: a spine–core link of the
//!   three-tier fabric fails mid-run and recovers, exercising the
//!   runtime fault scheduler across the core tier.
//!
//! Paper: ~5–10 % improvement at 30 % load for 10 G edges vs ~30 % for
//! 40 G edges, growing with load.
//!
//! `--quick` shrinks every case: 2 leaves for (a)/(b) and a small
//! three-tier cell (2 pods × 2 leaves × 1 spine, 2 cores) for (c)/(d).

use conga_experiments::cli::banner;
use conga_experiments::figures::{fct_sweep, loads_arg};
use conga_experiments::{
    fct_cell, run_cells, Args, CoreLinkFaultSpec, FctRun, FleetOpts, Scheme, TestbedOpts,
};
use conga_sim::SimTime;
use conga_workloads::FlowSizeDist;

fn main() {
    let args = Args::parse();
    banner(
        "Figure 15 — large-scale web-search workload, 3:1 oversubscription",
        "(a)/(b): 4 leaves x 4 spines x 40G (2 leaves in --quick); \
         (c)/(d): three-tier Clos, 10240 hosts full / 16 hosts quick",
    );
    let loads = loads_arg(
        &args,
        if args.quick {
            vec![0.4, 0.7]
        } else {
            vec![0.3, 0.5, 0.7]
        },
    );
    // 3:1 oversubscription: access 480G per leaf vs 4 x 40G = 160G uplinks.
    let two_tier = |hosts_per_leaf, host_gbps| TestbedOpts {
        leaves: if args.quick { 2 } else { 4 },
        spines: 4,
        hosts_per_leaf,
        host_gbps,
        fabric_gbps: 40,
        parallel: 1,
        fail: None,
        pods: 1,
        cores: 0,
    };
    // (c): the 10k-host three-tier Clos — 8 pods x (4 leaves + 2 spines),
    // 4 cores, 320 hosts/leaf = 10240 hosts. Quick mode keeps the shape
    // (pods, cores, inter-pod paths) at toy size.
    let three_tier = if args.quick {
        TestbedOpts::three_tier(2, 2, 1, 2, 4)
    } else {
        TestbedOpts::three_tier(8, 4, 2, 4, 320)
    };
    let cases = [
        ("(a) 10G hosts", two_tier(48, 10)),
        ("(b) 40G hosts", two_tier(12, 40)),
        ("(c) three-tier Clos, streaming sketch", three_tier),
    ];
    for (title, topo) in cases {
        println!("\n{title}");
        // The 10k-host case is one deterministic run per cell: averaging
        // independent runs is what the small cases are for, and each
        // three-tier cell is ~20x the work.
        let case_args = if topo.pods > 1 {
            let mut a = args.clone();
            a.runs = 1;
            a
        } else {
            args.clone()
        };
        let sweep = fct_sweep(
            &case_args,
            "fig15_large_scale",
            topo,
            &FlowSizeDist::web_search(),
            &loads,
            &[Scheme::Ecmp, Scheme::Conga],
            500,
        );
        println!("{:<12}FCT normalized to ECMP", "load");
        print!("{:<12}", "");
        for l in &loads {
            print!("{:>9.0}%", l * 100.0);
        }
        println!();
        for (si, s) in sweep.schemes.iter().enumerate() {
            print!("{:<12}", s.name());
            for li in 0..loads.len() {
                // An ECMP cell that completed no measured flow reports
                // 0.0; dividing by it would print inf/NaN. Render the
                // unusable ratio as n/a instead.
                let base = sweep.overall[0][li];
                if base > 0.0 {
                    print!("{:>10.3}", sweep.overall[si][li] / base);
                } else {
                    print!("{:>10}", "n/a");
                }
            }
            println!();
        }
    }

    // (d): CAFT-style core-link failure on the three-tier fabric — fail
    // one spine0–core0 link mid-run, recover it later, through the same
    // runtime fault scheduler the leaf–spine scenarios use. Inter-pod
    // traffic must detour through the surviving cores while the link is
    // down; nothing may remain blackholed after recovery.
    println!("\n(d) core-link failure (spine0-core0 down 3ms..9ms)");
    let load = *loads.last().expect("loads is never empty");
    let opts = FleetOpts::from_args(&args, false);
    let cells: Vec<_> = [Scheme::Ecmp, Scheme::Conga]
        .into_iter()
        .map(|scheme| {
            let mut cfg = FctRun::new(three_tier, scheme, FlowSizeDist::web_search(), load);
            cfg.n_flows = if args.quick { 120 } else { 500 };
            cfg.seed = args.seed;
            cfg.shards = args.shards;
            cfg.sketch = true;
            cfg.core_faults = vec![
                CoreLinkFaultSpec::fail(SimTime::from_millis(3), 0, 0, 0),
                CoreLinkFaultSpec::recover(SimTime::from_millis(9), 0, 0, 0),
            ];
            let label = format!("{}.corefail.load{:02.0}", scheme.name(), load * 100.0);
            fct_cell("fig15_large_scale", &label, cfg, args.quick, None)
        })
        .collect();
    let results = run_cells(cells, &opts);
    println!(
        "{:<12}{:>14}{:>12}{:>12}",
        "scheme", "avg FCT (ms)", "incomplete", "drops"
    );
    for (scheme, cell) in [Scheme::Ecmp, Scheme::Conga].iter().zip(&results) {
        println!(
            "{:<12}{:>14.3}{:>12}{:>12.0}",
            scheme.name(),
            cell.summary.avg_s * 1e3,
            cell.summary.incomplete,
            cell.values.get("drops").copied().unwrap_or(0.0)
        );
    }
    conga_experiments::cli::exit_summary("fig15_large_scale");
}
