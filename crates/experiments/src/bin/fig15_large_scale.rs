//! Figure 15: large-scale simulations — overall average FCT (normalized to
//! ECMP) for a web-search workload on 3:1-oversubscribed fabrics with
//! 40 G fabric links:
//!
//! * (a) 384 hosts at 10 G (CONGA gains modest at low load: each fabric
//!   link fits ≥4 edge flows, so hash collisions rarely hurt);
//! * (b) 96 hosts at 40 G (edge rate = fabric rate: collisions are
//!   immediately painful, CONGA's advantage is large even at 30 % load).
//!
//! Paper: ~5–10 % improvement at 30 % load for 10 G edges vs ~30 % for
//! 40 G edges, growing with load.

use conga_experiments::cli::banner;
use conga_experiments::figures::{fct_sweep, loads_arg};
use conga_experiments::{Args, Scheme, TestbedOpts};
use conga_workloads::FlowSizeDist;

fn main() {
    let args = Args::parse();
    banner(
        "Figure 15 — large-scale web-search workload, 3:1 oversubscription",
        "(a) 8 leaves x 48 x 10G hosts; (b) 8 leaves x 12 x 40G hosts; 4 spines x 40G",
    );
    let loads = loads_arg(
        &args,
        if args.quick {
            vec![0.4, 0.7]
        } else {
            vec![0.3, 0.5, 0.7]
        },
    );
    // 3:1 oversubscription: access 480G per leaf vs 4 x 40G = 160G uplinks.
    let cases = [
        (
            "(a) 10G hosts",
            TestbedOpts {
                leaves: if args.quick { 2 } else { 4 },
                spines: 4,
                hosts_per_leaf: 48,
                host_gbps: 10,
                fabric_gbps: 40,
                parallel: 1,
                fail: None,
            },
        ),
        (
            "(b) 40G hosts",
            TestbedOpts {
                leaves: if args.quick { 2 } else { 4 },
                spines: 4,
                hosts_per_leaf: 12,
                host_gbps: 40,
                fabric_gbps: 40,
                parallel: 1,
                fail: None,
            },
        ),
    ];
    for (title, topo) in cases {
        println!("\n{title}");
        let sweep = fct_sweep(
            &args,
            "fig15_large_scale",
            topo,
            &FlowSizeDist::web_search(),
            &loads,
            &[Scheme::Ecmp, Scheme::Conga],
            500,
        );
        println!("{:<12}FCT normalized to ECMP", "load");
        print!("{:<12}", "");
        for l in &loads {
            print!("{:>9.0}%", l * 100.0);
        }
        println!();
        for (si, s) in sweep.schemes.iter().enumerate() {
            print!("{:<12}", s.name());
            for li in 0..loads.len() {
                print!("{:>10.3}", sweep.overall[si][li] / sweep.overall[0][li]);
            }
            println!();
        }
    }
    conga_experiments::cli::exit_summary("fig15_large_scale");
}
