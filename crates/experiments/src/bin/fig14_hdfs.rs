//! Figure 14: the HDFS write benchmark (TestDFSIO model) — job completion
//! times over repeated trials, with and without the link failure.
//!
//! Each writer streams its share of a large file in 64 MB blocks; every
//! block is 3-way replicated through a pipeline of datanodes
//! (writer→DN1→DN2→DN3). Enterprise background traffic loads the fabric
//! (the paper added it because the disk-bound benchmark alone does not
//! stress the network). Paper result: with the failed link, ECMP jobs take
//! ~2× longer; CONGA is essentially unaffected; MPTCP is volatile.

use conga_experiments::cli::banner;
use conga_experiments::{build_testbed, merged_arrivals, Args, Scheme, TestbedOpts};
use conga_net::{HostId, Network};
use conga_sim::{SimDuration, SimRng, SimTime};
use conga_transport::{FlowSpec, ListSource, TcpConfig, TransportLayer};
use conga_workloads::{FlowSizeDist, HdfsJob, PoissonPlan};

/// Returns the job completion time in seconds.
fn run_trial(scheme: Scheme, failed: bool, seed: u64, args: &Args) -> f64 {
    let opts = if failed {
        TestbedOpts::paper_failure()
    } else {
        TestbedOpts::paper_baseline()
    };
    let opts = if args.quick { opts.quick() } else { opts };
    let topo = build_testbed(opts);
    let all_hosts: Vec<u32> = (0..topo.n_hosts).collect();
    // TestDFSIO runs a mapper per file on nodes across the cluster; we
    // spread writers over both racks (every other host in quick mode,
    // every fourth at full scale => 16 concurrent pipelines).
    // Many sequential blocks per writer: persistent fabric hotspots then
    // dominate job time (single-block runs are access-collision noise).
    let stride = 4;
    let per_writer: u64 = if args.quick { 32 << 20 } else { 128 << 20 };
    let block: u64 = 16 << 20;

    let mut rng = SimRng::new(seed ^ 0xD1F5);
    let writers: Vec<u32> = (0..topo.n_hosts).step_by(stride).collect();
    let n_writers = writers.len();
    let mut job = HdfsJob::plan(&writers, &all_hosts, per_writer, block, &mut rng);

    let mut net = Network::new(topo, scheme.policy(), TransportLayer::new(), seed);
    let tcp = TcpConfig::standard().with_min_rto(SimDuration::from_millis(10));

    // Background enterprise traffic at 30% load.
    {
        let base = TestbedOpts { fail: None, ..opts };
        let base_topo = build_testbed(base);
        let cap = base_topo
            .leaf_uplink_capacity(conga_net::LeafId(0))
            .min(base_topo.access_capacity(conga_net::LeafId(0)));
        let ga = net.topo.hosts_under(conga_net::LeafId(0));
        let gb = net.topo.hosts_under(conga_net::LeafId(1));
        let plan = PoissonPlan::generate(
            &FlowSizeDist::enterprise(),
            ga.len() as u32,
            gb.len() as u32,
            cap,
            0.5,
            if args.quick { 400 } else { 4000 },
            &mut rng,
        );
        let arrivals = merged_arrivals(&plan, &ga, &gb, |_| scheme.transport(tcp));
        net.agent.attach_source(Box::new(ListSource::new(arrivals)));
        if let Some((d, tok)) = net.agent.begin_source() {
            net.schedule_timer(d, tok);
        }
    }

    // Closed loop: flow-id -> (writer, pipeline position).
    use std::collections::HashMap;
    let mut flow_owner: HashMap<usize, usize> = HashMap::new();
    let launch = |net: &mut Network<_, _>,
                  flow_owner: &mut HashMap<usize, usize>,
                  job: &mut HdfsJob,
                  w: usize| {
        if let Some(b) = job.next_block(w) {
            for (src, dst) in [b.hop1, b.hop2, b.hop3] {
                let id = net.agent_call(|a: &mut TransportLayer, now, em| {
                    a.start_flow(
                        FlowSpec {
                            src: HostId(src),
                            dst: HostId(dst),
                            bytes: b.bytes,
                            kind: scheme.transport(tcp),
                        },
                        now,
                        em,
                    )
                });
                flow_owner.insert(id, w);
            }
        }
    };
    for w in 0..n_writers {
        launch(&mut net, &mut flow_owner, &mut job, w);
    }

    let mut seen_done = 0usize;
    let bound = SimTime::from_secs(600);
    while !job.done() && net.now() < bound {
        net.run_until(net.now() + SimDuration::from_millis(20));
        // Reap completed pipeline hops.
        let records: Vec<(usize, bool)> = net
            .agent
            .records
            .iter()
            .enumerate()
            .skip(seen_done)
            .map(|(i, r)| (i, r.rx_done.is_some()))
            .collect();
        // Walk from the first unprocessed record; handle only fully-done
        // prefix bookkeeping lazily (records complete out of order, so scan
        // all unseen ones).
        let mut done_writers: Vec<usize> = Vec::new();
        for (i, done) in records {
            if done {
                if let Some(w) = flow_owner.remove(&i) {
                    if job.hop_done(w) {
                        done_writers.push(w);
                    }
                }
            }
        }
        seen_done = 0; // records keep growing; rely on flow_owner dedup
        for w in done_writers {
            launch(&mut net, &mut flow_owner, &mut job, w);
        }
    }
    net.now().as_secs_f64()
}

fn main() {
    let args = Args::parse();
    banner(
        "Figure 14 — HDFS write benchmark (TestDFSIO model)",
        "writers stream 64MB blocks through 3-way replication pipelines,\n\
         with 30% enterprise background traffic; job time = last block done",
    );
    let trials = args.runs_or(2, 6);
    for (case, failed) in [
        ("(a) baseline topology", false),
        ("(b) with link failure", true),
    ] {
        println!("\n{case}");
        println!("{:<12}job completion times (s) per trial", "scheme");
        for scheme in [Scheme::Ecmp, Scheme::Conga, Scheme::Mptcp] {
            print!("{:<12}", scheme.name());
            let mut times = Vec::new();
            for t in 0..trials {
                let s = run_trial(scheme, failed, args.seed + 31 * t as u64, &args);
                print!("{s:>8.2}");
                times.push(s);
            }
            let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
            println!("   | mean {mean:.2}");
        }
    }
    conga_experiments::cli::exit_summary("fig14_hdfs");
}
