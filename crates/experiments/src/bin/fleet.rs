//! `fleet` — the figure-suite orchestrator.
//!
//! One binary drives the fleet-routed figure suite through the
//! work-stealing executor and the content-addressed result cache:
//!
//! ```text
//! fleet all   [--quick] [--jobs N] [--no-cache] ...   # every routed figure
//! fleet fig09 | fig10 | fig11 | fig12 | fig13 ...     # one figure
//! fleet bench [--quick] [--jobs N] [--shards N]       # serial vs parallel vs
//!                                                     # sharded vs warm-cache
//!                                                     # timings ->
//!                                                     # results/BENCH_fleet.json
//! ```
//!
//! Unlike the per-figure binaries (which default to the historical serial
//! path), `fleet` defaults `--jobs` to the machine's available
//! parallelism. All flags of [`conga_experiments::Args`] apply.

use std::fmt::Write as _;
use std::time::Instant;

use conga_experiments::{fleet, suite, tournament, Args};

const USAGE: &str =
    "usage: fleet <all|fig09|fig10|fig11|fig12|fig13|tournament|bench|profile> [flags]

subcommands:
  all      run every fleet-routed figure (fig09, fig10, fig11-dynamic,
           fig12, fig13); one manifest at results/fleet_all.fleet_manifest.json
  fig09    Figure 9  — enterprise FCT sweep
  fig10    Figure 10 — data-mining FCT sweep
  fig11    Figure 11 (dynamic) — mid-run link failure/recovery
  fig12    Figure 12 — uplink throughput imbalance
  fig13    Figure 13 — incast goodput vs fanout
  tournament
           race every fabric policy (ECMP, CONGA, CONGA-Flow, Local, Spray,
           Weighted, LetFlow, LatencyAware) through three arenas and write
           results/tournament.json + results/tournament_table.txt; add
           --cc a,b,... to race each congestion controller as an axis
  bench    time the quick suite serial / parallel / sharded / warm-cache
           and write results/BENCH_fleet.json (includes events/s and
           delivered packets/s for the serial pass)
  profile  run the quick suite serially (cache bypassed) with the engine
           self-profiler on, print a top-down wall-clock table, and write
           results/PROFILE.json

flags (after the subcommand) are the shared figure flags; see any figure
binary's usage (`tournament` also honours --loads 20,40,60). `fleet`
defaults --jobs to the available parallelism.";

fn parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse the flags after the subcommand, defaulting `--jobs` to the
/// machine parallelism (the per-figure binaries default to serial).
fn fleet_args(argv: &[String]) -> Args {
    match Args::from_iter(argv.iter().cloned()) {
        Ok(mut args) => {
            if args.jobs.is_none() {
                args.jobs = Some(parallelism());
            }
            args
        }
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Run every routed figure under one manifest. Returns `false` if any
/// driver reported a sidecar failure.
fn run_all(args: &Args) -> bool {
    let mut ok = true;
    suite::fig09(args);
    suite::fig10(args);
    ok &= suite::fig11_dynamic(args);
    ok &= suite::fig12(args);
    ok &= suite::fig13(args);
    ok
}

/// `fleet bench`: the quick suite three ways — serial without the cache,
/// parallel without the cache, then parallel against a cache warmed by
/// the previous passes — written as deterministic-shaped (but
/// wall-clock-valued) JSON to `results/BENCH_fleet.json`.
fn bench(args: &Args) -> std::io::Result<()> {
    let jobs = args.jobs_or_serial().max(2);
    // The intra-run shard axis: honour an explicit --shards, else use the
    // machine parallelism (capped: the quick testbed has two leaf domains).
    let shards = if args.shards > 1 {
        args.shards
    } else {
        parallelism().clamp(2, 4)
    };
    let cache_dir = "results/cache";

    let pass = |label: &str, extra: &[&str]| -> (f64, bool) {
        let mut argv: Vec<String> = vec!["--quick".into(), "--seed".into(), args.seed.to_string()];
        argv.extend(extra.iter().map(|s| s.to_string()));
        let a = Args::from_iter(argv).expect("bench flags parse");
        eprintln!("bench: pass '{label}' (jobs={})", a.jobs_or_serial());
        let t0 = Instant::now();
        let ok = run_all(&a);
        (t0.elapsed().as_secs_f64() * 1e3, ok)
    };

    let purged = conga_fleet::cache::purge(std::path::Path::new(cache_dir))?;
    if purged > 0 {
        eprintln!("bench: purged {purged} cached results for a cold start");
    }
    // Engine throughput is measured over the serial pass: the counters are
    // process-global, so the delta around one single-threaded pass is the
    // clean events-per-wall-second reading.
    let ev0 = conga_fleet::stats::engine_events();
    let pk0 = conga_fleet::stats::delivered_pkts();
    let (serial_ms, ok1) = pass("serial", &["--no-cache", "--jobs", "1"]);
    let events = conga_fleet::stats::engine_events() - ev0;
    let delivered = conga_fleet::stats::delivered_pkts() - pk0;
    let serial_s = (serial_ms / 1e3).max(1e-9);
    let jobs_s = jobs.to_string();
    let (parallel_ms, ok2) = pass("parallel", &["--no-cache", "--jobs", &jobs_s]);
    // The shards axis: serial cell order, parallelism *inside* each run.
    let shards_s = shards.to_string();
    let (sharded_ms, ok5) = pass(
        "sharded",
        &["--no-cache", "--jobs", "1", "--shards", &shards_s],
    );
    // Warm the cache with one live pass, then time a fully-cached one.
    let (_, ok3) = pass("cache warm-up", &["--jobs", &jobs_s]);
    let (warm_ms, ok4) = pass("warm-cache", &["--jobs", &jobs_s]);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"suite\": \"fleet_all --quick\",");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    let _ = writeln!(out, "  \"cores\": {},", parallelism());
    let _ = writeln!(out, "  \"shards\": {shards},");
    let _ = writeln!(out, "  \"serial_events\": {events},");
    let _ = writeln!(out, "  \"serial_delivered_pkts\": {delivered},");
    let _ = writeln!(
        out,
        "  \"events_per_sec\": {:.0},",
        events as f64 / serial_s
    );
    let _ = writeln!(
        out,
        "  \"delivered_pkts_per_sec\": {:.0},",
        delivered as f64 / serial_s
    );
    let _ = writeln!(out, "  \"serial_ms\": {serial_ms:.1},");
    let _ = writeln!(out, "  \"parallel_ms\": {parallel_ms:.1},");
    let _ = writeln!(out, "  \"sharded_ms\": {sharded_ms:.1},");
    let _ = writeln!(out, "  \"warm_cache_ms\": {warm_ms:.1},");
    let _ = writeln!(
        out,
        "  \"parallel_speedup\": {:.2},",
        serial_ms / parallel_ms.max(1e-9)
    );
    let _ = writeln!(
        out,
        "  \"shard_speedup\": {:.2},",
        serial_ms / sharded_ms.max(1e-9)
    );
    let _ = writeln!(
        out,
        "  \"warm_cache_speedup\": {:.2}",
        serial_ms / warm_ms.max(1e-9)
    );
    out.push_str("}\n");
    std::fs::create_dir_all("results")?;
    std::fs::write("results/BENCH_fleet.json", &out)?;
    eprintln!("bench: wrote results/BENCH_fleet.json");
    print!("{out}");
    if !(ok1 && ok2 && ok3 && ok4 && ok5) {
        std::process::exit(1);
    }
    Ok(())
}

/// `fleet profile`: the quick suite run *serially* with the engine
/// self-profiler enabled — serial so the per-phase totals attribute
/// exactly (parallel jobs interleave phase time across cells), and with
/// the result cache bypassed: a cache hit skips the engine entirely, so
/// a warm-cache profile would measure nothing but lookups. Prints a
/// top-down wall-clock table and writes `results/PROFILE.json`; the JSON's
/// structure is deterministic, its `wall_ns` values are quarantined
/// timing fields (same contract as BENCH_fleet.json).
fn profile_cmd(args: &Args) -> std::io::Result<()> {
    use conga_telemetry::profile;
    profile::enable();
    profile::reset();
    let mut argv: Vec<String> = vec![
        "--quick".into(),
        "--seed".into(),
        args.seed.to_string(),
        "--jobs".into(),
        "1".into(),
        "--no-cache".into(),
    ];
    if args.shards > 1 {
        argv.push("--shards".into());
        argv.push(args.shards.to_string());
    }
    let a = Args::from_iter(argv).expect("profile flags parse");
    let ok = run_all(&a);
    // The manifest from this run carries the per-cell phase breakdown
    // (the profiler is on, and --jobs 1 makes the attribution exact).
    fleet::finish("fleet_profile", &a);
    let snap = profile::snapshot();
    std::fs::create_dir_all("results")?;
    std::fs::write(
        "results/PROFILE.json",
        snap.to_json("fleet_all --quick --jobs 1"),
    )?;
    eprintln!("profile: wrote results/PROFILE.json");
    print!("{}", snap.table());
    if !ok {
        std::process::exit(1);
    }
    Ok(())
}

fn main() {
    conga_fleet::stats::mark_start();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(sub) = argv.first() else {
        eprintln!("error: missing subcommand\n{USAGE}");
        std::process::exit(2);
    };
    let rest = &argv[1..];
    let ok = match sub.as_str() {
        "all" => {
            let args = fleet_args(rest);
            let ok = run_all(&args);
            fleet::finish("fleet_all", &args);
            ok
        }
        "fig09" => {
            let args = fleet_args(rest);
            suite::fig09(&args);
            fleet::finish("fig09_enterprise", &args);
            true
        }
        "fig10" => {
            let args = fleet_args(rest);
            suite::fig10(&args);
            fleet::finish("fig10_datamining", &args);
            true
        }
        "fig11" => {
            let args = fleet_args(rest);
            let ok = suite::fig11_dynamic(&args);
            fleet::finish("fig11_dynamic_failure", &args);
            ok
        }
        "fig12" => {
            let args = fleet_args(rest);
            let ok = suite::fig12(&args);
            fleet::finish("fig12_imbalance", &args);
            ok
        }
        "fig13" => {
            let args = fleet_args(rest);
            let ok = suite::fig13(&args);
            fleet::finish("fig13_incast", &args);
            ok
        }
        "tournament" => {
            let args = fleet_args(rest);
            let ok = tournament::run(&args);
            fleet::finish("tournament", &args);
            ok
        }
        "bench" => {
            let args = fleet_args(rest);
            match bench(&args) {
                Ok(()) => true,
                Err(e) => {
                    eprintln!("bench failed: {e}");
                    false
                }
            }
        }
        "profile" => {
            let args = fleet_args(rest);
            match profile_cmd(&args) {
                Ok(()) => true,
                Err(e) => {
                    eprintln!("profile failed: {e}");
                    false
                }
            }
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            true
        }
        other => {
            eprintln!("error: unknown subcommand '{other}'\n{USAGE}");
            std::process::exit(2);
        }
    };
    if !ok {
        std::process::exit(1);
    }
}
