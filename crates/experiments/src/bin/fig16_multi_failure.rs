//! Figure 16: multiple link failures in a 288-port fabric — 6 leaves × 4
//! spines with 3×40 G links per pair; 9 randomly chosen leaf-spine links
//! fail. Web-search workload at 60 % load.
//!
//! The paper plots the mean queue length of every fabric port: ECMP piles
//! ~10× deeper queues than CONGA at the spine downlinks adjacent to the
//! failures (ECMP keeps splitting equally at the leaves, so surviving
//! parallel links carry multiples of their share; CONGA routes around).

use conga_analysis::stats::mean;
use conga_core::FabricPolicy;
use conga_experiments::cli::banner;
use conga_experiments::{uniform_arrivals, Args, Scheme};
use conga_net::{ChannelId, ChannelKind, Dataplane, LeafSpineBuilder, Network};
use conga_sim::{SimDuration, SimRng, SimTime};
use conga_transport::{ListSource, TcpConfig, TransportLayer};
use conga_workloads::FlowSizeDist;

fn main() {
    let args = Args::parse();
    banner(
        "Figure 16 — 9 random link failures in a 6-leaf x 4-spine x 3x40G fabric",
        "mean queue per fabric port, web-search @ 60% load; paper: ECMP ~10x CONGA\n\
         at the spine downlinks next to failures",
    );
    // Choose 9 random distinct (leaf, spine, parallel) links to fail.
    let mut frng = SimRng::new(args.seed ^ 0xFA11);
    let mut failed: Vec<(u32, u32, u32)> = Vec::new();
    while failed.len() < 9 {
        let f = (
            frng.below(6) as u32,
            frng.below(4) as u32,
            frng.below(3) as u32,
        );
        if !failed.contains(&f) {
            failed.push(f);
        }
    }
    println!("failed links (leaf, spine, parallel): {failed:?}\n");

    // The paper's 288-port fabric: 48 x 10G hosts per leaf, 12 x 40G
    // uplinks — 1:1 subscription, so 60% load genuinely loads the fabric.
    let hosts_per_leaf = if args.quick { 12 } else { 48 };
    let n_flows = if args.quick { 600 } else { 4000 };

    let mut results: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for scheme in [Scheme::Ecmp, Scheme::Conga] {
        let mut b = LeafSpineBuilder::new(6, 4, hosts_per_leaf)
            .host_rate_gbps(10)
            .fabric_rate_gbps(40)
            .parallel_links(3);
        for &(l, s, p) in &failed {
            b = b.fail_link(l, s, p);
        }
        let topo = b.build();
        let per_leaf_cap = topo
            .leaf_uplink_capacity(conga_net::LeafId(0))
            .min(topo.access_capacity(conga_net::LeafId(0)))
            .max(1);
        // Load reference: the *unfailed* per-leaf capacity (12 x 40G or the
        // access bound for --quick).
        let unfailed_cap = (12 * 40_000_000_000u64).min(hosts_per_leaf as u64 * 10_000_000_000);
        let _ = per_leaf_cap;
        let mut rng = SimRng::new(args.seed);
        let arrivals = uniform_arrivals(
            &FlowSizeDist::web_search(),
            &topo,
            unfailed_cap,
            0.6,
            n_flows,
            &mut rng,
            scheme.transport(TcpConfig::standard()),
        );
        let span: u64 = arrivals.iter().map(|(g, _)| g.as_nanos()).sum();
        let policy: FabricPolicy = scheme.policy();
        let name = policy.name().to_string();
        let mut net = Network::new(topo, policy, TransportLayer::new(), args.seed);
        net.agent.attach_source(Box::new(ListSource::new(arrivals)));
        if let Some((d, tok)) = net.agent.begin_source() {
            net.schedule_timer(d, tok);
        }
        let bound = SimTime::from_nanos(span) + SimDuration::from_secs(5);
        loop {
            net.run_until(net.now() + SimDuration::from_millis(50));
            if net.agent.completed_rx >= n_flows || net.now() >= bound {
                break;
            }
        }
        // Mean queue depth per fabric channel, split by kind.
        let now = net.now();
        let chans: Vec<(ChannelId, ChannelKind)> = net
            .topo
            .channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind.is_fabric())
            .map(|(i, c)| (ChannelId(i as u32), c.kind))
            .collect();
        let mut leaf_up = Vec::new();
        let mut spine_down = Vec::new();
        for (ch, kind) in chans {
            let q = net.port_mut(ch).mean_queue_bytes(now) / 1024.0;
            match kind {
                ChannelKind::LeafUp => leaf_up.push(q),
                ChannelKind::SpineDown => spine_down.push(q),
                _ => {}
            }
        }
        println!(
            "[{name}] done: {} of {} flows, drops {}",
            net.agent.completed_rx,
            n_flows,
            net.total_drops()
        );
        results.push((name, leaf_up, spine_down));
    }

    println!(
        "\n{:<10}{:>22}{:>22}{:>22}",
        "scheme", "leaf-up mean q (KB)", "spine-down mean (KB)", "spine-down max (KB)"
    );
    for (name, up, down) in &results {
        let dmax = down.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:<10}{:>22.1}{:>22.1}{:>22.1}",
            name,
            mean(up),
            mean(down),
            dmax
        );
    }
    if results.len() == 2 {
        let (_, _, d_ecmp) = &results[0];
        let (_, _, d_conga) = &results[1];
        let ratio = mean(d_ecmp) / mean(d_conga).max(1e-9);
        println!(
            "\nECMP/CONGA mean spine-downlink queue ratio: {ratio:.1}x (paper: ~10x at hot ports)"
        );
    }
    conga_experiments::cli::exit_summary("fig16_multi_failure");
}
