//! §3.6 parameter-robustness ablation: CONGA's performance across its
//! three main knobs — quantization bits `Q`, DRE time constant `τ`, and
//! flowlet timeout `T_fl` — on the enterprise workload at 60 % load with
//! the link failure (where load balancing actually matters).
//!
//! Paper claim: performance is robust for Q = 3–6, τ = 100–500 µs,
//! T_fl = 300 µs–1 ms; the defaults are Q = 3, τ = 160 µs, T_fl = 500 µs.
//! Very small Q (1 bit) loses resolution; very large τ reacts too slowly;
//! very large T_fl degenerates to per-flow decisions.

use conga_core::{CongaParams, GapMode};
use conga_experiments::cli::banner;
use conga_experiments::{Args, FctRun, Scheme, TestbedOpts};
use conga_sim::SimDuration;
use conga_workloads::FlowSizeDist;

fn run_with(params: CongaParams, args: &Args) -> f64 {
    // Reuse the runner but swap the policy parameters by building the cell
    // manually through FctRun + a custom policy.
    use conga_core::FabricPolicy;
    use conga_experiments::run_fct_with_policy;

    let mut cfg = FctRun::new(
        if args.quick {
            TestbedOpts::paper_failure().quick()
        } else {
            TestbedOpts::paper_failure()
        },
        Scheme::Conga,
        FlowSizeDist::enterprise(),
        0.6,
    );
    cfg.n_flows = if args.quick { 150 } else { 600 };
    cfg.seed = args.seed;
    cfg.shards = args.shards;
    let out = run_fct_with_policy(&cfg, FabricPolicy::conga_with(params));
    out.summary.avg_norm_optimal
}

fn main() {
    let args = Args::parse();
    banner(
        "Ablation (§3.6) — CONGA parameter robustness",
        "enterprise @ 60% load with link failure; overall FCT normalized to optimal",
    );
    let base = CongaParams::paper_default();
    println!(
        "baseline (Q=3, tau=160us, Tfl=500us): {:.3}\n",
        run_with(base, &args)
    );

    println!("Q (quantization bits):");
    for q in [1u8, 2, 3, 4, 6, 8] {
        let mut p = base;
        p.q_bits = q;
        println!("  Q={q}: {:.3}", run_with(p, &args));
    }

    println!("tau = Tdre/alpha (DRE time constant):");
    for (tdre_us, label) in [
        (5u64, "50us"),
        (16, "160us"),
        (50, "500us"),
        (200, "2ms"),
        (1000, "10ms"),
    ] {
        let mut p = base;
        p.tdre = SimDuration::from_micros(tdre_us);
        println!("  tau={label}: {:.3}", run_with(p, &args));
    }

    println!("Tfl (flowlet inactivity timeout):");
    for (tfl_us, label) in [
        (100u64, "100us"),
        (300, "300us"),
        (500, "500us"),
        (1000, "1ms"),
        (13_000, "13ms (CONGA-Flow)"),
    ] {
        let mut p = base;
        p.tfl = SimDuration::from_micros(tfl_us);
        println!("  Tfl={label}: {:.3}", run_with(p, &args));
    }

    println!("gap detection (Tfl=500us):");
    for (mode, label) in [
        (GapMode::AgeBit, "age-bit (hardware)"),
        (GapMode::Exact, "exact timestamps"),
    ] {
        let mut p = base;
        p.gap_mode = mode;
        println!("  {label}: {:.3}", run_with(p, &args));
    }
    conga_experiments::cli::exit_summary("ablation_parameters");
}
