//! Figure 13: Incast — effective client throughput vs fan-in for
//! CONGA+TCP and MPTCP, with minRTO ∈ {200 ms, 1 ms} and MTU ∈ {1500,
//! 9000}.
//!
//! A client requests a 10 MB file striped over N servers; all servers
//! respond synchronously into the client's single 10 G access link. This
//! does not stress fabric load balancing — it isolates the transport: the
//! paper shows MPTCP collapses (8 subflows × N senders contending in a
//! shallow edge buffer, tiny subflow windows timing out) while plain TCP
//! under CONGA degrades far more gracefully; jumbo frames make MPTCP
//! dramatically worse.

use conga_experiments::cli::banner;
use conga_experiments::figures::{trace_args, write_metrics_sidecar, write_trace_sidecars};
use conga_experiments::{Args, Scheme, TraceSpec};
use conga_net::{HostId, LeafSpineBuilder, Network};
use conga_sim::SimRng;
use conga_sim::{SimDuration, SimTime};
use conga_telemetry::RunReport;
use conga_transport::{FlowSpec, ListSource, TcpConfig, TransportLayer};
use conga_workloads::IncastPattern;

/// Run one incast: returns goodput as a % of the 10G access line rate, the
/// run's telemetry report, and the trace handle (if tracing was requested).
fn run_incast(
    scheme: Scheme,
    fanout: u32,
    tcp: TcpConfig,
    seed: u64,
    trace: Option<&TraceSpec>,
) -> (f64, RunReport, Option<conga_trace::TraceHandle>) {
    let topo = LeafSpineBuilder::new(2, 2, 32)
        .host_rate_gbps(10)
        .fabric_rate_gbps(40)
        .parallel_links(2)
        .build();
    let mut net = Network::new(topo, scheme.policy(), TransportLayer::new(), seed);
    let trace = trace.map(|spec| spec.handle());
    if let Some(t) = &trace {
        net.set_tracer(t.clone());
    }
    let pat = IncastPattern::paper(fanout);
    // Client = host 0 (leaf 0); servers spread over the remaining hosts,
    // mostly remote so responses cross the fabric like the testbed's.
    // Server responses carry a small exponential service-time jitter
    // (mean 200us) — disk/kernel latency in the real benchmark; perfectly
    // clock-synchronized byte-identical senders would otherwise finish in
    // lockstep and all tail-drop together, which no real testbed does.
    let mut jit = SimRng::new(seed ^ 0x1CA5);
    let mut starts: Vec<(u64, FlowSpec)> = (0..fanout)
        .map(|i| {
            let server = HostId(1 + (i * 63 / fanout.max(1)) % 63);
            (
                (jit.exp(1.0 / 200_000.0)) as u64,
                FlowSpec {
                    src: server,
                    dst: HostId(0),
                    bytes: pat.per_server,
                    kind: scheme.transport(tcp),
                },
            )
        })
        .collect();
    starts.sort_by_key(|&(t, _)| t);
    let mut prev = 0;
    let arrivals: Vec<(SimDuration, FlowSpec)> = starts
        .into_iter()
        .map(|(t, spec)| {
            let gap = SimDuration::from_nanos(t - prev);
            prev = t;
            (gap, spec)
        })
        .collect();
    net.agent.attach_source(Box::new(ListSource::new(arrivals)));
    if let Some((d, tok)) = net.agent.begin_source() {
        net.schedule_timer(d, tok);
    }
    // Run until every response is delivered (generous bound: many RTOs).
    let bound = SimTime::from_secs(30);
    loop {
        net.run_until(net.now() + SimDuration::from_millis(100));
        if net.agent.completed_rx as u32 >= fanout || net.now() >= bound {
            break;
        }
    }
    let last_done = net
        .agent
        .records
        .iter()
        .filter_map(|r| r.rx_done)
        .max()
        .unwrap_or(net.now());
    let total_bytes: u64 = pat.per_server * fanout as u64;
    let goodput = total_bytes as f64 * 8.0 / last_done.as_secs_f64();
    let mut report = RunReport::new();
    report.set_meta("figure", "fig13_incast");
    report.set_meta("scheme", scheme.name());
    report.set_meta("fanout", fanout.to_string());
    report.set_meta("seed", seed.to_string());
    report.set_meta("mss", tcp.mss.to_string());
    report.set_meta("min_rto_ns", tcp.min_rto.as_nanos().to_string());
    report.set_meta("end_time_ns", net.now().as_nanos().to_string());
    net.export_metrics(&mut report.metrics);
    // Percentage of the 10G access link (the paper's y-axis).
    (100.0 * goodput / 10e9, report, trace)
}

fn main() {
    let args = Args::parse();
    let tracing = trace_args(&args);
    let mut sidecar_failed = false;
    banner(
        "Figure 13 — Incast: client goodput vs fanout",
        "10MB striped over N synchronized senders into one 10G access link;\n\
         y = goodput as % of line rate (paper: CONGA+TCP 2-8x MPTCP)",
    );
    let fanouts: Vec<u32> = if args.quick {
        vec![4, 16, 48]
    } else {
        vec![1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 63]
    };
    for (mtu_name, cfg) in [
        ("MTU 1500", TcpConfig::standard()),
        ("MTU 9000", TcpConfig::jumbo()),
    ] {
        println!("\n({mtu_name})");
        print!("{:<26}", "scheme / fanout");
        for f in &fanouts {
            print!("{:>7}", f);
        }
        println!();
        for (label, scheme, rto_ms) in [
            ("CONGA+TCP (minRTO 200ms)", Scheme::Conga, 200u64),
            ("CONGA+TCP (minRTO 1ms)", Scheme::Conga, 1),
            ("MPTCP (minRTO 200ms)", Scheme::Mptcp, 200),
            ("MPTCP (minRTO 1ms)", Scheme::Mptcp, 1),
        ] {
            let tcp = cfg.with_min_rto(SimDuration::from_millis(rto_ms));
            print!("{label:<26}");
            for &f in &fanouts {
                let (pct, report, trace) =
                    run_incast(scheme, f, tcp, args.seed, tracing.as_ref().map(|t| &t.spec));
                let tag = format!("{mtu_name}.{label}.f{f:02}");
                if let (Some(t), Some(handle)) = (&tracing, &trace) {
                    if let Err(e) = write_trace_sidecars(&t.dir, "fig13_incast", &tag, handle) {
                        eprintln!("trace sidecar write failed: {e}");
                        sidecar_failed = true;
                    }
                }
                match write_metrics_sidecar("fig13_incast", &tag, &report) {
                    Ok(p) => eprintln!("metrics sidecar: {}", p.display()),
                    Err(e) => {
                        eprintln!("metrics sidecar write failed: {e}");
                        sidecar_failed = true;
                    }
                }
                print!("{pct:>7.1}");
            }
            println!();
        }
    }
    if sidecar_failed {
        std::process::exit(1);
    }
}
