//! Figure 13: Incast — effective client throughput vs fan-in for
//! CONGA+TCP and MPTCP, with minRTO ∈ {200 ms, 1 ms} and MTU ∈ {1500,
//! 9000}.
//!
//! A client requests a 10 MB file striped over N servers; all servers
//! respond synchronously into the client's single 10 G access link. This
//! does not stress fabric load balancing — it isolates the transport: the
//! paper shows MPTCP collapses (8 subflows × N senders contending in a
//! shallow edge buffer, tiny subflow windows timing out) while plain TCP
//! under CONGA degrades far more gracefully; jumbo frames make MPTCP
//! dramatically worse.
//!
//! Cells route through the fleet executor (`--jobs N`, result cache);
//! see [`conga_experiments::suite::fig13`].

use conga_experiments::{fleet, suite, Args};

fn main() {
    let args = Args::parse();
    let ok = suite::fig13(&args);
    fleet::finish("fig13_incast", &args);
    if !ok {
        std::process::exit(1);
    }
}
