//! Figure 5: distribution of data bytes across transfer sizes for
//! different flowlet inactivity gaps (250 ms ≈ whole flows, 500 µs,
//! 100 µs), measured on a synthetic bursty packet trace standing in for
//! the paper's production captures (§2.6.1).
//!
//! The paper's headline: with a 500 µs gap, the transfer size covering
//! half the bytes drops by ~2 orders of magnitude (~30 MB → ~500 KB).
//! Also reproduced: the flowlet-concurrency measurement (distinct active
//! flows per 1 ms window) motivating the 64 K-entry table.

use conga_experiments::cli::banner;
use conga_experiments::Args;
use conga_sim::{SimDuration, SimRng};
use conga_workloads::trace::{
    byte_weighted_quantile, bytes_by_size_cdf, generate_trace, split_flowlets, BurstModel,
};
use conga_workloads::FlowSizeDist;

fn main() {
    let args = Args::parse();
    banner(
        "Figure 5 — bytes vs transfer size for different flowlet gaps",
        "synthetic bursty trace (enterprise flow sizes, 64KB line-rate bursts,\n\
         lognormal sub-ms inter-burst gaps) standing in for production captures",
    );
    let n_flows = if args.quick { 2_000 } else { 20_000 };
    let mut rng = SimRng::new(args.seed);
    let trace = generate_trace(
        &FlowSizeDist::enterprise(),
        &BurstModel::default(),
        n_flows,
        20_000.0,
        &mut rng,
    );
    println!("trace: {} packets, {} flows", trace.len(), n_flows);

    let gaps: [(&str, Option<SimDuration>); 3] = [
        ("Flow (250ms)", Some(SimDuration::from_millis(250))),
        ("Flowlet (500us)", Some(SimDuration::from_micros(500))),
        ("Flowlet (100us)", Some(SimDuration::from_micros(100))),
    ];
    let probes: Vec<u64> = (1..=9).map(|e| 10u64.pow(e)).collect();

    println!(
        "\n{:<18}{:>12}{:>14}  byte-CDF at sizes 10^1..10^9",
        "split", "#transfers", "50% of bytes"
    );
    for (name, gap) in gaps {
        let sizes = split_flowlets(&trace, gap);
        let med = byte_weighted_quantile(&sizes, 0.5);
        let cdf = bytes_by_size_cdf(&sizes);
        print!("{:<18}{:>12}{:>13}B ", name, sizes.len(), med);
        for &p in &probes {
            let f = cdf
                .iter()
                .take_while(|&&(x, _)| x <= p)
                .last()
                .map(|&(_, f)| f)
                .unwrap_or(0.0);
            print!(" {:>5.2}", f);
        }
        println!();
    }

    // Reduction factor — the paper's quoted ~2 orders of magnitude.
    let flows = split_flowlets(&trace, Some(SimDuration::from_millis(250)));
    let fl500 = split_flowlets(&trace, Some(SimDuration::from_micros(500)));
    let reduction = byte_weighted_quantile(&flows, 0.5) as f64
        / byte_weighted_quantile(&fl500, 0.5).max(1) as f64;
    println!(
        "\nbyte-weighted median reduction, flows -> 500us flowlets: {reduction:.0}x \
         (paper: ~60x, 30MB -> 500KB)"
    );

    // Flowlet concurrency (paper: median 130 distinct 5-tuples / 1ms,
    // max < 300 in a ~15 Gbps trace).
    use std::collections::HashSet;
    let mut per_ms: Vec<usize> = Vec::new();
    let mut cur = HashSet::new();
    let mut window = 0u64;
    for p in &trace {
        let w = p.at.as_nanos() / 1_000_000;
        if w != window {
            if !cur.is_empty() {
                per_ms.push(cur.len());
            }
            cur = HashSet::new();
            window = w;
        }
        cur.insert(p.flow);
    }
    per_ms.sort_unstable();
    if !per_ms.is_empty() {
        println!(
            "flowlet concurrency per 1ms window: median {}, max {} (64K-entry table is ample)",
            per_ms[per_ms.len() / 2],
            per_ms.last().expect("non-empty")
        );
    }
    conga_experiments::cli::exit_summary("fig05_flowlet_sizes");
}
