//! Figure 11: impact of a link failure (Figure 7b — one of the two
//! Leaf1–Spine1 40 G links down, bisection at 75 %).
//!
//! * Panels (a)/(b): overall average FCT (normalized to optimal) for the
//!   enterprise and data-mining workloads at loads 10–70 %. The paper's
//!   signature: ECMP goes unstable past 50 % load (half the L0→L1 traffic
//!   still hashes through Spine 1, whose single remaining link must carry
//!   2× its share), while the adaptive schemes degrade gracefully and
//!   CONGA is the most robust.
//! * Panel (c): CDF of queue depth at the hotspot port [Spine1→Leaf1] for
//!   the data-mining workload at 60 % load.

use conga_experiments::cli::banner;
use conga_experiments::figures::{fct_sweep, loads_arg, print_fct_panels, write_metrics_sidecar};
use conga_experiments::{Args, FctRun, Scheme, TestbedOpts};
use conga_net::{ChannelId, ChannelKind, NodeId};
use conga_workloads::FlowSizeDist;

fn main() {
    let args = Args::parse();
    let mut sidecar_failed = false;
    banner(
        "Figure 11 — impact of link failure (3x40G bisection, load ref. unchanged)",
        "one Leaf1-Spine1 link down; ECMP still sends half of L0->L1 via Spine 1",
    );
    let loads = loads_arg(
        &args,
        if args.quick {
            vec![0.4, 0.6]
        } else {
            (1..=7).map(|l| l as f64 / 10.0).collect()
        },
    );

    for (dist, flows, title) in [
        (FlowSizeDist::enterprise(), 800, "(a) enterprise workload"),
        (FlowSizeDist::data_mining(), 250, "(b) data-mining workload"),
    ] {
        println!("\n{title}");
        let sweep = fct_sweep(
            &args,
            "fig11_link_failure",
            TestbedOpts::paper_failure(),
            &dist,
            &loads,
            &Scheme::PAPER,
            flows,
        );
        print_fct_panels(&sweep);
    }

    // Panel (c): queue CDF at the hotspot, data-mining @ 60%.
    println!("\n(c) queue length at hotspot [Spine1->Leaf1], data-mining @ 60% load");
    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>12}",
        "scheme", "p50 (KB)", "p90 (KB)", "p99 (KB)", "max (KB)"
    );
    for scheme in Scheme::PAPER {
        let mut cfg = FctRun::new(
            if args.quick {
                TestbedOpts::paper_failure().quick()
            } else {
                TestbedOpts::paper_failure()
            },
            scheme,
            FlowSizeDist::data_mining(),
            0.6,
        );
        cfg.n_flows = if args.quick { 120 } else { 300 };
        cfg.seed = args.seed;
        cfg.cc = args.primary_cc();
        cfg.ecn_threshold_pkts = args.ecn_threshold;
        cfg.sample_uplinks = true;
        // Sample the hotspot channel instead of the leaf-0 uplinks: rebuild
        // the channel list by hand.
        let (out, report) = run_and_sample_hotspot(&cfg);
        match write_metrics_sidecar("fig11_link_failure", scheme.name(), &report) {
            Ok(p) => eprintln!("metrics sidecar: {}", p.display()),
            Err(e) => {
                eprintln!("metrics sidecar write failed: {e}");
                sidecar_failed = true;
            }
        }
        println!(
            "{:<12}{:>12.0}{:>12.0}{:>12.0}{:>12.0}",
            scheme.name(),
            out.0 / 1024.0,
            out.1 / 1024.0,
            out.2 / 1024.0,
            out.3 / 1024.0
        );
    }
    conga_experiments::cli::exit_summary("fig11_link_failure");
    if sidecar_failed {
        std::process::exit(1);
    }
}

/// Run the cell and return (p50, p90, p99, max) of the hotspot queue in
/// bytes plus the run's telemetry report. The hotspot is the surviving
/// Spine1→Leaf1 channel.
fn run_and_sample_hotspot(cfg: &FctRun) -> ((f64, f64, f64, f64), conga_telemetry::RunReport) {
    use conga_analysis::stats::percentile;
    // Identify the hotspot channel id in the built topology: the channel
    // from spine 1 to leaf 1.
    let topo = conga_experiments::build_testbed(cfg.topo);
    let hotspot: Vec<ChannelId> = topo
        .channels
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            c.kind == ChannelKind::SpineDown
                && matches!(c.src, NodeId::Spine(s) if s.0 == 1)
                && matches!(c.dst, NodeId::Leaf(l) if l.0 == 1)
        })
        .map(|(i, _)| ChannelId(i as u32))
        .collect();
    assert_eq!(hotspot.len(), 1, "exactly one surviving S1->L1 link");

    // run_fct samples leaf-0 uplinks; we need the hotspot, so replicate the
    // queue series from fabric mean/max stats: use the generic sampler by
    // running a custom copy here.
    let (out, report) = run_fct_sampling(cfg, hotspot[0]);
    // `percentile` is None exactly when the sample is empty; report an
    // all-zero hotspot profile rather than crash on a degenerate run.
    let p = |rank: f64| percentile(&out, rank).unwrap_or(0.0);
    ((p(50.0), p(90.0), p(99.0), p(100.0)), report)
}

/// A copy of the runner's core loop that samples one specific channel's
/// queue depth every 1 ms.
fn run_fct_sampling(cfg: &FctRun, ch: ChannelId) -> (Vec<f64>, conga_telemetry::RunReport) {
    use conga_net::Network;
    use conga_sim::{SimDuration, SimRng, SimTime};
    use conga_transport::{ListSource, TransportLayer};
    use conga_workloads::PoissonPlan;

    let topo = conga_experiments::build_testbed(cfg.topo);
    let baseline = TestbedOpts {
        fail: None,
        ..cfg.topo
    };
    let base_topo = conga_experiments::build_testbed(baseline);
    let capacity = base_topo
        .leaf_uplink_capacity(conga_net::LeafId(0))
        .min(base_topo.access_capacity(conga_net::LeafId(0)));
    let group_a = topo.hosts_under(conga_net::LeafId(0));
    let group_b = topo.hosts_under(conga_net::LeafId(1));
    let mut wl_rng = SimRng::new(cfg.seed.wrapping_mul(0x9E37_79B9) ^ 0xC04A);
    let plan = PoissonPlan::generate(
        &cfg.dist,
        group_a.len() as u32,
        group_b.len() as u32,
        capacity,
        cfg.load,
        cfg.n_flows,
        &mut wl_rng,
    );
    let tcp = cfg.tcp.with_cc(cfg.cc);
    let scheme = cfg.scheme;
    let arrivals =
        conga_experiments::merged_arrivals(&plan, &group_a, &group_b, |_| scheme.transport(tcp));
    let span: u64 = arrivals.iter().map(|(g, _)| g.as_nanos()).sum();
    let mut net = Network::new(topo, cfg.scheme.policy(), TransportLayer::new(), cfg.seed);
    if let Some(e) = cfg.ecn_config() {
        net.set_ecn(e);
    }
    net.enable_sampling(vec![ch], SimDuration::from_millis(1));
    net.agent.attach_source(Box::new(ListSource::new(arrivals)));
    if let Some((d, tok)) = net.agent.begin_source() {
        net.schedule_timer(d, tok);
    }
    let bound = SimTime::from_nanos(span) + SimDuration::from_secs(8);
    let total = cfg.n_flows * 2;
    loop {
        net.run_until(net.now() + SimDuration::from_millis(50));
        if net.agent.completed_rx >= total || net.now() >= bound {
            break;
        }
    }
    let report = conga_experiments::build_report(&net, cfg);
    let series = net.samples.queue_bytes[0]
        .iter()
        .map(|&b| b as f64)
        .collect();
    (series, report)
}
