//! Figure 9: FCT statistics for the **enterprise** workload on the baseline
//! testbed (Figure 7a), loads 10–90 %, schemes ECMP / CONGA-Flow / CONGA /
//! MPTCP. Three panels: overall avg FCT normalized to optimal; small-flow
//! and large-flow averages normalized to ECMP.
//!
//! The sweep routes through the fleet executor: `--jobs N` runs cells in
//! parallel, completed cells are served from the result cache (disable
//! with `--no-cache`), and the merged output is byte-identical either way.

use conga_experiments::{fleet, suite, Args};

fn main() {
    let args = Args::parse();
    suite::fig09(&args);
    fleet::finish("fig09_enterprise", &args);
}
