//! Figure 9: FCT statistics for the **enterprise** workload on the baseline
//! testbed (Figure 7a), loads 10–90 %, schemes ECMP / CONGA-Flow / CONGA /
//! MPTCP. Three panels: overall avg FCT normalized to optimal; small-flow
//! and large-flow averages normalized to ECMP.

use conga_experiments::figures::run_baseline_figure;
use conga_experiments::Args;
use conga_workloads::FlowSizeDist;

fn main() {
    let args = Args::parse();
    run_baseline_figure(
        &args,
        "fig09_enterprise",
        FlowSizeDist::enterprise(),
        "Figure 9 — enterprise workload, baseline topology",
        800,
    );
}
