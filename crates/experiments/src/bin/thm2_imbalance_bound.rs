//! Theorem 2: the traffic imbalance of randomized (ECMP-style) load
//! balancing vanishes like `1/√(λ_e t)`, where the effective rate `λ_e`
//! shrinks with the square of the flow-size coefficient of variation —
//! heavy workloads stay imbalanced far longer, which is where flowlets
//! (that slash the per-transfer CV) pay off.
//!
//! Monte-Carlo estimates of `E[χ(t)]` for the three empirical workloads
//! against the analytic bound, plus the flowlet effect: the same bytes
//! split at a 500 µs inactivity gap have a much smaller CV, hence a much
//! larger `λ_e`.

use conga_analysis::model::{imbalance_trial, lambda_e, theorem2_bound, SizeSource};
use conga_experiments::cli::banner;
use conga_experiments::Args;
use conga_sim::SimRng;
use conga_workloads::FlowSizeDist;

struct DistSource(FlowSizeDist, f64, f64);

impl SizeSource for DistSource {
    fn draw(&self, rng: &mut SimRng) -> f64 {
        self.0.sample(rng) as f64
    }
    fn mean(&self) -> f64 {
        self.1
    }
    fn cv(&self) -> f64 {
        self.2
    }
}

fn main() {
    let args = Args::parse();
    banner(
        "Theorem 2 — randomized load-balancing imbalance vs time",
        "E[x(t)] estimated by Monte-Carlo vs the bound 1/sqrt(lambda_e t);\n\
         n = 4 links, lambda = 10,000 flows/s",
    );
    let n_links = 4;
    let lambda = 10_000.0;
    let trials = if args.quick { 20 } else { 60 };
    let times = [0.05, 0.1, 0.2, 0.5, 1.0, 2.0];
    let mut rng = SimRng::new(args.seed);

    for dist in [
        FlowSizeDist::enterprise(),
        FlowSizeDist::data_mining(),
        FlowSizeDist::web_search(),
    ] {
        let cv = dist.coeff_of_variation();
        let m = dist.mean();
        let src = DistSource(dist.clone(), m, cv);
        println!(
            "\n{} (CV = {:.2}, lambda_e = {:.1}/s)",
            dist.name(),
            cv,
            lambda_e(lambda, n_links, cv)
        );
        println!(
            "{:>8} {:>14} {:>14} {:>8}",
            "t (s)", "E[x(t)] (MC)", "bound", "ok?"
        );
        for &t in &times {
            let est = imbalance_trial(&src, lambda, n_links, t, trials, &mut rng);
            let bound = theorem2_bound(lambda, n_links, cv, t);
            println!(
                "{:>8.2} {:>14.4} {:>14.4} {:>8}",
                t,
                est,
                bound,
                if est <= bound { "yes" } else { "NO" }
            );
        }
    }

    // The flowlet effect: CVs of whole flows vs 500us flowlets from the
    // synthetic trace — smaller CV => larger lambda_e => faster balance.
    use conga_workloads::trace::{generate_trace, split_flowlets, BurstModel};
    let mut trng = SimRng::new(args.seed ^ 0xF10);
    let trace = generate_trace(
        &FlowSizeDist::enterprise(),
        &BurstModel::default(),
        if args.quick { 2000 } else { 8000 },
        20_000.0,
        &mut trng,
    );
    let stats = |sizes: &[u64]| -> (f64, f64) {
        let n = sizes.len() as f64;
        let m = sizes.iter().map(|&x| x as f64).sum::<f64>() / n;
        let v = sizes.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / n;
        (m, v.sqrt() / m)
    };
    let (_, cv_flow) = stats(&split_flowlets(&trace, None));
    let (_, cv_fl) = stats(&split_flowlets(
        &trace,
        Some(conga_sim::SimDuration::from_micros(500)),
    ));
    println!(
        "\nflowlet effect on the enterprise trace: CV(flows) = {cv_flow:.2} vs \
         CV(500us flowlets) = {cv_fl:.2}"
    );
    println!(
        "  => lambda_e improves {:.1}x; balance converges that much faster \
         (flowlet arrival rate is also higher, compounding the gain)",
        (1.0 + cv_flow * cv_flow) / (1.0 + cv_fl * cv_fl)
    );
    conga_experiments::cli::exit_summary("thm2_imbalance_bound");
}
