//! Figure 10: FCT statistics for the **data-mining** workload on the
//! baseline testbed — the heavy-tailed case where ECMP visibly loses to the
//! adaptive schemes at high load.

use conga_experiments::figures::run_baseline_figure;
use conga_experiments::Args;
use conga_workloads::FlowSizeDist;

fn main() {
    let args = Args::parse();
    run_baseline_figure(
        &args,
        "fig10_datamining",
        FlowSizeDist::data_mining(),
        "Figure 10 — data-mining workload, baseline topology",
        250,
    );
}
