//! Figure 10: FCT statistics for the **data-mining** workload on the
//! baseline testbed — the heavy-tailed case where ECMP visibly loses to the
//! adaptive schemes at high load.
//!
//! The sweep routes through the fleet executor: `--jobs N` runs cells in
//! parallel, completed cells are served from the result cache (disable
//! with `--no-cache`), and the merged output is byte-identical either way.

use conga_experiments::{fleet, suite, Args};

fn main() {
    let args = Args::parse();
    suite::fig10(&args);
    fleet::finish("fig10_datamining", &args);
}
