//! Figure 2: why congestion-aware load balancing needs **non-local**
//! information under asymmetry.
//!
//! Leaf 0 offers 100 Gbps of TCP traffic to Leaf 1 over two spines; the
//! S1→L1 link has half the capacity (40 G) of the other links (80 G).
//! The paper's analysis:
//!
//! * static ECMP splits 50/50 → lower path bottlenecked at 40 G → ~90 G;
//! * *local* congestion-aware balancing equalizes local uplink load →
//!   40/40 → ~80 G (worse than ECMP!);
//! * global (CONGA) converges to a ~2:1 split → ~100 G.
//!
//! We run many long-lived TCP flows and report the aggregate steady-state
//! throughput plus the per-spine split for each scheme.

use conga_core::FabricPolicy;
use conga_experiments::cli::banner;
use conga_experiments::Args;
use conga_net::{Dataplane, HostId, LeafSpineBuilder, Network, NodeId, SpineId};
use conga_sim::{SimDuration, SimTime};
use conga_transport::{FlowSpec, TcpConfig, TransportKind, TransportLayer};

fn run(policy: FabricPolicy, args: &Args) -> (f64, f64, f64) {
    // 10 hosts per leaf at 10G = the paper's 100 Gbps of TCP demand toward
    // leaf 1, against 80 G + 40 G of asymmetric path capacity.
    let hosts = 10;
    let topo = LeafSpineBuilder::new(2, 2, hosts)
        .host_rate_gbps(10)
        .fabric_rate_gbps(80)
        .parallel_links(1)
        .override_link_rate_gbps(1, 1, 0, 40)
        .build();
    let name = policy.name();
    let mut net = Network::new(topo, policy, TransportLayer::new(), args.seed);
    // Long-lived saturated flows: model Linux receive-buffer autotuning
    // (multi-MB windows) so the bottleneck queue actually fills and drops —
    // the loss/recovery stalls are what opens flowlet gaps on saturated
    // flows. A datacenter-tuned minRTO keeps convergence fast.
    let mut tcp = TcpConfig::standard().with_min_rto(SimDuration::from_millis(2));
    tcp.rwnd = 4 << 20;
    net.agent_call(|a, now, em| {
        for i in 0..hosts {
            a.start_flow(
                FlowSpec {
                    src: HostId(i),
                    dst: HostId(hosts + i),
                    bytes: u64::MAX / 2,
                    kind: TransportKind::Tcp(tcp),
                },
                now,
                em,
            );
        }
    });
    // Warm up, then measure over a steady window.
    let warm = if args.quick { 30 } else { 80 };
    let window_ms = if args.quick { 30 } else { 120 };
    net.run_until(SimTime::from_millis(warm));
    let up0: Vec<_> = net.fib.leaf_uplinks[0].clone();
    let start: Vec<u64> = up0.iter().map(|&c| net.port(c).tx_bytes).collect();
    net.run_until(SimTime::from_millis(warm + window_ms));
    let mut per_spine = [0.0f64; 2];
    for (i, &c) in up0.iter().enumerate() {
        let bytes = net.port(c).tx_bytes - start[i];
        let gbps = bytes as f64 * 8.0 / (window_ms as f64 * 1e-3) / 1e9;
        let NodeId::Spine(SpineId(s)) = net.topo.channel(c).dst else {
            unreachable!()
        };
        per_spine[s as usize] += gbps;
    }
    eprintln!(
        "[{name}] upper (via S0) {:.1}G, lower (via S1) {:.1}G",
        per_spine[0], per_spine[1]
    );
    (per_spine[0] + per_spine[1], per_spine[0], per_spine[1])
}

fn main() {
    let args = Args::parse();
    banner(
        "Figure 2 — asymmetry demands global congestion-awareness",
        "L0->L1 TCP demand ~100G+; upper path 80G, lower path bottlenecked at 40G.\n\
         Paper: ECMP ~90G (50/50), local-aware ~80G (40/40), CONGA ~100G (2:1 split)",
    );
    println!(
        "{:<22}{:>12}{:>14}{:>14}",
        "scheme", "total Gbps", "via S0 (80G)", "via S1 (40G)"
    );
    for (label, policy) in [
        ("(a) ECMP (static)", FabricPolicy::ecmp()),
        ("(b) local-aware", FabricPolicy::local()),
        ("(c) CONGA (global)", FabricPolicy::conga()),
        ("    weighted-random", FabricPolicy::weighted()),
    ] {
        let (total, s0, s1) = run(policy, &args);
        println!("{label:<22}{total:>12.1}{s0:>14.1}{s1:>14.1}");
    }
    conga_experiments::cli::exit_summary("fig02_asymmetry");
}
