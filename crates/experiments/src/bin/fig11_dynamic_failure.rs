//! Dynamic link failure: fail one Leaf1–Spine1 40 G link *mid-run* on the
//! healthy baseline fabric, bring it back later, and report per-scheme:
//!
//! * delivered throughput before / during / after the failure window,
//! * time-to-reconverge (throughput back to ≥ 85 % of the pre-fail mean),
//! * packets blackholed by the dead link, and
//! * stranded flows (must be zero: transports retransmit across the
//!   blackhole window and the fabric reconverges around the failure).
//!
//! Complements `fig11_link_failure`, where the link is down from t = 0:
//! this harness exercises the runtime fault-injection path — queued and
//! in-flight packets are blackholed at the transition and the FIB
//! reconverges while traffic is flowing.
//!
//! Flags: `--quick`, `--seed N`, `--jobs N`, `--no-cache`, `--fail-at-ms T`,
//! `--recover-at-ms T`, `--fault-link l:s:p`, `--trace DIR`
//! (+ `--trace-flows`, `--trace-ring`).

use conga_experiments::{fleet, suite, Args};

fn main() {
    let args = Args::parse();
    let ok = suite::fig11_dynamic(&args);
    fleet::finish("fig11_dynamic_failure", &args);
    if !ok {
        std::process::exit(1);
    }
}
