//! Dynamic link failure: fail one Leaf1–Spine1 40 G link *mid-run* on the
//! healthy baseline fabric, bring it back later, and report per-scheme:
//!
//! * delivered throughput before / during / after the failure window,
//! * time-to-reconverge (throughput back to ≥ 85 % of the pre-fail mean),
//! * packets blackholed by the dead link, and
//! * stranded flows (must be zero: transports retransmit across the
//!   blackhole window and the fabric reconverges around the failure).
//!
//! Complements `fig11_link_failure`, where the link is down from t = 0:
//! this harness exercises the runtime fault-injection path — queued and
//! in-flight packets are blackholed at the transition and the FIB
//! reconverges while traffic is flowing.
//!
//! Flags: `--quick`, `--seed N`, `--fail-at-ms T`, `--recover-at-ms T`,
//! `--fault-link l:s:p`, `--trace DIR` (+ `--trace-flows`, `--trace-ring`).

use conga_experiments::cli::banner;
use conga_experiments::figures::{trace_args, write_metrics_sidecar, write_trace_sidecars};
use conga_experiments::{run_dynamic_failure, Args, DynFailSpec, Scheme};
use conga_sim::SimTime;

fn main() {
    let args = Args::parse();
    banner(
        "Figure 11 (dynamic) — link fails mid-run, recovers later",
        "baseline fabric at 60% load; y = delivered throughput around the fault window",
    );

    let tracing = trace_args(&args);
    let mut sidecar_failed = false;
    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>14}{:>12}{:>10}",
        "scheme",
        "pre (Gbps)",
        "dip (Gbps)",
        "post (Gbps)",
        "reconv (ms)",
        "blackholed",
        "stranded"
    );
    for scheme in Scheme::PAPER {
        let mut spec = DynFailSpec::paper(scheme, args.quick, args.seed);
        // Optional overrides shared with the sweep binaries.
        let fail_ms: f64 = args.get("fail-at-ms", -1.0);
        if fail_ms >= 0.0 {
            spec.fail_at = SimTime::from_nanos((fail_ms * 1e6) as u64);
        }
        let recover_ms: f64 = args.get("recover-at-ms", -1.0);
        if recover_ms >= 0.0 {
            spec.recover_at = SimTime::from_nanos((recover_ms * 1e6) as u64);
        }
        let link: String = args.get("fault-link", String::new());
        if !link.is_empty() {
            let parts: Vec<u32> = link
                .split(':')
                .map(|x| x.parse().expect("--fault-link wants leaf:spine:parallel"))
                .collect();
            assert_eq!(parts.len(), 3, "--fault-link wants leaf:spine:parallel");
            spec.link = (parts[0], parts[1], parts[2]);
        }

        spec.trace = tracing.as_ref().map(|t| t.spec.clone());

        let out = run_dynamic_failure(&spec);
        if let (Some(t), Some(handle)) = (&tracing, &out.trace) {
            if let Err(e) =
                write_trace_sidecars(&t.dir, "fig11_dynamic_failure", scheme.name(), handle)
            {
                eprintln!("trace sidecar write failed: {e}");
                sidecar_failed = true;
            }
        }
        match write_metrics_sidecar("fig11_dynamic_failure", scheme.name(), &out.report) {
            Ok(p) => eprintln!("metrics sidecar: {}", p.display()),
            Err(e) => {
                eprintln!("metrics sidecar write failed: {e}");
                sidecar_failed = true;
            }
        }
        println!(
            "{:<12}{:>12.1}{:>12.1}{:>12.1}{:>14}{:>12}{:>10}",
            scheme.name(),
            out.pre_bps / 1e9,
            out.during_bps / 1e9,
            out.post_bps / 1e9,
            match out.reconverge {
                Some(d) => format!("{:.0}", d.as_secs_f64() * 1e3),
                None => "never".to_string(),
            },
            out.blackholed,
            out.stranded,
        );
    }
    if sidecar_failed {
        std::process::exit(1);
    }
}
