//! Shared figure-generation code used by multiple binaries (Figures 9, 10,
//! 11 share the FCT-vs-load sweep; Figure 15 reuses it at scale).

use crate::cli::{banner, Args};
use crate::fleet::{fct_cell, run_cells, FleetOpts};
use crate::runner::{FctRun, LinkFaultSpec, Scheme, TestbedOpts, TraceSpec};
use conga_sim::SimTime;
use conga_telemetry::RunReport;
use conga_trace::TraceHandle;
use conga_workloads::FlowSizeDist;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Write a run's telemetry artifact as `results/<figure>.<label>.metrics.json`
/// and return the path. The label is slugified (lowercase, non-alphanumerics
/// become `-`) so scheme names like `CONGA-Flow` give stable file names.
pub fn write_metrics_sidecar(
    figure: &str,
    label: &str,
    report: &RunReport,
) -> std::io::Result<PathBuf> {
    write_metrics_sidecar_text(figure, label, &report.to_json())
}

/// [`write_metrics_sidecar`] from pre-rendered artifact text — the cache
/// stores a cell's `RunReport` JSON verbatim, so a cache hit re-emits a
/// byte-identical sidecar without re-running the simulation.
pub fn write_metrics_sidecar_text(
    figure: &str,
    label: &str,
    json: &str,
) -> std::io::Result<PathBuf> {
    let slug: String = label
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = PathBuf::from("results").join(format!("{figure}.{slug}.metrics.json"));
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Write a cell's time-series artifacts — `results/<figure>.<slug>.series.jsonl`
/// and `.csv` — from the rendered text a [`conga_fleet::CellResult`] carries
/// (`series_jsonl` / `series_csv` keys). The text rides in the result-cache
/// entry, so warm-cache re-runs re-emit byte-identical sidecars without
/// re-running the simulation. No-op (returns `None`) when the cell sampled
/// no series.
pub fn write_series_sidecars_from_text(
    figure: &str,
    label: &str,
    result: &conga_fleet::CellResult,
) -> std::io::Result<Option<(PathBuf, PathBuf)>> {
    let (Some(jsonl), Some(csv)) = (
        result.text.get("series_jsonl"),
        result.text.get("series_csv"),
    ) else {
        return Ok(None);
    };
    let slug: String = label
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let jpath = dir.join(format!("{figure}.{slug}.series.jsonl"));
    let cpath = dir.join(format!("{figure}.{slug}.series.csv"));
    std::fs::write(&jpath, jsonl)?;
    std::fs::write(&cpath, csv)?;
    Ok(Some((jpath, cpath)))
}

/// Event-tracing options parsed from the CLI: where to write the artifacts
/// and what to record.
#[derive(Clone, Debug)]
pub struct TraceArgs {
    /// Output directory for the `.trace.jsonl` / `.trace.chrome.json` files.
    pub dir: PathBuf,
    /// What to record (flow sampling, ring bound).
    pub spec: TraceSpec,
}

/// Parse the structured-tracing flags shared by every figure binary:
///
/// * `--trace DIR` — enable tracing and write artifacts under `DIR`,
/// * `--trace-flows a,b,c` — sample only these flow ids (default: all),
/// * `--trace-ring N` — flight-recorder mode, keep only the last N events.
///
/// Returns `None` when `--trace` is absent, so untraced runs pay nothing.
pub fn trace_args(args: &Args) -> Option<TraceArgs> {
    let dir: String = args.get("trace", String::new());
    if dir.is_empty() {
        return None;
    }
    let mut spec = TraceSpec::default();
    let flows: String = args.get("trace-flows", String::new());
    if !flows.is_empty() {
        spec.flows = Some(
            flows
                .split(',')
                .map(|x| x.trim().parse().expect("--trace-flows wants flow ids"))
                .collect(),
        );
    }
    let ring: i64 = args.get("trace-ring", -1);
    if ring >= 0 {
        spec.ring = Some(ring as usize);
    }
    Some(TraceArgs {
        dir: PathBuf::from(dir),
        spec,
    })
}

/// Export a finished run's trace as `<dir>/<figure>.<label>.trace.jsonl`
/// and `<dir>/<figure>.<label>.trace.chrome.json` (label slugified as in
/// [`write_metrics_sidecar`]), print both paths to stderr, and return them.
pub fn write_trace_sidecars(
    dir: &std::path::Path,
    figure: &str,
    label: &str,
    trace: &TraceHandle,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let slug: String = label
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    std::fs::create_dir_all(dir)?;
    let jsonl = dir.join(format!("{figure}.{slug}.trace.jsonl"));
    let chrome = dir.join(format!("{figure}.{slug}.trace.chrome.json"));
    let jsonl_text = trace
        .export_jsonl()
        .expect("write_trace_sidecars wants an enabled trace handle");
    let chrome_text = trace.export_chrome().expect("enabled handle");
    std::fs::write(&jsonl, jsonl_text)?;
    std::fs::write(&chrome, chrome_text)?;
    eprintln!("trace: {} ({} events)", jsonl.display(), trace.len());
    eprintln!("trace: {}", chrome.display());
    if trace.dropped() > 0 {
        eprintln!(
            "trace: ring evicted {} earlier events (raise --trace-ring to keep more)",
            trace.dropped()
        );
    }
    Ok((jsonl, chrome))
}

/// Parse the runtime fault-injection flags shared by every sweep binary
/// into a fault schedule:
///
/// * `--fail-at-ms T` — fail a link T ms into the run,
/// * `--recover-at-ms T` — recover it T ms in (optional; omit for a
///   permanent failure),
/// * `--fault-link l:s:p` — which link (default `1:1:0`, the paper's
///   Figure 7(b) link).
///
/// Returns an empty schedule when `--fail-at-ms` is absent, so existing
/// scenarios run unchanged.
pub fn fault_args(args: &Args) -> Vec<LinkFaultSpec> {
    let fail_ms: f64 = args.get("fail-at-ms", -1.0);
    if fail_ms < 0.0 {
        return Vec::new();
    }
    let link: String = args.get("fault-link", "1:1:0".to_string());
    let parts: Vec<u32> = link
        .split(':')
        .map(|x| {
            x.trim()
                .parse()
                .expect("--fault-link wants leaf:spine:parallel")
        })
        .collect();
    assert_eq!(parts.len(), 3, "--fault-link wants leaf:spine:parallel");
    let at_ns = |ms: f64| SimTime::from_nanos((ms * 1e6) as u64);
    let mut sched = vec![LinkFaultSpec::fail(
        at_ns(fail_ms),
        parts[0],
        parts[1],
        parts[2],
    )];
    let recover_ms: f64 = args.get("recover-at-ms", -1.0);
    if recover_ms >= 0.0 {
        assert!(
            recover_ms > fail_ms,
            "--recover-at-ms must come after --fail-at-ms"
        );
        sched.push(LinkFaultSpec::recover(
            at_ns(recover_ms),
            parts[0],
            parts[1],
            parts[2],
        ));
    }
    sched
}

/// Results of one FCT sweep: `cells[scheme][load]`.
pub struct Sweep {
    /// Load points.
    pub loads: Vec<f64>,
    /// Schemes, row order.
    pub schemes: Vec<Scheme>,
    /// Overall average FCT normalized to optimal.
    pub overall: Vec<Vec<f64>>,
    /// Small-flow (< 100 KB) average FCT, seconds; `None` when no run of
    /// the cell completed a small flow (serialized as JSON null).
    pub small: Vec<Vec<Option<f64>>>,
    /// Large-flow (> 10 MB) average FCT, seconds; `None` for empty buckets.
    pub large: Vec<Vec<Option<f64>>>,
    /// Flows not completed within the drain bound.
    pub incomplete: Vec<Vec<usize>>,
}

/// Run an FCT sweep over the paper's scheme set. `figure` names the trace
/// artifacts when `--trace DIR` is given (see [`trace_args`]).
pub fn fct_sweep(
    args: &Args,
    figure: &str,
    topo: TestbedOpts,
    dist: &FlowSizeDist,
    loads: &[f64],
    schemes: &[Scheme],
    flows_full: usize,
) -> Sweep {
    let n_flows = if args.quick {
        120
    } else {
        args.get("flows", flows_full)
    };
    let runs = args.runs_or(1, 2);
    let topo = if args.quick { topo.quick() } else { topo };
    // Every sweep scenario accepts the runtime fault flags (empty when the
    // flags are absent — see [`fault_args`]) and the tracing flags (`None`
    // when absent — see [`trace_args`]).
    let faults = fault_args(args);
    let tracing = trace_args(args);

    let mut sweep = Sweep {
        loads: loads.to_vec(),
        schemes: schemes.to_vec(),
        overall: vec![vec![0.0; loads.len()]; schemes.len()],
        small: vec![vec![None; loads.len()]; schemes.len()],
        large: vec![vec![None; loads.len()]; schemes.len()],
        incomplete: vec![vec![0; loads.len()]; schemes.len()],
    };
    // One fleet cell per (scheme, load, run): independent deterministic
    // simulations, executed in parallel under `--jobs N` and skipped on
    // result-cache hits. `run_cells` returns them in this build order, so
    // the merge below — and every artifact — is byte-identical whatever
    // the worker count or cache state.
    let opts = FleetOpts::from_args(args, tracing.is_some());
    let mut cells = Vec::with_capacity(schemes.len() * loads.len() * runs);
    for &scheme in schemes {
        for &load in loads {
            for r in 0..runs {
                let mut cfg = FctRun::new(topo, scheme, dist.clone(), load);
                cfg.n_flows = n_flows;
                cfg.seed = args.seed + 1000 * r as u64;
                cfg.faults = faults.clone();
                cfg.trace = tracing.as_ref().map(|t| t.spec.clone());
                cfg.shards = args.shards;
                cfg.cc = args.primary_cc();
                cfg.ecn_threshold_pkts = args.ecn_threshold;
                // Three-tier (fig15-scale) cells always stream their FCTs
                // through the sketch — the whole point of running 10k+
                // hosts is not buffering one sample per flow. Two-tier
                // cells keep the exact path (and its goldens) unless
                // `--sketch true` opts in.
                cfg.sketch = topo.pods > 1 || args.get("sketch", false);
                // The default controller keeps historical labels (and so
                // sidecar paths) unchanged; alternates are called out.
                let label = if cfg.cc == conga_transport::CcKind::Aimd {
                    format!("{}.load{:02.0}.r{r}", scheme.name(), load * 100.0)
                } else {
                    format!(
                        "{}.{}.load{:02.0}.r{r}",
                        scheme.name(),
                        cfg.cc.name(),
                        load * 100.0
                    )
                };
                cells.push(fct_cell(figure, &label, cfg, args.quick, tracing.clone()));
            }
        }
    }
    let labels: Vec<String> = cells.iter().map(|c| c.scenario.label.clone()).collect();
    let results = run_cells(cells, &opts);
    // Cells that sampled time-series (e.g. under --sample-uplinks style
    // configs) emit their windowed series as sidecars; others skip free.
    for (label, cell) in labels.iter().zip(&results) {
        if let Ok(Some((p, _))) = write_series_sidecars_from_text(figure, label, cell) {
            eprintln!("series sidecar: {}", p.display());
        }
    }
    let mut it = results.iter();
    for (si, scheme) in schemes.iter().enumerate() {
        for (li, &load) in loads.iter().enumerate() {
            let mut o = 0.0;
            let (mut s, mut s_n) = (0.0, 0usize);
            let (mut l, mut l_n) = (0.0, 0usize);
            for _ in 0..runs {
                let cell = it.next().expect("one result per cell");
                o += cell.summary.avg_norm_optimal;
                // Runs whose size bucket is empty don't contribute a
                // phantom 0.0 to the bucket mean; a cell where *every*
                // run's bucket is empty stays `None` (JSON null).
                if let Some(v) = cell.summary.small_avg_s {
                    s += v;
                    s_n += 1;
                }
                if let Some(v) = cell.summary.large_avg_s {
                    l += v;
                    l_n += 1;
                }
                sweep.incomplete[si][li] += cell.summary.incomplete;
            }
            sweep.overall[si][li] = o / runs as f64;
            sweep.small[si][li] = (s_n > 0).then(|| s / s_n as f64);
            sweep.large[si][li] = (l_n > 0).then(|| l / l_n as f64);
            eprintln!(
                "[{}] load {:.0}%: {:.2}x optimal ({} incomplete)",
                scheme.name(),
                load * 100.0,
                sweep.overall[si][li],
                sweep.incomplete[si][li]
            );
        }
    }
    match write_sweep_sidecar(figure, &sweep) {
        Ok(p) => eprintln!("sweep sidecar: {}", p.display()),
        Err(e) => {
            eprintln!("sweep sidecar write failed: {e}");
            std::process::exit(1);
        }
    }
    sweep
}

/// Write the merged sweep matrices as deterministic JSON at
/// `results/<figure>.sweep.json` and return the path. This is the
/// byte-comparable "merged output" artifact of a sweep: identical for
/// `--jobs 1`, `--jobs N`, and warm-cache re-runs (CI diffs it).
pub fn write_sweep_sidecar(figure: &str, sweep: &Sweep) -> std::io::Result<PathBuf> {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"loads\": [");
    for (i, l) in sweep.loads.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_json_f64(&mut out, *l);
    }
    out.push_str("],\n  \"schemes\": [");
    for (i, s) in sweep.schemes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", s.name());
    }
    out.push_str("],");
    // Each matrix cell is Option<f64>: `None` (an empty size bucket) and
    // non-finite values both render as JSON null, deterministically.
    let write_matrix =
        |out: &mut String, name: &str, cell: &dyn Fn(usize, usize) -> Option<f64>| {
            let _ = write!(out, "\n  \"{name}\": [");
            for si in 0..sweep.schemes.len() {
                if si > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                for li in 0..sweep.loads.len() {
                    if li > 0 {
                        out.push_str(", ");
                    }
                    match cell(si, li) {
                        Some(v) => write_json_f64(out, v),
                        None => out.push_str("null"),
                    }
                }
                out.push(']');
            }
            out.push_str("],");
        };
    write_matrix(&mut out, "overall_norm_optimal", &|si, li| {
        Some(sweep.overall[si][li])
    });
    write_matrix(&mut out, "small_avg_s", &|si, li| sweep.small[si][li]);
    write_matrix(&mut out, "large_avg_s", &|si, li| sweep.large[si][li]);
    out.push_str("\n  \"incomplete\": [");
    for (si, row) in sweep.incomplete.iter().enumerate() {
        if si > 0 {
            out.push_str(", ");
        }
        out.push('[');
        for (li, v) in row.iter().enumerate() {
            if li > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{v}");
        }
        out.push(']');
    }
    out.push_str("]\n}\n");
    let path = PathBuf::from("results").join(format!("{figure}.sweep.json"));
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

pub(crate) fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        let integral = !s.contains(['.', 'e', 'E']);
        out.push_str(&s);
        if integral {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Print the three panels of a Figure-9-style sweep.
pub fn print_fct_panels(sweep: &Sweep) {
    let print_panel = |title: &str, cell: &dyn Fn(usize, usize) -> f64| {
        println!("\n{title}");
        print!("{:<12}", "load");
        for l in &sweep.loads {
            print!("{:>9.0}%", l * 100.0);
        }
        println!();
        for (si, s) in sweep.schemes.iter().enumerate() {
            print!("{:<12}", s.name());
            for li in 0..sweep.loads.len() {
                print!("{:>10.3}", cell(si, li));
            }
            println!();
        }
    };
    print_panel(
        "(a) Overall average FCT (normalized to optimal)",
        &|si, li| sweep.overall[si][li],
    );
    // Empty buckets print as 0.000 in the plain-text panels (the
    // historical sentinel); the JSON sidecar distinguishes them as null.
    print_panel("(b) Small flows < 100KB (normalized to ECMP)", &|si, li| {
        sweep.small[si][li].unwrap_or(0.0) / sweep.small[0][li].unwrap_or(0.0).max(1e-12)
    });
    print_panel("(c) Large flows > 10MB (normalized to ECMP)", &|si, li| {
        sweep.large[si][li].unwrap_or(0.0) / sweep.large[0][li].unwrap_or(0.0).max(1e-12)
    });
    let unfinished: usize = sweep.incomplete.iter().flatten().sum();
    if unfinished > 0 {
        println!("\nnote: {unfinished} flows total did not finish within the drain bound");
    }
}

/// Parse `--loads 10,30,50` into fractions, or fall back to `default`.
pub fn loads_arg(args: &Args, default: Vec<f64>) -> Vec<f64> {
    let raw: String = args.get("loads", String::new());
    if raw.is_empty() {
        return default;
    }
    raw.split(',')
        .map(|x| x.trim().parse::<f64>().expect("--loads wants percents") / 100.0)
        .collect()
}

/// The Figure 9/10 driver shared by both workload binaries. `figure` names
/// the trace artifacts when `--trace DIR` is given.
pub fn run_baseline_figure(
    args: &Args,
    figure: &str,
    dist: FlowSizeDist,
    title: &str,
    flows_full: usize,
) {
    banner(
        title,
        "testbed: 64 hosts, 2 leaves, 2 spines, 10G access / 2x40G uplinks (2:1 oversub)",
    );
    let loads = loads_arg(
        args,
        if args.quick {
            vec![0.3, 0.6]
        } else {
            (1..=9).map(|l| l as f64 / 10.0).collect()
        },
    );
    let sweep = fct_sweep(
        args,
        figure,
        TestbedOpts::paper_baseline(),
        &dist,
        &loads,
        &Scheme::PAPER,
        flows_full,
    );
    print_fct_panels(&sweep);
}
