//! The figure-suite drivers: each routed `fig*` binary's body lives here
//! so the `fleet` orchestrator can drive the same code paths
//! (`fleet all`, `fleet fig12`, ...) that the standalone binaries use.
//!
//! Every driver routes its cell matrix through the fleet executor
//! ([`crate::fleet::run_cells`]): cells run in parallel under `--jobs N`,
//! completed cells are served from the content-addressed result cache,
//! and the printed tables and sidecar artifacts are byte-identical
//! whatever the worker count or cache state. Drivers return `false` when
//! a sidecar write failed (the binaries exit nonzero on that).

use crate::cli::{banner, Args};
use crate::dynfail::{dynfail_cell, DynFailSpec};
use crate::figures::{
    run_baseline_figure, trace_args, write_metrics_sidecar_text, write_trace_sidecars,
};
use crate::fleet::{fct_scenario, run_cells, FleetCell, FleetOpts};
use crate::runner::{FctRun, Scheme, TestbedOpts, TraceSpec};
use conga_analysis::imbalance::throughput_imbalance;
use conga_analysis::stats::percentile;
use conga_fleet::{CellResult, Scenario, TopoSpec};
use conga_net::{HostId, LeafSpineBuilder, Network};
use conga_sim::{SimDuration, SimRng, SimTime};
use conga_telemetry::RunReport;
use conga_transport::{FlowSpec, ListSource, TcpConfig, TransportLayer};
use conga_workloads::{FlowSizeDist, IncastPattern};

/// Figure 9: enterprise workload FCT sweep on the baseline testbed.
pub fn fig09(args: &Args) {
    run_baseline_figure(
        args,
        "fig09_enterprise",
        FlowSizeDist::enterprise(),
        "Figure 9 — enterprise workload, baseline topology",
        800,
    );
}

/// Figure 10: data-mining workload FCT sweep on the baseline testbed.
pub fn fig10(args: &Args) {
    run_baseline_figure(
        args,
        "fig10_datamining",
        FlowSizeDist::data_mining(),
        "Figure 10 — data-mining workload, baseline topology",
        250,
    );
}

/// Figure 11 (dynamic): mid-run link failure and recovery, per scheme.
/// Returns `false` if any sidecar write failed.
pub fn fig11_dynamic(args: &Args) -> bool {
    banner(
        "Figure 11 (dynamic) — link fails mid-run, recovers later",
        "baseline fabric at 60% load; y = delivered throughput around the fault window",
    );

    let tracing = trace_args(args);
    let opts = FleetOpts::from_args(args, tracing.is_some());
    let mut sidecar_failed = false;
    let mut cells = Vec::new();
    for scheme in Scheme::PAPER {
        let mut spec = DynFailSpec::paper(scheme, args.quick, args.seed);
        // Optional overrides shared with the sweep binaries.
        let fail_ms: f64 = args.get("fail-at-ms", -1.0);
        if fail_ms >= 0.0 {
            spec.fail_at = SimTime::from_nanos((fail_ms * 1e6) as u64);
        }
        let recover_ms: f64 = args.get("recover-at-ms", -1.0);
        if recover_ms >= 0.0 {
            spec.recover_at = SimTime::from_nanos((recover_ms * 1e6) as u64);
        }
        let link: String = args.get("fault-link", String::new());
        if !link.is_empty() {
            let parts: Vec<u32> = link
                .split(':')
                .map(|x| x.parse().expect("--fault-link wants leaf:spine:parallel"))
                .collect();
            assert_eq!(parts.len(), 3, "--fault-link wants leaf:spine:parallel");
            spec.link = (parts[0], parts[1], parts[2]);
        }
        spec.trace = tracing.as_ref().map(|t| t.spec.clone());
        spec.shards = args.shards;
        cells.push(dynfail_cell(
            "fig11_dynamic_failure",
            scheme.name(),
            spec,
            args.quick,
            tracing.clone(),
        ));
    }
    let results = run_cells(cells, &opts);

    println!(
        "{:<12}{:>12}{:>12}{:>12}{:>14}{:>12}{:>10}",
        "scheme",
        "pre (Gbps)",
        "dip (Gbps)",
        "post (Gbps)",
        "reconv (ms)",
        "blackholed",
        "stranded"
    );
    for (scheme, out) in Scheme::PAPER.iter().zip(&results) {
        match write_metrics_sidecar_text("fig11_dynamic_failure", scheme.name(), &out.report_json) {
            Ok(p) => eprintln!("metrics sidecar: {}", p.display()),
            Err(e) => {
                eprintln!("metrics sidecar write failed: {e}");
                sidecar_failed = true;
            }
        }
        println!(
            "{:<12}{:>12.1}{:>12.1}{:>12.1}{:>14}{:>12}{:>10}",
            scheme.name(),
            out.value("pre_bps") / 1e9,
            out.value("during_bps") / 1e9,
            out.value("post_bps") / 1e9,
            out.text
                .get("reconverge_ms")
                .map(String::as_str)
                .unwrap_or("?"),
            out.value("blackholed") as u64,
            out.value("stranded") as u64,
        );
    }
    !sidecar_failed
}

/// Figure 12: uplink throughput imbalance at 60 % load, both workloads.
/// Returns `false` if any sidecar write failed.
pub fn fig12(args: &Args) -> bool {
    let tracing = trace_args(args);
    let opts = FleetOpts::from_args(args, tracing.is_some());
    let mut sidecar_failed = false;
    banner(
        "Figure 12 — uplink throughput imbalance (MAX-MIN)/AVG at 60% load",
        "synchronous 10ms samples of Leaf 0's four uplinks, baseline topology",
    );
    let workloads = [
        (FlowSizeDist::enterprise(), 3000),
        (FlowSizeDist::data_mining(), 600),
    ];
    let mut cells = Vec::new();
    for (dist, flows) in &workloads {
        for scheme in Scheme::PAPER {
            let mut cfg = FctRun::new(
                if args.quick {
                    TestbedOpts::paper_baseline().quick()
                } else {
                    TestbedOpts::paper_baseline()
                },
                scheme,
                dist.clone(),
                0.6,
            );
            cfg.n_flows = if args.quick { 150 } else { *flows };
            cfg.seed = args.seed;
            cfg.sample_uplinks = true;
            cfg.trace = tracing.as_ref().map(|t| t.spec.clone());
            cfg.shards = args.shards;
            let label = format!("{}.{}", dist.name(), scheme.name());
            cells.push(fig12_cell(label, cfg, args.quick, tracing.clone()));
        }
    }
    let results = run_cells(cells, &opts);

    let mut it = results.iter();
    for (dist, _) in &workloads {
        println!("\n({}) workload", dist.name());
        println!(
            "{:<12}{:>10}{:>10}{:>10}{:>10}",
            "scheme", "p25 (%)", "p50 (%)", "p75 (%)", "p95 (%)"
        );
        for scheme in Scheme::PAPER {
            let out = it.next().expect("one result per cell");
            let label = format!("{}.{}", dist.name(), scheme.name());
            match write_metrics_sidecar_text("fig12_imbalance", &label, &out.report_json) {
                Ok(p) => eprintln!("metrics sidecar: {}", p.display()),
                Err(e) => {
                    eprintln!("metrics sidecar write failed: {e}");
                    sidecar_failed = true;
                }
            }
            match crate::figures::write_series_sidecars_from_text("fig12_imbalance", &label, out) {
                Ok(Some((p, _))) => eprintln!("series sidecar: {}", p.display()),
                Ok(None) => {}
                Err(e) => {
                    eprintln!("series sidecar write failed: {e}");
                    sidecar_failed = true;
                }
            }
            if out.value("n_windows") == 0.0 {
                println!(
                    "{:<12}{:>10}{:>10}{:>10}{:>10}",
                    scheme.name(),
                    "-",
                    "-",
                    "-",
                    "-"
                );
                continue;
            }
            println!(
                "{:<12}{:>10.0}{:>10.0}{:>10.0}{:>10.0}",
                scheme.name(),
                out.value("p25"),
                out.value("p50"),
                out.value("p75"),
                out.value("p95"),
            );
        }
    }
    !sidecar_failed
}

/// One Figure-12 cell: an uplink-sampling FCT run whose imbalance
/// percentiles are derived in-worker (uplink samples are too bulky to
/// cache; the four percentiles are what the figure needs).
fn fig12_cell(
    label: String,
    cfg: FctRun,
    quick: bool,
    tracing: Option<crate::figures::TraceArgs>,
) -> FleetCell {
    let scenario = fct_scenario("fig12_imbalance", &label, &cfg, quick);
    FleetCell {
        scenario,
        run: Box::new(move || {
            let out = crate::runner::run_fct(&cfg);
            if let (Some(t), Some(handle)) = (&tracing, &out.trace) {
                write_trace_sidecars(&t.dir, "fig12_imbalance", &label, handle)
                    .expect("trace sidecar write");
            }
            // Only windows where the uplinks average at least 10% utilized
            // say anything about balance (idle head/tail windows would
            // otherwise dominate the percentiles).
            let min_avg = 0.10 * 40e9 * 0.010 / 8.0;
            let imb = throughput_imbalance(&out.uplink_tx_samples, min_avg);
            let mut r = CellResult {
                summary: out.summary,
                report_json: out.report.to_json(),
                ..CellResult::default()
            };
            r.values.insert("n_windows".into(), imb.len() as f64);
            for (k, p) in [("p25", 25.0), ("p50", 50.0), ("p75", 75.0), ("p95", 95.0)] {
                if let Some(v) = percentile(&imb, p) {
                    r.values.insert(k.into(), v * 100.0);
                }
            }
            // The windowed series (per-uplink util/queue, DRE estimates,
            // imbalance-over-time) ride in the cache entry as rendered
            // text so warm re-runs emit byte-identical sidecars.
            if !out.series.is_empty() {
                r.text.insert("series_jsonl".into(), out.series.to_jsonl());
                r.text.insert("series_csv".into(), out.series.to_csv());
            }
            r
        }),
    }
}

/// Figure 13: incast goodput vs fanout. Returns `false` if any sidecar
/// write failed.
pub fn fig13(args: &Args) -> bool {
    let tracing = trace_args(args);
    let opts = FleetOpts::from_args(args, tracing.is_some());
    let mut sidecar_failed = false;
    banner(
        "Figure 13 — Incast: client goodput vs fanout",
        "10MB striped over N synchronized senders into one 10G access link;\n\
         y = goodput as % of line rate (paper: CONGA+TCP 2-8x MPTCP)",
    );
    let fanouts: Vec<u32> = if args.quick {
        vec![4, 16, 48]
    } else {
        vec![1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 63]
    };
    let rows = [
        ("CONGA+TCP (minRTO 200ms)", Scheme::Conga, 200u64),
        ("CONGA+TCP (minRTO 1ms)", Scheme::Conga, 1),
        ("MPTCP (minRTO 200ms)", Scheme::Mptcp, 200),
        ("MPTCP (minRTO 1ms)", Scheme::Mptcp, 1),
    ];
    let mtus = [
        ("MTU 1500", TcpConfig::standard()),
        ("MTU 9000", TcpConfig::jumbo()),
    ];
    let mut cells = Vec::new();
    for (mtu_name, cfg) in &mtus {
        for (label, scheme, rto_ms) in &rows {
            let tcp = cfg.with_min_rto(SimDuration::from_millis(*rto_ms));
            for &f in &fanouts {
                let tag = format!("{mtu_name}.{label}.f{f:02}");
                cells.push(incast_cell(
                    tag,
                    *scheme,
                    f,
                    tcp,
                    args.seed,
                    tracing.clone(),
                ));
            }
        }
    }
    let results = run_cells(cells, &opts);

    let mut it = results.iter();
    for (mtu_name, _) in &mtus {
        println!("\n({mtu_name})");
        print!("{:<26}", "scheme / fanout");
        for f in &fanouts {
            print!("{:>7}", f);
        }
        println!();
        for (label, _, _) in &rows {
            print!("{label:<26}");
            for &f in &fanouts {
                let out = it.next().expect("one result per cell");
                let tag = format!("{mtu_name}.{label}.f{f:02}");
                match write_metrics_sidecar_text("fig13_incast", &tag, &out.report_json) {
                    Ok(p) => eprintln!("metrics sidecar: {}", p.display()),
                    Err(e) => {
                        eprintln!("metrics sidecar write failed: {e}");
                        sidecar_failed = true;
                    }
                }
                print!("{:>7.1}", out.value("goodput_pct"));
            }
            println!();
        }
    }
    !sidecar_failed
}

/// One incast cell: a custom synchronized-senders simulation (not an FCT
/// sweep), hashed under `kind = "incast"`.
fn incast_cell(
    tag: String,
    scheme: Scheme,
    fanout: u32,
    tcp: TcpConfig,
    seed: u64,
    tracing: Option<crate::figures::TraceArgs>,
) -> FleetCell {
    let mut scenario = Scenario::new("incast", "fig13_incast", &tag);
    scenario.scheme = scheme.name().to_string();
    scenario.seed = seed;
    scenario.topo = TopoSpec {
        leaves: 2,
        spines: 2,
        hosts_per_leaf: 32,
        host_gbps: 10,
        fabric_gbps: 40,
        parallel: 2,
        fail: None,
    };
    let scenario = scenario
        .with_extra("fanout", fanout)
        .with_extra("tcp.mss", tcp.mss)
        .with_extra("tcp.min_rto_ns", tcp.min_rto.as_nanos());
    FleetCell {
        scenario,
        run: Box::new(move || {
            let spec = tracing.as_ref().map(|t| t.spec.clone());
            let (pct, report, trace) = run_incast(scheme, fanout, tcp, seed, spec.as_ref());
            if let (Some(t), Some(handle)) = (&tracing, &trace) {
                write_trace_sidecars(&t.dir, "fig13_incast", &tag, handle)
                    .expect("trace sidecar write");
            }
            let mut r = CellResult {
                report_json: report.to_json(),
                ..CellResult::default()
            };
            r.values.insert("goodput_pct".into(), pct);
            r
        }),
    }
}

/// Run one incast: returns goodput as a % of the 10G access line rate, the
/// run's telemetry report, and the trace handle (if tracing was requested).
pub fn run_incast(
    scheme: Scheme,
    fanout: u32,
    tcp: TcpConfig,
    seed: u64,
    trace: Option<&TraceSpec>,
) -> (f64, RunReport, Option<conga_trace::TraceHandle>) {
    conga_fleet::stats::note_cell_run();
    let topo = LeafSpineBuilder::new(2, 2, 32)
        .host_rate_gbps(10)
        .fabric_rate_gbps(40)
        .parallel_links(2)
        .build();
    let mut net = Network::new(topo, scheme.policy(), TransportLayer::new(), seed);
    let trace = trace.map(|spec| spec.handle());
    if let Some(t) = &trace {
        net.set_tracer(t.clone());
    }
    let pat = IncastPattern::paper(fanout);
    // Client = host 0 (leaf 0); servers spread over the remaining hosts,
    // mostly remote so responses cross the fabric like the testbed's.
    // Server responses carry a small exponential service-time jitter
    // (mean 200us) — disk/kernel latency in the real benchmark; perfectly
    // clock-synchronized byte-identical senders would otherwise finish in
    // lockstep and all tail-drop together, which no real testbed does.
    let mut jit = SimRng::new(seed ^ 0x1CA5);
    let mut starts: Vec<(u64, FlowSpec)> = (0..fanout)
        .map(|i| {
            let server = HostId(1 + (i * 63 / fanout.max(1)) % 63);
            (
                (jit.exp(1.0 / 200_000.0)) as u64,
                FlowSpec {
                    src: server,
                    dst: HostId(0),
                    bytes: pat.per_server,
                    kind: scheme.transport(tcp),
                },
            )
        })
        .collect();
    starts.sort_by_key(|&(t, _)| t);
    let mut prev = 0;
    let arrivals: Vec<(SimDuration, FlowSpec)> = starts
        .into_iter()
        .map(|(t, spec)| {
            let gap = SimDuration::from_nanos(t - prev);
            prev = t;
            (gap, spec)
        })
        .collect();
    net.agent.attach_source(Box::new(ListSource::new(arrivals)));
    if let Some((d, tok)) = net.agent.begin_source() {
        net.schedule_timer(d, tok);
    }
    // Run until every response is delivered (generous bound: many RTOs).
    let bound = SimTime::from_secs(30);
    loop {
        net.run_until(net.now() + SimDuration::from_millis(100));
        if net.agent.completed_rx as u32 >= fanout || net.now() >= bound {
            break;
        }
    }
    let last_done = net
        .agent
        .records
        .iter()
        .filter_map(|r| r.rx_done)
        .max()
        .unwrap_or(net.now());
    let total_bytes: u64 = pat.per_server * fanout as u64;
    let goodput = total_bytes as f64 * 8.0 / last_done.as_secs_f64();
    let mut report = RunReport::new();
    report.set_meta("figure", "fig13_incast");
    report.set_meta("scheme", scheme.name());
    report.set_meta("fanout", fanout.to_string());
    report.set_meta("seed", seed.to_string());
    report.set_meta("mss", tcp.mss.to_string());
    report.set_meta("min_rto_ns", tcp.min_rto.as_nanos().to_string());
    report.set_meta("end_time_ns", net.now().as_nanos().to_string());
    net.export_metrics(&mut report.metrics);
    // Percentage of the 10G access link (the paper's y-axis).
    (100.0 * goodput / 10e9, report, trace)
}
