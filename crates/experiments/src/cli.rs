//! Minimal argument parsing shared by the experiment binaries (no external
//! dependency needed for `--quick`-style flags).

/// Parsed common arguments.
#[derive(Clone, Debug)]
pub struct Args {
    /// Reduced problem sizes for smoke runs / CI.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of independent runs to average where applicable.
    pub runs: usize,
    /// Leftover `--key value` pairs for experiment-specific options.
    extra: Vec<(String, String)>,
}

impl Args {
    /// Parse `std::env::args()`.
    pub fn parse() -> Args {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = String>>(it: I) -> Args {
        let mut quick = false;
        let mut seed = 1u64;
        let mut runs = 0usize;
        let mut extra = Vec::new();
        let mut iter = it.into_iter().peekable();
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--seed" => {
                    seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--runs" => {
                    runs = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--runs needs an integer");
                }
                k if k.starts_with("--") => {
                    let v = iter.next().unwrap_or_default();
                    extra.push((k[2..].to_string(), v));
                }
                other => panic!("unexpected argument: {other}"),
            }
        }
        Args {
            quick,
            seed,
            runs,
            extra,
        }
    }

    /// Experiment-specific option with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.extra
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// Number of runs, with experiment-chosen defaults for quick/full mode.
    pub fn runs_or(&self, quick_default: usize, full_default: usize) -> usize {
        if self.runs > 0 {
            self.runs
        } else if self.quick {
            quick_default
        } else {
            full_default
        }
    }
}

/// Print a header banner for an experiment.
pub fn banner(title: &str, detail: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("{detail}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::from_iter(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert!(!a.quick);
        assert_eq!(a.seed, 1);
        assert_eq!(a.runs_or(1, 5), 5);
    }

    #[test]
    fn flags_and_extras() {
        let a = parse(&["--quick", "--seed", "9", "--fanout", "32"]);
        assert!(a.quick);
        assert_eq!(a.seed, 9);
        assert_eq!(a.get("fanout", 8u32), 32);
        assert_eq!(a.get("missing", 3u32), 3);
        assert_eq!(a.runs_or(1, 5), 1);
    }

    #[test]
    fn explicit_runs_wins() {
        let a = parse(&["--quick", "--runs", "7"]);
        assert_eq!(a.runs_or(1, 5), 7);
    }
}
