//! Minimal argument parsing shared by the experiment binaries (no external
//! dependency needed for `--quick`-style flags).
//!
//! Malformed flags never panic: [`Args::from_iter`] returns `Err` with a
//! message, and [`Args::parse`] prints the message plus a usage banner and
//! exits nonzero.

use conga_transport::CcKind;

/// Upper bound accepted for `--ecn-threshold`, in packets: the default
/// 2 MiB access-queue capacity divided by the 1560 B wire size of a
/// full-MSS segment. A threshold deeper than the queue can never mark.
pub const ECN_THRESHOLD_MAX_PKTS: u32 = (2 << 20) / 1560;

/// Parsed common arguments.
#[derive(Clone, Debug)]
pub struct Args {
    /// Reduced problem sizes for smoke runs / CI.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of independent runs to average where applicable.
    pub runs: usize,
    /// Fleet worker threads (`--jobs N`); `None` = serial.
    pub jobs: Option<usize>,
    /// Bypass the content-addressed result cache (`--no-cache`).
    pub no_cache: bool,
    /// Worker threads *inside* each simulation (`--shards N`); purely a
    /// performance knob, never part of a scenario hash (default 1).
    pub shards: usize,
    /// Congestion controllers to run (`--cc a,b,...`; default `[aimd]`).
    /// Single-controller binaries use the first entry; the tournament
    /// races every entry as an axis.
    pub cc: Vec<CcKind>,
    /// ECN marking threshold in packets (`--ecn-threshold N`); `None`
    /// leaves the per-controller default in force (off for loss-based
    /// controllers, ~65 packets for DCTCP).
    pub ecn_threshold: Option<u32>,
    /// Leftover `--key value` pairs for experiment-specific options.
    extra: Vec<(String, String)>,
}

/// The usage banner printed on a parse error.
pub const USAGE: &str = "\
usage: <binary> [flags]
  --quick             reduced problem sizes (CI-scale run)
  --seed N            base RNG seed (default 1)
  --runs N            independent runs to average where applicable
  --jobs N            run independent cells on N worker threads (default 1)
  --shards N          worker threads inside each simulation (default 1;
                      artifacts are byte-identical for any N)
  --cc LIST           congestion controllers, comma-separated from
                      aimd|dctcp|cubic|bbr (default aimd)
  --ecn-threshold N   ECN marking threshold in packets (>= 1, <= queue
                      capacity; default: controller-specific)
  --no-cache          bypass the content-addressed result cache
  --cache-dir DIR     result-cache directory (default results/cache)
  --trace DIR         write structured event traces under DIR
  --key value         experiment-specific options (see the binary's docs)";

impl Args {
    /// Parse `std::env::args()`; on error, print the message and usage to
    /// stderr and exit with status 2.
    pub fn parse() -> Args {
        conga_fleet::stats::mark_start();
        match Self::from_iter(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("error: {msg}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit iterator (testable). Returns a message
    /// describing the first malformed flag instead of panicking.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = String>>(it: I) -> Result<Args, String> {
        let mut quick = false;
        let mut seed = 1u64;
        let mut runs = 0usize;
        let mut jobs = None;
        let mut no_cache = false;
        let mut shards = 1usize;
        let mut cc = vec![CcKind::Aimd];
        let mut ecn_threshold = None;
        let mut extra = Vec::new();
        let mut iter = it.into_iter().peekable();
        fn want<T: std::str::FromStr>(
            iter: &mut impl Iterator<Item = String>,
            flag: &str,
            what: &str,
        ) -> Result<T, String> {
            iter.next()
                .ok_or_else(|| format!("{flag} needs {what}"))?
                .parse()
                .map_err(|_| format!("{flag} needs {what}"))
        }
        while let Some(a) = iter.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--no-cache" => no_cache = true,
                "--seed" => seed = want(&mut iter, "--seed", "an integer")?,
                "--runs" => runs = want(&mut iter, "--runs", "an integer")?,
                "--jobs" => {
                    let n: usize = want(&mut iter, "--jobs", "a worker count >= 1")?;
                    if n == 0 {
                        return Err("--jobs needs a worker count >= 1".into());
                    }
                    jobs = Some(n);
                }
                "--shards" => {
                    let n: usize = want(&mut iter, "--shards", "a worker count >= 1")?;
                    if n == 0 {
                        return Err("--shards needs a worker count >= 1".into());
                    }
                    shards = n;
                }
                "--cc" => {
                    let list = iter
                        .next()
                        .ok_or("--cc needs a comma-separated controller list")?;
                    let parsed: Vec<CcKind> = list
                        .split(',')
                        .map(CcKind::parse)
                        .collect::<Result<_, _>>()?;
                    if parsed.is_empty() {
                        return Err("--cc needs a comma-separated controller list".into());
                    }
                    cc = parsed;
                }
                "--ecn-threshold" => {
                    let n: u32 = want(&mut iter, "--ecn-threshold", "a packet count >= 1")?;
                    if n == 0 {
                        return Err("--ecn-threshold needs a packet count >= 1".into());
                    }
                    if n > ECN_THRESHOLD_MAX_PKTS {
                        return Err(format!(
                            "--ecn-threshold must be <= {ECN_THRESHOLD_MAX_PKTS} packets \
                             (the access-queue capacity)"
                        ));
                    }
                    ecn_threshold = Some(n);
                }
                k if k.starts_with("--") => {
                    let v = iter.next().ok_or_else(|| format!("{k} needs a value"))?;
                    extra.push((k[2..].to_string(), v));
                }
                other => return Err(format!("unexpected argument: {other}")),
            }
        }
        Ok(Args {
            quick,
            seed,
            runs,
            jobs,
            no_cache,
            shards,
            cc,
            ecn_threshold,
            extra,
        })
    }

    /// Experiment-specific option with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.extra
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// Number of runs, with experiment-chosen defaults for quick/full mode.
    pub fn runs_or(&self, quick_default: usize, full_default: usize) -> usize {
        if self.runs > 0 {
            self.runs
        } else if self.quick {
            quick_default
        } else {
            full_default
        }
    }

    /// Fleet worker threads: `--jobs N`, defaulting to serial.
    pub fn jobs_or_serial(&self) -> usize {
        self.jobs.unwrap_or(1)
    }

    /// The congestion controller for single-controller binaries: the first
    /// `--cc` entry (the default list is `[aimd]`, so this never panics).
    pub fn primary_cc(&self) -> CcKind {
        self.cc.first().copied().unwrap_or(CcKind::Aimd)
    }
}

/// Print a header banner for an experiment.
pub fn banner(title: &str, detail: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("{detail}");
    println!("==============================================================");
}

/// Print the one-line orchestration summary every figure binary emits on
/// exit (cells run, cells cached, wall-clock), so `results/*.log` records
/// orchestration stats. The line is wall-clock-bearing and therefore
/// excluded from the byte-identity contract.
pub fn exit_summary(name: &str) {
    println!("{}", conga_fleet::stats::summary_line(name));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::from_iter(s.iter().map(|x| x.to_string())).expect("valid args")
    }

    fn parse_err(s: &[&str]) -> String {
        Args::from_iter(s.iter().map(|x| x.to_string())).expect_err("must fail")
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert!(!a.quick);
        assert!(!a.no_cache);
        assert_eq!(a.seed, 1);
        assert_eq!(a.jobs, None);
        assert_eq!(a.jobs_or_serial(), 1);
        assert_eq!(a.runs_or(1, 5), 5);
    }

    #[test]
    fn flags_and_extras() {
        let a = parse(&["--quick", "--seed", "9", "--fanout", "32"]);
        assert!(a.quick);
        assert_eq!(a.seed, 9);
        assert_eq!(a.get("fanout", 8u32), 32);
        assert_eq!(a.get("missing", 3u32), 3);
        assert_eq!(a.runs_or(1, 5), 1);
    }

    #[test]
    fn explicit_runs_wins() {
        let a = parse(&["--quick", "--runs", "7"]);
        assert_eq!(a.runs_or(1, 5), 7);
    }

    #[test]
    fn fleet_flags() {
        let a = parse(&["--jobs", "4", "--no-cache"]);
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.jobs_or_serial(), 4);
        assert!(a.no_cache);
        assert_eq!(a.shards, 1);
    }

    #[test]
    fn shards_flag() {
        let a = parse(&["--shards", "4"]);
        assert_eq!(a.shards, 4);
        assert_eq!(
            parse_err(&["--shards", "0"]),
            "--shards needs a worker count >= 1"
        );
        assert_eq!(
            parse_err(&["--shards"]),
            "--shards needs a worker count >= 1"
        );
    }

    #[test]
    fn malformed_flags_are_errors_not_panics() {
        assert_eq!(parse_err(&["--seed"]), "--seed needs an integer");
        assert_eq!(parse_err(&["--seed", "banana"]), "--seed needs an integer");
        assert_eq!(parse_err(&["--runs", "-3"]), "--runs needs an integer");
        assert_eq!(
            parse_err(&["--jobs", "0"]),
            "--jobs needs a worker count >= 1"
        );
        assert_eq!(
            parse_err(&["--jobs", "many"]),
            "--jobs needs a worker count >= 1"
        );
        assert_eq!(
            parse_err(&["positional"]),
            "unexpected argument: positional"
        );
        assert_eq!(parse_err(&["--loads"]), "--loads needs a value");
    }

    #[test]
    fn usage_names_every_first_class_flag() {
        for flag in [
            "--quick",
            "--seed",
            "--runs",
            "--jobs",
            "--shards",
            "--cc",
            "--ecn-threshold",
            "--no-cache",
        ] {
            assert!(USAGE.contains(flag), "usage must document {flag}");
        }
    }

    #[test]
    fn cc_flag_parses_lists() {
        let a = parse(&[]);
        assert_eq!(a.cc, vec![CcKind::Aimd]);
        assert_eq!(a.primary_cc(), CcKind::Aimd);
        let a = parse(&["--cc", "dctcp"]);
        assert_eq!(a.cc, vec![CcKind::Dctcp]);
        assert_eq!(a.primary_cc(), CcKind::Dctcp);
        let a = parse(&["--cc", "dctcp,aimd,cubic,bbr"]);
        assert_eq!(
            a.cc,
            vec![CcKind::Dctcp, CcKind::Aimd, CcKind::Cubic, CcKind::Bbr]
        );
        assert_eq!(
            parse_err(&["--cc"]),
            "--cc needs a comma-separated controller list"
        );
        assert_eq!(
            parse_err(&["--cc", "reno"]),
            "unknown congestion controller 'reno' (expected aimd|dctcp|cubic|bbr)"
        );
    }

    #[test]
    fn ecn_threshold_is_validated_at_parse_time() {
        let a = parse(&[]);
        assert_eq!(a.ecn_threshold, None);
        let a = parse(&["--ecn-threshold", "65"]);
        assert_eq!(a.ecn_threshold, Some(65));
        assert_eq!(
            parse_err(&["--ecn-threshold", "0"]),
            "--ecn-threshold needs a packet count >= 1"
        );
        assert_eq!(
            parse_err(&["--ecn-threshold"]),
            "--ecn-threshold needs a packet count >= 1"
        );
        assert_eq!(
            parse_err(&["--ecn-threshold", "shallow"]),
            "--ecn-threshold needs a packet count >= 1"
        );
        assert_eq!(
            parse_err(&["--ecn-threshold", "9999"]),
            format!(
                "--ecn-threshold must be <= {ECN_THRESHOLD_MAX_PKTS} packets \
                 (the access-queue capacity)"
            )
        );
    }
}
