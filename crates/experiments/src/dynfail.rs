//! The dynamic-failure experiment: fail a leaf–spine link *mid-run*,
//! recover it later, and measure how fast each scheme's delivered
//! throughput reconverges.
//!
//! This differs from the static Figure 11 harness (`fig11_link_failure`),
//! where the link is absent from the start: here the run begins on the
//! healthy baseline fabric, the failure fires through the engine's runtime
//! fault-injection path (blackholing queued and in-flight packets, forcing
//! the FIB to reconverge), and the link later comes back. The interesting
//! outputs are the throughput timeline around the transitions, the
//! time-to-reconverge, and whether any flow is permanently stranded.

use crate::figures::{write_trace_sidecars, TraceArgs};
use crate::fleet::FleetCell;
use crate::runner::{build_testbed, LinkFaultSpec, Scheme, ShardedRun, TestbedOpts, TraceSpec};
use conga_fleet::{CellResult, FaultSpec, Scenario, TopoSpec};
use conga_sim::{QueueKind, SimDuration, SimRng, SimTime};
use conga_telemetry::RunReport;
use conga_transport::TcpConfig;
use conga_workloads::{FlowSizeDist, PoissonPlan};

/// Specification for one dynamic-failure run.
#[derive(Clone, Debug)]
pub struct DynFailSpec {
    /// Topology options (the *healthy* fabric; do not pre-fail a link).
    pub topo: TestbedOpts,
    /// Scheme under test.
    pub scheme: Scheme,
    /// Flow-size distribution.
    pub dist: FlowSizeDist,
    /// Offered load as a fraction of baseline bisection bandwidth.
    pub load: f64,
    /// RNG seed.
    pub seed: u64,
    /// When the link fails.
    pub fail_at: SimTime,
    /// When the link recovers.
    pub recover_at: SimTime,
    /// The link to fail: (leaf, spine, parallel index).
    pub link: (u32, u32, u32),
    /// End of the offered-load window; arrivals are sized to span it.
    pub window: SimTime,
    /// Throughput-sampling slice width.
    pub slice: SimDuration,
    /// Structured event tracing (`None` = disabled; zero overhead).
    pub trace: Option<TraceSpec>,
    /// Future-event-list implementation. Purely a performance knob —
    /// both kinds are observationally identical (`tests/hotpath.rs`) —
    /// so it is deliberately *not* part of [`Self::scenario`]'s hash.
    pub queue: QueueKind,
    /// Worker threads for the sharded engine. Like `queue`, purely a
    /// performance knob: artifacts are byte-identical for any shard count
    /// (`tests/shards.rs`), so it is deliberately *not* part of
    /// [`Self::scenario`]'s hash.
    pub shards: usize,
}

impl DynFailSpec {
    /// The paper-shaped default: baseline testbed at 60 % load, fail the
    /// Leaf1–Spine1 link at 50 % of the window (leaving the first half as
    /// open-loop warm-up) and bring it back at 75 %.
    pub fn paper(scheme: Scheme, quick: bool, seed: u64) -> Self {
        let topo = if quick {
            TestbedOpts::paper_baseline().quick()
        } else {
            TestbedOpts::paper_baseline()
        };
        let window = if quick {
            SimTime::from_millis(160)
        } else {
            SimTime::from_millis(400)
        };
        let at = |f: f64| SimTime::from_nanos((window.as_nanos() as f64 * f) as u64);
        DynFailSpec {
            topo,
            scheme,
            dist: FlowSizeDist::enterprise(),
            load: 0.6,
            seed,
            fail_at: at(0.50),
            recover_at: at(0.75),
            link: (1, 1, 0),
            window,
            slice: SimDuration::from_millis(10),
            trace: None,
            // Calendar by default, as in FctRun::new: a pure performance
            // knob, proven byte-identical to the heap in tests/hotpath.rs.
            queue: QueueKind::Calendar,
            shards: 1,
        }
    }
}

impl DynFailSpec {
    /// The hashable [`Scenario`] describing this cell (for the fleet
    /// executor and result cache).
    pub fn scenario(&self, figure: &str, label: &str, quick: bool) -> Scenario {
        let mut s = Scenario::new("dynfail", figure, label);
        s.scheme = self.scheme.name().to_string();
        s.dist = self.dist.name().to_string();
        s.load = self.load;
        s.seed = self.seed;
        s.quick = quick;
        s.topo = TopoSpec {
            leaves: self.topo.leaves,
            spines: self.topo.spines,
            hosts_per_leaf: self.topo.hosts_per_leaf,
            host_gbps: self.topo.host_gbps,
            fabric_gbps: self.topo.fabric_gbps,
            parallel: self.topo.parallel,
            fail: self.topo.fail,
        };
        let (l, sp, p) = self.link;
        s.faults = vec![
            FaultSpec {
                at_ns: self.fail_at.as_nanos(),
                leaf: l,
                spine: sp,
                parallel: p,
                up: false,
            },
            FaultSpec {
                at_ns: self.recover_at.as_nanos(),
                leaf: l,
                spine: sp,
                parallel: p,
                up: true,
            },
        ];
        s.with_extra("window_ns", self.window.as_nanos())
            .with_extra("slice_ns", self.slice.as_nanos())
    }
}

/// Build the fleet cell for one dynamic-failure run: executes
/// [`run_dynamic_failure`] on a worker, exports trace sidecars in-worker
/// when tracing is on, and returns the phase throughputs / reconvergence
/// verdict as derived values so a cache hit can reproduce the figure row
/// without re-simulating.
pub fn dynfail_cell(
    figure: &str,
    label: &str,
    spec: DynFailSpec,
    quick: bool,
    tracing: Option<TraceArgs>,
) -> FleetCell {
    let scenario = spec.scenario(figure, label, quick);
    let figure = figure.to_string();
    let label = label.to_string();
    FleetCell {
        scenario,
        run: Box::new(move || {
            let out = run_dynamic_failure(&spec);
            if let (Some(t), Some(handle)) = (&tracing, &out.trace) {
                write_trace_sidecars(&t.dir, &figure, &label, handle).expect("trace sidecar write");
            }
            let mut r = CellResult {
                report_json: out.report.to_json(),
                ..CellResult::default()
            };
            r.values.insert("pre_bps".into(), out.pre_bps);
            r.values.insert("during_bps".into(), out.during_bps);
            r.values.insert("post_bps".into(), out.post_bps);
            r.values.insert("blackholed".into(), out.blackholed as f64);
            r.values.insert("stranded".into(), out.stranded as f64);
            r.values.insert(
                "post_recovery_blackholed".into(),
                out.post_recovery_blackholed as f64,
            );
            r.text.insert(
                "reconverge_ms".into(),
                match out.reconverge {
                    Some(d) => format!("{:.0}", d.as_secs_f64() * 1e3),
                    None => "never".to_string(),
                },
            );
            r
        }),
    }
}

/// What a dynamic-failure run produced.
#[derive(Clone, Debug)]
pub struct DynFailOutcome {
    /// Payload bytes delivered in each slice `((i)·slice, (i+1)·slice]`,
    /// covering the offered-load window.
    pub delivered_per_slice: Vec<u64>,
    /// Mean delivered throughput (bps) over the second half of the
    /// pre-failure phase (the first half is open-loop warm-up: long flows
    /// are still ramping, so delivered throughput climbs toward the offered
    /// rate for roughly a large-flow service time).
    pub pre_bps: f64,
    /// Mean delivered throughput (bps) over the failure window.
    pub during_bps: f64,
    /// Mean delivered throughput (bps) after recovery, to the window end.
    pub post_bps: f64,
    /// Time from the failure until delivered throughput first sustains
    /// ≥ 85 % of the pre-failure mean over a 4-slice moving window.
    /// `None` if the run never reconverged within the window.
    pub reconverge: Option<SimDuration>,
    /// Flows with no receive-side completion by the end of the run.
    pub stranded: usize,
    /// Total packets lost to the dead link.
    pub blackholed: u64,
    /// Packets blackholed *after* the recovery transition — must be zero:
    /// once the link is back, nothing may keep falling into it.
    pub post_recovery_blackholed: u64,
    /// Simulated end of the run.
    pub end_time: SimTime,
    /// The deterministic telemetry artifact.
    pub report: RunReport,
    /// The trace recorder handle, if tracing was requested.
    pub trace: Option<conga_trace::TraceHandle>,
}

/// Run one dynamic-failure cell to completion (or a generous drain bound).
pub fn run_dynamic_failure(spec: &DynFailSpec) -> DynFailOutcome {
    conga_fleet::stats::note_cell_run();
    assert!(spec.topo.fail.is_none(), "start from the healthy fabric");
    assert!(spec.fail_at < spec.recover_at && spec.recover_at < spec.window);
    let topo = build_testbed(spec.topo);
    let capacity = topo
        .leaf_uplink_capacity(conga_net::LeafId(0))
        .min(topo.access_capacity(conga_net::LeafId(0)));

    // Size the arrival plan to span the window with margin: the offered
    // flow rate per direction is load·capacity / (8·mean size).
    let rate = spec.load * capacity as f64 / (8.0 * spec.dist.mean());
    let n_flows = (rate * spec.window.as_secs_f64() * 1.3).ceil() as usize;

    let group_a = topo.hosts_under(conga_net::LeafId(0));
    let group_b = topo.hosts_under(conga_net::LeafId(1));
    let mut wl_rng = SimRng::new(spec.seed.wrapping_mul(0x9E37_79B9) ^ 0xC04A);
    let plan = PoissonPlan::generate(
        &spec.dist,
        group_a.len() as u32,
        group_b.len() as u32,
        capacity,
        spec.load,
        n_flows,
        &mut wl_rng,
    );
    let tcp = TcpConfig::standard();
    let scheme = spec.scheme;
    let arrivals =
        crate::runner::merged_arrivals(&plan, &group_a, &group_b, |_| scheme.transport(tcp));
    let span_ns: u64 = arrivals.iter().map(|(g, _)| g.as_nanos()).sum();
    assert!(
        SimTime::from_nanos(span_ns) >= spec.recover_at + spec.slice * 2,
        "arrival span {span_ns}ns too short to cover the fault schedule"
    );

    // Gap-encoded arrivals become absolute start times for preregistration
    // (every domain must register the same flow list in the same order).
    let mut abs_arrivals = Vec::with_capacity(arrivals.len());
    let mut t_abs = SimTime::from_nanos(0);
    for (gap, fspec) in &arrivals {
        t_abs += *gap;
        abs_arrivals.push((t_abs, *fspec));
    }
    let (l, s, p) = spec.link;
    let faults = vec![
        LinkFaultSpec::fail(spec.fail_at, l, s, p),
        LinkFaultSpec::recover(spec.recover_at, l, s, p),
    ];
    let mut run = ShardedRun::new(
        &topo,
        spec.scheme.policy(),
        spec.seed,
        spec.shards,
        spec.queue,
        None,
        spec.trace.as_ref(),
        &faults,
        &[],
        &abs_arrivals,
    );

    // Slice-by-slice over the offered-load window, recording the cumulative
    // delivered-payload and blackhole counters at each boundary.
    let n_slices = (spec.window.as_nanos() / spec.slice.as_nanos()) as usize;
    let mut cum_delivered = Vec::with_capacity(n_slices + 1);
    let mut blackholed_at_recovery = None;
    cum_delivered.push(run.stat(|s| s.delivered_payload));
    for i in 1..=n_slices {
        let t = SimTime::from_nanos(spec.slice.as_nanos() * i as u64);
        run.net.run_until(t);
        cum_delivered.push(run.stat(|s| s.delivered_payload));
        if blackholed_at_recovery.is_none() && t >= spec.recover_at {
            blackholed_at_recovery = Some(run.stat(|s| s.blackholed));
        }
    }
    // Drain: let every flow finish (blackholed segments need RTOs).
    let total_flows = n_flows * 2;
    let drain_bound = SimTime::from_nanos(span_ns) + SimDuration::from_secs(8);
    loop {
        let t = run.net.now() + SimDuration::from_millis(50);
        run.net.run_until(t);
        if run.completed_rx() >= total_flows {
            break;
        }
        if run.net.now() >= drain_bound {
            break;
        }
    }
    let records = run.merged_records(&topo);

    let per_slice: Vec<u64> = cum_delivered.windows(2).map(|w| w[1] - w[0]).collect();
    let slice_s = spec.slice.as_secs_f64();
    let slice_end = |i: usize| SimTime::from_nanos(spec.slice.as_nanos() * (i as u64 + 1));
    let mean_bps = |r: std::ops::Range<usize>| -> f64 {
        let n = r.len().max(1) as f64;
        per_slice[r].iter().map(|&b| b as f64 * 8.0).sum::<f64>() / (n * slice_s)
    };
    // Phase boundaries in slice indices (slices fully inside each phase).
    let pre_end = per_slice
        .iter()
        .enumerate()
        .take_while(|&(i, _)| slice_end(i) <= spec.fail_at)
        .count();
    let during_end = per_slice
        .iter()
        .enumerate()
        .take_while(|&(i, _)| slice_end(i) <= spec.recover_at)
        .count();
    // Baseline over the *second half* of the pre-fail phase: the first half
    // is warm-up (see `DynFailOutcome::pre_bps`).
    let pre_bps = mean_bps(pre_end / 2..pre_end);
    let during_bps = mean_bps(pre_end..during_end);
    let post_bps = mean_bps(during_end..per_slice.len());

    // Reconvergence: the first time after the failure that a 4-slice moving
    // window of delivered throughput sustains ≥ 85 % of the pre-fail mean.
    // (Per-slice byte counts of a heavy-tailed open-loop workload are noisy;
    // the moving window keeps the detector from triggering on one lucky
    // slice or missing recovery because of one unlucky one.)
    const WIN: usize = 4;
    const THRESH: f64 = 0.85;
    let mut reconverge = None;
    if pre_bps > 0.0 {
        for i in pre_end..per_slice.len().saturating_sub(WIN - 1) {
            let w_bps = mean_bps(i..i + WIN);
            if w_bps >= THRESH * pre_bps {
                reconverge = Some(slice_end(i + WIN - 1).saturating_since(spec.fail_at));
                break;
            }
        }
    }

    let stranded = records.iter().filter(|r| r.rx_done.is_none()).count();
    let blackholed = run.stat(|s| s.blackholed);
    let post_recovery_blackholed =
        blackholed - blackholed_at_recovery.expect("window covers the recovery");

    let mut report = RunReport::new();
    report.set_meta("figure", "fig11_dynamic_failure");
    report.set_meta("scheme", spec.scheme.name());
    report.set_meta(
        "policy",
        conga_net::Dataplane::name(&run.net.domain(0).dataplane),
    );
    report.set_meta("seed", spec.seed.to_string());
    report.set_meta("load", format!("{}", spec.load));
    report.set_meta("n_flows", n_flows.to_string());
    report.set_meta(
        "fault_schedule",
        format!(
            "fail@{}ns,recover@{}ns:leaf{}-spine{}#{}",
            spec.fail_at.as_nanos(),
            spec.recover_at.as_nanos(),
            l,
            s,
            p
        ),
    );
    report.set_meta("pre_bps", format!("{pre_bps:.0}"));
    report.set_meta("during_bps", format!("{during_bps:.0}"));
    report.set_meta("post_bps", format!("{post_bps:.0}"));
    report.set_meta(
        "reconverge_ns",
        match reconverge {
            Some(d) => d.as_nanos().to_string(),
            None => "never".to_string(),
        },
    );
    report.set_meta("stranded_flows", stranded.to_string());
    report.set_meta(
        "post_recovery_blackholed",
        post_recovery_blackholed.to_string(),
    );
    report.set_meta("end_time_ns", run.net.now().as_nanos().to_string());
    run.net.export_metrics(&mut report.metrics);
    for (i, &b) in per_slice.iter().enumerate() {
        report
            .metrics
            .sample("run.delivered_bytes_per_slice", slice_end(i), b as f64);
    }

    DynFailOutcome {
        delivered_per_slice: per_slice,
        pre_bps,
        during_bps,
        post_bps,
        reconverge,
        stranded,
        blackholed,
        post_recovery_blackholed,
        end_time: run.net.now(),
        report,
        trace: run.merged_trace(),
    }
}
