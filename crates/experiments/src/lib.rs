//! # conga-experiments — the harness that regenerates every figure
//!
//! One binary per table/figure of the paper's evaluation lives in
//! `src/bin/`; this library holds the shared machinery: the scheme matrix
//! (fabric policy × transport), the paper's testbed topologies, the
//! open-loop FCT runner, and small CLI/printing helpers.
//!
//! Every binary accepts `--quick` (CI-scale run), `--seed N`, and prints
//! plain text tables with the same rows/series as the paper's plots.

#![warn(missing_docs)]

pub mod cli;
pub mod dynfail;
pub mod figures;
pub mod fleet;
pub mod runner;
pub mod suite;
pub mod tournament;

pub use cli::Args;
pub use dynfail::{dynfail_cell, run_dynamic_failure, DynFailOutcome, DynFailSpec};
pub use fleet::{fct_cell, fct_scenario, run_cells, FleetCell, FleetOpts};
pub use runner::{
    build_report, build_testbed, merged_arrivals, run_fct, run_fct_with_policy, uniform_arrivals,
    CoreLinkFaultSpec, FctOutcome, FctRun, LinkFaultSpec, Scheme, ShardedRun, TestbedOpts,
    TraceSpec,
};
