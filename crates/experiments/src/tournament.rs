//! The `fleet tournament` subcommand: race the full policy zoo through a
//! fixed arena matrix and emit a price-of-anarchy-style comparison.
//!
//! Three arenas (enterprise and data-mining workloads on the baseline
//! testbed, plus the enterprise workload on the Figure-7(b) asymmetric
//! fabric) × a load sweep × every `--cc` congestion controller × every
//! policy in [`Scheme::TOURNAMENT`]. Each cell is an ordinary cached FCT
//! cell, so warm re-runs are pure cache hits and the merged artifacts —
//! `results/tournament.json` and `results/tournament_table.txt` — are
//! byte-identical for any `--jobs`, `--shards`, or cache state.

use crate::cli::{banner, Args};
use crate::figures::{loads_arg, write_json_f64};
use crate::fleet::{fct_scenario, run_cells, FleetCell, FleetOpts};
use crate::runner::{run_fct, FctRun, Scheme, TestbedOpts};
use conga_analysis::tournament::{compare, render, GroupTable, PolicyCell};
use conga_fleet::CellResult;
use conga_workloads::FlowSizeDist;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The arena matrix: (name, testbed, workload).
fn arenas() -> Vec<(&'static str, TestbedOpts, FlowSizeDist)> {
    vec![
        (
            "enterprise",
            TestbedOpts::paper_baseline(),
            FlowSizeDist::enterprise(),
        ),
        (
            "datamining",
            TestbedOpts::paper_baseline(),
            FlowSizeDist::data_mining(),
        ),
        (
            "asymmetry",
            TestbedOpts::paper_failure(),
            FlowSizeDist::enterprise(),
        ),
    ]
}

/// Canonical `--loads` encoding hashed into every tournament scenario:
/// the full sweep list, as percents, comma-joined. Ratio tables compare
/// cells *within* one sweep, so a cell's result must never be served for
/// a sweep raced over a different load list.
fn loads_key(loads: &[f64]) -> String {
    loads
        .iter()
        .map(|l| format!("{}", l * 100.0))
        .collect::<Vec<_>>()
        .join(",")
}

/// One tournament cell: a standard cached FCT run that also records the
/// policy's re-routing decision count (so cache hits preserve it).
fn tournament_cell(
    figure: &str,
    label: &str,
    cfg: FctRun,
    quick: bool,
    loads: &[f64],
) -> FleetCell {
    let scenario = fct_scenario(figure, label, &cfg, quick).with_extra("loads", loads_key(loads));
    FleetCell {
        scenario,
        run: Box::new(move || {
            let out = run_fct(&cfg);
            let mut r = CellResult {
                summary: out.summary,
                report_json: out.report.to_json(),
                ..CellResult::default()
            };
            r.values.insert(
                "decisions".into(),
                out.report.metrics.counter("dataplane.flowlet_new") as f64,
            );
            r.values.insert("drops".into(), out.drops as f64);
            r
        }),
    }
}

/// Run the tournament. Returns `false` if an artifact write failed.
pub fn run(args: &Args) -> bool {
    banner(
        "Policy tournament — the full load-balancer zoo, like-for-like",
        "arenas: enterprise/datamining on the baseline fabric + enterprise on the\n\
         Figure-7(b) asymmetric fabric; table: FCT ratios vs the best policy",
    );
    let loads = loads_arg(
        args,
        if args.quick {
            vec![0.3, 0.6]
        } else {
            vec![0.2, 0.4, 0.6, 0.8]
        },
    );
    let n_flows = if args.quick {
        80
    } else {
        args.get("flows", 400)
    };
    let opts = FleetOpts::from_args(args, false);

    let arenas = arenas();
    let ccs = &args.cc;
    let mut cells = Vec::new();
    for (arena, topo, dist) in &arenas {
        let topo = if args.quick { topo.quick() } else { *topo };
        for &load in &loads {
            for &cc in ccs {
                for scheme in Scheme::TOURNAMENT {
                    let mut cfg = FctRun::new(topo, scheme, dist.clone(), load);
                    cfg.n_flows = n_flows;
                    cfg.seed = args.seed;
                    cfg.shards = args.shards;
                    cfg.cc = cc;
                    cfg.ecn_threshold_pkts = args.ecn_threshold;
                    let figure = format!("tournament_{arena}");
                    let label =
                        format!("{}.{}.load{:02.0}", scheme.name(), cc.name(), load * 100.0);
                    cells.push(tournament_cell(&figure, &label, cfg, args.quick, &loads));
                }
            }
        }
    }
    let results = run_cells(cells, &opts);

    // Merge in build order: one comparison group per (arena, load, cc).
    let mut tables: Vec<GroupTable> = Vec::new();
    let mut it = results.iter();
    for (arena, _, _) in &arenas {
        for &load in &loads {
            for &cc in ccs {
                let group: Vec<PolicyCell> = Scheme::TOURNAMENT
                    .iter()
                    .map(|s| {
                        let cell = it.next().expect("one result per cell");
                        PolicyCell {
                            policy: s.key().to_string(),
                            summary: cell.summary,
                            decisions: cell.value("decisions") as u64,
                        }
                    })
                    .collect();
                tables.push(compare(
                    &format!("{arena}/{}/load{:02.0}", cc.name(), load * 100.0),
                    &group,
                ));
            }
        }
    }

    let table_text = render(&tables);
    print!("{table_text}");
    let json = to_json(&loads, ccs, &arenas, &tables);
    let mut ok = true;
    for (path, text) in [
        (PathBuf::from("results/tournament.json"), &json),
        (PathBuf::from("results/tournament_table.txt"), &table_text),
    ] {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("tournament artifact: {}", path.display()),
            Err(e) => {
                eprintln!("tournament artifact write failed ({}): {e}", path.display());
                ok = false;
            }
        }
    }
    ok
}

/// Serialize the comparison groups as deterministic JSON (sorted structure
/// is fixed by construction: arenas × loads × the tournament policy order).
fn to_json(
    loads: &[f64],
    ccs: &[conga_transport::CcKind],
    arenas: &[(&'static str, TestbedOpts, FlowSizeDist)],
    tables: &[GroupTable],
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"policies\": [");
    for (i, s) in Scheme::TOURNAMENT.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", s.key());
    }
    out.push_str("],\n  \"ccs\": [");
    for (i, c) in ccs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", c.name());
    }
    out.push_str("],\n  \"loads\": [");
    for (i, l) in loads.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_json_f64(&mut out, *l);
    }
    out.push_str("],\n  \"arenas\": [");
    for (i, (a, _, _)) in arenas.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{a}\"");
    }
    out.push_str("],\n  \"groups\": [");
    for (gi, t) in tables.iter().enumerate() {
        if gi > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"group\": \"{}\", \"best\": \"{}\", \"poa\": ",
            t.group, t.best
        );
        write_json_f64(&mut out, t.poa);
        out.push_str(", \"rows\": {");
        for (ri, r) in t.rows.iter().enumerate() {
            if ri > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {{", r.policy);
            for (i, (k, v)) in [
                ("mean_ratio", r.mean_ratio),
                ("p95_ratio", r.p95_ratio),
                ("p99_ratio", r.p99_ratio),
                ("norm_throughput", r.norm_throughput),
                ("avg_s", r.avg_s),
                ("p99_s", r.p99_s),
            ]
            .into_iter()
            .enumerate()
            {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{k}\": ");
                write_json_f64(&mut out, v);
            }
            let _ = write!(
                out,
                ", \"decisions\": {}, \"incomplete\": {}}}",
                r.decisions, r.incomplete
            );
        }
        out.push_str("}}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_list_reaches_the_scenario_hash() {
        let cfg = || {
            FctRun::new(
                TestbedOpts::paper_baseline().quick(),
                Scheme::Conga,
                FlowSizeDist::enterprise(),
                0.3,
            )
        };
        let a = tournament_cell(
            "tournament_enterprise",
            "conga.load30",
            cfg(),
            true,
            &[0.3, 0.6],
        );
        let b = tournament_cell(
            "tournament_enterprise",
            "conga.load30",
            cfg(),
            true,
            &[0.3, 0.8],
        );
        assert_ne!(
            a.scenario.content_hash(),
            b.scenario.content_hash(),
            "same cell raced under a different --loads sweep must not share a cache entry"
        );
        assert!(a.scenario.canonical().contains("x.loads=30,60"));
    }
}
