//! The bridge between the experiment harness and `conga-fleet`: scenario
//! construction for FCT cells, the cell runner, and the batch driver that
//! every sweep loop routes through.
//!
//! A sweep builds a list of [`FleetCell`]s (a hashable
//! [`Scenario`] plus a closure that executes the cell), then calls
//! [`run_cells`]: cache hits are resolved first, misses run on the
//! work-stealing executor, and results come back **in sweep order** —
//! merged output is byte-identical for any `--jobs N` and for warm-cache
//! re-runs.
//!
//! Cells with structured tracing enabled are never cached: a trace
//! artifact only exists if the cell actually ran, so traced sweeps bypass
//! the cache entirely (see [`FleetOpts::from_args`]).

use std::sync::atomic::{AtomicUsize, Ordering};

use conga_fleet::manifest::{drain, CellRecord};
use conga_fleet::{CellResult, FaultSpec, FleetManifest, ResultCache, Scenario, TopoSpec};
use conga_telemetry::profile;

use crate::cli::Args;
use crate::figures::{write_trace_sidecars, TraceArgs};
use crate::runner::{run_fct, FctRun};

/// Orchestration options, parsed once per binary.
#[derive(Clone, Debug)]
pub struct FleetOpts {
    /// Worker threads for independent cells (1 = the historical serial
    /// path).
    pub jobs: usize,
    /// The content-addressed result cache (possibly disabled).
    pub cache: ResultCache,
}

impl FleetOpts {
    /// Build from the shared CLI flags: `--jobs N`, `--no-cache`,
    /// `--cache-dir DIR`. When `tracing` is active the cache is disabled
    /// outright — trace sidecars must come from live runs.
    pub fn from_args(args: &Args, tracing: bool) -> Self {
        let cache = if args.no_cache || tracing {
            ResultCache::disabled()
        } else {
            ResultCache::at(args.get("cache-dir", "results/cache".to_string()))
        };
        FleetOpts {
            jobs: args.jobs_or_serial(),
            cache,
        }
    }

    /// The same options with the cache forced off.
    pub fn without_cache(mut self) -> Self {
        self.cache = ResultCache::disabled();
        self
    }
}

/// One schedulable experiment cell: what it is (hashable) and how to run
/// it. The closure executes on a worker thread; everything it needs must
/// be owned and `Send`, and any sidecars it writes must go to
/// cell-unique paths.
pub struct FleetCell {
    /// The declarative, hashable description.
    pub scenario: Scenario,
    /// Executes the cell and returns its contribution.
    pub run: Box<dyn FnOnce() -> CellResult + Send>,
}

/// Run a batch of cells: resolve cache hits, execute misses on the
/// work-stealing pool, store fresh results, and return everything in
/// input order. Progress lines go to stderr in completion order (the one
/// place ordering may vary with `--jobs`); all returned data and all
/// artifacts are deterministic.
pub fn run_cells(cells: Vec<FleetCell>, opts: &FleetOpts) -> Vec<CellResult> {
    let n = cells.len();
    let mut results: Vec<Option<CellResult>> = (0..n).map(|_| None).collect();
    let mut jobs = Vec::new();
    let mut pending: Vec<(usize, String, String, String)> = Vec::new(); // (slot, hash, figure, label)
    let mut hits = 0usize;
    for (i, cell) in cells.into_iter().enumerate() {
        let hash = cell.scenario.content_hash();
        let figure = cell.scenario.figure.clone();
        let label = cell.scenario.label.clone();
        if let Some(hit) = opts.cache.lookup(&hash) {
            hits += 1;
            conga_fleet::stats::note_cache_hit();
            eprintln!("fleet: [{}/{}] {label} — cache hit ({hash})", i + 1, n);
            conga_fleet::manifest::record(CellRecord {
                figure,
                label,
                hash,
                cached: true,
                failed: false,
                wall_us: 0,
                profile: Vec::new(),
            });
            results[i] = Some(hit);
        } else {
            pending.push((i, hash, figure, label));
            jobs.push(cell.run);
        }
    }

    // Each executed cell is bracketed by profiler snapshots so its
    // manifest record carries a per-phase breakdown. With `--jobs > 1`
    // concurrent cells share the global accumulators (deltas overlap);
    // `fleet profile` runs serially for exact attribution. When the
    // profiler is off the snapshots are all-zero and the record's
    // breakdown stays empty.
    type ProfiledCell = (CellResult, Vec<(String, u64, u64)>);
    let jobs: Vec<Box<dyn FnOnce() -> ProfiledCell + Send>> = jobs
        .into_iter()
        .map(|run| {
            Box::new(move || {
                let before = profile::snapshot();
                let r = run();
                let delta = profile::snapshot().delta_since(&before);
                let breakdown = if delta.is_zero() {
                    Vec::new()
                } else {
                    delta
                        .entries
                        .iter()
                        .map(|&(name, ns, calls)| (name.to_string(), ns, calls))
                        .collect()
                };
                (r, breakdown)
            }) as Box<dyn FnOnce() -> ProfiledCell + Send>
        })
        .collect();
    let done = AtomicUsize::new(hits);
    let labels: Vec<String> = pending.iter().map(|(_, _, _, l)| l.clone()).collect();
    let timed = conga_fleet::run_ordered(jobs, opts.jobs, &|j, wall| {
        let k = done.fetch_add(1, Ordering::SeqCst) + 1;
        eprintln!(
            "fleet: [{k}/{n}] {} — ran in {:.2}s",
            labels[j],
            wall.as_secs_f64()
        );
    });
    for ((i, hash, figure, label), t) in pending.into_iter().zip(timed) {
        // A panicked cell contributes an empty result tagged with the
        // panic message; it is recorded as failed and never cached, and
        // the rest of the batch proceeds normally.
        let (result, failed, prof) = match t.result {
            Ok((r, prof)) => {
                if let Err(e) = opts.cache.store(&hash, &r) {
                    eprintln!("fleet: cache store failed for {label}: {e}");
                }
                (r, false, prof)
            }
            Err(msg) => {
                eprintln!("fleet: cell {label} PANICKED: {msg}");
                let mut r = CellResult::default();
                r.text.insert("failed".into(), msg);
                (r, true, Vec::new())
            }
        };
        conga_fleet::manifest::record(CellRecord {
            figure,
            label,
            hash,
            cached: false,
            failed,
            wall_us: t.wall.as_micros() as u64,
            profile: prof,
        });
        results[i] = Some(result);
    }
    results
        .into_iter()
        .map(|r| r.expect("every cell resolved by hit or run"))
        .collect()
}

/// The [`Scenario`] describing an FCT cell (pure data; hashing covers
/// every field that reaches the simulation).
pub fn fct_scenario(figure: &str, label: &str, cfg: &FctRun, quick: bool) -> Scenario {
    let mut s = Scenario::new("fct", figure, label);
    s.scheme = cfg.scheme.name().to_string();
    s.dist = cfg.dist.name().to_string();
    s.load = cfg.load;
    s.seed = cfg.seed;
    s.n_flows = cfg.n_flows as u64;
    s.quick = quick;
    s.sample_uplinks = cfg.sample_uplinks;
    s.topo = TopoSpec {
        leaves: cfg.topo.leaves,
        spines: cfg.topo.spines,
        hosts_per_leaf: cfg.topo.hosts_per_leaf,
        host_gbps: cfg.topo.host_gbps,
        fabric_gbps: cfg.topo.fabric_gbps,
        parallel: cfg.topo.parallel,
        fail: cfg.topo.fail,
    };
    s.faults = cfg
        .faults
        .iter()
        .map(|f| FaultSpec {
            at_ns: f.at.as_nanos(),
            leaf: f.leaf,
            spine: f.spine,
            parallel: f.parallel,
            up: f.up,
        })
        .collect();
    let mut s = s
        .with_extra("tcp.mss", cfg.tcp.mss)
        .with_extra("tcp.init_cwnd", cfg.tcp.init_cwnd)
        .with_extra("tcp.min_rto_ns", cfg.tcp.min_rto.as_nanos())
        .with_extra("tcp.max_rto_ns", cfg.tcp.max_rto.as_nanos())
        .with_extra("tcp.dupack", cfg.tcp.dupack_thresh)
        .with_extra("tcp.max_burst", cfg.tcp.max_burst)
        .with_extra("tcp.rwnd", cfg.tcp.rwnd);
    // Controller and marking knobs reach the hash only when they change
    // behavior, mirroring the report-meta policy.
    if cfg.cc != conga_transport::CcKind::Aimd {
        s = s.with_extra("cc", cfg.cc.name());
    }
    if let Some(pkts) = cfg.effective_ecn_pkts() {
        s = s.with_extra("ecn_threshold_pkts", pkts);
    }
    // Likewise the three-tier pod structure, core-link fault schedule and
    // the streaming-sketch aggregation mode: stamped only when
    // non-default, so every pre-existing two-tier scenario keeps its
    // canonical form (modulo the version line).
    if cfg.topo.pods > 1 {
        s = s
            .with_extra("topo.pods", cfg.topo.pods)
            .with_extra("topo.cores", cfg.topo.cores);
    }
    if !cfg.core_faults.is_empty() {
        let sched: Vec<String> = cfg
            .core_faults
            .iter()
            .map(|f| {
                format!(
                    "{}@{}ns:{}:{}:{}",
                    if f.up { "recover" } else { "fail" },
                    f.at.as_nanos(),
                    f.spine,
                    f.core,
                    f.parallel
                )
            })
            .collect();
        s = s.with_extra("core_faults", sched.join(","));
    }
    if cfg.sketch {
        s = s.with_extra("fct_aggregation", "sketch");
    }
    s
}

/// Build the standard FCT cell: runs [`run_fct`], exports trace sidecars
/// in-worker when tracing is on (trace handles are thread-local by
/// design), and returns the summary + telemetry artifact.
pub fn fct_cell(
    figure: &str,
    label: &str,
    cfg: FctRun,
    quick: bool,
    tracing: Option<TraceArgs>,
) -> FleetCell {
    let scenario = fct_scenario(figure, label, &cfg, quick);
    let figure = figure.to_string();
    let label = label.to_string();
    FleetCell {
        scenario,
        run: Box::new(move || {
            let out = run_fct(&cfg);
            if let (Some(t), Some(handle)) = (&tracing, &out.trace) {
                write_trace_sidecars(&t.dir, &figure, &label, handle).expect("trace sidecar write");
            }
            let mut r = CellResult {
                summary: out.summary,
                report_json: out.report.to_json(),
                ..CellResult::default()
            };
            r.values.insert("drops".into(), out.drops as f64);
            r.values.insert("retx_bytes".into(), out.retx_bytes as f64);
            r.values.insert("timeouts".into(), out.timeouts as f64);
            // Time-series ride in the cache entry as rendered text, so a
            // warm-cache re-run writes byte-identical series sidecars.
            if !out.series.is_empty() {
                r.text.insert("series_jsonl".into(), out.series.to_jsonl());
                r.text.insert("series_csv".into(), out.series.to_csv());
            }
            r
        }),
    }
}

/// Drain the per-cell records collected so far into one manifest, write
/// it to `results/<suite>.fleet_manifest.json`, and print the one-line
/// orchestration summary. Call once, at binary exit.
pub fn finish(suite: &str, args: &Args) {
    let cells = drain();
    if !cells.is_empty() {
        let manifest = FleetManifest {
            suite: suite.to_string(),
            jobs: args.jobs_or_serial(),
            cells,
            total_wall_us: (conga_fleet::stats::elapsed_s() * 1e6) as u64,
        };
        let path = format!("results/{suite}.fleet_manifest.json");
        match manifest.write_to(&path) {
            Ok(()) => eprintln!("fleet manifest: {path}"),
            Err(e) => {
                eprintln!("fleet manifest write failed: {e}");
                std::process::exit(1);
            }
        }
    }
    crate::cli::exit_summary(suite);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Scheme, TestbedOpts};
    use conga_workloads::FlowSizeDist;

    fn tiny_cfg(seed: u64) -> FctRun {
        let mut cfg = FctRun::new(
            TestbedOpts::paper_baseline().quick(),
            Scheme::Ecmp,
            FlowSizeDist::enterprise(),
            0.3,
        );
        cfg.n_flows = 30;
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn fct_scenario_hash_separates_cells() {
        let a = fct_scenario("figX", "a", &tiny_cfg(1), true).content_hash();
        let b = fct_scenario("figX", "a", &tiny_cfg(2), true).content_hash();
        assert_ne!(a, b, "seed must reach the hash");
        let c = {
            let mut cfg = tiny_cfg(1);
            cfg.load = 0.6;
            fct_scenario("figX", "a", &cfg, true).content_hash()
        };
        assert_ne!(a, c, "load must reach the hash");
        let d = {
            let mut cfg = tiny_cfg(1);
            cfg.tcp = cfg.tcp.with_min_rto(conga_sim::SimDuration::from_millis(1));
            fct_scenario("figX", "a", &cfg, true).content_hash()
        };
        assert_ne!(a, d, "tcp overrides must reach the hash");
    }

    #[test]
    fn cc_and_ecn_reach_the_scenario_hash() {
        let a = fct_scenario("figX", "a", &tiny_cfg(1), true).content_hash();
        let b = {
            let mut cfg = tiny_cfg(1);
            cfg.cc = conga_transport::CcKind::Dctcp;
            fct_scenario("figX", "a", &cfg, true).content_hash()
        };
        assert_ne!(a, b, "cc must reach the hash");
        let c = {
            let mut cfg = tiny_cfg(1);
            cfg.cc = conga_transport::CcKind::Dctcp;
            cfg.ecn_threshold_pkts = Some(20);
            fct_scenario("figX", "a", &cfg, true).content_hash()
        };
        assert_ne!(b, c, "ecn threshold must reach the hash");
        // The AIMD default stamps no extra keys, so the pre-subsystem
        // canonical form is unchanged apart from the version line.
        let canon = fct_scenario("figX", "a", &tiny_cfg(1), true).canonical();
        assert!(!canon.contains("x.cc="));
        assert!(!canon.contains("x.ecn_threshold_pkts="));
    }

    #[test]
    fn three_tier_and_sketch_knobs_reach_the_scenario_hash() {
        let base = fct_scenario("figX", "a", &tiny_cfg(1), true);
        let base_hash = base.content_hash();
        // Defaults stamp none of the new extras — pre-existing two-tier
        // scenarios keep their canonical form (modulo the version line).
        let canon = base.canonical();
        assert!(!canon.contains("x.topo.pods="));
        assert!(!canon.contains("x.core_faults="));
        assert!(!canon.contains("x.fct_aggregation="));

        let mut cfg = tiny_cfg(1);
        cfg.topo = TestbedOpts::three_tier(2, 2, 1, 2, 4);
        let tri = fct_scenario("figX", "a", &cfg, true).content_hash();
        assert_ne!(base_hash, tri, "pod structure must reach the hash");
        cfg.core_faults = vec![crate::runner::CoreLinkFaultSpec::fail(
            conga_sim::SimTime::from_millis(3),
            0,
            0,
            0,
        )];
        let faulted = fct_scenario("figX", "a", &cfg, true).content_hash();
        assert_ne!(tri, faulted, "core faults must reach the hash");

        let mut cfg = tiny_cfg(1);
        cfg.sketch = true;
        assert_ne!(
            base_hash,
            fct_scenario("figX", "a", &cfg, true).content_hash(),
            "aggregation mode must reach the hash"
        );
    }

    #[test]
    fn run_cells_preserves_order_and_uses_cache() {
        let dir = std::env::temp_dir().join("conga-fleet-bridge-test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = FleetOpts {
            jobs: 2,
            cache: ResultCache::at(&dir),
        };
        let cells = |n: u64| -> Vec<FleetCell> {
            (0..n)
                .map(|i| fct_cell("figtest", &format!("cell{i}"), tiny_cfg(i + 1), true, None))
                .collect()
        };
        drain();
        let first = run_cells(cells(3), &opts);
        let rec1 = drain();
        assert_eq!(rec1.len(), 3);
        assert!(rec1.iter().all(|r| !r.cached), "cold cache: all misses");
        let second = run_cells(cells(3), &opts);
        let rec2 = drain();
        assert!(rec2.iter().all(|r| r.cached), "warm cache: all hits");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.to_json(), b.to_json(), "hit must equal live run");
        }
        // Distinct seeds produced distinct cells, in input order.
        assert_ne!(first[0].report_json, first[1].report_json);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
