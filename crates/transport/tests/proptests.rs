//! Property-style tests for the TCP state machines: the sender/receiver
//! pair must deliver exactly the application bytes under arbitrary loss,
//! reordering, and duplication of the wire. Cases are sampled from the
//! in-tree deterministic RNG with fixed seeds.

use conga_net::SackBlocks;
use conga_sim::{SimDuration, SimRng, SimTime};
use conga_transport::{Segment, TcpConfig, TcpRx, TcpTx};
use std::collections::VecDeque;

/// Drive a TcpTx/TcpRx pair over an adversarial wire that drops, delays,
/// and duplicates according to `chaos`, until completion or a step bound.
fn run_adversarial(total: u64, chaos: &[u8]) -> (bool, u64) {
    let cfg = TcpConfig::standard().with_min_rto(SimDuration::from_micros(50));
    let mut tx = TcpTx::new(cfg, total);
    let mut rx = TcpRx::default();
    let mut wire: VecDeque<Segment> = VecDeque::new();
    let mut out = Vec::new();
    tx.pump(&mut out);
    wire.extend(out.drain(..));
    let mut now_ns: u64 = 0;
    let mut ci = 0usize;
    let chaos_at = |i: &mut usize| -> u8 {
        let v = chaos[*i % chaos.len()];
        *i += 1;
        v
    };
    for _step in 0..200_000 {
        if tx.done() {
            return (true, tx.bytes_retx);
        }
        now_ns += 1_000;
        let now = SimTime::from_nanos(now_ns);
        if let Some(seg) = wire.pop_front() {
            let v = chaos_at(&mut ci);
            if v % 5 == 0 {
                // dropped
            } else {
                if v % 7 == 0 {
                    wire.push_back(seg); // duplicate, delivered later too
                }
                let ack = rx.on_data(seg.seq, seg.len);
                let sack = rx.sack_blocks();
                tx.on_ack(
                    ack,
                    SimTime::from_nanos(now_ns.saturating_sub(5_000)),
                    now,
                    None,
                    &sack,
                    false,
                    &mut out,
                );
                if v % 3 == 0 {
                    // reorder: rotate the wire
                    if let Some(s2) = wire.pop_front() {
                        wire.push_back(s2);
                    }
                }
            }
        } else if tx.in_flight() > 0 {
            // Wire empty but data outstanding: everything in flight was
            // dropped; fire the retransmission timer.
            tx.on_rto(&mut out);
        } else {
            tx.pump(&mut out);
        }
        wire.extend(out.drain(..));
    }
    (tx.done(), tx.bytes_retx)
}

/// Under arbitrary drop/duplicate/reorder patterns the transfer always
/// terminates with every byte delivered in order.
#[test]
fn tcp_survives_adversarial_wire() {
    let mut rng = SimRng::new(0xADC_0517);
    for _case in 0..48 {
        let total = rng.range_u64(1_000, 300_000);
        let n = rng.range_u64(16, 64) as usize;
        let chaos: Vec<u8> = (0..n).map(|_| rng.below(256) as u8).collect();
        let (done, _retx) = run_adversarial(total, &chaos);
        assert!(done, "transfer of {total} bytes did not complete");
    }
}

/// A clean wire (no chaos) never retransmits.
#[test]
fn tcp_clean_wire_no_retx() {
    let mut rng = SimRng::new(0xC1EA_4313);
    for _case in 0..64 {
        let total = rng.range_u64(1_000, 300_000);
        // chaos value 1: never divisible by 3/5/7 -> lossless in-order wire.
        let (done, retx) = run_adversarial(total, &[1]);
        assert!(done);
        assert_eq!(retx, 0, "clean wire retransmitted ({total} bytes)");
    }
}

/// The receiver's cumulative ACK is monotone and its SACK blocks are
/// always above the ACK point and sorted.
#[test]
fn receiver_invariants() {
    let mut rng = SimRng::new(0x4ECE_13E4);
    for _case in 0..256 {
        let n = rng.range_u64(1, 60) as usize;
        let segs: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.below(40) as u64, rng.range_u64(1, 4) as u32))
            .collect();
        let mss = 1460u64;
        let mut rx = TcpRx::default();
        let mut prev_ack = 0;
        for &(slot, len_pkts) in &segs {
            let seq = slot * mss;
            let len = (len_pkts as u64 * mss) as u32;
            let ack = rx.on_data(seq, len);
            assert!(ack >= prev_ack, "cumulative ACK went backwards");
            prev_ack = ack;
            let blocks: Vec<(u64, u64)> = rx.sack_blocks().iter().collect();
            for w in blocks.windows(2) {
                assert!(w[0].1 < w[1].0, "SACK blocks overlap or unsorted");
            }
            for &(s, e) in &blocks {
                assert!(s > ack, "SACK block at/below the ACK point");
                assert!(e > s);
            }
        }
    }
}

/// cwnd never goes below one MSS and in_flight never exceeds the
/// configured windows.
#[test]
fn sender_window_invariants() {
    let mut rng = SimRng::new(0x53D_714D);
    for _case in 0..128 {
        let n = rng.range_u64(1, 200) as usize;
        let acks: Vec<u8> = (0..n).map(|_| rng.below(256) as u8).collect();
        let cfg = TcpConfig::standard();
        let mut tx = TcpTx::new(cfg, 10_000_000);
        let mut out = Vec::new();
        tx.pump(&mut out);
        let mut now_ns = 0u64;
        for &a in &acks {
            now_ns += 10_000;
            let now = SimTime::from_nanos(now_ns);
            // Random-ish ack: sometimes dup, sometimes progress.
            let target = if a % 4 == 0 {
                tx.snd_una
            } else {
                (tx.snd_una + (a as u64 % 5) * 1460).min(tx.next_seq)
            };
            out.clear();
            tx.on_ack(
                target,
                SimTime::from_nanos(now_ns - 5_000),
                now,
                None,
                &SackBlocks::default(),
                false,
                &mut out,
            );
            if a % 11 == 0 {
                tx.on_rto(&mut out);
            }
            assert!(tx.cwnd() >= 1460.0 - 1e-9, "cwnd collapsed below 1 MSS");
            assert!(
                tx.in_flight() <= 10 * 1460 + cfg.rwnd,
                "flight beyond window bound"
            );
            assert!(tx.snd_una <= tx.next_seq);
        }
    }
}
