//! The end-host stack: a [`conga_net::HostAgent`] that runs every flow in
//! the simulation — plain TCP, MPTCP (N subflows with LIA coupling), and
//! constant-bit-rate senders — and records per-flow completion times.
//!
//! Flow identities map directly onto packets: `Packet::flow` indexes
//! [`TransportLayer::records`], and `Packet::subflow` selects the MPTCP
//! subflow (0 for plain TCP). Each subflow has a distinct `flow_hash`
//! (standing in for its 5-tuple), which is what lets ECMP place MPTCP
//! subflows on distinct paths.

use crate::cc::CongestionController;
use crate::config::{MptcpConfig, TcpConfig};
use crate::tcp::{Lia, Segment, TcpRx, TcpTx};
use conga_net::{flow_tuple_hash, Emitter, HostAgent, HostId, Packet, PacketKind, WIRE_OVERHEAD};
use conga_sim::{SimDuration, SimTime};
use conga_telemetry::{MetricsRegistry, SeriesRegistry};
use conga_trace::{TraceEvent, TraceHandle};
use std::collections::{BTreeMap, VecDeque};

/// Which transport a flow uses.
#[derive(Clone, Copy, Debug)]
pub enum TransportKind {
    /// Single-path TCP.
    Tcp(TcpConfig),
    /// Multipath TCP with LIA coupled congestion control.
    Mptcp(MptcpConfig),
    /// Unreliable constant-bit-rate sender (for controlled experiments).
    Cbr {
        /// Sending rate, bits per second.
        rate_bps: u64,
        /// Payload bytes per packet.
        pkt_bytes: u32,
    },
}

/// A flow to start: who, to whom, how much, and over which transport.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Application bytes to transfer (`u64::MAX` for an unbounded CBR).
    pub bytes: u64,
    /// Transport.
    pub kind: TransportKind,
}

/// Completion record for one flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowRecord {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Application bytes.
    pub bytes: u64,
    /// Start time.
    pub start: SimTime,
    /// When the receiver had every byte (the FCT endpoint used throughout
    /// the experiments).
    pub rx_done: Option<SimTime>,
    /// When the sender had every byte ACKed.
    pub tx_done: Option<SimTime>,
    /// Total bytes retransmitted across subflows.
    pub retx_bytes: u64,
    /// Total RTO firings across subflows.
    pub timeouts: u64,
}

impl FlowRecord {
    /// Receiver-side flow completion time, if the flow finished.
    pub fn fct(&self) -> Option<SimDuration> {
        self.rx_done.map(|t| t.saturating_since(self.start))
    }
}

/// An open-loop source of flow arrivals (implemented by the workload crate;
/// adapted in the experiment harness).
pub trait FlowSource {
    /// The next arrival: delay after the *previous* arrival, plus the spec.
    /// `None` ends the workload.
    fn next_flow(&mut self) -> Option<(SimDuration, FlowSpec)>;
}

/// A pre-materialized list of arrivals.
pub struct ListSource {
    items: std::vec::IntoIter<(SimDuration, FlowSpec)>,
}

impl ListSource {
    /// Wrap a list of `(inter-arrival gap, spec)` pairs.
    pub fn new(items: Vec<(SimDuration, FlowSpec)>) -> Self {
        ListSource {
            items: items.into_iter(),
        }
    }
}

impl FlowSource for ListSource {
    fn next_flow(&mut self) -> Option<(SimDuration, FlowSpec)> {
        self.items.next()
    }
}

// ---- timer token layout -----------------------------------------------
// [63:28] flow | [27:12] subflow | [11:4] generation | [3:0] kind
const KIND_ARRIVAL: u64 = 0;
const KIND_RTO: u64 = 1;
const KIND_CBR: u64 = 2;
/// Activation timer for a preregistered flow (sharded runs schedule one
/// in the flow's sender domain; see [`TransportLayer::preregister`]).
const KIND_START: u64 = 3;
/// Pacing-release timer for controllers that pace (the BBR-style one):
/// fires when the subflow's next paced segment may go on the wire.
const KIND_PACE: u64 = 4;

fn token(flow: usize, sub: usize, gen: u8, kind: u64) -> u64 {
    ((flow as u64) << 28) | ((sub as u64) << 12) | ((gen as u64) << 4) | kind
}

fn untoken(t: u64) -> (usize, usize, u8, u64) {
    (
        (t >> 28) as usize,
        ((t >> 12) & 0xFFFF) as usize,
        ((t >> 4) & 0xFF) as u8,
        t & 0xF,
    )
}

#[derive(Debug)]
struct SubflowRt {
    tx: TcpTx,
    rx: TcpRx,
    flow_hash: u64,
    /// The retransmission timer: a single pending event per subflow. Every
    /// ACK pushes `rto_deadline` forward; when the event fires early it
    /// simply re-sleeps until the current deadline (avoiding one event per
    /// ACK, and the aliasing bugs of generation counters).
    rto_deadline: SimTime,
    rto_pending: bool,
    rto_armed: bool,
    /// Segments awaiting their paced release (empty for window-driven
    /// controllers, which emit ACK-clocked bursts directly).
    pace_q: VecDeque<Segment>,
    /// Earliest time the next paced segment may be emitted.
    pace_next: SimTime,
    /// Whether a [`KIND_PACE`] timer is outstanding.
    pace_pending: bool,
}

#[derive(Debug)]
struct FlowRt {
    spec: FlowSpec,
    subflows: Vec<SubflowRt>,
    /// MPTCP: bytes not yet assigned to any subflow.
    unassigned: u64,
    /// CBR: bytes left to emit, and payload delivered.
    cbr_remaining: u64,
    cbr_delivered: u64,
    rx_complete: bool,
    tx_complete: bool,
    /// Whether this stack instance drives the flow's sender. Always true
    /// in a monolithic run; in a sharded run only the sender domain's
    /// replica activates the flow, and tx-side exports (the `subflows`
    /// count) are gated on it so merged registries match the monolithic
    /// totals.
    tx_local: bool,
}

/// The end-host transport stack for the whole simulation.
#[derive(Default)]
pub struct TransportLayer {
    flows: Vec<FlowRt>,
    /// One record per started flow, indexed by flow id.
    pub records: Vec<FlowRecord>,
    /// Flows whose receiver has every byte.
    pub completed_rx: usize,
    /// Flows activated (kickoff emitted) by this stack instance — the
    /// `transport.flows_started` export. Distinct from `flows.len()`:
    /// sharded runs preregister every flow in every domain but activate
    /// each exactly once, in its sender's domain.
    activated: u64,
    source: Option<Box<dyn FlowSource + Send>>,
    /// Spec pulled from the source, waiting for its arrival timer to fire.
    pending_first: Option<FlowSpec>,
    /// Structured event tracing (cwnd moves, fast retransmits, RTOs);
    /// disabled by default.
    tracer: TraceHandle,
    /// Reusable segment buffer for the ACK/RTO/pump paths (checked out with
    /// `mem::take`, checked back in when the call finishes) — the hot path
    /// would otherwise allocate a fresh `Vec` per ACK.
    scratch_segs: Vec<Segment>,
}

impl TransportLayer {
    /// An empty stack; start flows with [`TransportLayer::start_flow`] or
    /// attach a workload with [`TransportLayer::attach_source`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach an arrival source. The caller must kick it off by scheduling
    /// the first arrival: `net.schedule_timer(delay0, 0)` where `delay0`
    /// comes from the first `next_flow()` call — or more simply via
    /// [`TransportLayer::begin_source`].
    pub fn attach_source(&mut self, source: Box<dyn FlowSource + Send>) {
        self.source = Some(source);
    }

    /// Pull the first arrival's delay so the engine can schedule it
    /// (token 0 = arrival timer). Returns `None` for an empty workload.
    pub fn begin_source(&mut self) -> Option<(SimDuration, u64)> {
        let (delay, spec) = self.source.as_mut()?.next_flow()?;
        self.pending_first = Some(spec);
        Some((delay, token(0, 0, 0, KIND_ARRIVAL)))
    }

    /// Number of flows started so far.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Whether all started flows have delivered every byte and the source
    /// (if any) is exhausted.
    pub fn all_done(&self) -> bool {
        self.pending_first.is_none()
            && self.source_done()
            && self.flows.iter().all(|f| f.rx_complete)
    }

    fn source_done(&self) -> bool {
        // The source is consumed lazily; `all_done` is used by harnesses
        // after the arrival stream ended, at which point `source` is spent.
        true
    }

    /// Direct access to a subflow's sender state (diagnostics, tests).
    pub fn tx_state(&self, flow: usize, sub: usize) -> &TcpTx {
        &self.flows[flow].subflows[sub].tx
    }

    /// Out-of-order segment arrivals observed by `flow`'s receiver(s) — a
    /// direct measure of path-induced reordering.
    pub fn rx_ooo_segments(&self, flow: usize) -> u64 {
        self.flows[flow]
            .subflows
            .iter()
            .map(|s| s.rx.ooo_segments)
            .sum()
    }

    /// Payload bytes delivered so far for `flow` (across subflows; includes
    /// CBR).
    pub fn rx_bytes(&self, flow: usize) -> u64 {
        let f = &self.flows[flow];
        f.cbr_delivered + f.subflows.iter().map(|s| s.rx.bytes_received).sum::<u64>()
    }

    /// Start a flow immediately; returns its id.
    pub fn start_flow(&mut self, spec: FlowSpec, now: SimTime, em: &mut Emitter) -> usize {
        let id = self.register(spec, now, true);
        self.activate(id, now, em);
        id
    }

    /// Register a flow that starts later, without emitting anything yet.
    /// Sharded runs replicate every flow into every domain in the same
    /// order (aligning flow ids), set `tx_local` only in the sender's
    /// domain, and schedule a [`TransportLayer::start_token`] timer there
    /// for the arrival time; the timer activates the flow. `start` is the
    /// planned absolute start time recorded for FCT measurement.
    pub fn preregister(&mut self, spec: FlowSpec, start: SimTime, tx_local: bool) -> usize {
        self.register(spec, start, tx_local)
    }

    /// The timer token whose firing activates preregistered flow `flow`.
    pub fn start_token(flow: usize) -> u64 {
        token(flow, 0, 0, KIND_START)
    }

    fn register(&mut self, spec: FlowSpec, start: SimTime, tx_local: bool) -> usize {
        let id = self.flows.len();
        self.records.push(FlowRecord {
            src: spec.src,
            dst: spec.dst,
            bytes: spec.bytes,
            start,
            rx_done: None,
            tx_done: None,
            retx_bytes: 0,
            timeouts: 0,
        });
        let flow = match spec.kind {
            TransportKind::Tcp(cfg) => FlowRt {
                spec,
                subflows: vec![SubflowRt {
                    tx: TcpTx::new(cfg, spec.bytes),
                    rx: TcpRx::default(),
                    flow_hash: flow_tuple_hash(id as u32, 0),
                    rto_deadline: SimTime::ZERO,
                    rto_pending: false,
                    rto_armed: false,
                    pace_q: VecDeque::new(),
                    pace_next: SimTime::ZERO,
                    pace_pending: false,
                }],
                unassigned: 0,
                cbr_remaining: 0,
                cbr_delivered: 0,
                rx_complete: false,
                tx_complete: false,
                tx_local,
            },
            TransportKind::Mptcp(cfg) => FlowRt {
                spec,
                subflows: (0..cfg.subflows)
                    .map(|s| SubflowRt {
                        tx: TcpTx::new_open_ended(cfg.tcp),
                        rx: TcpRx::default(),
                        flow_hash: flow_tuple_hash(id as u32, s),
                        rto_deadline: SimTime::ZERO,
                        rto_pending: false,
                        rto_armed: false,
                        pace_q: VecDeque::new(),
                        pace_next: SimTime::ZERO,
                        pace_pending: false,
                    })
                    .collect(),
                unassigned: spec.bytes,
                cbr_remaining: 0,
                cbr_delivered: 0,
                rx_complete: false,
                tx_complete: false,
                tx_local,
            },
            TransportKind::Cbr { .. } => FlowRt {
                spec,
                subflows: Vec::new(),
                unassigned: 0,
                cbr_remaining: spec.bytes,
                cbr_delivered: 0,
                rx_complete: false,
                tx_complete: false,
                tx_local,
            },
        };
        self.flows.push(flow);
        id
    }

    /// Emit a registered flow's kickoff: the initial window (TCP), the
    /// first allocation round (MPTCP), or the first packet (CBR).
    fn activate(&mut self, id: usize, now: SimTime, em: &mut Emitter) {
        self.activated += 1;
        match self.flows[id].spec.kind {
            TransportKind::Tcp(_) => {
                let mut segs = std::mem::take(&mut self.scratch_segs);
                segs.clear();
                self.flows[id].subflows[0].tx.pump(&mut segs);
                self.dispatch_segments(id, 0, &segs, now, em);
                self.scratch_segs = segs;
                self.arm_rto(id, 0, now, true, em);
            }
            TransportKind::Mptcp(_) => {
                self.mp_allocate_and_pump(id, now, em);
            }
            TransportKind::Cbr { .. } => {
                // First packet immediately; the timer sustains the rate.
                self.cbr_emit(id, now, em);
            }
        }
    }

    fn emit_segments(
        &mut self,
        flow: usize,
        sub: usize,
        segs: &[Segment],
        now: SimTime,
        em: &mut Emitter,
    ) {
        let f = &self.flows[flow];
        let s = &f.subflows[sub];
        for seg in segs {
            let mut p = Packet::data(
                flow as u32,
                sub as u16,
                s.flow_hash,
                f.spec.src,
                f.spec.dst,
                seg.seq,
                seg.len,
                now,
            );
            if seg.retx {
                p.kind = PacketKind::Retransmit;
            }
            em.send(p);
        }
    }

    /// Route fresh segments to the wire: window-driven controllers (no
    /// pacing rate) emit immediately — the historical ACK-clocked hot path,
    /// untouched — while pacing controllers enqueue and release at the
    /// controller's rate via [`KIND_PACE`] timers.
    fn dispatch_segments(
        &mut self,
        flow: usize,
        sub: usize,
        segs: &[Segment],
        now: SimTime,
        em: &mut Emitter,
    ) {
        if segs.is_empty() {
            return;
        }
        if self.flows[flow].subflows[sub]
            .tx
            .pacing_rate_bps()
            .is_none()
            && self.flows[flow].subflows[sub].pace_q.is_empty()
        {
            self.emit_segments(flow, sub, segs, now, em);
            return;
        }
        self.flows[flow].subflows[sub]
            .pace_q
            .extend(segs.iter().copied());
        self.pace_drain(flow, sub, now, em);
    }

    /// Emit queued paced segments whose release time has come; arm a
    /// pacing timer for the rest. A controller that stops pacing mid-flow
    /// gets its backlog flushed directly.
    fn pace_drain(&mut self, flow: usize, sub: usize, now: SimTime, em: &mut Emitter) {
        loop {
            let seg = {
                let Some(s) = self.flows[flow].subflows.get_mut(sub) else {
                    return;
                };
                if s.pace_q.is_empty() {
                    return;
                }
                if now < s.pace_next {
                    if !s.pace_pending {
                        s.pace_pending = true;
                        em.set_timer(
                            s.pace_next.saturating_since(now),
                            token(flow, sub, 0, KIND_PACE),
                        );
                    }
                    return;
                }
                match s.tx.pacing_rate_bps() {
                    Some(rate) if rate > 0.0 => {
                        let Some(seg) = s.pace_q.pop_front() else {
                            return;
                        };
                        let wire_bits = (seg.len + WIRE_OVERHEAD) as f64 * 8.0;
                        let gap_ns = wire_bits * 1e9 / rate;
                        s.pace_next = now + SimDuration::from_nanos(gap_ns.ceil() as u64);
                        seg
                    }
                    _ => {
                        // No pacing rate any more: flush the backlog.
                        let rest: Vec<Segment> = s.pace_q.drain(..).collect();
                        self.emit_segments(flow, sub, &rest, now, em);
                        return;
                    }
                }
            };
            self.emit_segments(flow, sub, &[seg], now, em);
        }
    }

    /// Arm or restart the retransmission timer. `restart` pushes the
    /// deadline forward (done only when an ACK makes progress — a stalled
    /// flow must eventually fire its RTO even while dupacks stream in);
    /// otherwise the existing deadline is kept.
    fn arm_rto(&mut self, flow: usize, sub: usize, now: SimTime, restart: bool, em: &mut Emitter) {
        let s = &mut self.flows[flow].subflows[sub];
        if s.tx.in_flight() == 0 || s.tx.done() {
            s.rto_armed = false;
            return;
        }
        if restart || !s.rto_armed {
            s.rto_deadline = now + s.tx.rto();
        }
        s.rto_armed = true;
        if !s.rto_pending {
            s.rto_pending = true;
            em.set_timer(
                s.rto_deadline.saturating_since(now),
                token(flow, sub, 0, KIND_RTO),
            );
        }
    }

    /// MPTCP LIA alpha over a flow's subflows (RFC 6356 formulation).
    fn lia(&self, flow: usize) -> Lia {
        const DEFAULT_RTT_S: f64 = 100e-6;
        let f = &self.flows[flow];
        let mut cwnd_total = 0.0;
        let mut best = 0.0f64;
        let mut denom = 0.0;
        for s in &f.subflows {
            let cw = s.tx.cwnd();
            let rtt = s.tx.srtt().map(|ns| ns / 1e9).unwrap_or(DEFAULT_RTT_S);
            cwnd_total += cw;
            best = best.max(cw / (rtt * rtt));
            denom += cw / rtt;
        }
        let alpha = if denom > 0.0 {
            cwnd_total * best / (denom * denom)
        } else {
            1.0
        };
        Lia { alpha, cwnd_total }
    }

    /// MPTCP: hand unassigned bytes to subflows whose window is open, then
    /// pump them.
    fn mp_allocate_and_pump(&mut self, flow: usize, now: SimTime, em: &mut Emitter) {
        let n_subs = self.flows[flow].subflows.len();
        let (mss, conn_rwnd) = match self.flows[flow].spec.kind {
            TransportKind::Mptcp(c) => (c.tcp.mss as u64, c.tcp.rwnd),
            _ => unreachable!("mp pump on non-mptcp flow"),
        };
        let mut segs = std::mem::take(&mut self.scratch_segs);
        for sub in 0..n_subs {
            segs.clear();
            {
                let f = &mut self.flows[flow];
                loop {
                    // Connection-level receive window: the subflows share
                    // one receive buffer, so aggregate unacknowledged data
                    // is capped (this is what keeps real MPTCP from
                    // self-incasting an idle path with 8 windows at once).
                    let inflight_total: u64 = f.subflows.iter().map(|x| x.tx.in_flight()).sum();
                    let s = &mut f.subflows[sub];
                    // Assign while this subflow could send more right now.
                    if f.unassigned > 0
                        && s.tx.next_seq >= s.tx.total
                        && s.tx.window_open()
                        && inflight_total < conn_rwnd
                    {
                        let chunk = mss.min(f.unassigned);
                        s.tx.assign(chunk);
                        f.unassigned -= chunk;
                    }
                    let before = segs.len();
                    s.tx.pump(&mut segs);
                    if segs.len() == before {
                        break;
                    }
                }
            }
            if self.flows[flow].unassigned == 0 {
                for s in &mut self.flows[flow].subflows {
                    s.tx.finalize();
                }
            }
            if !segs.is_empty() {
                self.dispatch_segments(flow, sub, &segs, now, em);
                self.arm_rto(flow, sub, now, false, em);
            }
        }
        self.scratch_segs = segs;
    }

    fn cbr_emit(&mut self, flow: usize, now: SimTime, em: &mut Emitter) {
        let TransportKind::Cbr {
            rate_bps,
            pkt_bytes,
        } = self.flows[flow].spec.kind
        else {
            return;
        };
        let f = &mut self.flows[flow];
        if f.cbr_remaining == 0 {
            return;
        }
        let len = (pkt_bytes as u64).min(f.cbr_remaining) as u32;
        f.cbr_remaining -= len as u64;
        let p = Packet::data(
            flow as u32,
            0,
            flow_tuple_hash(flow as u32, 0),
            f.spec.src,
            f.spec.dst,
            f.spec.bytes - f.cbr_remaining - len as u64,
            len,
            now,
        );
        em.send(p);
        if f.cbr_remaining > 0 {
            let gap = SimDuration::serialization(len as u64, rate_bps);
            em.set_timer(gap, token(flow, 0, 0, KIND_CBR));
        }
    }

    fn maybe_finish(&mut self, flow: usize, now: SimTime) {
        let f = &mut self.flows[flow];
        if !f.rx_complete {
            let rx: u64 =
                f.cbr_delivered + f.subflows.iter().map(|s| s.rx.bytes_received).sum::<u64>();
            if rx >= f.spec.bytes {
                f.rx_complete = true;
                self.records[flow].rx_done = Some(now);
                self.completed_rx += 1;
            }
        }
        let f = &mut self.flows[flow];
        if !f.tx_complete
            && !f.subflows.is_empty()
            && f.unassigned == 0
            && f.subflows.iter().all(|s| s.tx.done())
        {
            f.tx_complete = true;
            self.records[flow].tx_done = Some(now);
            self.records[flow].retx_bytes = f.subflows.iter().map(|s| s.tx.bytes_retx).sum();
            self.records[flow].timeouts = f.subflows.iter().map(|s| s.tx.timeouts).sum();
        }
    }

    /// Aggregate transport counters across every flow and subflow into
    /// `reg` under `transport.*` names: retransmission work (`bytes_retx`,
    /// `fast_retx`, `rto_timeouts`), congestion-control state transitions
    /// (`recovery_entries` / `recovery_exits`), path-induced reordering
    /// (`rx_ooo_segments`), and flow lifecycle counts.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        let mut bytes_retx = 0u64;
        let mut rto_timeouts = 0u64;
        let mut fast_retx = 0u64;
        let mut recovery_entries = 0u64;
        let mut recovery_exits = 0u64;
        let mut rx_ooo = 0u64;
        let mut rx_bytes = 0u64;
        let mut subflows = 0u64;
        let mut tx_complete = 0u64;
        // Retransmission-timer accounting is namespaced per controller:
        // `cc.<name>.rto_fired` / `cc.<name>.fast_retx`, emitted only when
        // nonzero. The aimd default keeps the historical flat
        // `transport.rto_timeouts` / `transport.fast_retx` names so the
        // pre-refactor golden reports stay byte-identical.
        let mut cc_rto: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for f in &self.flows {
            rx_bytes += f.cbr_delivered;
            tx_complete += f.tx_complete as u64;
            for s in &f.subflows {
                // Sharded runs replicate flow state into every domain;
                // only the sender's replica counts toward the subflow
                // total (the other per-subflow counters stay zero in
                // replicas and sum correctly without gating).
                subflows += f.tx_local as u64;
                bytes_retx += s.tx.bytes_retx;
                let name = s.tx.cc().name();
                if name == "aimd" {
                    rto_timeouts += s.tx.timeouts;
                    fast_retx += s.tx.fast_retx;
                } else {
                    let e = cc_rto.entry(name).or_default();
                    e.0 += s.tx.timeouts;
                    e.1 += s.tx.fast_retx;
                }
                recovery_entries += s.tx.recovery_entries;
                recovery_exits += s.tx.recovery_exits;
                rx_ooo += s.rx.ooo_segments;
                rx_bytes += s.rx.bytes_received;
            }
        }
        reg.set_counter("transport.flows_started", self.activated);
        reg.set_counter("transport.flows_rx_complete", self.completed_rx as u64);
        reg.set_counter("transport.flows_tx_complete", tx_complete);
        reg.set_counter("transport.subflows", subflows);
        reg.set_counter("transport.bytes_retx", bytes_retx);
        reg.set_counter("transport.rto_timeouts", rto_timeouts);
        reg.set_counter("transport.fast_retx", fast_retx);
        reg.set_counter("transport.recovery_entries", recovery_entries);
        reg.set_counter("transport.recovery_exits", recovery_exits);
        reg.set_counter("transport.rx_ooo_segments", rx_ooo);
        reg.set_counter("transport.rx_bytes", rx_bytes);
        for (name, (rto, fr)) in cc_rto {
            if rto > 0 {
                reg.set_counter(&format!("cc.{name}.rto_fired"), rto);
            }
            if fr > 0 {
                reg.set_counter(&format!("cc.{name}.fast_retx"), fr);
            }
        }
    }
}

impl HostAgent for TransportLayer {
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        TransportLayer::export_metrics(self, reg);
    }

    fn sample_series(&self, now: SimTime, out: &mut SeriesRegistry) {
        // A flow is active from its planned start until its sender has
        // every byte ACKed. Gating on `tx_local` counts each flow in
        // exactly one shard domain, so the by-window sum-merge equals the
        // monolithic count.
        let active = self
            .flows
            .iter()
            .zip(&self.records)
            .filter(|(f, r)| f.tx_local && r.start <= now && !f.tx_complete)
            .count();
        if active > 0 {
            out.record("transport.active_flows", now, active as f64);
        }
        // Per-controller gauges for the non-default controllers: additive
        // partial values (sums and counts, never means — fractions are
        // derived after the domain merge). An all-aimd run records nothing
        // here, keeping default-report series byte-identical to baseline.
        let mut per: BTreeMap<&'static str, (f64, f64, f64, f64)> = BTreeMap::new();
        for (f, r) in self.flows.iter().zip(&self.records) {
            if !(f.tx_local && r.start <= now && !f.tx_complete) {
                continue;
            }
            for s in &f.subflows {
                let name = s.tx.cc().name();
                if name == "aimd" {
                    continue;
                }
                let e = per.entry(name).or_default();
                e.0 += s.tx.cwnd();
                e.1 += 1.0;
                if let Some(a) = s.tx.cc().alpha() {
                    e.2 += a;
                }
                if let Some(p) = s.tx.pacing_rate_bps() {
                    e.3 += p;
                }
            }
        }
        for (name, (cwnd, n, alpha, pace)) in per {
            out.record(&format!("cc.{name}.cwnd_bytes"), now, cwnd);
            out.record(&format!("cc.{name}.subflows"), now, n);
            if name == "dctcp" {
                out.record("cc.dctcp.alpha_sum", now, alpha);
            }
            if name == "bbr" && pace > 0.0 {
                out.record("cc.bbr.pacing_rate_bps", now, pace);
            }
        }
    }

    fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    fn on_packet(&mut self, pkt: Packet, now: SimTime, em: &mut Emitter) {
        let flow = pkt.flow as usize;
        if flow >= self.flows.len() {
            return;
        }
        match pkt.kind {
            PacketKind::Data | PacketKind::Retransmit => {
                let is_cbr = matches!(self.flows[flow].spec.kind, TransportKind::Cbr { .. });
                if is_cbr {
                    self.flows[flow].cbr_delivered += pkt.payload as u64;
                    self.maybe_finish(flow, now);
                    return;
                }
                let sub = pkt.subflow as usize;
                let f = &mut self.flows[flow];
                let Some(s) = f.subflows.get_mut(sub) else {
                    return;
                };
                let ack = s.rx.on_data(pkt.seq, pkt.payload);
                let hash = s.flow_hash;
                let sack = s.rx.sack_blocks();
                // Cumulative ACK back to the sender, echoing the timestamp
                // and advertising the first hole (SACK-lite).
                let mut ackp = Packet::ack_for(
                    pkt.flow,
                    pkt.subflow,
                    hash,
                    pkt.dst,
                    pkt.src,
                    ack,
                    pkt.ts_echo,
                );
                ackp.sack = sack;
                // ECN echo: reflect the data packet's CE mark back to the
                // sender (a no-op when the dataplane never marks).
                ackp.ecn_echo = pkt.ecn_ce;
                em.send(ackp);
                self.maybe_finish(flow, now);
            }
            PacketKind::Ack => {
                let sub = pkt.subflow as usize;
                let is_mp = matches!(self.flows[flow].spec.kind, TransportKind::Mptcp(_));
                let lia = is_mp.then(|| self.lia(flow));
                let traced = self.tracer.wants_flow(pkt.flow);
                let mut segs = std::mem::take(&mut self.scratch_segs);
                segs.clear();
                let progressed;
                {
                    let f = &mut self.flows[flow];
                    let Some(s) = f.subflows.get_mut(sub) else {
                        self.scratch_segs = segs;
                        return;
                    };
                    if s.tx.done() {
                        self.scratch_segs = segs;
                        return;
                    }
                    let prev_una = s.tx.snd_una;
                    let (prev_cwnd, prev_fr) = if traced {
                        (s.tx.cwnd(), s.tx.fast_retx)
                    } else {
                        (0.0, 0)
                    };
                    s.tx.on_ack(
                        pkt.ack,
                        pkt.ts_echo,
                        now,
                        lia,
                        &pkt.sack,
                        pkt.ecn_echo,
                        &mut segs,
                    );
                    progressed = s.tx.snd_una > prev_una;
                    if traced {
                        if s.tx.fast_retx > prev_fr {
                            self.tracer.emit(
                                now,
                                TraceEvent::FastRetx {
                                    flow: pkt.flow,
                                    subflow: pkt.subflow,
                                },
                            );
                        }
                        let cwnd = s.tx.cwnd();
                        if cwnd != prev_cwnd {
                            self.tracer.emit(
                                now,
                                TraceEvent::CwndUpdate {
                                    flow: pkt.flow,
                                    subflow: pkt.subflow,
                                    cwnd,
                                },
                            );
                        }
                    }
                }
                self.dispatch_segments(flow, sub, &segs, now, em);
                self.scratch_segs = segs;
                if is_mp {
                    self.mp_allocate_and_pump(flow, now, em);
                }
                self.arm_rto(flow, sub, now, progressed, em);
                self.maybe_finish(flow, now);
            }
            PacketKind::Request => {}
        }
    }

    fn on_timer(&mut self, t: u64, now: SimTime, em: &mut Emitter) {
        let (flow, sub, gen, kind) = untoken(t);
        match kind {
            KIND_ARRIVAL => {
                // Start the pending flow, then schedule the next arrival.
                if let Some(spec) = self.pending_first.take() {
                    self.start_flow(spec, now, em);
                }
                if let Some(src) = self.source.as_mut() {
                    if let Some((delay, spec)) = src.next_flow() {
                        self.pending_first = Some(spec);
                        em.set_timer(delay, token(0, 0, 0, KIND_ARRIVAL));
                    }
                }
            }
            KIND_RTO => {
                let _ = gen;
                if flow >= self.flows.len() {
                    return;
                }
                let mut segs = std::mem::take(&mut self.scratch_segs);
                segs.clear();
                {
                    let f = &mut self.flows[flow];
                    let Some(s) = f.subflows.get_mut(sub) else {
                        self.scratch_segs = segs;
                        return;
                    };
                    s.rto_pending = false;
                    if !s.rto_armed || s.tx.done() {
                        self.scratch_segs = segs;
                        return; // timer was cancelled
                    }
                    if now < s.rto_deadline {
                        // ACKs pushed the deadline forward; sleep the rest.
                        s.rto_pending = true;
                        em.set_timer(
                            s.rto_deadline.saturating_since(now),
                            token(flow, sub, 0, KIND_RTO),
                        );
                        self.scratch_segs = segs;
                        return;
                    }
                    // Go-back-N rewinds the send point: queued paced
                    // segments are stale, and the single retransmission
                    // below goes out directly (never paced) so recovery is
                    // not delayed behind a slack pacing schedule.
                    s.pace_q.clear();
                    s.tx.on_rto(&mut segs);
                    if self.tracer.wants_flow(flow as u32) {
                        self.tracer.emit(
                            now,
                            TraceEvent::Rto {
                                flow: flow as u32,
                                subflow: sub as u16,
                            },
                        );
                        self.tracer.emit(
                            now,
                            TraceEvent::CwndUpdate {
                                flow: flow as u32,
                                subflow: sub as u16,
                                cwnd: s.tx.cwnd(),
                            },
                        );
                    }
                }
                self.emit_segments(flow, sub, &segs, now, em);
                self.scratch_segs = segs;
                self.arm_rto(flow, sub, now, true, em);
            }
            KIND_PACE => {
                if flow >= self.flows.len() {
                    return;
                }
                let Some(s) = self.flows[flow].subflows.get_mut(sub) else {
                    return;
                };
                s.pace_pending = false;
                self.pace_drain(flow, sub, now, em);
            }
            KIND_CBR => self.cbr_emit(flow, now, em),
            KIND_START if flow < self.flows.len() => self.activate(flow, now, em),
            _ => {}
        }
    }
}
