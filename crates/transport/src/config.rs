//! Transport configuration.

use crate::cc::CcKind;
use conga_sim::SimDuration;

/// TCP sender/receiver parameters.
///
/// Defaults model the paper's testbed hosts: standard Linux TCP with a
/// 200 ms minimum RTO and 1500 B Ethernet MTU. The Incast experiments vary
/// `min_rto` (200 ms vs 1 ms, after Vasudevan et al.) and the MTU (1500 vs
/// 9000 jumbo frames).
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per packet): MTU minus 40 B of
    /// TCP/IP headers.
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub init_cwnd: u32,
    /// Minimum (and initial) retransmission timeout.
    pub min_rto: SimDuration,
    /// Upper bound on the backed-off RTO.
    pub max_rto: SimDuration,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_thresh: u32,
    /// Maximum new segments released per ACK (classic maxburst limiting,
    /// as in ns-2 and Linux burst mitigation). Prevents line-rate window
    /// dumps when cwnd jumps (post-recovery deflation, idle restarts).
    pub max_burst: u32,
    /// Receiver window (SO_RCVBUF) in bytes: the effective send window is
    /// `min(cwnd, rwnd)`. Bounds slow-start overshoot exactly as receive
    /// buffer autotuning does on real datacenter hosts.
    pub rwnd: u64,
    /// The congestion controller each flow runs (see [`crate::cc`]).
    pub cc: CcKind,
}

impl TcpConfig {
    /// Standard-MTU Linux-like defaults (MSS 1460, IW 10, minRTO 200 ms).
    pub fn standard() -> Self {
        TcpConfig {
            mss: 1460,
            init_cwnd: 10,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(2),
            dupack_thresh: 3,
            max_burst: 10,
            rwnd: 512 * 1024,
            cc: CcKind::Aimd,
        }
    }

    /// Jumbo-frame variant (MTU 9000 → MSS 8960).
    pub fn jumbo() -> Self {
        TcpConfig {
            mss: 8960,
            ..Self::standard()
        }
    }

    /// Replace the minimum RTO (e.g. the 1 ms Incast mitigation).
    pub fn with_min_rto(mut self, rto: SimDuration) -> Self {
        self.min_rto = rto;
        self
    }

    /// Replace the congestion controller.
    pub fn with_cc(mut self, cc: CcKind) -> Self {
        self.cc = cc;
        self
    }
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// MPTCP connection parameters.
#[derive(Clone, Copy, Debug)]
pub struct MptcpConfig {
    /// Per-subflow TCP parameters.
    pub tcp: TcpConfig,
    /// Number of subflows per connection. The paper follows Raiciu et al.'s
    /// recommendation of 8.
    pub subflows: u16,
}

impl Default for MptcpConfig {
    fn default() -> Self {
        MptcpConfig {
            tcp: TcpConfig::standard(),
            subflows: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = TcpConfig::standard();
        assert_eq!(c.mss, 1460);
        assert_eq!(c.min_rto, SimDuration::from_millis(200));
        let m = MptcpConfig::default();
        assert_eq!(m.subflows, 8);
        let j = TcpConfig::jumbo();
        assert_eq!(j.mss, 8960);
    }

    #[test]
    fn with_min_rto_overrides() {
        let c = TcpConfig::standard().with_min_rto(SimDuration::from_millis(1));
        assert_eq!(c.min_rto, SimDuration::from_millis(1));
        assert_eq!(c.mss, 1460);
    }
}
