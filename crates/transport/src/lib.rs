//! # conga-transport — per-packet transport protocols for the simulator
//!
//! The paper's evaluation rests on the *interaction* between load balancing
//! and the transport control loop: TCP's window dynamics and timeouts are
//! what turn poor path choices into flow-completion-time pain, and MPTCP's
//! subflows are both its strength (core load balancing) and weakness
//! (Incast). This crate provides:
//!
//! * [`TcpTx`] / [`TcpRx`] — a TCP state machine (slow start, fast
//!   retransmit/recovery, RFC 6298 RTO with configurable minRTO) whose
//!   congestion-window decisions are delegated to a pluggable
//!   [`CongestionController`] ([`cc`] module: AIMD, DCTCP, CUBIC, BBR);
//! * MPTCP — N subflows with distinct 5-tuple hashes and LIA coupled
//!   congestion control, layered over the same state machine;
//! * CBR senders for controlled micro-benchmarks;
//! * [`TransportLayer`] — the [`conga_net::HostAgent`] that runs all flows
//!   and records completion times.

#![warn(missing_docs)]

pub mod cc;
mod config;
mod layer;
mod tcp;

pub use cc::{AckCtx, Cc, CcKind, CongestionController};
pub use config::{MptcpConfig, TcpConfig};
pub use layer::{FlowRecord, FlowSource, FlowSpec, ListSource, TransportKind, TransportLayer};
pub use tcp::{Lia, Segment, TcpRx, TcpTx};

#[cfg(test)]
mod e2e {
    //! End-to-end tests: full transports over a real fabric, using a local
    //! minimal ECMP dataplane (the production policies live in conga-core,
    //! which sits above this crate).

    use super::*;
    use conga_net::{
        ecmp_mix, ChannelId, Dataplane, Fib, HostId, LeafId, LeafSpineBuilder, Network, Packet,
        QueueProfile, SpineId, Topology,
    };
    use conga_sim::{SimDuration, SimRng, SimTime};

    struct MiniEcmp;
    impl Dataplane for MiniEcmp {
        fn install(&mut self, _t: &Topology, _f: &Fib) {}
        fn leaf_ingress(
            &mut self,
            leaf: LeafId,
            pkt: &mut Packet,
            c: &[ChannelId],
            _n: SimTime,
            _r: &mut SimRng,
        ) -> ChannelId {
            c[(ecmp_mix(pkt.flow_hash, leaf.0 as u64) % c.len() as u64) as usize]
        }
        fn spine_forward(
            &mut self,
            spine: SpineId,
            pkt: &mut Packet,
            c: &[ChannelId],
            _n: SimTime,
            _r: &mut SimRng,
        ) -> ChannelId {
            c[(ecmp_mix(pkt.flow_hash, 99 + spine.0 as u64) % c.len() as u64) as usize]
        }
        fn on_fabric_tx(&mut self, _c: ChannelId, _p: &mut Packet, _n: SimTime) {}
        fn leaf_egress(&mut self, _l: LeafId, _p: &Packet, _n: SimTime) {}
        fn name(&self) -> &'static str {
            "mini-ecmp"
        }
    }

    fn testbed(queues: Option<QueueProfile>) -> Network<MiniEcmp, TransportLayer> {
        let mut b = LeafSpineBuilder::new(2, 2, 32)
            .host_rate_gbps(10)
            .fabric_rate_gbps(40)
            .parallel_links(2);
        if let Some(q) = queues {
            b = b.queue_profile(q);
        }
        Network::new(b.build(), MiniEcmp, TransportLayer::new(), 42)
    }

    fn tcp_spec(src: u32, dst: u32, bytes: u64) -> FlowSpec {
        FlowSpec {
            src: HostId(src),
            dst: HostId(dst),
            bytes,
            kind: TransportKind::Tcp(TcpConfig::standard()),
        }
    }

    #[test]
    fn single_tcp_flow_delivers_exact_bytes() {
        let mut net = testbed(None);
        let bytes = 5_000_000;
        net.agent_call(|a, now, em| a.start_flow(tcp_spec(0, 40, bytes), now, em));
        net.run_until(SimTime::from_secs(2));
        let rec = net.agent.records[0];
        assert!(rec.rx_done.is_some(), "flow did not complete");
        assert!(rec.tx_done.is_some(), "sender did not see final ACK");
        assert_eq!(net.agent.rx_bytes(0), bytes);
    }

    #[test]
    fn tcp_fct_close_to_ideal_on_idle_fabric() {
        let mut net = testbed(None);
        let bytes: u64 = 10_000_000;
        net.agent_call(|a, now, em| a.start_flow(tcp_spec(0, 5, bytes), now, em));
        net.run_until(SimTime::from_secs(2));
        let fct = net.agent.records[0].fct().expect("completed").as_secs_f64();
        // Ideal: 10 MB at 10 Gbps ~ 8 ms; slow start adds some RTTs.
        let ideal = bytes as f64 * 8.0 / 10e9;
        assert!(fct > ideal, "faster than line rate?! {fct}");
        assert!(
            fct < ideal * 1.5,
            "too slow on an idle fabric: {fct} vs {ideal}"
        );
    }

    #[test]
    fn two_flows_share_access_link_fairly() {
        // Two long flows into the same 10G downlink: at a fixed time cut
        // each should have roughly half the delivered bytes (FCT would be
        // RTO-noisy; steady-state throughput shows the AIMD fair share).
        let mut net = testbed(None);
        let bytes = 500_000_000u64;
        // A datacenter-sane minRTO keeps timeout recovery off the critical
        // path so AIMD convergence is visible within the measurement window.
        let cfg = TcpConfig::standard().with_min_rto(SimDuration::from_millis(2));
        net.agent_call(|a, now, em| {
            for src in [0u32, 1] {
                a.start_flow(
                    FlowSpec {
                        src: HostId(src),
                        dst: HostId(5),
                        bytes,
                        kind: TransportKind::Tcp(cfg),
                    },
                    now,
                    em,
                );
            }
        });
        // Skip the initial slow-start overshoot/recovery episode; measure
        // the steady state over [50 ms, 150 ms].
        net.run_until(SimTime::from_millis(50));
        let s0 = net.agent.rx_bytes(0) as f64;
        let s1 = net.agent.rx_bytes(1) as f64;
        net.run_until(SimTime::from_millis(150));
        let b0 = net.agent.rx_bytes(0) as f64 - s0;
        let b1 = net.agent.rx_bytes(1) as f64 - s1;
        let total_gbps = (b0 + b1) * 8.0 / 100e-3 / 1e9;
        assert!(
            total_gbps > 8.0,
            "downlink underutilized: {total_gbps} Gbps"
        );
        assert!((b0 / b1).max(b1 / b0) < 2.0, "unfair split: {b0} vs {b1}");
    }

    #[test]
    fn tcp_recovers_from_drops_on_shallow_queues() {
        // Starve the access queues so incast-style drops occur.
        let mut net = testbed(Some(QueueProfile {
            access_bytes: 30_000,
            fabric_bytes: 12 << 20,
            host_nic_bytes: 4 << 20,
        }));
        let n = 16u32;
        let each = 400_000u64;
        net.agent_call(|a, now, em| {
            for s in 0..n {
                // All senders hammer host 40 simultaneously.
                a.start_flow(tcp_spec(s, 40, each), now, em);
            }
        });
        net.run_until(SimTime::from_secs(5));
        assert!(
            net.total_drops() > 0,
            "test meant to exercise loss recovery"
        );
        for i in 0..n as usize {
            let r = net.agent.records[i];
            assert!(
                r.rx_done.is_some(),
                "flow {i} stuck (retx={}, to={})",
                r.retx_bytes,
                r.timeouts
            );
            assert_eq!(net.agent.rx_bytes(i), each, "flow {i} byte conservation");
        }
        let retx: u64 = net.agent.records.iter().map(|r| r.retx_bytes).sum();
        assert!(retx > 0, "drops must have caused retransmissions");
    }

    #[test]
    fn mptcp_completes_and_uses_multiple_subflows() {
        let mut net = testbed(None);
        let bytes = 8_000_000u64;
        let spec = FlowSpec {
            src: HostId(0),
            dst: HostId(40),
            bytes,
            kind: TransportKind::Mptcp(MptcpConfig::default()),
        };
        net.agent_call(|a, now, em| a.start_flow(spec, now, em));
        net.run_until(SimTime::from_secs(2));
        let rec = net.agent.records[0];
        assert!(rec.rx_done.is_some(), "MPTCP flow did not complete");
        assert_eq!(net.agent.rx_bytes(0), bytes);
    }

    #[test]
    fn mptcp_subflows_hash_to_distinct_paths() {
        // With 8 subflows and 4 uplinks, several uplinks must carry traffic.
        let mut net = testbed(None);
        let spec = FlowSpec {
            src: HostId(0),
            dst: HostId(40),
            bytes: 2_000_000,
            kind: TransportKind::Mptcp(MptcpConfig::default()),
        };
        net.agent_call(|a, now, em| a.start_flow(spec, now, em));
        net.run_until(SimTime::from_secs(1));
        let used = net.fib.leaf_uplinks[0]
            .iter()
            .filter(|&&u| net.port(u).tx_pkts > 0)
            .count();
        assert!(used >= 2, "all subflows landed on one uplink");
    }

    #[test]
    fn cbr_paces_packets_at_configured_rate() {
        let mut net = testbed(None);
        let spec = FlowSpec {
            src: HostId(0),
            dst: HostId(5),
            bytes: 1_500_000, // 1000 packets of 1500B
            kind: TransportKind::Cbr {
                rate_bps: 1_000_000_000,
                pkt_bytes: 1500,
            },
        };
        net.agent_call(|a, now, em| a.start_flow(spec, now, em));
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.agent.rx_bytes(0), 1_500_000);
        let rec = net.agent.records[0];
        // 1.5 MB at 1 Gbps = 12 ms of pacing.
        let fct = rec.fct().unwrap().as_secs_f64();
        assert!((fct - 0.012).abs() < 0.001, "CBR pace off: {fct}");
    }

    #[test]
    fn list_source_drives_arrivals_at_configured_gaps() {
        let mut net = testbed(None);
        let arrivals = vec![
            (SimDuration::from_micros(10), tcp_spec(0, 4, 100_000)),
            (SimDuration::from_micros(500), tcp_spec(1, 5, 200_000)),
            (SimDuration::from_micros(900), tcp_spec(2, 6, 50_000)),
        ];
        net.agent.attach_source(Box::new(ListSource::new(arrivals)));
        if let Some((d, tok)) = net.agent.begin_source() {
            net.schedule_timer(d, tok);
        }
        net.run_until(SimTime::from_secs(1));
        assert_eq!(net.agent.flow_count(), 3);
        assert_eq!(net.agent.completed_rx, 3);
        // Arrivals are spaced by the configured gaps.
        let starts: Vec<u64> = net
            .agent
            .records
            .iter()
            .map(|r| r.start.as_nanos())
            .collect();
        assert_eq!(starts[0], 10_000);
        assert_eq!(starts[1], 510_000);
        assert_eq!(starts[2], 1_410_000);
    }

    #[test]
    fn deterministic_fcts_across_identical_runs() {
        let run = || {
            let mut net = testbed(None);
            net.agent_call(|a, now, em| {
                for i in 0..10 {
                    a.start_flow(tcp_spec(i, 8 + i, 500_000), now, em);
                }
            });
            net.run_until(SimTime::from_secs(1));
            net.agent
                .records
                .iter()
                .map(|r| r.rx_done.unwrap().as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
