//! A BBR-style model-based controller (Cardwell et al., CACM 2017):
//! instead of reacting to loss or marks, continuously estimate the path's
//! bottleneck bandwidth and round-trip propagation delay, then run the
//! pipe at their product.
//!
//! Simplifications relative to production BBR (deliberate, to stay
//! deterministic and reviewable):
//!
//! * Delivery-rate samples are taken once per *round* (a round ends when
//!   the cumulative ACK passes the `next_seq` captured at the previous
//!   round's end), not per ACK, and fed to a max-filter over the last
//!   [`BW_FILTER_LEN`] rounds.
//! * `min_rtt` is a running minimum of the RTT samples — experiment
//!   timescales here are milliseconds, so there is no 10-second
//!   re-probe.
//! * Two phases: **startup** (pacing gain 2/ln 2 until the bandwidth
//!   estimate stops growing for three rounds) and **cruise**, which walks
//!   the classic eight-slot gain cycle `[1.25, 0.75, 1, 1, 1, 1, 1, 1]`
//!   one slot per round to probe and then drain.
//!
//! The pacing rate ([`CongestionController::pacing_rate_bps`]) is
//! enforced by the transport layer through the event queue; `cwnd` acts
//! only as a BDP-proportional cap on outstanding data. Loss leaves the
//! model untouched (ssthresh tracks cwnd so the recovery state machine
//! stays well-formed); RTO collapses to one segment like every other
//! controller so go-back-N restarts cleanly.

use super::{AckCtx, CongestionController};
use crate::config::TcpConfig;
use conga_sim::SimTime;

/// Rounds of history the bottleneck-bandwidth max-filter keeps.
const BW_FILTER_LEN: usize = 10;
/// Startup pacing gain, 2/ln 2 — doubles the sending rate each round.
const STARTUP_GAIN: f64 = 2.885;
/// Cruise-phase pacing-gain cycle, one slot per round.
const GAIN_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Startup ends when bandwidth grows less than this across a round…
const FULL_BW_GROWTH: f64 = 1.25;
/// …for this many consecutive rounds.
const FULL_BW_ROUNDS: u32 = 3;
/// The cwnd is this many BDPs (headroom for ACK aggregation).
const CWND_GAIN: f64 = 2.0;

/// BBR-style: delivery-rate model, min-RTT floor, paced sending.
#[derive(Clone, Debug)]
pub struct Bbr {
    cwnd: f64,
    ssthresh: f64,
    mss: f64,
    /// Max-filter ring over per-round delivery-rate samples, bits/sec.
    bw_samples: [f64; BW_FILTER_LEN],
    bw_head: usize,
    /// Running minimum RTT, seconds (`f64::MAX` until the first sample).
    min_rtt_s: f64,
    /// The round closes when the cumulative ACK reaches this sequence.
    round_end_seq: u64,
    /// Bytes delivered (cum-ACKed) during the current round.
    round_delivered: f64,
    /// When the current round started.
    round_start: SimTime,
    /// True until startup detects the bandwidth plateau.
    in_startup: bool,
    /// Plateau detection: best bandwidth seen and rounds without growth.
    full_bw: f64,
    full_bw_rounds: u32,
    /// Cruise gain-cycle position.
    cycle_idx: usize,
}

impl Bbr {
    /// A fresh model; behaves like slow start until the first round of
    /// delivery-rate data arrives.
    pub fn new(cfg: &TcpConfig) -> Self {
        Bbr {
            cwnd: (cfg.init_cwnd * cfg.mss) as f64,
            ssthresh: f64::MAX,
            mss: cfg.mss as f64,
            bw_samples: [0.0; BW_FILTER_LEN],
            bw_head: 0,
            min_rtt_s: f64::MAX,
            round_end_seq: 0,
            round_delivered: 0.0,
            round_start: SimTime::ZERO,
            in_startup: true,
            full_bw: 0.0,
            full_bw_rounds: 0,
            cycle_idx: 0,
        }
    }

    /// Best bandwidth estimate across the filter window, bits/sec.
    fn btl_bw(&self) -> f64 {
        self.bw_samples.iter().cloned().fold(0.0, f64::max)
    }

    /// The current pacing gain for the phase the model is in.
    fn pacing_gain(&self) -> f64 {
        if self.in_startup {
            STARTUP_GAIN
        } else {
            GAIN_CYCLE[self.cycle_idx]
        }
    }

    /// Bandwidth-delay product in bytes, if both estimates exist.
    fn bdp_bytes(&self) -> Option<f64> {
        let bw = self.btl_bw();
        if bw <= 0.0 || self.min_rtt_s == f64::MAX {
            return None;
        }
        Some(bw * self.min_rtt_s / 8.0)
    }

    /// Close a round: record the delivery-rate sample, advance the phase
    /// machinery, and re-derive the window.
    fn end_round(&mut self, ctx: &AckCtx) {
        let dt = ctx.now.saturating_since(self.round_start).as_nanos() as f64 / 1e9;
        if dt > 0.0 && self.round_delivered > 0.0 {
            let sample_bps = self.round_delivered * 8.0 / dt;
            self.bw_samples[self.bw_head] = sample_bps;
            self.bw_head = (self.bw_head + 1) % BW_FILTER_LEN;
        }
        if self.in_startup {
            // Plateau detection: three rounds without 1.25x growth.
            let bw = self.btl_bw();
            if bw > self.full_bw * FULL_BW_GROWTH {
                self.full_bw = bw;
                self.full_bw_rounds = 0;
            } else {
                self.full_bw_rounds += 1;
                if self.full_bw_rounds >= FULL_BW_ROUNDS {
                    self.in_startup = false;
                    self.cycle_idx = 0;
                }
            }
        } else {
            self.cycle_idx = (self.cycle_idx + 1) % GAIN_CYCLE.len();
        }
        if let Some(bdp) = self.bdp_bytes() {
            self.cwnd = (CWND_GAIN * bdp).max(4.0 * self.mss);
        }
        self.round_delivered = 0.0;
        self.round_start = ctx.now;
        self.round_end_seq = ctx.next_seq;
    }
}

impl CongestionController for Bbr {
    fn name(&self) -> &'static str {
        "bbr"
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_bytes_acked(&mut self, ctx: &AckCtx) {
        self.round_delivered += ctx.acked;
        if let Some(rtt) = ctx.rtt_ns {
            let rtt_s = rtt / 1e9;
            if rtt_s < self.min_rtt_s {
                self.min_rtt_s = rtt_s;
            }
        }
        if ctx.ack >= self.round_end_seq {
            self.end_round(ctx);
        }
    }

    fn on_ack(&mut self, ctx: &AckCtx) {
        // Until the model produces its first bandwidth sample, open the
        // window exponentially so delivery-rate data exists to measure.
        if self.btl_bw() <= 0.0 {
            self.cwnd += ctx.acked;
        }
    }

    fn on_ecn(&mut self, _ctx: &AckCtx) {
        // Rate-based: marks don't move the model.
    }

    fn on_loss(&mut self, _flight: f64) {
        // The model, not the loss event, sets the rate; keep ssthresh
        // consistent so the recovery state machine's bookkeeping holds.
        self.ssthresh = self.cwnd;
    }

    fn on_partial_ack(&mut self, _acked: f64) {}

    fn on_recovery_exit(&mut self) {}

    fn on_rto(&mut self, _flight: f64) {
        // Total loss of the ACK clock: restart from one segment and
        // forget the in-progress round (its sample would be garbage).
        self.ssthresh = self.cwnd;
        self.cwnd = self.mss;
        self.round_delivered = 0.0;
    }

    fn pacing_rate_bps(&self) -> Option<f64> {
        let bw = self.btl_bw();
        if bw > 0.0 {
            Some(self.pacing_gain() * bw)
        } else {
            None
        }
    }

    fn force_window(&mut self, cwnd: f64, ssthresh: f64) {
        self.cwnd = cwnd;
        self.ssthresh = ssthresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(acked: f64, ack: u64, next_seq: u64, now_us: u64, rtt_ns: f64) -> AckCtx {
        AckCtx {
            acked,
            ack,
            next_seq,
            now: SimTime::from_micros(now_us),
            rtt_ns: Some(rtt_ns),
            ecn_echo: false,
            lia: None,
        }
    }

    /// Drive `n` more rounds of a steady 1 MB-per-10ms delivery pattern,
    /// continuing from the caller's (seq, time) cursor so consecutive
    /// calls extend one contiguous delivery trace.
    fn steady_rounds(b: &mut Bbr, seq: &mut u64, t_us: &mut u64, n: usize) {
        for _ in 0..n {
            *seq += 1_000_000;
            *t_us += 10_000;
            b.on_bytes_acked(&ctx(1_000_000.0, *seq, *seq + 1_000_000, *t_us, 100_000.0));
        }
    }

    #[test]
    fn delivery_rate_reaches_the_max_filter() {
        let mut b = Bbr::new(&TcpConfig::standard());
        let (mut seq, mut t) = (0u64, 0u64);
        steady_rounds(&mut b, &mut seq, &mut t, 3);
        // 1 MB / 10 ms = 800 Mbit/s.
        assert!((b.btl_bw() - 800e6).abs() / 800e6 < 1e-9);
        assert_eq!(b.min_rtt_s, 1e-4);
    }

    #[test]
    fn startup_exits_after_three_flat_rounds_and_cycles_gain() {
        let mut b = Bbr::new(&TcpConfig::standard());
        let (mut seq, mut t) = (0u64, 0u64);
        assert!(b.pacing_rate_bps().is_none(), "no model, no pacing");
        steady_rounds(&mut b, &mut seq, &mut t, 2);
        assert!(b.in_startup);
        // Flat bandwidth: the third no-growth round trips the plateau
        // detector, landing on cycle slot 0 (probe).
        steady_rounds(&mut b, &mut seq, &mut t, 2);
        assert!(!b.in_startup, "plateau ends startup");
        let r0 = b.pacing_rate_bps().expect("model built");
        assert!((r0 - GAIN_CYCLE[0] * 800e6).abs() / 800e6 < 1e-6);
        steady_rounds(&mut b, &mut seq, &mut t, 1);
        let r1 = b.pacing_rate_bps().expect("model built");
        assert!(r1 < r0, "probe then drain: {r1} !< {r0}");
    }

    #[test]
    fn cwnd_tracks_the_bdp() {
        let mut b = Bbr::new(&TcpConfig::standard());
        let (mut seq, mut t) = (0u64, 0u64);
        steady_rounds(&mut b, &mut seq, &mut t, 6);
        // BDP = 800e6 bps * 100us / 8 = 10 kB; cwnd = 2 BDP.
        assert!((b.cwnd() - 2.0 * 10_000.0).abs() < 1.0);
    }

    #[test]
    fn loss_keeps_the_model_but_rto_restarts() {
        let mut b = Bbr::new(&TcpConfig::standard());
        let (mut seq, mut t) = (0u64, 0u64);
        steady_rounds(&mut b, &mut seq, &mut t, 6);
        let bw = b.btl_bw();
        let w = b.cwnd();
        b.on_loss(w);
        assert_eq!(b.cwnd(), w, "loss does not cut a model-based window");
        b.on_rto(w);
        assert_eq!(b.cwnd(), 1460.0);
        assert_eq!(b.btl_bw(), bw, "the bandwidth history survives an RTO");
    }
}
