//! NewReno-style AIMD — the arithmetic extracted verbatim from the
//! pre-refactor `TcpTx`, so that `CcKind::Aimd` runs are byte-identical
//! to the historical goldens (pinned by `tests/hotpath.rs`).

use super::{AckCtx, CongestionController};
use crate::config::TcpConfig;

/// Additive-increase/multiplicative-decrease with byte-counting slow
/// start, NewReno recovery deflation, and optional MPTCP LIA coupling.
#[derive(Clone, Debug)]
pub struct Aimd {
    cwnd: f64,
    ssthresh: f64,
    mss: f64,
}

impl Aimd {
    /// The initial window the config prescribes.
    pub fn new(cfg: &TcpConfig) -> Self {
        Aimd {
            cwnd: (cfg.init_cwnd * cfg.mss) as f64,
            ssthresh: f64::MAX,
            mss: cfg.mss as f64,
        }
    }
}

impl CongestionController for Aimd {
    fn name(&self) -> &'static str {
        "aimd"
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_bytes_acked(&mut self, _ctx: &AckCtx) {}

    fn on_ack(&mut self, ctx: &AckCtx) {
        if self.cwnd < self.ssthresh {
            // Slow start: byte-counting increase.
            self.cwnd += ctx.acked;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Congestion avoidance.
            let inc = match ctx.lia {
                // LIA: min(alpha·acked·mss / cwnd_total, acked·mss / cwnd_i)
                Some(l) => {
                    let coupled = l.alpha * ctx.acked * self.mss / l.cwnd_total;
                    let uncoupled = ctx.acked * self.mss / self.cwnd;
                    coupled.min(uncoupled)
                }
                None => ctx.acked * self.mss / self.cwnd,
            };
            self.cwnd += inc;
        }
    }

    fn on_ecn(&mut self, _ctx: &AckCtx) {
        // Loss-based: congestion marks are ignored (the historical
        // behaviour; DCTCP is the ECN-reactive controller).
    }

    fn on_loss(&mut self, flight: f64) {
        self.ssthresh = (flight / 2.0).max(2.0 * self.mss);
        self.cwnd = self.ssthresh;
    }

    fn on_partial_ack(&mut self, acked: f64) {
        // NewReno deflation: shrink by the amount ACKed, inflate by one
        // MSS for the segment that left the network.
        self.cwnd = (self.cwnd - acked + self.mss).max(self.mss);
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, flight: f64) {
        self.ssthresh = (flight / 2.0).max(2.0 * self.mss);
        self.cwnd = self.mss;
    }

    fn force_window(&mut self, cwnd: f64, ssthresh: f64) {
        self.cwnd = cwnd;
        self.ssthresh = ssthresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conga_sim::SimTime;

    fn ctx(acked: f64) -> AckCtx {
        AckCtx {
            acked,
            ack: acked as u64,
            next_seq: acked as u64,
            now: SimTime::from_micros(50),
            rtt_ns: Some(50_000.0),
            ecn_echo: false,
            lia: None,
        }
    }

    #[test]
    fn slow_start_counts_bytes_and_caps_at_ssthresh() {
        let mut c = Aimd::new(&TcpConfig::standard());
        c.force_window(1460.0, 4000.0);
        c.on_ack(&ctx(1460.0));
        assert_eq!(c.cwnd(), 2920.0);
        c.on_ack(&ctx(2920.0));
        assert_eq!(c.cwnd(), 4000.0, "capped at ssthresh");
    }

    #[test]
    fn loss_halves_flight_and_rto_collapses() {
        let mut c = Aimd::new(&TcpConfig::standard());
        c.on_loss(14_600.0);
        assert_eq!(c.ssthresh(), 7300.0);
        assert_eq!(c.cwnd(), 7300.0);
        c.on_rto(14_600.0);
        assert_eq!(c.cwnd(), 1460.0);
    }
}
