//! CUBIC (Ha, Rhee, Xu, 2008 / RFC 8312): window growth as a cubic
//! function of the time since the last decrease, independent of RTT.
//!
//! After a loss at window `W_max` the window is cut to `β·W_max` and then
//! grows along
//!
//! ```text
//! W(t) = C·(t − K)³ + W_max,     K = ∛(W_max·(1 − β)/C)
//! ```
//!
//! (windows in segments, `t` in seconds): concave recovery toward the old
//! plateau, a flat region around it, then convex probing. Fast
//! convergence releases bandwidth to newer flows by remembering a
//! *reduced* `W_max` when a flow is cut twice without regaining its
//! previous plateau. Slow start and the recovery deflation mechanics are
//! shared with AIMD; epochs reset on loss and RTO.

use super::{AckCtx, CongestionController};
use crate::config::TcpConfig;
use conga_sim::SimTime;

/// The CUBIC aggressiveness constant, segments per second cubed.
const C: f64 = 0.4;
/// The multiplicative-decrease factor (`cwnd ← β·cwnd` on loss).
const BETA: f64 = 0.7;

/// CUBIC: cubic-function congestion avoidance with loss epochs.
#[derive(Clone, Debug)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    mss: f64,
    /// The window plateau (segments) the current epoch grows toward.
    w_max: f64,
    /// Time offset of the plateau within the epoch, seconds.
    k: f64,
    /// When the current congestion-avoidance epoch began.
    epoch_start: Option<SimTime>,
}

impl Cubic {
    /// The initial window the config prescribes.
    pub fn new(cfg: &TcpConfig) -> Self {
        Cubic {
            cwnd: (cfg.init_cwnd * cfg.mss) as f64,
            ssthresh: f64::MAX,
            mss: cfg.mss as f64,
            w_max: 0.0,
            k: 0.0,
            epoch_start: None,
        }
    }

    /// Register a multiplicative decrease at the current window: remember
    /// the plateau (with fast convergence), recompute `K`, cut, and end
    /// the epoch.
    fn decrease(&mut self) {
        let w = self.cwnd / self.mss;
        // Fast convergence: a flow cut again *below* its old plateau
        // remembers an even lower one, ceding bandwidth to new flows.
        self.w_max = if w < self.w_max {
            w * (2.0 - BETA) / 2.0
        } else {
            w
        };
        self.k = (self.w_max * (1.0 - BETA) / C).cbrt();
        self.cwnd = (self.cwnd * BETA).max(2.0 * self.mss);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
    }
}

impl CongestionController for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_bytes_acked(&mut self, _ctx: &AckCtx) {}

    fn on_ack(&mut self, ctx: &AckCtx) {
        if self.cwnd < self.ssthresh {
            // Slow start: byte-counting increase, capped at ssthresh.
            self.cwnd += ctx.acked;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
            return;
        }
        let start = *self.epoch_start.get_or_insert(ctx.now);
        if self.w_max == 0.0 {
            // No loss yet: grow from the current window.
            self.w_max = self.cwnd / self.mss;
            self.k = 0.0;
        }
        let t = ctx.now.saturating_since(start).as_nanos() as f64 / 1e9;
        let target = C * (t - self.k).powi(3) + self.w_max;
        let w = self.cwnd / self.mss;
        // Per-ACK step toward the cubic target, scaled by bytes acked; in
        // the plateau region fall back to a slow reno-like probe so the
        // window never stalls entirely.
        let step = if target > w {
            (target - w) / w
        } else {
            0.01 / w
        };
        self.cwnd += step * (ctx.acked / self.mss) * self.mss;
    }

    fn on_ecn(&mut self, _ctx: &AckCtx) {
        // Loss-based: marks are ignored (DCTCP is the ECN controller).
    }

    fn on_loss(&mut self, _flight: f64) {
        self.decrease();
    }

    fn on_partial_ack(&mut self, acked: f64) {
        // Shared NewReno deflation keeps the recovery machinery stable.
        self.cwnd = (self.cwnd - acked + self.mss).max(self.mss);
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _flight: f64) {
        self.decrease();
        self.cwnd = self.mss;
    }

    fn force_window(&mut self, cwnd: f64, ssthresh: f64) {
        self.cwnd = cwnd;
        self.ssthresh = ssthresh;
        self.epoch_start = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(acked: f64, now_us: u64) -> AckCtx {
        AckCtx {
            acked,
            ack: 0,
            next_seq: 0,
            now: SimTime::from_micros(now_us),
            rtt_ns: Some(50_000.0),
            ecn_echo: false,
            lia: None,
        }
    }

    #[test]
    fn loss_cuts_to_beta_and_sets_epoch() {
        let mut c = Cubic::new(&TcpConfig::standard());
        c.force_window(100.0 * 1460.0, 1.0);
        c.on_loss(100.0 * 1460.0);
        assert!((c.cwnd() - 70.0 * 1460.0).abs() < 1e-6, "β = 0.7 cut");
        assert!((c.k - (100.0 * (1.0 - BETA) / C).cbrt()).abs() < 1e-9);
    }

    #[test]
    fn growth_is_concave_then_convex_around_the_plateau() {
        let mut c = Cubic::new(&TcpConfig::standard());
        c.force_window(100.0 * 1460.0, 1.0);
        c.on_loss(100.0 * 1460.0);
        // Ack a full window per 40 ms tick: the per-ACK step then closes
        // the whole gap to the cubic target, so the sampled window traces
        // W(t) itself. K = ∛(100·0.3/0.4) ≈ 4.2 s sits mid-trace.
        let mut t_us = 0;
        let mut deltas = Vec::new();
        let mut prev = c.cwnd();
        for _ in 0..200 {
            t_us += 40_000;
            c.on_ack(&ctx(c.cwnd(), t_us));
            deltas.push(c.cwnd() - prev);
            prev = c.cwnd();
        }
        // Early steps (far below the plateau) outpace mid steps (near it).
        let early: f64 = deltas[..20].iter().sum();
        let mid: f64 = deltas[90..110].iter().sum();
        let late: f64 = deltas[180..].iter().sum();
        assert!(early > mid, "concave approach: {early} vs {mid}");
        assert!(late > mid, "convex probing: {late} vs {mid}");
    }

    #[test]
    fn fast_convergence_lowers_the_plateau() {
        let mut c = Cubic::new(&TcpConfig::standard());
        c.force_window(100.0 * 1460.0, 1.0);
        c.on_loss(100.0 * 1460.0);
        let w_max_1 = c.w_max;
        // Cut again before regaining the plateau.
        c.on_loss(c.cwnd());
        assert!(c.w_max < w_max_1, "plateau must shrink");
    }

    #[test]
    fn rto_resets_to_one_segment() {
        let mut c = Cubic::new(&TcpConfig::standard());
        c.force_window(50.0 * 1460.0, 1.0);
        c.on_rto(50.0 * 1460.0);
        assert_eq!(c.cwnd(), 1460.0);
    }
}
