//! DCTCP (Alizadeh et al., SIGCOMM 2010): keep queues short by cutting
//! the window *in proportion to the fraction of ECN-marked packets*
//! rather than halving on any sign of congestion.
//!
//! The dataplane marks a data packet's CE bit when the egress queue it
//! joins is deeper than the marking threshold; the receiver echoes the
//! bit on the cumulative ACK; the sender maintains
//!
//! ```text
//! alpha ← (1 − g)·alpha + g·F      (per window of data)
//! cwnd  ← cwnd · (1 − alpha/2)     (when the window saw any mark)
//! ```
//!
//! where `F` is the marked fraction of the just-completed window and
//! `g = 1/16`. Growth (slow start, additive increase) and the loss/RTO
//! paths are shared with [`Aimd`] — DCTCP falls back to NewReno exactly
//! when packets are dropped rather than marked.

use super::{AckCtx, Aimd, CongestionController};
use crate::config::TcpConfig;

/// The alpha-estimation EWMA gain (RFC 8257's recommended 1/16).
const G: f64 = 1.0 / 16.0;

/// DCTCP: ECN-proportional decrease over AIMD growth.
#[derive(Clone, Debug)]
pub struct Dctcp {
    win: Aimd,
    mss: f64,
    /// EWMA of the marked fraction, in `[0, 1]`.
    alpha: f64,
    /// Bytes acknowledged in the current observation window.
    acked_bytes: f64,
    /// Of those, bytes acknowledged by marked ACKs.
    marked_bytes: f64,
    /// The window rolls when the cumulative ACK passes this sequence.
    window_end: u64,
}

impl Dctcp {
    /// A fresh estimator; `alpha` starts at 1 (RFC 8257 §4.2) so an
    /// immediately-congested flow reacts like Reno until the EWMA adapts.
    pub fn new(cfg: &TcpConfig) -> Self {
        Dctcp {
            win: Aimd::new(cfg),
            mss: cfg.mss as f64,
            alpha: 1.0,
            acked_bytes: 0.0,
            marked_bytes: 0.0,
            window_end: 0,
        }
    }
}

impl CongestionController for Dctcp {
    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn cwnd(&self) -> f64 {
        self.win.cwnd()
    }

    fn ssthresh(&self) -> f64 {
        self.win.ssthresh()
    }

    fn on_bytes_acked(&mut self, ctx: &AckCtx) {
        self.acked_bytes += ctx.acked;
        if ctx.ack < self.window_end {
            return;
        }
        // One window of data fully acknowledged: fold the observed
        // fraction into alpha, cut if anything was marked, and start the
        // next observation window at the current send point.
        if self.acked_bytes > 0.0 {
            let f = self.marked_bytes / self.acked_bytes;
            self.alpha = (1.0 - G) * self.alpha + G * f;
            if self.marked_bytes > 0.0 {
                let cut = self.cwnd() * (1.0 - self.alpha / 2.0);
                self.win.force_window(cut.max(self.mss), self.ssthresh());
            }
        }
        self.acked_bytes = 0.0;
        self.marked_bytes = 0.0;
        self.window_end = ctx.next_seq;
    }

    fn on_ack(&mut self, ctx: &AckCtx) {
        self.win.on_ack(ctx);
    }

    fn on_ecn(&mut self, ctx: &AckCtx) {
        self.marked_bytes += ctx.acked;
    }

    fn on_loss(&mut self, flight: f64) {
        self.win.on_loss(flight);
    }

    fn on_partial_ack(&mut self, acked: f64) {
        self.win.on_partial_ack(acked);
    }

    fn on_recovery_exit(&mut self) {
        self.win.on_recovery_exit();
    }

    fn on_rto(&mut self, flight: f64) {
        self.win.on_rto(flight);
    }

    fn alpha(&self) -> Option<f64> {
        Some(self.alpha)
    }

    fn force_window(&mut self, cwnd: f64, ssthresh: f64) {
        self.win.force_window(cwnd, ssthresh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conga_sim::SimTime;

    fn ctx(acked: f64, ack: u64, next_seq: u64, echo: bool) -> AckCtx {
        AckCtx {
            acked,
            ack,
            next_seq,
            now: SimTime::from_micros(50),
            rtt_ns: Some(50_000.0),
            ecn_echo: echo,
            lia: None,
        }
    }

    #[test]
    fn unmarked_windows_decay_alpha_without_cutting() {
        let mut c = Dctcp::new(&TcpConfig::standard());
        c.force_window(14_600.0, f64::MAX);
        let w0 = c.cwnd();
        // A full unmarked window: alpha decays by (1 - g), cwnd untouched
        // by the roll (growth hooks are exercised separately).
        c.on_bytes_acked(&ctx(14_600.0, 14_600, 29_200, false));
        assert_eq!(c.cwnd(), w0);
        assert!((c.alpha().expect("dctcp exposes alpha") - (1.0 - G)).abs() < 1e-12);
    }

    #[test]
    fn fully_marked_window_cuts_proportionally() {
        let mut c = Dctcp::new(&TcpConfig::standard());
        c.force_window(14_600.0, f64::MAX);
        // Roll the first (empty-history) window out of the way.
        c.on_bytes_acked(&ctx(1460.0, 1460, 16_060, false));
        let alpha0 = c.alpha().expect("alpha");
        let w0 = c.cwnd();
        // Every ACK in the next window carries an echo.
        let a = ctx(14_600.0, 16_060, 30_660, true);
        c.on_ecn(&a);
        c.on_bytes_acked(&a);
        let alpha1 = c.alpha().expect("alpha");
        assert!(alpha1 > alpha0 * (1.0 - G), "marked window raises alpha");
        let expect = w0 * (1.0 - alpha1 / 2.0);
        assert!((c.cwnd() - expect).abs() < 1e-9, "proportional cut");
    }

    #[test]
    fn loss_path_is_newreno() {
        let mut c = Dctcp::new(&TcpConfig::standard());
        c.on_loss(14_600.0);
        assert_eq!(c.cwnd(), 7300.0);
        c.on_rto(14_600.0);
        assert_eq!(c.cwnd(), 1460.0);
    }
}
