//! Pluggable per-flow congestion control.
//!
//! [`TcpTx`](crate::TcpTx) owns the *protocol* state machine — loss
//! detection, SACK scoreboard repair, the RTO timer, go-back-N — and
//! delegates every congestion-window decision to a
//! [`CongestionController`]. The split mirrors the recovery/cc module
//! boundary of production QUIC stacks: the state machine is invariant
//! across controllers, so two controllers differ *only* in how they move
//! `cwnd`/`ssthresh` and whether they pace.
//!
//! Four controllers ship, selected by [`CcKind`] on
//! [`TcpConfig`](crate::TcpConfig):
//!
//! * [`Aimd`] — the NewReno arithmetic extracted verbatim from the
//!   pre-refactor `TcpTx`; the default, byte-identical to the historical
//!   goldens.
//! * [`Dctcp`] — DCTCP's per-flow EWMA of the ECN-marked fraction
//!   (`alpha`), with a proportional `cwnd ← cwnd·(1 − alpha/2)` cut once
//!   per window of data. Requires the dataplane's ECN marking path.
//! * [`Cubic`] — the CUBIC window growth function `W(t) = C(t−K)³ +
//!   W_max` with fast convergence and loss epochs.
//! * [`Bbr`] — a BBR-style model: per-round delivery-rate sampling into a
//!   max filter, a min-RTT floor, startup/cruise phases with a pacing-gain
//!   cycle, and packet pacing enforced through the event queue.
//!
//! # Determinism contract
//!
//! Controllers are pure functions of their inputs: no RNG, no wall clock,
//! f64 state only. A controller's entire observable input is the
//! [`AckCtx`] stream plus the loss/RTO notifications, all of which derive
//! from simulated time — same seed ⇒ same trajectory, independent of
//! `--shards`/`--jobs`/cache state.

mod aimd;
mod bbr;
mod cubic;
mod dctcp;

pub use aimd::Aimd;
pub use bbr::Bbr;
pub use cubic::Cubic;
pub use dctcp::Dctcp;

use crate::config::TcpConfig;
use crate::tcp::Lia;
use conga_sim::SimTime;

/// Which congestion controller a flow runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcKind {
    /// NewReno-style AIMD (the historical default).
    Aimd,
    /// DCTCP: ECN-proportional window cuts.
    Dctcp,
    /// CUBIC: cubic window growth with loss epochs.
    Cubic,
    /// BBR-style: delivery-rate model with pacing.
    Bbr,
}

impl CcKind {
    /// Every controller, in canonical order.
    pub const ALL: [CcKind; 4] = [CcKind::Aimd, CcKind::Dctcp, CcKind::Cubic, CcKind::Bbr];

    /// The canonical lowercase name (CLI value, telemetry namespace,
    /// scenario-hash key).
    pub fn name(&self) -> &'static str {
        match self {
            CcKind::Aimd => "aimd",
            CcKind::Dctcp => "dctcp",
            CcKind::Cubic => "cubic",
            CcKind::Bbr => "bbr",
        }
    }

    /// Parse a CLI value. The error string is the full usage message for
    /// the flag (tested verbatim by the experiments arg parser).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "aimd" => Ok(CcKind::Aimd),
            "dctcp" => Ok(CcKind::Dctcp),
            "cubic" => Ok(CcKind::Cubic),
            "bbr" => Ok(CcKind::Bbr),
            other => Err(format!(
                "unknown congestion controller '{other}' (expected aimd|dctcp|cubic|bbr)"
            )),
        }
    }
}

/// Everything a controller may observe about one progressing ACK.
#[derive(Clone, Copy, Debug)]
pub struct AckCtx {
    /// Bytes newly cumulatively acknowledged by this ACK.
    pub acked: f64,
    /// The cumulative ACK sequence (== the new `snd_una`).
    pub ack: u64,
    /// The sender's next-new-byte sequence after this ACK.
    pub next_seq: u64,
    /// Simulated arrival time of the ACK.
    pub now: SimTime,
    /// This ACK's RTT sample in nanoseconds (`None` while Karn's rule
    /// suppresses samples across retransmissions).
    pub rtt_ns: Option<f64>,
    /// Whether the receiver echoed an ECN congestion-experienced mark.
    pub ecn_echo: bool,
    /// MPTCP coupled-increase context (`None` for plain TCP).
    pub lia: Option<Lia>,
}

/// The congestion-control decision surface. See the module docs for the
/// division of labour with `TcpTx`.
pub trait CongestionController {
    /// Canonical lowercase controller name (telemetry namespace).
    fn name(&self) -> &'static str;

    /// Current congestion window, bytes.
    fn cwnd(&self) -> f64;

    /// Current slow-start threshold, bytes.
    fn ssthresh(&self) -> f64;

    /// Every ACK that advances `snd_una`, in any protocol state — the
    /// accounting hook (delivery-rate samples, DCTCP's window roll).
    fn on_bytes_acked(&mut self, ctx: &AckCtx);

    /// An ACK advanced `snd_una` while the sender is in the open state:
    /// grow the window.
    fn on_ack(&mut self, ctx: &AckCtx);

    /// The receiver echoed a congestion-experienced mark on this ACK
    /// (called before [`Self::on_bytes_acked`]).
    fn on_ecn(&mut self, ctx: &AckCtx);

    /// Fast retransmit fired: the sender is entering recovery with
    /// `flight` bytes outstanding.
    fn on_loss(&mut self, flight: f64);

    /// A partial ACK during recovery acknowledged `acked` bytes
    /// (NewReno window deflation).
    fn on_partial_ack(&mut self, acked: f64);

    /// Recovery completed (full ACK).
    fn on_recovery_exit(&mut self);

    /// The retransmission timer fired with `flight` bytes outstanding.
    fn on_rto(&mut self, flight: f64);

    /// The pacing rate in bits per second, if this controller paces.
    /// `None` (the default for window-driven controllers) sends
    /// ACK-clocked line-rate bursts exactly as the pre-refactor stack did.
    fn pacing_rate_bps(&self) -> Option<f64> {
        None
    }

    /// DCTCP's marked-fraction EWMA, for telemetry.
    fn alpha(&self) -> Option<f64> {
        None
    }

    /// Overwrite the window state (tests and diagnostics only).
    fn force_window(&mut self, cwnd: f64, ssthresh: f64);
}

/// The controller zoo behind one enum, so `TcpTx` stays `Clone + Debug`
/// with monomorphic dispatch (the same idiom as `conga-core`'s
/// `FabricPolicy`).
#[derive(Clone, Debug)]
pub enum Cc {
    /// NewReno-style AIMD.
    Aimd(Aimd),
    /// DCTCP.
    Dctcp(Dctcp),
    /// CUBIC.
    Cubic(Cubic),
    /// BBR-style pacer.
    Bbr(Bbr),
}

impl Cc {
    /// Build the controller `cfg` selects.
    pub fn from_config(cfg: &TcpConfig) -> Self {
        match cfg.cc {
            CcKind::Aimd => Cc::Aimd(Aimd::new(cfg)),
            CcKind::Dctcp => Cc::Dctcp(Dctcp::new(cfg)),
            CcKind::Cubic => Cc::Cubic(Cubic::new(cfg)),
            CcKind::Bbr => Cc::Bbr(Bbr::new(cfg)),
        }
    }

    /// The [`CcKind`] this controller was built from.
    pub fn kind(&self) -> CcKind {
        match self {
            Cc::Aimd(_) => CcKind::Aimd,
            Cc::Dctcp(_) => CcKind::Dctcp,
            Cc::Cubic(_) => CcKind::Cubic,
            Cc::Bbr(_) => CcKind::Bbr,
        }
    }
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            Cc::Aimd($inner) => $body,
            Cc::Dctcp($inner) => $body,
            Cc::Cubic($inner) => $body,
            Cc::Bbr($inner) => $body,
        }
    };
}

impl CongestionController for Cc {
    fn name(&self) -> &'static str {
        delegate!(self, c => c.name())
    }
    fn cwnd(&self) -> f64 {
        delegate!(self, c => c.cwnd())
    }
    fn ssthresh(&self) -> f64 {
        delegate!(self, c => c.ssthresh())
    }
    fn on_bytes_acked(&mut self, ctx: &AckCtx) {
        delegate!(self, c => c.on_bytes_acked(ctx))
    }
    fn on_ack(&mut self, ctx: &AckCtx) {
        delegate!(self, c => c.on_ack(ctx))
    }
    fn on_ecn(&mut self, ctx: &AckCtx) {
        delegate!(self, c => c.on_ecn(ctx))
    }
    fn on_loss(&mut self, flight: f64) {
        delegate!(self, c => c.on_loss(flight))
    }
    fn on_partial_ack(&mut self, acked: f64) {
        delegate!(self, c => c.on_partial_ack(acked))
    }
    fn on_recovery_exit(&mut self) {
        delegate!(self, c => c.on_recovery_exit())
    }
    fn on_rto(&mut self, flight: f64) {
        delegate!(self, c => c.on_rto(flight))
    }
    fn pacing_rate_bps(&self) -> Option<f64> {
        delegate!(self, c => c.pacing_rate_bps())
    }
    fn alpha(&self) -> Option<f64> {
        delegate!(self, c => c.alpha())
    }
    fn force_window(&mut self, cwnd: f64, ssthresh: f64) {
        delegate!(self, c => c.force_window(cwnd, ssthresh))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trips() {
        for k in CcKind::ALL {
            assert_eq!(CcKind::parse(k.name()), Ok(k));
        }
        let err = CcKind::parse("reno").expect_err("unknown name");
        assert_eq!(
            err,
            "unknown congestion controller 'reno' (expected aimd|dctcp|cubic|bbr)"
        );
    }

    #[test]
    fn from_config_selects_the_named_controller() {
        for k in CcKind::ALL {
            let cfg = TcpConfig {
                cc: k,
                ..TcpConfig::standard()
            };
            let cc = Cc::from_config(&cfg);
            assert_eq!(cc.kind(), k);
            assert_eq!(cc.name(), k.name());
            assert!(cc.cwnd() > 0.0, "{}: initial window", cc.name());
        }
    }
}
