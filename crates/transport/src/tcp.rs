//! A per-packet TCP model: the loss-detection/recovery state machine
//! (fast retransmit, NewReno recovery, SACK scoreboard repair, an RFC
//! 6298 retransmission timer), with every congestion-window decision
//! delegated to a pluggable [`CongestionController`] (see [`crate::cc`]).
//!
//! The machinery is split into a sender ([`TcpTx`]) and receiver
//! ([`TcpRx`]) state machine that are *pure* — they know nothing about the
//! simulator. `transport::TransportLayer` drives them from network events.
//! MPTCP reuses `TcpTx` per subflow, injecting its coupled (LIA)
//! congestion-avoidance increase through the [`Lia`] parameter.

use crate::cc::{AckCtx, Cc, CongestionController};
use crate::config::TcpConfig;
use conga_net::SackBlocks;
use conga_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A segment the sender wants on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// First payload byte.
    pub seq: u64,
    /// Payload length.
    pub len: u32,
    /// Whether this is a retransmission.
    pub retx: bool,
}

/// Coupled-increase context for MPTCP's Linked Increases Algorithm: the
/// connection-level `alpha` and the total congestion window across subflows
/// (both in bytes). `None` means plain NewReno.
#[derive(Clone, Copy, Debug)]
pub struct Lia {
    /// The LIA aggressiveness factor.
    pub alpha: f64,
    /// Sum of subflow congestion windows, bytes.
    pub cwnd_total: f64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CcState {
    /// Normal operation (slow start or congestion avoidance by cwnd).
    Open,
    /// NewReno fast recovery until `recover` is cumulatively ACKed.
    Recovery { recover: u64 },
}

/// TCP sender state machine.
#[derive(Debug, Clone)]
pub struct TcpTx {
    cfg: TcpConfig,
    /// Total bytes this sender must deliver. MPTCP grows this as chunks are
    /// assigned to the subflow; `finalized` marks that no more will come.
    pub total: u64,
    /// Whether `total` is final (always true for plain TCP).
    pub finalized: bool,
    /// Next new byte to transmit.
    pub next_seq: u64,
    /// Highest cumulatively ACKed byte.
    pub snd_una: u64,
    cc: Cc,
    state: CcState,
    dup_acks: u32,
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimDuration,
    retx_since_ack: bool,
    /// SACK scoreboard: byte ranges above `snd_una` the receiver has
    /// reported holding (merged; pruned as `snd_una` advances).
    sacked: BTreeMap<u64, u64>,
    /// Repair cursor: everything un-SACKed below it has been retransmitted
    /// in the current recovery episode.
    repair_cursor: u64,

    // ---- statistics ----
    /// Bytes retransmitted.
    pub bytes_retx: u64,
    /// RTO firings.
    pub timeouts: u64,
    /// Fast retransmits triggered.
    pub fast_retx: u64,
    /// State transitions Open → Recovery (== fast-recovery episodes).
    pub recovery_entries: u64,
    /// State transitions Recovery → Open (full ACK or RTO collapse).
    pub recovery_exits: u64,
}

impl TcpTx {
    /// A sender with `total` bytes to deliver.
    pub fn new(cfg: TcpConfig, total: u64) -> Self {
        TcpTx {
            cfg,
            total,
            finalized: true,
            next_seq: 0,
            snd_una: 0,
            cc: Cc::from_config(&cfg),
            state: CcState::Open,
            dup_acks: 0,
            srtt: None,
            rttvar: 0.0,
            rto: cfg.min_rto,
            retx_since_ack: false,
            sacked: BTreeMap::new(),
            repair_cursor: 0,
            bytes_retx: 0,
            timeouts: 0,
            fast_retx: 0,
            recovery_entries: 0,
            recovery_exits: 0,
        }
    }

    /// A sender whose byte budget will be assigned incrementally (MPTCP
    /// subflow).
    pub fn new_open_ended(cfg: TcpConfig) -> Self {
        let mut t = Self::new(cfg, 0);
        t.finalized = false;
        t
    }

    /// All assigned bytes are ACKed and no more are coming.
    #[inline]
    pub fn done(&self) -> bool {
        self.finalized && self.snd_una >= self.total
    }

    /// Bytes in flight (sent, not yet cumulatively ACKed).
    #[inline]
    pub fn in_flight(&self) -> u64 {
        self.next_seq - self.snd_una
    }

    /// Current congestion window in bytes.
    #[inline]
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd()
    }

    /// Current slow-start threshold in bytes.
    #[inline]
    pub fn ssthresh(&self) -> f64 {
        self.cc.ssthresh()
    }

    /// The congestion controller driving this sender (telemetry reads its
    /// name, `alpha`, and pacing rate through this).
    #[inline]
    pub fn cc(&self) -> &Cc {
        &self.cc
    }

    /// The pacing rate the controller requests, in bits per second.
    /// `None` means ACK-clocked bursts (every window-driven controller).
    #[inline]
    pub fn pacing_rate_bps(&self) -> Option<f64> {
        self.cc.pacing_rate_bps()
    }

    /// Overwrite the controller's window state (tests and diagnostics).
    pub fn force_window(&mut self, cwnd: f64, ssthresh: f64) {
        self.cc.force_window(cwnd, ssthresh);
    }

    /// Current retransmission timeout (with backoff applied).
    #[inline]
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Smoothed RTT estimate, if a sample exists.
    #[inline]
    pub fn srtt(&self) -> Option<f64> {
        self.srtt
    }

    /// The effective send window: congestion window clamped by the
    /// receiver's advertised window.
    #[inline]
    fn send_window(&self) -> u64 {
        (self.cc.cwnd() as u64).min(self.cfg.rwnd)
    }

    /// Whether the window allows sending at least one new byte right now,
    /// were more data assigned (used by MPTCP's chunk allocator).
    pub fn window_open(&self) -> bool {
        self.next_seq - self.snd_una < self.send_window()
    }

    /// Pull the new segments the window currently permits. During fast
    /// recovery no *new* data is sent (conservative RFC 6675-style
    /// behaviour): the flood otherwise keeps the bottleneck queue full and
    /// drops the very retransmissions that must heal the holes.
    pub fn pump(&mut self, out: &mut Vec<Segment>) {
        if !matches!(self.state, CcState::Open) {
            return;
        }
        let mut burst = 0;
        loop {
            if burst >= self.cfg.max_burst {
                return;
            }
            let win_edge = self.snd_una + self.send_window();
            if self.next_seq >= win_edge || self.next_seq >= self.total {
                return;
            }
            let len = (self.total - self.next_seq).min(self.cfg.mss as u64) as u32;
            // Avoid silly-window syndrome: a segment is sent only when it
            // fits in the window whole (the fractional-cwnd growth of
            // congestion avoidance would otherwise emit a few-byte sliver
            // per ACK, burning the wire on headers).
            if self.next_seq + len as u64 > win_edge {
                return;
            }
            out.push(Segment {
                seq: self.next_seq,
                len,
                retx: false,
            });
            self.next_seq += len as u64;
            burst += 1;
        }
    }

    fn update_rtt(&mut self, sample_ns: f64) {
        // RFC 6298 smoothing.
        match self.srtt {
            None => {
                self.srtt = Some(sample_ns);
                self.rttvar = sample_ns / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample_ns).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * sample_ns);
            }
        }
        let rto_ns = self.srtt.expect("just set") + (4.0 * self.rttvar).max(1_000.0);
        let rto = SimDuration::from_nanos(rto_ns as u64);
        self.rto = rto.max(self.cfg.min_rto).min(self.cfg.max_rto);
    }

    /// Process a cumulative ACK for byte `ack`, where `ts_echo` is the send
    /// timestamp echoed by the receiver and `ecn_echo` its echoed
    /// congestion-experienced mark. Returns segments to (re)transmit.
    /// `lia` switches congestion avoidance to MPTCP's coupled increase.
    #[allow(clippy::too_many_arguments)]
    pub fn on_ack(
        &mut self,
        ack: u64,
        ts_echo: SimTime,
        now: SimTime,
        lia: Option<Lia>,
        sack: &SackBlocks,
        ecn_echo: bool,
        out: &mut Vec<Segment>,
    ) {
        self.absorb_sack(sack);
        if ack > self.snd_una {
            let acked = (ack - self.snd_una) as f64;
            self.snd_una = ack;
            self.dup_acks = 0;
            // An ACK may cover data sent before an RTO rewound next_seq
            // (go-back-N): never let the send point fall behind the ACK.
            if self.next_seq < self.snd_una {
                self.next_seq = self.snd_una;
            }

            // Karn: skip RTT samples while a retransmission is outstanding.
            let rtt_ns = if !self.retx_since_ack {
                let sample = now.saturating_since(ts_echo).as_nanos() as f64;
                self.update_rtt(sample);
                Some(sample)
            } else {
                self.retx_since_ack = false;
                None
            };

            let ctx = AckCtx {
                acked,
                ack,
                next_seq: self.next_seq,
                now,
                rtt_ns,
                ecn_echo,
                lia,
            };
            if ecn_echo {
                self.cc.on_ecn(&ctx);
            }
            self.cc.on_bytes_acked(&ctx);

            match self.state {
                CcState::Recovery { recover } if ack >= recover => {
                    // Full ACK: leave recovery, deflate to ssthresh.
                    self.state = CcState::Open;
                    self.recovery_exits += 1;
                    self.cc.on_recovery_exit();
                }
                CcState::Recovery { .. } => {
                    // Partial ACK: repair more holes, deflate by the amount
                    // ACKed (NewReno), stay in recovery.
                    self.repair_cursor = self.repair_cursor.max(self.snd_una);
                    self.sack_repair(2, out);
                    self.cc.on_partial_ack(acked);
                }
                CcState::Open => {
                    self.cc.on_ack(&ctx);
                }
            }
            self.pump(out);
        } else if ack == self.snd_una && self.in_flight() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            match self.state {
                CcState::Open if self.dup_acks == self.cfg.dupack_thresh => {
                    // Fast retransmit + enter recovery.
                    let flight = self.in_flight() as f64;
                    self.cc.on_loss(flight);
                    self.state = CcState::Recovery {
                        recover: self.next_seq,
                    };
                    self.repair_cursor = self.snd_una;
                    self.fast_retx += 1;
                    self.recovery_entries += 1;
                    self.sack_repair(2, out);
                }
                CcState::Recovery { .. } => {
                    // Each dupack confirms one delivery; repair up to two
                    // more un-SACKed segments (self-clocked recovery).
                    let before = out.len();
                    self.sack_repair(2, out);
                    // Lost-retransmission heuristic: everything below the
                    // cursor was repaired once, yet the ACK point is stuck —
                    // a repair itself was dropped. Rescue the head hole, at
                    // most once per stall point (otherwise in-flight repairs
                    // get duplicated en masse).
                    if out.len() == before && self.dup_acks.is_multiple_of(32) {
                        let save = self.repair_cursor;
                        self.repair_cursor = self.snd_una;
                        self.sack_repair(1, out);
                        self.repair_cursor = save;
                    }
                }
                CcState::Open => {}
            }
        }
    }

    /// Merge the receiver-reported SACK blocks into the scoreboard and
    /// prune everything at or below `snd_una`.
    fn absorb_sack(&mut self, sack: &SackBlocks) {
        for (start, end) in sack.iter() {
            if end <= self.snd_una {
                continue;
            }
            let mut s0 = start.max(self.snd_una);
            let mut e0 = end;
            // Merge with overlapping/touching existing ranges.
            let overlapping: Vec<u64> = self
                .sacked
                .range(..=e0)
                .filter(|&(&s, &e)| e >= s0 && s <= e0)
                .map(|(&s, _)| s)
                .collect();
            for s in overlapping {
                let e = self.sacked.remove(&s).expect("key exists");
                s0 = s0.min(s);
                e0 = e0.max(e);
            }
            self.sacked.insert(s0, e0);
        }
        // Prune below the cumulative ACK.
        while let Some((&s, &e)) = self.sacked.first_key_value() {
            if e <= self.snd_una {
                self.sacked.remove(&s);
            } else if s < self.snd_una {
                self.sacked.remove(&s);
                self.sacked.insert(self.snd_una, e);
            } else {
                break;
            }
        }
    }

    /// Retransmit up to `budget` MSS-sized pieces of the next bytes that
    /// are (a) above the repair cursor, (b) below the recovery point, and
    /// (c) not reported held by the receiver (RFC 6675-style scoreboard
    /// walk). Advances the cursor so nothing is repaired twice per episode.
    fn sack_repair(&mut self, budget: u32, out: &mut Vec<Segment>) {
        let limit = match self.state {
            CcState::Recovery { recover } => recover.min(self.total),
            CcState::Open => self.total,
        };
        let mut seq = self.repair_cursor.max(self.snd_una);
        let mut budget = budget;
        while budget > 0 && seq < limit {
            // Skip over SACKed ranges covering `seq`.
            if let Some((&s, &e)) = self.sacked.range(..=seq).next_back() {
                if seq >= s && seq < e {
                    seq = e;
                    continue;
                }
            }
            // Bound the segment by the next SACKed range start.
            let next_sacked = self
                .sacked
                .range(seq..)
                .next()
                .map(|(&s, _)| s)
                .unwrap_or(u64::MAX);
            let len = (limit - seq)
                .min(self.cfg.mss as u64)
                .min(next_sacked - seq) as u32;
            if len == 0 {
                break;
            }
            out.push(Segment {
                seq,
                len,
                retx: true,
            });
            self.bytes_retx += len as u64;
            self.retx_since_ack = true;
            seq += len as u64;
            budget -= 1;
        }
        self.repair_cursor = self.repair_cursor.max(seq);
    }

    /// The retransmission timer fired: collapse to one segment and back off.
    pub fn on_rto(&mut self, out: &mut Vec<Segment>) {
        if self.done() || self.in_flight() == 0 && self.next_seq >= self.total {
            return;
        }
        let flight = self.in_flight() as f64;
        self.cc.on_rto(flight);
        if matches!(self.state, CcState::Recovery { .. }) {
            self.recovery_exits += 1;
        }
        self.state = CcState::Open;
        self.dup_acks = 0;
        self.timeouts += 1;
        self.retx_since_ack = true;
        self.sacked.clear();
        self.repair_cursor = self.snd_una;
        self.rto = (self.rto * 2).min(self.cfg.max_rto);
        // Go-back-N from the last cumulative ACK: retransmit one segment;
        // further holes are driven by subsequent ACKs.
        self.next_seq = self.snd_una; // classic RTO: resend window from una
        let len = (self.total - self.snd_una).min(self.cfg.mss as u64) as u32;
        if len > 0 {
            out.push(Segment {
                seq: self.snd_una,
                len,
                retx: true,
            });
            self.bytes_retx += len as u64;
            self.next_seq = self.snd_una + len as u64;
        }
    }

    /// MPTCP: grant this subflow `bytes` more to send.
    pub fn assign(&mut self, bytes: u64) {
        debug_assert!(!self.finalized);
        self.total += bytes;
    }

    /// MPTCP: no more bytes will be assigned.
    pub fn finalize(&mut self) {
        self.finalized = true;
    }
}

/// TCP receiver: tracks the in-order prefix and out-of-order segments,
/// producing cumulative ACKs.
#[derive(Debug, Clone, Default)]
pub struct TcpRx {
    /// Next expected byte (== cumulative ACK value).
    pub rcv_nxt: u64,
    /// Out-of-order segments: start → end (exclusive).
    ooo: BTreeMap<u64, u64>,
    /// Total distinct payload bytes received (in-order or not).
    pub bytes_received: u64,
    /// Segments that arrived out of order (reordering indicator).
    pub ooo_segments: u64,
}

impl TcpRx {
    /// Up to three SACK blocks describing out-of-order data held above
    /// `rcv_nxt` (the lowest blocks, which is what the sender's repair
    /// walk wants).
    pub fn sack_blocks(&self) -> SackBlocks {
        let mut b = SackBlocks::default();
        for (&s, &e) in self.ooo.iter().take(3) {
            b.push(s, e);
        }
        b
    }

    /// Process an arriving data segment; returns the new cumulative ACK.
    pub fn on_data(&mut self, seq: u64, len: u32) -> u64 {
        let end = seq + len as u64;
        if end <= self.rcv_nxt {
            // Entirely duplicate (e.g. spurious retransmission).
            return self.rcv_nxt;
        }
        // Fast path: in-order data with no out-of-order ranges held. The
        // general path below would insert the range into the map and
        // immediately pop it back out — two B-tree node (de)allocations on
        // every packet of a loss-free flow.
        if seq <= self.rcv_nxt && self.ooo.is_empty() {
            self.bytes_received += end - self.rcv_nxt;
            self.rcv_nxt = end;
            return self.rcv_nxt;
        }
        let new_start = seq.max(self.rcv_nxt);
        if seq > self.rcv_nxt {
            self.ooo_segments += 1;
        }
        // Count only bytes not previously seen (approximate via overlap with
        // stored ranges; exact for non-overlapping traffic).
        let mut new_bytes = end - new_start;
        for (&s, &e) in self.ooo.range(..end) {
            if e > new_start {
                let ov_start = new_start.max(s);
                let ov_end = end.min(e);
                if ov_end > ov_start {
                    new_bytes = new_bytes.saturating_sub(ov_end - ov_start);
                }
            }
        }
        self.bytes_received += new_bytes;
        // Merge [new_start, end) into the out-of-order map.
        let mut start = new_start;
        let mut stop = end;
        // Absorb any ranges that overlap or touch.
        let overlapping: Vec<u64> = self
            .ooo
            .range(..=stop)
            .filter(|&(&s, &e)| e >= start && s <= stop)
            .map(|(&s, _)| s)
            .collect();
        for s in overlapping {
            let e = self.ooo.remove(&s).expect("key exists");
            start = start.min(s);
            stop = stop.max(e);
        }
        self.ooo.insert(start, stop);
        // Advance the in-order prefix.
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s <= self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.max(e);
                self.ooo.remove(&s);
            } else {
                break;
            }
        }
        self.rcv_nxt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig::standard()
    }

    fn seg(seq: u64, len: u32) -> Segment {
        Segment {
            seq,
            len,
            retx: false,
        }
    }

    // ------------------------------ sender ------------------------------

    #[test]
    fn initial_window_sends_iw_segments() {
        let mut tx = TcpTx::new(cfg(), 1_000_000);
        let mut out = Vec::new();
        tx.pump(&mut out);
        assert_eq!(out.len(), 10, "IW=10");
        assert_eq!(out[0], seg(0, 1460));
        assert_eq!(out[9].seq, 9 * 1460);
        assert_eq!(tx.in_flight(), 14_600);
    }

    #[test]
    fn short_flow_sends_exact_bytes() {
        let mut tx = TcpTx::new(cfg(), 3000);
        let mut out = Vec::new();
        tx.pump(&mut out);
        let total: u64 = out.iter().map(|s| s.len as u64).sum();
        assert_eq!(total, 3000);
        assert_eq!(out.last().unwrap().len, 80); // 1460 + 1460 + 80
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut tx = TcpTx::new(cfg(), 10_000_000);
        let mut out = Vec::new();
        tx.pump(&mut out);
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_micros(100);
        // ACK all of the initial window: cwnd should roughly double.
        let before = tx.cwnd();
        tx.on_ack(
            tx.in_flight(),
            t0,
            t1,
            None,
            &SackBlocks::default(),
            false,
            &mut out,
        );
        assert!((tx.cwnd() - 2.0 * before).abs() < 1.0, "cwnd {}", tx.cwnd());
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut tx = TcpTx::new(cfg(), 100_000_000);
        let mut out = Vec::new();
        tx.pump(&mut out);
        // Force CA by setting ssthresh below cwnd via an RTO + regrowth.
        tx.force_window(20.0 * 1460.0, 10.0 * 1460.0);
        let w0 = tx.cwnd();
        // One full window of ACKs in MSS-sized chunks ~= +1 MSS total.
        let mut acked = tx.snd_una;
        for _ in 0..20 {
            acked += 1460;
            tx.on_ack(
                acked,
                SimTime::ZERO,
                SimTime::from_micros(50),
                None,
                &SackBlocks::default(),
                false,
                &mut out,
            );
        }
        let growth = tx.cwnd() - w0;
        assert!(
            (growth - 1460.0).abs() < 160.0,
            "CA grew {growth} bytes per RTT"
        );
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut tx = TcpTx::new(cfg(), 1_000_000);
        let mut out = Vec::new();
        tx.pump(&mut out);
        out.clear();
        for _ in 0..2 {
            tx.on_ack(
                0,
                SimTime::ZERO,
                SimTime::from_micros(10),
                None,
                &SackBlocks::default(),
                false,
                &mut out,
            );
            assert!(out.iter().all(|s| !s.retx));
        }
        tx.on_ack(
            0,
            SimTime::ZERO,
            SimTime::from_micros(10),
            None,
            &SackBlocks::default(),
            false,
            &mut out,
        );
        let rtx: Vec<&Segment> = out.iter().filter(|s| s.retx).collect();
        assert_eq!(rtx.len(), 2, "repair budget is two segments per ACK");
        assert_eq!(rtx[0].seq, 0, "retransmit the lost head segment");
        assert_eq!(tx.fast_retx, 1);
        // ssthresh = half the flight.
        assert!((tx.ssthresh() - 7300.0).abs() < 1.0);
    }

    #[test]
    fn recovery_exits_on_full_ack_with_halved_window() {
        let mut tx = TcpTx::new(cfg(), 1_000_000);
        let mut out = Vec::new();
        tx.pump(&mut out);
        let recover = tx.next_seq;
        for _ in 0..3 {
            tx.on_ack(
                0,
                SimTime::ZERO,
                SimTime::from_micros(10),
                None,
                &SackBlocks::default(),
                false,
                &mut out,
            );
        }
        assert_eq!(tx.state, CcState::Recovery { recover });
        out.clear();
        tx.on_ack(
            recover,
            SimTime::ZERO,
            SimTime::from_micros(30),
            None,
            &SackBlocks::default(),
            false,
            &mut out,
        );
        assert_eq!(tx.state, CcState::Open);
        assert!(
            (tx.cwnd() - 7300.0).abs() < 1.0,
            "cwnd = ssthresh after recovery"
        );
    }

    #[test]
    fn partial_ack_retransmits_next_hole() {
        let mut tx = TcpTx::new(cfg(), 1_000_000);
        let mut out = Vec::new();
        tx.pump(&mut out);
        for _ in 0..3 {
            tx.on_ack(
                0,
                SimTime::ZERO,
                SimTime::from_micros(10),
                None,
                &SackBlocks::default(),
                false,
                &mut out,
            );
        }
        out.clear();
        // Partial ACK: the retransmissions filled [0,2920) only; the walk
        // continues from the repair cursor.
        tx.on_ack(
            2920,
            SimTime::ZERO,
            SimTime::from_micros(40),
            None,
            &SackBlocks::default(),
            false,
            &mut out,
        );
        let rtx: Vec<&Segment> = out.iter().filter(|s| s.retx).collect();
        assert!(!rtx.is_empty());
        assert_eq!(rtx[0].seq, 2920, "repair resumes at the next hole");
        assert!(matches!(tx.state, CcState::Recovery { .. }));
    }

    #[test]
    fn rto_collapses_window_and_backs_off() {
        let mut tx = TcpTx::new(cfg(), 1_000_000);
        let mut out = Vec::new();
        tx.pump(&mut out);
        out.clear();
        let rto0 = tx.rto();
        tx.on_rto(&mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].retx);
        assert_eq!(out[0].seq, 0);
        assert!((tx.cwnd() - 1460.0).abs() < 1.0);
        assert_eq!(tx.rto(), (rto0 * 2).min(TcpConfig::standard().max_rto));
        assert_eq!(tx.timeouts, 1);
    }

    #[test]
    fn rtt_estimator_sets_rto_above_min() {
        let mut tx = TcpTx::new(cfg().with_min_rto(SimDuration::from_millis(1)), 1_000_000);
        let mut out = Vec::new();
        tx.pump(&mut out);
        // 100 us RTT samples: RTO should clamp to the 1 ms floor.
        let mut acked = 0;
        for i in 1..=5u64 {
            acked += 1460;
            tx.on_ack(
                acked,
                SimTime::from_micros((i - 1) * 100),
                SimTime::from_micros(i * 100 + 100),
                None,
                &SackBlocks::default(),
                false,
                &mut out,
            );
        }
        assert!(tx.srtt().unwrap() > 0.0);
        assert_eq!(tx.rto(), SimDuration::from_millis(1), "clamped to minRTO");
    }

    #[test]
    fn lia_increase_is_capped_by_uncoupled() {
        let mut a = TcpTx::new(cfg(), 100_000_000);
        let mut b = TcpTx::new(cfg(), 100_000_000);
        for t in [&mut a, &mut b] {
            t.force_window(14_600.0, 1460.0);
        }
        let mut out = Vec::new();
        // Uncoupled CA increase.
        a.on_ack(
            1460,
            SimTime::ZERO,
            SimTime::from_micros(10),
            None,
            &SackBlocks::default(),
            false,
            &mut out,
        );
        // Coupled with a huge alpha: capped at the uncoupled increase.
        b.on_ack(
            1460,
            SimTime::ZERO,
            SimTime::from_micros(10),
            Some(Lia {
                alpha: 1e9,
                cwnd_total: 14_600.0 * 8.0,
            }),
            &SackBlocks::default(),
            false,
            &mut out,
        );
        assert!((a.cwnd() - b.cwnd()).abs() < 1e-6);
        // Coupled with small alpha: strictly less aggressive.
        let mut c = TcpTx::new(cfg(), 100_000_000);
        c.force_window(14_600.0, 1460.0);
        c.on_ack(
            1460,
            SimTime::ZERO,
            SimTime::from_micros(10),
            Some(Lia {
                alpha: 0.1,
                cwnd_total: 14_600.0 * 8.0,
            }),
            &SackBlocks::default(),
            false,
            &mut out,
        );
        assert!(c.cwnd() < a.cwnd());
    }

    #[test]
    fn open_ended_assignment_for_mptcp() {
        let mut tx = TcpTx::new_open_ended(cfg());
        let mut out = Vec::new();
        tx.pump(&mut out);
        assert!(out.is_empty(), "nothing assigned yet");
        tx.assign(2920);
        tx.pump(&mut out);
        assert_eq!(out.len(), 2);
        assert!(!tx.done(), "not finalized");
        tx.finalize();
        tx.on_ack(
            2920,
            SimTime::ZERO,
            SimTime::from_micros(10),
            None,
            &SackBlocks::default(),
            false,
            &mut out,
        );
        assert!(tx.done());
    }

    // ----------------------------- receiver -----------------------------

    #[test]
    fn in_order_delivery_advances_ack() {
        let mut rx = TcpRx::default();
        assert_eq!(rx.on_data(0, 1460), 1460);
        assert_eq!(rx.on_data(1460, 1460), 2920);
        assert_eq!(rx.bytes_received, 2920);
        assert_eq!(rx.ooo_segments, 0);
    }

    #[test]
    fn out_of_order_holds_ack_then_jumps() {
        let mut rx = TcpRx::default();
        assert_eq!(rx.on_data(1460, 1460), 0, "hole at 0: dup ack");
        assert_eq!(rx.on_data(2920, 1460), 0);
        assert_eq!(rx.ooo_segments, 2);
        // Filling the hole releases everything.
        assert_eq!(rx.on_data(0, 1460), 4380);
        assert_eq!(rx.bytes_received, 4380);
    }

    #[test]
    fn duplicate_data_not_double_counted() {
        let mut rx = TcpRx::default();
        rx.on_data(0, 1460);
        rx.on_data(0, 1460);
        assert_eq!(rx.bytes_received, 1460);
        // Duplicate of an out-of-order segment.
        rx.on_data(2920, 1460);
        rx.on_data(2920, 1460);
        assert_eq!(rx.bytes_received, 2920);
    }

    #[test]
    fn overlapping_segments_merge() {
        let mut rx = TcpRx::default();
        rx.on_data(1000, 500);
        rx.on_data(1200, 500); // overlaps [1200,1500)
        assert_eq!(rx.bytes_received, 700);
        assert_eq!(rx.on_data(0, 1000), 1700);
        assert_eq!(rx.bytes_received, 1700);
    }

    #[test]
    fn retransmission_after_rto_completes_transfer() {
        // End-to-end sender/receiver conversation with one lost packet.
        let mut tx = TcpTx::new(cfg(), 4380);
        let mut rx = TcpRx::default();
        let mut wire = Vec::new();
        tx.pump(&mut wire);
        assert_eq!(wire.len(), 3);
        // Lose the first segment; deliver the rest.
        let mut acks = Vec::new();
        for s in &wire[1..] {
            acks.push(rx.on_data(s.seq, s.len));
        }
        assert_eq!(acks, vec![0, 0]);
        let mut out = Vec::new();
        for a in acks {
            tx.on_ack(
                a,
                SimTime::ZERO,
                SimTime::from_micros(10),
                None,
                &SackBlocks::default(),
                false,
                &mut out,
            );
        }
        assert!(out.is_empty(), "only 2 dupacks: no fast retx");
        tx.on_rto(&mut out);
        assert_eq!(out.len(), 1);
        let ack = rx.on_data(out[0].seq, out[0].len);
        assert_eq!(ack, 4380);
        let mut fin = Vec::new();
        tx.on_ack(
            ack,
            SimTime::ZERO,
            SimTime::from_millis(1),
            None,
            &SackBlocks::default(),
            false,
            &mut fin,
        );
        assert!(tx.done());
    }
}
