//! Property tests for the simulation substrate.

use conga_sim::{EventQueue, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, FIFO among ties,
    /// and nothing is lost or invented.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Time order with FIFO tie-break == stable sort by time.
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, _)| t);
        prop_assert_eq!(popped, expect);
    }

    /// Serialization time is exact for divisible cases and always rounds up.
    #[test]
    fn serialization_rounding(bytes in 1u64..100_000, rate in 1_000u64..100_000_000_000) {
        let d = SimDuration::serialization(bytes, rate);
        let exact = bytes as u128 * 8 * 1_000_000_000;
        let got = d.as_nanos() as u128 * rate as u128;
        prop_assert!(got >= exact, "rounded down");
        // Ceil rounding to whole nanoseconds: the overshoot is less than
        // one nanosecond's worth of bits (== rate / 1e9 bits => got-exact < rate).
        prop_assert!(got - exact < rate as u128, "overshot: {} vs {}", got, exact);
    }

    /// Time arithmetic: (t + d) - t == d, and ordering is consistent.
    #[test]
    fn time_arithmetic_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_nanos(t);
        let dd = SimDuration::from_nanos(d);
        prop_assert_eq!((t0 + dd) - t0, dd);
        prop_assert!(t0 + dd >= t0);
        prop_assert_eq!(t0.saturating_since(t0 + dd), SimDuration::ZERO);
    }

    /// Two RNGs with the same seed agree on every draw type; forked
    /// streams with different labels diverge.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..20 {
            prop_assert_eq!(a.u64(), b.u64());
            prop_assert_eq!(a.f64().to_bits(), b.f64().to_bits());
            prop_assert_eq!(a.below(17), b.below(17));
        }
        let mut fa = a.fork(1);
        let mut fb = b.fork(2);
        let same = (0..32).filter(|_| fa.u64() == fb.u64()).count();
        prop_assert!(same < 4);
    }

    /// Discrete CDF sampling never returns an out-of-range index and hits
    /// positive-mass buckets.
    #[test]
    fn discrete_cdf_in_range(seed in any::<u64>(), cuts in proptest::collection::vec(0.01f64..1.0, 1..8)) {
        let mut cdf: Vec<f64> = cuts.clone();
        cdf.sort_by(|a, b| a.partial_cmp(b).unwrap());
        *cdf.last_mut().unwrap() = 1.0;
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let i = rng.discrete_cdf(&cdf);
            prop_assert!(i < cdf.len());
        }
    }
}
