//! Property tests for the simulation substrate.
//!
//! These are seeded-random property checks: each test draws many random
//! cases from a fixed-seed [`SimRng`], so the suite is fully deterministic
//! (no `proptest` dependency, no shrink files) while still exploring a wide
//! input space.

use conga_sim::{EventQueue, SimDuration, SimRng, SimTime};

/// Events always pop in non-decreasing time order, FIFO among ties,
/// and nothing is lost or invented.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    let mut rng = SimRng::new(0xE0E0);
    for _case in 0..64 {
        let n = rng.range_u64(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 1_000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        assert_eq!(popped.len(), times.len());
        // Time order with FIFO tie-break == stable sort by time.
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, _)| t);
        assert_eq!(popped, expect);
    }
}

/// Serialization time is exact for divisible cases and always rounds up.
#[test]
fn serialization_rounding() {
    let mut rng = SimRng::new(0x5E71);
    for _case in 0..512 {
        let bytes = rng.range_u64(1, 100_000);
        let rate = rng.range_u64(1_000, 100_000_000_000);
        let d = SimDuration::serialization(bytes, rate);
        let exact = bytes as u128 * 8 * 1_000_000_000;
        let got = d.as_nanos() as u128 * rate as u128;
        assert!(got >= exact, "rounded down");
        // Ceil rounding to whole nanoseconds: the overshoot is less than
        // one nanosecond's worth of bits (== rate / 1e9 bits => got-exact < rate).
        assert!(got - exact < rate as u128, "overshot: {got} vs {exact}");
    }
}

/// Time arithmetic: (t + d) - t == d, and ordering is consistent.
#[test]
fn time_arithmetic_roundtrip() {
    let mut rng = SimRng::new(0x71AE);
    for _case in 0..512 {
        let t = rng.range_u64(0, u64::MAX / 4);
        let d = rng.range_u64(0, u64::MAX / 4);
        let t0 = SimTime::from_nanos(t);
        let dd = SimDuration::from_nanos(d);
        assert_eq!((t0 + dd) - t0, dd);
        assert!(t0 + dd >= t0);
        assert_eq!(t0.saturating_since(t0 + dd), SimDuration::ZERO);
    }
}

/// Two RNGs with the same seed agree on every draw type; forked
/// streams with different labels diverge.
#[test]
fn rng_determinism() {
    let mut seeds = SimRng::new(0xDE7E);
    for _case in 0..64 {
        let seed = seeds.u64();
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..20 {
            assert_eq!(a.u64(), b.u64());
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
            assert_eq!(a.below(17), b.below(17));
        }
        let mut fa = a.fork(1);
        let mut fb = b.fork(2);
        let same = (0..32).filter(|_| fa.u64() == fb.u64()).count();
        assert!(same < 4);
    }
}

/// Discrete CDF sampling never returns an out-of-range index.
#[test]
fn discrete_cdf_in_range() {
    let mut rng = SimRng::new(0xCDF0);
    for _case in 0..64 {
        let n = rng.range_u64(1, 8) as usize;
        let mut cdf: Vec<f64> = (0..n).map(|_| 0.01 + rng.f64() * 0.99).collect();
        cdf.sort_by(|a, b| a.partial_cmp(b).unwrap());
        *cdf.last_mut().unwrap() = 1.0;
        for _ in 0..100 {
            let i = rng.discrete_cdf(&cdf);
            assert!(i < cdf.len());
        }
    }
}
