//! Conservative time windows for sharded (parallel) simulation.
//!
//! A sharded run partitions the fabric into domains that each own a
//! private event queue. Domains may execute concurrently only inside a
//! *conservative window*: a half-open interval `[now, W)` chosen so that
//! no cross-domain interaction scheduled by one domain during the window
//! can land inside the window of another. The classic conservative
//! (Chandy–Misra–Bryant style) argument gives the bound: if every
//! cross-domain channel imposes at least `lookahead` of latency between a
//! transmission and its remote arrival, and `m` is the global minimum
//! pending event time, then every cross-domain arrival generated while
//! executing events at `t ≥ m` lands at `t' ≥ m + lookahead`. Executing
//! strictly below `W = m + lookahead` is therefore safe.
//!
//! [`conservative_window`] is the one place this bound is computed, kept
//! as a pure function so the barrier coordinator in `conga-net` and the
//! seeded property battery in `tests/properties.rs` exercise the same
//! arithmetic.

use crate::time::{SimDuration, SimTime};

/// Compute the exclusive upper bound of the next conservative execution
/// window.
///
/// * `min_pending` — the global minimum pending event time across every
///   domain (`None` when all queues are empty).
/// * `lookahead` — the minimum latency of any cross-domain channel
///   (serialization excluded, so it is a strict lower bound on the gap
///   between a transmit and its remote arrival). `None` means no
///   cross-domain channel exists and the whole horizon is one window.
/// * `t_end` — the inclusive horizon of the current `run_until` slice;
///   events at exactly `t_end` still execute (matching the serial
///   engine's `t <= t_end` loop).
///
/// Returns the window bound `W` such that executing events with `t < W`
/// is safe, or `None` when there is nothing to execute in this slice
/// (no pending events, or the earliest one lies beyond the horizon).
pub fn conservative_window(
    min_pending: Option<SimTime>,
    lookahead: Option<SimDuration>,
    t_end: SimTime,
) -> Option<SimTime> {
    let m = min_pending?;
    if m > t_end {
        return None;
    }
    // The horizon is inclusive: a window reaching the end of the slice
    // must still execute events at exactly `t_end`.
    let horizon = t_end.saturating_add(SimDuration::from_nanos(1));
    let bound = match lookahead {
        None => horizon,
        Some(l) => m.saturating_add(l).min(horizon),
    };
    // Progress: the window always covers at least the minimum pending
    // event, even with a degenerate zero lookahead.
    Some(bound.max(m.saturating_add(SimDuration::from_nanos(1))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }
    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn empty_queue_or_future_event_yields_no_window() {
        assert_eq!(conservative_window(None, Some(d(1000)), t(50)), None);
        assert_eq!(conservative_window(Some(t(51)), Some(d(1000)), t(50)), None);
    }

    #[test]
    fn window_is_min_pending_plus_lookahead_clamped_to_horizon() {
        assert_eq!(
            conservative_window(Some(t(10)), Some(d(1000)), t(1_000_000)),
            Some(t(1010))
        );
        // Clamp: the slice end is inclusive, so the bound is t_end + 1.
        assert_eq!(
            conservative_window(Some(t(10)), Some(d(1000)), t(500)),
            Some(t(501))
        );
        // Event exactly at the horizon still executes.
        assert_eq!(
            conservative_window(Some(t(500)), Some(d(1000)), t(500)),
            Some(t(501))
        );
    }

    #[test]
    fn no_cross_channels_means_one_window_per_slice() {
        assert_eq!(conservative_window(Some(t(3)), None, t(999)), Some(t(1000)));
    }

    #[test]
    fn zero_lookahead_still_makes_progress() {
        assert_eq!(
            conservative_window(Some(t(7)), Some(d(0)), t(100)),
            Some(t(8))
        );
    }

    #[test]
    fn saturating_near_the_time_ceiling() {
        let huge = SimTime::from_nanos(u64::MAX - 1);
        let w = conservative_window(Some(huge), Some(d(1_000)), SimTime::from_nanos(u64::MAX));
        assert!(w.is_some());
        assert!(w.unwrap() > huge);
    }
}
