//! Deterministic randomness for simulations.
//!
//! All stochastic behaviour in the workspace flows through [`SimRng`], a thin
//! wrapper over a seeded PCG-64 generator, so an experiment is fully
//! reproducible from `(code, seed)`. The wrapper also carries the handful of
//! distributions the workload models need (exponential, lognormal,
//! bounded-Pareto, discrete CDF sampling) implemented directly from their
//! inverse CDFs / Box–Muller so we do not need the `rand_distr` crate.
//!
//! The generator itself is a vendored PCG-64-MCG (XSL-RR 128/64, O'Neill
//! 2014): a 128-bit multiplicative congruential state with an xor-shift /
//! random-rotation output function. It is vendored rather than pulled from
//! `rand_pcg` so the workspace builds with zero external dependencies and
//! the byte stream is pinned by this file alone.

/// PCG-64-MCG: 128-bit MCG state, XSL-RR output to 64 bits.
#[derive(Debug, Clone)]
struct Pcg64Mcg {
    state: u128,
}

/// The PCG default 128-bit multiplier.
const PCG_MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

impl Pcg64Mcg {
    /// Expand a 64-bit seed into the 128-bit state with SplitMix64 so that
    /// nearby seeds yield unrelated streams. MCG state must be odd.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let lo = next();
        let hi = next();
        Pcg64Mcg {
            state: (((hi as u128) << 64) | lo as u128) | 1,
        }
    }

    /// Advance the MCG and apply the XSL-RR output permutation.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(PCG_MULTIPLIER);
        let rot = (self.state >> 122) as u32;
        let xsl = ((self.state >> 64) as u64) ^ (self.state as u64);
        xsl.rotate_right(rot)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in `[0, span)` (Lemire's method with
    /// rejection).
    #[inline]
    fn next_below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut m = (self.next_u64() as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                m = (self.next_u64() as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// A seeded, deterministic random number generator for simulation use.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Pcg64Mcg,
    /// Cached second normal variate from Box–Muller.
    spare_normal: Option<f64>,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: Pcg64Mcg::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derive an independent child generator; useful for giving each
    /// component its own stream so adding draws in one place does not perturb
    /// another (a classic simulation-reproducibility pitfall).
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix the label in so forks with different labels differ even when
        // made back-to-back.
        let seed = self.inner.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(seed)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is an empty range");
        self.inner.next_below(n as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "range_u64 requires lo < hi");
        lo + self.inner.next_below(hi - lo)
    }

    /// A raw 64-bit draw (e.g. for hash seeds).
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential variate with the given rate (mean `1/rate`), via inverse CDF.
    #[inline]
    pub fn exp(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        // 1 - U is in (0, 1], avoiding ln(0).
        -(1.0 - self.f64()).ln() / rate
    }

    /// Standard normal variate via Box–Muller (caches the paired draw).
    pub fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u in (0,1] to keep ln finite.
        let u = 1.0 - self.f64();
        let v = self.f64();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Lognormal variate with the given parameters of the underlying normal.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.std_normal()).exp()
    }

    /// Bounded Pareto variate on `[lo, hi]` with shape `alpha`, via inverse CDF.
    pub fn bounded_pareto(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        debug_assert!(lo > 0.0 && hi > lo && alpha > 0.0);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Sample an index from a discrete CDF given as non-decreasing cumulative
    /// probabilities ending at (approximately) 1.0.
    pub fn discrete_cdf(&mut self, cdf: &[f64]) -> usize {
        debug_assert!(!cdf.is_empty());
        let u = self.f64();
        match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("NaN in CDF")) {
            Ok(i) => (i + 1).min(cdf.len() - 1),
            Err(i) => i.min(cdf.len() - 1),
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Choose a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        for _ in 0..100 {
            assert_eq!(c1.u64(), c2.u64());
        }
        let mut d1 = parent1.fork(2);
        assert_ne!(c1.u64(), d1.u64());
    }

    #[test]
    fn exp_mean_close() {
        let mut rng = SimRng::new(3);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::new(4);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.std_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let x = rng.bounded_pareto(1e3, 1e8, 0.5);
            assert!((1e3..=1e8).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn discrete_cdf_frequencies() {
        let mut rng = SimRng::new(6);
        let cdf = [0.1, 0.4, 1.0];
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.discrete_cdf(&cdf)] += 1;
        }
        let p: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((p[0] - 0.1).abs() < 0.01);
        assert!((p[1] - 0.3).abs() < 0.01);
        assert!((p[2] - 0.6).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(8);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
