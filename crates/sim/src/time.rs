//! Simulation clock types.
//!
//! The simulator uses an integer nanosecond clock. Two distinct newtypes keep
//! absolute instants ([`SimTime`]) and spans ([`SimDuration`]) from being
//! mixed up: you can add a duration to a time, subtract two times to get a
//! duration, and scale durations — but you cannot, say, add two instants.
//!
//! A `u64` nanosecond clock wraps after ~584 years of simulated time, far
//! beyond any experiment in this repository; arithmetic is checked in debug
//! builds via the standard overflow semantics.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since t = 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative simulation time");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since t = 0.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration (clamps at [`SimTime::MAX`]).
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span (an "infinite" timeout sentinel).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span expressed in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by an integer factor.
    #[inline]
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// The wall-clock time to serialize `bytes` onto a link of `rate_bps`
    /// bits per second, rounded up to a whole nanosecond.
    ///
    /// This is the canonical place the byte→time conversion lives so every
    /// component agrees on rounding.
    #[inline]
    pub fn serialization(bytes: u64, rate_bps: u64) -> SimDuration {
        debug_assert!(rate_bps > 0, "zero-rate link");
        let bits = bytes * 8;
        // ceil(bits * 1e9 / rate) without overflow for realistic inputs:
        // bits < 2^40 and 1e9 < 2^30 keeps the product under 2^70 — use u128.
        let ns = (bits as u128 * 1_000_000_000u128).div_ceil(rate_bps as u128);
        SimDuration(ns as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        debug_assert!(rhs >= 0.0);
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Human-friendly rendering of a nanosecond count with an adaptive unit.
fn format_ns(ns: u64) -> String {
    if ns == u64::MAX {
        "inf".to_string()
    } else if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{}ns", ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimTime::from_nanos(123_456_789).as_secs_f64() - 0.123456789).abs() < 1e-12);
    }

    #[test]
    fn time_duration_arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(4);
        assert_eq!((t + d).as_nanos(), 14_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t - d).as_nanos(), 6_000);
        let mut u = t;
        u += d;
        assert_eq!(u, t + d);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(b.saturating_since(a).as_nanos(), 4);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 1500 bytes at 10 Gbps = 1200 ns exactly.
        assert_eq!(
            SimDuration::serialization(1500, 10_000_000_000).as_nanos(),
            1200
        );
        // 1 byte at 3 bps = 8/3 * 1e9 ns, rounded up.
        assert_eq!(
            SimDuration::serialization(1, 3).as_nanos(),
            (8u64 * 1_000_000_000).div_ceil(3)
        );
        // Zero bytes takes zero time.
        assert_eq!(
            SimDuration::serialization(0, 40_000_000_000),
            SimDuration::ZERO
        );
    }

    #[test]
    fn serialization_no_overflow_at_large_sizes() {
        // A 1 GB burst on a 1 Gbps link: 8 seconds.
        let d = SimDuration::serialization(1_000_000_000, 1_000_000_000);
        assert_eq!(d.as_nanos(), 8_000_000_000);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(100);
        assert_eq!((d * 3).as_nanos(), 300_000);
        assert_eq!((d / 4).as_nanos(), 25_000);
        assert_eq!((d * 0.5).as_nanos(), 50_000);
        let total: SimDuration = vec![d, d, d].into_iter().sum();
        assert_eq!(total, d * 3);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(250).to_string(), "250.000us");
        assert_eq!(SimDuration::from_millis(13).to_string(), "13.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }
}
