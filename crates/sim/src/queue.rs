//! The future-event list: a time-ordered priority queue with stable ordering.
//!
//! Determinism is a hard requirement for this project (every figure must be
//! exactly reproducible from a seed), so ties in event time are broken by a
//! monotonically increasing sequence number: events scheduled earlier fire
//! earlier. `std::collections::BinaryHeap` alone is not stable, hence the
//! explicit `(time, seq)` key.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled entry in the future-event list.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Ordering is on (time, seq) only; the payload is irrelevant.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic future-event list.
///
/// Events popped from the queue are non-decreasing in time; equal-time events
/// come out in the order they were pushed (FIFO among ties).
///
/// ```
/// use conga_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "b");
/// q.push(SimTime::from_nanos(10), "a");
/// q.push(SimTime::from_nanos(20), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
    /// Total number of events ever pushed (for engine statistics).
    pushed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            pushed: 0,
        }
    }

    /// Schedule `event` to fire at `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Reverse(Scheduled { time, seq, event }));
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(s)| (s.time, s.event))
    }

    /// The time of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events pushed over the queue's lifetime.
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[50u64, 10, 40, 10, 30] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t.as_nanos(), e);
            out.push(e);
        }
        assert_eq!(out, vec![10, 10, 30, 40, 50]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_ties_stay_fifo() {
        // FIFO among ties must hold even when pops interleave with pushes
        // at the same timestamp (the sequence number is global, not
        // per-batch).
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(9);
        q.push(t, "a");
        q.push(t, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(t, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(4); // deliberately smaller than the load
        for &t in &[5u64, 1, 3, 3, 2, 9, 1] {
            a.push(SimTime::from_nanos(t), t);
            b.push(SimTime::from_nanos(t), t);
        }
        assert_eq!(a.total_pushed(), b.total_pushed());
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pushed_counts_every_push_not_net_occupancy() {
        let mut q = EventQueue::with_capacity(8);
        for i in 0..5u64 {
            q.push(SimTime::from_nanos(i), i);
        }
        for _ in 0..3 {
            q.pop();
        }
        for i in 0..2u64 {
            q.push(SimTime::from_nanos(100 + i), i);
        }
        assert_eq!(q.total_pushed(), 7, "pops must not decrement the counter");
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn peek_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(7), ());
        q.push(SimTime::from_nanos(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.total_pushed(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2, "lifetime counter survives clear");
    }
}
