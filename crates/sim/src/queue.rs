//! The future-event list: a time-ordered priority queue with stable ordering.
//!
//! Determinism is a hard requirement for this project (every figure must be
//! exactly reproducible from a seed), so ties in event time are broken by a
//! monotonically increasing sequence number: events scheduled earlier fire
//! earlier. `std::collections::BinaryHeap` alone is not stable, hence the
//! explicit `(time, seq)` key.
//!
//! Two backends implement the same `(time, seq)` contract:
//!
//! * [`QueueKind::Heap`] — a `BinaryHeap<Reverse<Scheduled>>`; `O(log n)`
//!   push/pop, the reference implementation.
//! * [`QueueKind::Calendar`] — a calendar queue (Brown 1988): a ring of
//!   1024 ns-wide buckets spanning a ~4.2 ms "year", a two-level occupancy
//!   bitmap for skipping empty buckets, and an overflow heap for events
//!   beyond the current year (RTO timers live there). Push and pop are
//!   amortised `O(1)` because simulators schedule overwhelmingly into the
//!   near future. A push earlier than the current scan position rewinds
//!   the scan, so ordering holds for arbitrary push patterns, not just
//!   monotone ones.
//!
//! The two are observationally identical — `tests::calendar_matches_heap`
//! drives both with a seeded workload and asserts identical pop sequences.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled entry in the future-event list.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Ordering is on (time, seq) only; the payload is irrelevant.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Which future-event-list implementation a queue uses.
///
/// Both kinds implement the identical stable `(time, seq)` ordering;
/// the choice is purely a performance knob and must never change a
/// simulation artifact (see `tests/hotpath.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// Binary-heap future-event list (`O(log n)`, reference).
    #[default]
    Heap,
    /// Calendar-queue future-event list (amortised `O(1)`).
    Calendar,
}

// Calendar geometry: 4096 buckets of 1024 ns cover a ~4.2 ms year.
// Anything scheduled past the current year waits in the overflow heap
// and migrates into buckets as years advance.
const CAL_SHIFT: u32 = 10;
const CAL_BUCKETS: usize = 4096;
const CAL_MASK: u64 = (CAL_BUCKETS as u64) - 1;
const CAL_YEAR: u64 = (CAL_BUCKETS as u64) << CAL_SHIFT;

/// The calendar backend.
///
/// Invariants:
/// * no bucketed event is earlier than the scan position
///   `epoch + cur·width` (pushes behind the scan rewind it), and
/// * `far` only holds events at or beyond `epoch + YEAR` (the horizon
///   only drops on a rewind, which keeps the property; wrapping a year
///   migrates newly-near events back into buckets).
///
/// Together these mean the scan's first *eligible* bucket entry — one
/// whose time is inside the bucket's current-year window — is the global
/// minimum. A bucket can also hold events for future years (after a
/// rewind); the eligibility check in [`Calendar::seek`] skips those.
#[derive(Debug)]
struct Calendar<E> {
    /// Ring of buckets, each sorted descending by `(time, seq)` so the
    /// minimum is `last()` and pop is `Vec::pop`.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Occupancy bitmap: bit `b & 63` of `occ[b >> 6]` set iff bucket
    /// `b` is non-empty; `top` summarises the 64 words.
    occ: [u64; CAL_BUCKETS / 64],
    top: u64,
    /// Scan position (bucket index) and the start time of its year (ns).
    cur: usize,
    epoch: u64,
    /// Events at or beyond `epoch + CAL_YEAR`.
    far: BinaryHeap<Reverse<Scheduled<E>>>,
    /// Events currently bucketed.
    near_len: usize,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: (0..CAL_BUCKETS).map(|_| Vec::new()).collect(),
            occ: [0; CAL_BUCKETS / 64],
            top: 0,
            cur: 0,
            epoch: 0,
            far: BinaryHeap::new(),
            near_len: 0,
        }
    }

    fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    fn insert_near(&mut self, s: Scheduled<E>) {
        let b = ((s.time.as_nanos() >> CAL_SHIFT) & CAL_MASK) as usize;
        let v = &mut self.buckets[b];
        // Descending by (time, seq): find the first element strictly
        // smaller and insert before it. Pushes trend later-in-time, so
        // the insertion point is usually the tail and the memmove empty.
        let key = (s.time, s.seq);
        let i = v.partition_point(|x| (x.time, x.seq) > key);
        v.insert(i, s);
        self.occ[b >> 6] |= 1 << (b & 63);
        self.top |= 1 << (b >> 6);
        self.near_len += 1;
    }

    fn push(&mut self, s: Scheduled<E>) {
        let t = s.time.as_nanos();
        if t < self.epoch + ((self.cur as u64) << CAL_SHIFT) {
            // Behind the scan (e.g. scheduled after a peek advanced it):
            // rewind so the forward scan sees this event first.
            self.epoch = t & !(CAL_YEAR - 1);
            self.cur = ((t >> CAL_SHIFT) & CAL_MASK) as usize;
        }
        if t < self.epoch + CAL_YEAR {
            self.insert_near(s);
        } else {
            self.far.push(Reverse(s));
        }
    }

    /// Lowest occupied bucket index in `[from, CAL_BUCKETS)`, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let w0 = from >> 6;
        let bits = self.occ[w0] & (!0u64 << (from & 63));
        if bits != 0 {
            return Some((w0 << 6) + bits.trailing_zeros() as usize);
        }
        if w0 + 1 >= CAL_BUCKETS / 64 {
            return None;
        }
        let words = self.top & (!0u64 << (w0 + 1));
        if words == 0 {
            return None;
        }
        let w = words.trailing_zeros() as usize;
        Some((w << 6) + self.occ[w].trailing_zeros() as usize)
    }

    /// Pull every overflow event that now falls inside the current year.
    fn migrate_far(&mut self) {
        let horizon = self.epoch + CAL_YEAR;
        while let Some(Reverse(s)) = self.far.peek() {
            if s.time.as_nanos() >= horizon {
                break;
            }
            let Reverse(s) = self.far.pop().expect("peeked");
            self.insert_near(s);
        }
    }

    /// With no bucketed events left, jump the scan straight to the
    /// overflow minimum's year instead of stepping empty years.
    fn fast_forward(&mut self) {
        let t = self
            .far
            .peek()
            .expect("fast_forward needs far events")
            .0
            .time
            .as_nanos();
        self.epoch = t & !(CAL_YEAR - 1);
        self.cur = ((t >> CAL_SHIFT) & CAL_MASK) as usize;
        self.migrate_far();
    }

    /// Advance the scan to the bucket holding the global minimum.
    /// Returns `None` only when the queue is empty.
    fn seek(&mut self) -> Option<usize> {
        if self.near_len == 0 {
            if self.far.is_empty() {
                return None;
            }
            self.fast_forward();
        }
        let mut from = self.cur;
        loop {
            if let Some(b) = self.next_occupied(from) {
                // Eligible only if the bucket's minimum falls inside the
                // bucket's window for the scan's current year; an entry
                // for a later year (bucketed before a rewind) waits.
                let min_t = self.buckets[b].last().expect("occupied").time.as_nanos();
                if min_t < self.epoch + ((b as u64 + 1) << CAL_SHIFT) {
                    self.cur = b;
                    return Some(b);
                }
                from = b + 1;
                if from < CAL_BUCKETS {
                    continue;
                }
            }
            // Year boundary: wrap and admit newly-near overflow events.
            from = 0;
            self.cur = 0;
            self.epoch += CAL_YEAR;
            self.migrate_far();
        }
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        let b = self.seek()?;
        let s = self.buckets[b]
            .pop()
            .expect("seek found an occupied bucket");
        if self.buckets[b].is_empty() {
            self.occ[b >> 6] &= !(1 << (b & 63));
            if self.occ[b >> 6] == 0 {
                self.top &= !(1 << (b >> 6));
            }
        }
        self.near_len -= 1;
        Some(s)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        let b = self.seek()?;
        Some(self.buckets[b].last().expect("occupied").time)
    }

    fn clear(&mut self) {
        for v in &mut self.buckets {
            v.clear();
        }
        self.occ = [0; CAL_BUCKETS / 64];
        self.top = 0;
        self.cur = 0;
        self.epoch = 0;
        self.far.clear();
        self.near_len = 0;
    }
}

#[derive(Debug)]
enum Backend<E> {
    Heap(BinaryHeap<Reverse<Scheduled<E>>>),
    Calendar(Box<Calendar<E>>),
}

/// A deterministic future-event list.
///
/// Events popped from the queue are non-decreasing in time; equal-time events
/// come out in the order they were pushed (FIFO among ties).
///
/// ```
/// use conga_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "b");
/// q.push(SimTime::from_nanos(10), "a");
/// q.push(SimTime::from_nanos(20), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    /// Total number of events ever pushed (for engine statistics).
    pushed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty heap-backed queue.
    pub fn new() -> Self {
        Self::with_kind(QueueKind::Heap, 0)
    }

    /// Create an empty heap-backed queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_kind(QueueKind::Heap, cap)
    }

    /// Create an empty queue with an explicit backend.
    pub fn with_kind(kind: QueueKind, cap: usize) -> Self {
        let backend = match kind {
            QueueKind::Heap => Backend::Heap(BinaryHeap::with_capacity(cap)),
            QueueKind::Calendar => Backend::Calendar(Box::new(Calendar::new())),
        };
        EventQueue {
            backend,
            next_seq: 0,
            pushed: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match &self.backend {
            Backend::Heap(_) => QueueKind::Heap,
            Backend::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Schedule `event` to fire at `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        let s = Scheduled { time, seq, event };
        match &mut self.backend {
            Backend::Heap(h) => h.push(Reverse(s)),
            Backend::Calendar(c) => c.push(s),
        }
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|Reverse(s)| (s.time, s.event)),
            Backend::Calendar(c) => c.pop().map(|s| (s.time, s.event)),
        }
    }

    /// The time of the earliest pending event, if any.
    ///
    /// Takes `&mut self` because the calendar backend advances its scan
    /// position to the answer (contents are untouched).
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(h) => h.peek().map(|Reverse(s)| s.time),
            Backend::Calendar(c) => c.peek_time(),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len(),
        }
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events pushed over the queue's lifetime.
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(h) => h.clear(),
            Backend::Calendar(c) => c.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn kinds() -> [QueueKind; 2] {
        [QueueKind::Heap, QueueKind::Calendar]
    }

    #[test]
    fn pops_in_time_order() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind, 0);
            for &t in &[50u64, 10, 40, 10, 30] {
                q.push(SimTime::from_nanos(t), t);
            }
            let mut out = Vec::new();
            while let Some((t, e)) = q.pop() {
                assert_eq!(t.as_nanos(), e);
                out.push(e);
            }
            assert_eq!(out, vec![10, 10, 30, 40, 50], "{kind:?}");
        }
    }

    #[test]
    fn ties_are_fifo() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind, 0);
            let t = SimTime::from_micros(1);
            for i in 0..100 {
                q.push(t, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().1, i, "{kind:?}");
            }
        }
    }

    #[test]
    fn interleaved_ties_stay_fifo() {
        // FIFO among ties must hold even when pops interleave with pushes
        // at the same timestamp (the sequence number is global, not
        // per-batch).
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind, 0);
            let t = SimTime::from_micros(9);
            q.push(t, "a");
            q.push(t, "b");
            assert_eq!(q.pop().unwrap().1, "a");
            q.push(t, "c");
            assert_eq!(q.pop().unwrap().1, "b");
            assert_eq!(q.pop().unwrap().1, "c");
            assert_eq!(q.pop(), None, "{kind:?}");
        }
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(4); // deliberately smaller than the load
        for &t in &[5u64, 1, 3, 3, 2, 9, 1] {
            a.push(SimTime::from_nanos(t), t);
            b.push(SimTime::from_nanos(t), t);
        }
        assert_eq!(a.total_pushed(), b.total_pushed());
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pushed_counts_every_push_not_net_occupancy() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind, 8);
            for i in 0..5u64 {
                q.push(SimTime::from_nanos(i), i);
            }
            for _ in 0..3 {
                q.pop();
            }
            for i in 0..2u64 {
                q.push(SimTime::from_nanos(100 + i), i);
            }
            assert_eq!(q.total_pushed(), 7, "pops must not decrement the counter");
            assert_eq!(q.len(), 4, "{kind:?}");
        }
    }

    #[test]
    fn peek_and_counters() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind, 0);
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_nanos(7), ());
            q.push(SimTime::from_nanos(3), ());
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
            assert_eq!(q.total_pushed(), 2);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.total_pushed(), 2, "lifetime counter survives clear");
        }
    }

    /// The calendar backend crosses year boundaries (4.2 ms) and parks
    /// far-future events in its overflow heap; both paths must preserve
    /// the global (time, seq) order.
    #[test]
    fn calendar_handles_year_crossings_and_far_events() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar, 0);
        // An RTO-like event ~200 ms out, then a dense burst now.
        q.push(SimTime::from_millis(200), 9999u64);
        for i in 0..64u64 {
            q.push(SimTime::from_nanos(i * 700), i);
        }
        // A second far event in a middle year.
        q.push(SimTime::from_millis(30), 7777);
        for i in 0..64u64 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert_eq!(q.pop().unwrap(), (SimTime::from_millis(30), 7777));
        assert_eq!(q.pop().unwrap(), (SimTime::from_millis(200), 9999));
        assert_eq!(q.pop(), None);
    }

    /// Seeded adversarial workload: interleaved pushes (always at or
    /// after the last popped time, as the engine guarantees) and pops,
    /// with heavy tie density and occasional multi-year jumps. The
    /// calendar must reproduce the heap's pop sequence exactly.
    #[test]
    fn calendar_matches_heap() {
        let mut rng = SimRng::new(0xCA1E_50DA);
        let mut heap = EventQueue::with_kind(QueueKind::Heap, 0);
        let mut cal = EventQueue::with_kind(QueueKind::Calendar, 0);
        let mut now = 0u64;
        let mut id = 0u64;
        for _ in 0..20_000 {
            match rng.u64() % 5 {
                // Push: mostly near-future, sometimes far (RTO-like),
                // often exactly `now` to stress tie-breaking.
                0..=2 => {
                    let dt = match rng.u64() % 10 {
                        0 => 0,
                        1..=6 => rng.u64() % 3_000,
                        7 | 8 => rng.u64() % 300_000,
                        _ => rng.u64() % 50_000_000,
                    };
                    let t = SimTime::from_nanos(now + dt);
                    heap.push(t, id);
                    cal.push(t, id);
                    id += 1;
                }
                _ => {
                    let (a, b) = (heap.pop(), cal.pop());
                    assert_eq!(a, b, "pop sequences diverged");
                    if let Some((t, _)) = a {
                        now = t.as_nanos();
                    }
                }
            }
            assert_eq!(heap.len(), cal.len());
            assert_eq!(heap.peek_time(), cal.peek_time());
        }
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }
}
