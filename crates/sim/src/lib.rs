//! # conga-sim — deterministic discrete-event simulation engine
//!
//! The foundation of the CONGA reproduction: an integer-nanosecond clock
//! ([`SimTime`], [`SimDuration`]), a stable future-event list
//! ([`EventQueue`]), and seeded deterministic randomness ([`SimRng`]).
//!
//! Design notes (following the event-driven style of stacks like smoltcp):
//!
//! * **No async runtime.** Simulation is CPU-bound; a synchronous event loop
//!   is faster, simpler, and trivially deterministic.
//! * **Stable ordering.** Equal-time events fire in scheduling order, so a
//!   run is a pure function of `(code, seed)`.
//! * **One clock type pair.** Absolute instants and spans are distinct types;
//!   the byte→time conversion for link serialization lives in exactly one
//!   place ([`SimDuration::serialization`]).

#![warn(missing_docs)]

mod queue;
mod rng;
mod time;
mod window;

pub use queue::{EventQueue, QueueKind};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use window::conservative_window;
