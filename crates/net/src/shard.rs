//! Sharded execution: one simulation partitioned by leaf domain, advanced
//! in conservative time windows with a barrier exchange of cross-domain
//! packets.
//!
//! ## Decomposition
//!
//! A run over a fabric is split into `n_leaves` *domains*. Domain `d`
//! owns leaf `d`, every host under it, and a fixed share of the upper
//! tiers: spines round-robin over the leaves *of their own pod* (which in
//! a two-tier fabric reduces exactly to `spine % n_leaves`), and core
//! switches round-robin over all leaves (spines and cores are stateless
//! ECMP hops plus their DREs, so any fixed assignment works). Each domain
//! holds a **full replica** of
//! the [`crate::Network`] over the same topology — same FIB, same fault
//! schedule — but with a [`ShardCtx`] mask: it only ever *transmits* on
//! channels whose source node it owns, and an owned channel whose
//! destination lies in another domain diverts its arrival into an outbox
//! instead of the local event queue.
//!
//! Replication is what keeps the dataplane logic untouched: leaf `l`'s
//! congestion tables and flowlet state are only ever exercised by events
//! processed in domain `l`, spine DREs only in the spine's domain, and the
//! replica counters elsewhere stay zero — so summing per-domain metric
//! registries reproduces the monolithic totals exactly.
//!
//! ## Conservative windows
//!
//! Domains advance in lockstep windows bounded by
//! [`conga_sim::conservative_window`] with lookahead equal to the minimum
//! propagation delay over cross-domain channels. A packet transmitted at
//! `t ≥ m` (the global minimum pending time) arrives remotely at
//! `t + ser + delay ≥ m + lookahead`, so executing strictly below
//! `m + lookahead` can never miss a cross-domain arrival. Outboxes are
//! exchanged at the barrier between windows and injected — sorted by
//! `(arrival time, channel, packet id)`, a total order — before the next
//! window's minimum is computed.
//!
//! ## Determinism
//!
//! The window schedule is a pure function of the event timeline, the
//! injection order is sorted, and each domain is single-threaded inside a
//! window — so the run is a pure function of `(code, seed)` and, crucially,
//! **independent of the worker count**: `workers = 1` executes the same
//! logical schedule inline that `workers = n` executes on scoped threads.
//! The differential battery in `tests/shards.rs` pins this byte-for-byte.

use crate::engine::{Dataplane, HostAgent, Network, ShardCtx};
use crate::ids::{ChannelId, NodeId};
use crate::packet::Packet;
use crate::topology::Topology;
use conga_sim::{conservative_window, SimDuration, SimRng, SimTime};
use conga_telemetry::profile::{self, Phase};
use conga_telemetry::SeriesRegistry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// A cross-domain packet in flight between barriers:
/// `(arrival time, channel, packet, fail epoch at tx start)`.
type Mail = (SimTime, ChannelId, Packet, u32);

/// Domain that owns a node: hosts and leaves by leaf index, spines
/// round-robin across the leaves of their own pod, cores round-robin
/// across all leaves.
fn domain_of(topo: &Topology, node: NodeId) -> u8 {
    match node {
        NodeId::Host(h) => topo.leaf_of(h).0 as u8,
        NodeId::Leaf(l) => l.0 as u8,
        NodeId::Spine(s) => {
            // Pod-local round-robin: spine with pod-local index `sl` in pod
            // `p` lands on leaf `p*leaves_per_pod + sl % leaves_per_pod`.
            // With n_pods == 1 this is exactly the historical
            // `spine % n_leaves` assignment, so two-tier runs keep their
            // byte-identical domain decomposition.
            let lpp = topo.leaves_per_pod().max(1);
            let spp = topo.spines_per_pod().max(1);
            let pod = s.0 / spp;
            let sl = s.0 % spp;
            (pod * lpp + sl % lpp) as u8
        }
        NodeId::Core(c) => (c.0 as usize % topo.n_leaves as usize) as u8,
    }
}

/// A simulation partitioned into per-leaf domains that advance in
/// conservative windows, exchanging cross-domain packets at barriers.
///
/// The domain decomposition is fixed by the topology (`n_leaves` domains,
/// always); the `workers` knob only chooses how many OS threads execute
/// the windows. Artifacts are therefore byte-identical for every worker
/// count by construction — which is why `--shards` is excluded from
/// scenario hashes.
pub struct ShardedNetwork<D: Dataplane, A: HostAgent> {
    nets: Vec<Network<D, A>>,
    mailboxes: Vec<Mutex<Vec<Mail>>>,
    arrive_domain: Vec<u8>,
    src_domain: Vec<u8>,
    lookahead: Option<SimDuration>,
    workers: usize,
    now: SimTime,
}

impl<D: Dataplane + Send, A: HostAgent + Send> ShardedNetwork<D, A> {
    /// Partition `topo` into `n_leaves` domains executed by up to
    /// `workers` threads (clamped to the domain count; 0 means 1).
    /// `mk(d)` constructs domain `d`'s dataplane and host agent — every
    /// domain gets an identical fresh replica.
    ///
    /// Per-domain determinism inputs are functions of `(seed, d)` only:
    /// the RNG is forked from the run seed by domain index and packet ids
    /// are minted in the disjoint range `d << 48 ..`.
    pub fn new(
        topo: &Topology,
        seed: u64,
        workers: usize,
        mut mk: impl FnMut(usize) -> (D, A),
    ) -> Self {
        let n_domains = topo.n_leaves as usize;
        assert!(n_domains >= 1, "topology has no leaves");
        let arrive_domain: Vec<u8> = topo
            .channels
            .iter()
            .map(|c| domain_of(topo, c.dst))
            .collect();
        let src_domain: Vec<u8> = topo
            .channels
            .iter()
            .map(|c| domain_of(topo, c.src))
            .collect();
        let lookahead = topo
            .channels
            .iter()
            .enumerate()
            .filter(|&(i, _)| src_domain[i] != arrive_domain[i])
            .map(|(_, c)| c.delay)
            .min();
        let mut parent = SimRng::new(seed);
        let nets = (0..n_domains)
            .map(|d| {
                let (dp, agent) = mk(d);
                let mut net = Network::new(topo.clone(), dp, agent, seed);
                net.rng = parent.fork(d as u64);
                net.set_pkt_id_base((d as u64) << 48);
                net.set_shard(ShardCtx {
                    id: d as u8,
                    arrive_domain: arrive_domain.clone(),
                    owns_tx: src_domain.iter().map(|&s| s as usize == d).collect(),
                    outbox: Vec::new(),
                });
                net
            })
            .collect();
        ShardedNetwork {
            nets,
            mailboxes: (0..n_domains).map(|_| Mutex::new(Vec::new())).collect(),
            arrive_domain,
            src_domain,
            lookahead,
            workers: workers.max(1).min(n_domains),
            now: SimTime::ZERO,
        }
    }

    /// Domain that owns `ch`'s transmit side — where its port counters
    /// (tx bytes, queue occupancy) are maintained.
    pub fn tx_domain(&self, ch: ChannelId) -> usize {
        self.src_domain[ch.idx()] as usize
    }

    /// Domain that processes `ch`'s arrivals.
    pub fn rx_domain(&self, ch: ChannelId) -> usize {
        self.arrive_domain[ch.idx()] as usize
    }

    /// Number of domains (`n_leaves`, fixed by the topology).
    pub fn n_domains(&self) -> usize {
        self.nets.len()
    }

    /// Worker threads the windows execute on.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The conservative lookahead: minimum propagation delay over
    /// cross-domain channels (`None` when every channel is intra-domain).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// Current simulation time (the end of the last `run_until` slice).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Domain `d`'s network replica.
    pub fn domain(&self, d: usize) -> &Network<D, A> {
        &self.nets[d]
    }

    /// Mutable access to domain `d`'s replica (setup: tracers, sampling,
    /// timers, fault schedules).
    pub fn domain_mut(&mut self, d: usize) -> &mut Network<D, A> {
        &mut self.nets[d]
    }

    /// Apply `f` to every domain in index order — for setup that must be
    /// replicated everywhere, like the fault schedule.
    pub fn each(&mut self, mut f: impl FnMut(usize, &mut Network<D, A>)) {
        for (d, net) in self.nets.iter_mut().enumerate() {
            f(d, net);
        }
    }

    /// Export the merged run metrics: each domain exports into a scratch
    /// registry which is absorbed (counters and gauges sum, series
    /// concatenate) into `reg`. Replication makes the sums exact — every
    /// monolithic counter is incremented in exactly the domain(s) that
    /// process the corresponding events.
    pub fn export_metrics(&self, reg: &mut conga_telemetry::MetricsRegistry) {
        for net in &self.nets {
            let mut part = conga_telemetry::MetricsRegistry::new();
            net.export_metrics(&mut part);
            reg.absorb(&part);
        }
    }

    /// Merge every domain's time-series registry by window, in domain
    /// index order. Ownership gating inside the sampling hooks means each
    /// window value is observed by exactly the domain(s) that own the
    /// underlying state, so the sum-merge reproduces the monolithic
    /// reading — byte-identical for any worker count.
    pub fn export_series(&self) -> SeriesRegistry {
        let mut out = SeriesRegistry::disabled();
        for net in &self.nets {
            out.merge_domain(&net.series);
        }
        out
    }

    /// Run every domain to `t_end` (inclusive) in conservative windows,
    /// exchanging cross-domain packets at the window barriers. Returns the
    /// total number of events processed across domains.
    pub fn run_until(&mut self, t_end: SimTime) -> u64 {
        let n = if self.workers <= 1 {
            self.run_inline(t_end)
        } else {
            self.run_parallel(t_end)
        };
        for net in &mut self.nets {
            net.advance_to(t_end);
        }
        self.now = t_end;
        n
    }

    /// Drain and inject one domain's mailbox, then report its minimum
    /// pending event time. Injection order is sorted by
    /// `(arrival time, channel, packet id)` — a total order (per-channel
    /// arrival times strictly increase), so the event-queue scheduling
    /// sequence is independent of which thread routed each entry.
    fn drain_into(mailbox: &Mutex<Vec<Mail>>, net: &mut Network<D, A>) -> Option<SimTime> {
        let mut mail = std::mem::take(&mut *mailbox.lock().expect("mailbox poisoned"));
        mail.sort_by_key(|m| (m.0, (m.1).0, m.2.id));
        for (t, ch, pkt, epoch) in mail {
            net.deliver_remote(t, ch, pkt, epoch);
        }
        net.peek_time()
    }

    /// Route one domain's outbox into the target mailboxes.
    fn route_outbox(mailboxes: &[Mutex<Vec<Mail>>], arrive_domain: &[u8], net: &mut Network<D, A>) {
        for entry in net.take_outbox() {
            let d = arrive_domain[entry.1.idx()] as usize;
            mailboxes[d].lock().expect("mailbox poisoned").push(entry);
        }
    }

    /// Single-threaded executor: the identical logical window schedule the
    /// parallel path runs, without threads or barriers.
    fn run_inline(&mut self, t_end: SimTime) -> u64 {
        let mut total = 0;
        loop {
            let mut min_pending: Option<SimTime> = None;
            for (d, net) in self.nets.iter_mut().enumerate() {
                let m = Self::drain_into(&self.mailboxes[d], net);
                min_pending = match (min_pending, m) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            let Some(w) = conservative_window(min_pending, self.lookahead, t_end) else {
                break;
            };
            for net in self.nets.iter_mut() {
                total += net.run_window(w);
                Self::route_outbox(&self.mailboxes, &self.arrive_domain, net);
            }
        }
        total
    }

    /// Multi-threaded executor: persistent scoped workers over disjoint
    /// domain chunks, three barrier phases per window.
    ///
    /// ```text
    /// A: drain own mailboxes, contribute local min (atomic fetch_min)
    /// ── barrier ── leader: compute window bound, reset the min
    /// ── barrier ── all: read bound (or stop)
    /// C: run the window, route outboxes into target mailboxes
    /// ── barrier ── (routing complete before anyone drains again)
    /// ```
    fn run_parallel(&mut self, t_end: SimTime) -> u64 {
        let workers = self.workers;
        let n_domains = self.nets.len();
        let chunk = n_domains.div_ceil(workers);
        let barrier = Barrier::new(workers);
        let min_ns = AtomicU64::new(u64::MAX);
        let window_ns = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let events = AtomicU64::new(0);
        let mailboxes = &self.mailboxes;
        let arrive_domain = &self.arrive_domain;
        let lookahead = self.lookahead;

        let worker = |base: usize, nets: &mut [Network<D, A>]| {
            let mut local_events = 0u64;
            loop {
                // Phase A: inject barrier mail, contribute the local min.
                for (i, net) in nets.iter_mut().enumerate() {
                    if let Some(t) = Self::drain_into(&mailboxes[base + i], net) {
                        min_ns.fetch_min(t.as_nanos(), Ordering::AcqRel);
                    }
                }
                let is_leader = {
                    let _t = profile::timer(Phase::BarrierWait);
                    barrier.wait().is_leader()
                };
                if is_leader {
                    let m = min_ns.swap(u64::MAX, Ordering::AcqRel);
                    let min_pending = (m != u64::MAX).then(|| SimTime::from_nanos(m));
                    match conservative_window(min_pending, lookahead, t_end) {
                        Some(w) => {
                            window_ns.store(w.as_nanos(), Ordering::Release);
                            stop.store(false, Ordering::Release);
                        }
                        None => stop.store(true, Ordering::Release),
                    }
                }
                {
                    let _t = profile::timer(Phase::BarrierWait);
                    barrier.wait();
                }
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let w = SimTime::from_nanos(window_ns.load(Ordering::Acquire));
                // Phase C: execute the window, route cross-domain mail.
                for net in nets.iter_mut() {
                    local_events += net.run_window(w);
                    Self::route_outbox(mailboxes, arrive_domain, net);
                }
                {
                    let _t = profile::timer(Phase::BarrierWait);
                    barrier.wait();
                }
            }
            events.fetch_add(local_events, Ordering::AcqRel);
        };

        std::thread::scope(|s| {
            let mut chunks: Vec<(usize, &mut [Network<D, A>])> = Vec::with_capacity(workers);
            let mut rest = self.nets.as_mut_slice();
            let mut base = 0;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                chunks.push((base, head));
                base += take;
                rest = tail;
            }
            let mut iter = chunks.into_iter();
            let first = iter.next().expect("at least one domain chunk");
            for (b, c) in iter {
                s.spawn(move || worker(b, c));
            }
            worker(first.0, first.1);
        });
        events.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SinkAgent;
    use crate::ids::{HostId, LeafId, SpineId};
    use crate::packet::{ecmp_mix, Packet};
    use crate::topology::{Fib, LeafSpineBuilder};
    use conga_sim::SimRng;

    #[derive(Default)]
    struct TestEcmp;

    impl Dataplane for TestEcmp {
        fn install(&mut self, _topo: &Topology, _fib: &Fib) {}
        fn leaf_ingress(
            &mut self,
            leaf: LeafId,
            pkt: &mut Packet,
            candidates: &[ChannelId],
            _now: SimTime,
            _rng: &mut SimRng,
        ) -> ChannelId {
            let i = (ecmp_mix(pkt.flow_hash, leaf.0 as u64) % candidates.len() as u64) as usize;
            candidates[i]
        }
        fn spine_forward(
            &mut self,
            spine: SpineId,
            pkt: &mut Packet,
            candidates: &[ChannelId],
            _now: SimTime,
            _rng: &mut SimRng,
        ) -> ChannelId {
            let i =
                (ecmp_mix(pkt.flow_hash, 1000 + spine.0 as u64) % candidates.len() as u64) as usize;
            candidates[i]
        }
        fn on_fabric_tx(&mut self, _ch: ChannelId, _pkt: &mut Packet, _now: SimTime) {}
        fn leaf_egress(&mut self, _leaf: LeafId, _pkt: &Packet, _now: SimTime) {}
        fn name(&self) -> &'static str {
            "test-ecmp"
        }
    }

    fn topo() -> Topology {
        LeafSpineBuilder::new(2, 2, 2)
            .host_rate_gbps(10)
            .fabric_rate_gbps(40)
            .build()
    }

    fn sharded(workers: usize) -> ShardedNetwork<TestEcmp, SinkAgent> {
        ShardedNetwork::new(&topo(), 1, workers, |_| (TestEcmp, SinkAgent::default()))
    }

    /// A delivery observation: `(time, domain, packet id, seq)`.
    type Delivery = (u64, usize, u64, u64);

    /// Drive a burst of cross-leaf packets and collect every delivery.
    fn run_burst(workers: usize) -> (Vec<Delivery>, u64, u64) {
        let mut net = sharded(workers);
        for f in 0..30u32 {
            let pkt = Packet::data(
                f,
                0,
                ecmp_mix(f as u64, 0xAB),
                HostId(0),
                HostId(2),
                f as u64,
                1460,
                SimTime::ZERO,
            );
            // Source host 0 lives in domain 0: inject there.
            crate::engine::inject(net.domain_mut(0), pkt);
        }
        net.run_until(SimTime::from_millis(10));
        let mut got = Vec::new();
        let mut injected = 0;
        let mut delivered = 0;
        for d in 0..net.n_domains() {
            let dom = net.domain(d);
            injected += dom.stats.injected_pkts;
            delivered += dom.stats.delivered_pkts;
            for (t, p) in &dom.agent.received {
                got.push((t.as_nanos(), d, p.id, p.seq));
            }
        }
        (got, injected, delivered)
    }

    #[test]
    fn lookahead_is_min_cross_domain_delay() {
        let net = sharded(1);
        // Every fabric + access delay in the builder defaults apply; the
        // cross-domain set is non-empty in a 2-leaf fabric.
        assert!(net.lookahead().is_some());
        let min_delay = topo()
            .channels
            .iter()
            .map(|c| c.delay)
            .min()
            .expect("channels");
        assert!(net.lookahead().unwrap() >= min_delay);
    }

    #[test]
    fn cross_leaf_burst_fully_delivered() {
        let (got, injected, delivered) = run_burst(1);
        assert_eq!(injected, 30);
        assert_eq!(delivered, 30);
        // Deliveries land in domain 1 (host 2 is under leaf 1).
        assert!(got.iter().all(|&(_, d, _, _)| d == 1));
    }

    #[test]
    fn worker_count_does_not_change_the_run() {
        let one = run_burst(1);
        let two = run_burst(2);
        assert_eq!(one, two);
    }

    #[test]
    fn packet_ids_are_domain_disjoint() {
        let mut net = sharded(1);
        crate::engine::inject(
            net.domain_mut(0),
            Packet::data(0, 0, 7, HostId(0), HostId(2), 0, 100, SimTime::ZERO),
        );
        crate::engine::inject(
            net.domain_mut(1),
            Packet::data(1, 0, 9, HostId(2), HostId(0), 0, 100, SimTime::ZERO),
        );
        net.run_until(SimTime::from_millis(1));
        let a = net.domain(1).agent.received[0].1.id;
        let b = net.domain(0).agent.received[0].1.id;
        assert_eq!(a >> 48, 0, "domain 0 mints ids in 0 << 48 ..");
        assert_eq!(b >> 48, 1, "domain 1 mints ids in 1 << 48 ..");
    }

    #[test]
    fn three_tier_worker_count_does_not_change_the_run() {
        use crate::topology::TopologyBuilder;
        // 2 pods x (2 leaves + 2 spines), 2 cores, 2 hosts/leaf; host 0
        // (pod 0) → host 4 (leaf 2, pod 1) crosses the core tier.
        let run = |workers: usize| {
            let topo = TopologyBuilder::three_tier(2, 2, 2, 2, 2).build();
            let mut net =
                ShardedNetwork::new(&topo, 1, workers, |_| (TestEcmp, SinkAgent::default()));
            for f in 0..30u32 {
                let pkt = Packet::data(
                    f,
                    0,
                    ecmp_mix(f as u64, 0xEE),
                    HostId(0),
                    HostId(4),
                    f as u64,
                    1460,
                    SimTime::ZERO,
                );
                crate::engine::inject(net.domain_mut(0), pkt);
            }
            net.run_until(SimTime::from_millis(10));
            let mut got: Vec<Delivery> = Vec::new();
            let (mut injected, mut delivered) = (0, 0);
            for d in 0..net.n_domains() {
                let dom = net.domain(d);
                injected += dom.stats.injected_pkts;
                delivered += dom.stats.delivered_pkts;
                for (t, p) in &dom.agent.received {
                    got.push((t.as_nanos(), d, p.id, p.seq));
                }
            }
            (got, injected, delivered)
        };
        let one = run(1);
        assert_eq!(one.1, 30);
        assert_eq!(one.2, 30, "all inter-pod packets delivered");
        assert!(
            one.0.iter().all(|&(_, d, _, _)| d == 2),
            "host 4 lives in domain 2"
        );
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
    }

    #[test]
    fn three_tier_domain_assignment_reduces_to_two_tier_rule() {
        use crate::ids::SpineId;
        // Two-tier fabric: historical spine % n_leaves.
        let two = topo();
        assert_eq!(super::domain_of(&two, NodeId::Spine(SpineId(0))), 0);
        assert_eq!(super::domain_of(&two, NodeId::Spine(SpineId(1))), 1);
        // Three-tier: spines stay inside their pod's leaf range, cores
        // round-robin over all leaves.
        use crate::ids::CoreId;
        use crate::topology::TopologyBuilder;
        let three = TopologyBuilder::three_tier(2, 2, 2, 3, 2).build();
        assert_eq!(super::domain_of(&three, NodeId::Spine(SpineId(0))), 0);
        assert_eq!(super::domain_of(&three, NodeId::Spine(SpineId(1))), 1);
        assert_eq!(super::domain_of(&three, NodeId::Spine(SpineId(2))), 2);
        assert_eq!(super::domain_of(&three, NodeId::Spine(SpineId(3))), 3);
        assert_eq!(super::domain_of(&three, NodeId::Core(CoreId(0))), 0);
        assert_eq!(super::domain_of(&three, NodeId::Core(CoreId(2))), 2);
    }

    #[test]
    fn replicated_fault_schedule_counts_transitions_once() {
        let run = |workers: usize| -> (u64, u64, u64) {
            let mut net = sharded(workers);
            // leaf0-spine1 is cross-domain (spine1 lives in domain 1).
            net.each(|_, n| {
                n.schedule_link_fault(SimTime::from_micros(20), LeafId(0), SpineId(1), 0);
                n.schedule_link_recovery(SimTime::from_micros(400), LeafId(0), SpineId(1), 0);
            });
            for f in 0..20u32 {
                let pkt = Packet::data(
                    f,
                    0,
                    ecmp_mix(f as u64, 0xCD),
                    HostId(0),
                    HostId(2),
                    0,
                    1460,
                    SimTime::ZERO,
                );
                crate::engine::inject(net.domain_mut(0), pkt);
            }
            net.run_until(SimTime::from_millis(5));
            let mut transitions = 0;
            let mut blackholed = 0;
            let mut delivered = 0;
            for d in 0..net.n_domains() {
                transitions += net.domain(d).stats.fault_transitions;
                blackholed += net.domain(d).stats.blackholed;
                delivered += net.domain(d).stats.delivered_pkts;
            }
            (transitions, blackholed, delivered)
        };
        let (transitions, blackholed, delivered) = run(1);
        assert_eq!(transitions, 4, "2 fail + 2 recover, owner-counted once");
        assert_eq!(delivered + blackholed, 20, "conservation through the fault");
        assert_eq!(run(1), run(2));
    }
}
