//! The simulated packet and the CONGA overlay header.
//!
//! CONGA piggybacks its congestion state on the VXLAN encapsulation used by
//! the datacenter overlay (paper §3.1). The four overlay fields and their
//! exact widths are modeled bit-accurately:
//!
//! * `LBTag` (4 bits) — the source-leaf uplink port the packet was sent on;
//!   at most [`MAX_LBTAG`] uplinks per leaf.
//! * `CE` (3 bits by default, configurable `Q`) — running maximum of the
//!   quantized congestion of every fabric link the packet has crossed.
//! * `FB_LBTag` / `FB_Metric` — one piggybacked feedback entry: "your uplink
//!   `FB_LBTag` towards me currently has path congestion `FB_Metric`".

use crate::ids::{HostId, LeafId};
use conga_sim::SimTime;

/// Maximum number of distinguishable uplink ports per leaf: the LBTag field
/// is 4 bits wide (paper §3.1; their implementation uses at most 12).
pub const MAX_LBTAG: usize = 16;

/// Bytes of header overhead added to every packet on the wire: inner
/// Ethernet/IP/TCP plus the VXLAN overlay encapsulation (~50 B outer headers
/// + 54 B inner headers, rounded).
pub const WIRE_OVERHEAD: u32 = 100;

/// Size in bytes of a bare control segment (pure ACK / request stub) on the
/// wire, including all encapsulation.
pub const ACK_WIRE_BYTES: u32 = WIRE_OVERHEAD;

/// Transport-level flags carried by a packet (a compact stand-in for the TCP
/// flag bits the simulator needs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketKind {
    /// A data segment carrying `payload` bytes starting at `seq`.
    Data,
    /// A cumulative acknowledgment (`ack` = next expected byte).
    Ack,
    /// A retransmitted data segment (flagged for statistics only; switches
    /// treat it exactly like `Data`).
    Retransmit,
    /// An application-level request stub (used by the Incast client).
    Request,
}

/// The VXLAN-carried CONGA overlay state (paper §3.1, Figure 6).
#[derive(Clone, Copy, Debug)]
pub struct Overlay {
    /// Source tunnel endpoint: the leaf that encapsulated the packet.
    pub src_tep: LeafId,
    /// Destination tunnel endpoint: the leaf that will decapsulate it.
    pub dst_tep: LeafId,
    /// Source-leaf uplink port number (4 bits).
    pub lbtag: u8,
    /// Congestion-extent: max quantized link congestion seen so far (Q bits).
    pub ce: u8,
    /// Feedback: which LBTag of the *receiving* leaf this feedback describes.
    pub fb_lbtag: u8,
    /// Feedback: the quantized path congestion metric for `fb_lbtag`.
    pub fb_metric: u8,
    /// Whether the feedback fields are populated (in hardware an all-ones
    /// FB_LBTag can serve as the "no feedback" sentinel).
    pub fb_valid: bool,
    /// Latency-aware policies only: ingress timestamp stamped by the source
    /// leaf, so the destination leaf can measure the one-way fabric latency
    /// of the (source uplink = `lbtag`) path. `None` for every other policy
    /// — a stand-in for the switch hardware timestamp option.
    pub lat_sent: Option<SimTime>,
    /// Latency-aware policies only: one piggybacked latency-feedback entry,
    /// `(lbtag, observed one-way fabric latency in ns)` — the latency
    /// analogue of `fb_lbtag`/`fb_metric`.
    pub lat_fb: Option<(u8, u64)>,
}

impl Overlay {
    /// A freshly encapsulated packet: CE zeroed, no feedback yet.
    pub fn new(src_tep: LeafId, dst_tep: LeafId) -> Self {
        Overlay {
            src_tep,
            dst_tep,
            lbtag: 0,
            ce: 0,
            fb_lbtag: 0,
            fb_metric: 0,
            fb_valid: false,
            lat_sent: None,
            lat_fb: None,
        }
    }
}

/// Up to three SACK blocks, as carried in a real TCP SACK option.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SackBlocks {
    blocks: [(u64, u64); 3],
    n: u8,
}

impl SackBlocks {
    /// Append a `[start, end)` block; silently ignored beyond three.
    pub fn push(&mut self, start: u64, end: u64) {
        if (self.n as usize) < 3 {
            self.blocks[self.n as usize] = (start, end);
            self.n += 1;
        }
    }

    /// The blocks present.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.blocks[..self.n as usize].iter().copied()
    }

    /// Whether any block is present.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// A simulated packet.
///
/// `size` is the full on-the-wire size in bytes (payload + all headers); the
/// transport-visible payload length is `payload`. Keeping both avoids
/// double-counting header overhead in goodput statistics.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Globally unique packet id (monotone per engine).
    pub id: u64,
    /// Connection index assigned by the transport layer.
    pub flow: u32,
    /// Subflow index within the connection (MPTCP); 0 for plain TCP.
    pub subflow: u16,
    /// Hash of the (5-tuple, subflow) identity; the basis for ECMP and
    /// flowlet-table hashing. Equal for every packet of a subflow.
    pub flow_hash: u64,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Total bytes on the wire.
    pub size: u32,
    /// Transport payload bytes (0 for pure ACKs).
    pub payload: u32,
    /// Segment type.
    pub kind: PacketKind,
    /// Transport sequence number (first payload byte) for data segments.
    pub seq: u64,
    /// Cumulative ACK number for ACK segments.
    pub ack: u64,
    /// Timestamp echoed for RTT measurement: set by the sender at transmit
    /// time, echoed back by the receiver in the ACK.
    pub ts_echo: SimTime,
    /// SACK blocks on ACKs: up to three received-but-not-yet-ackable byte
    /// ranges above `ack`, exactly like the TCP SACK option (RFC 2018).
    pub sack: SackBlocks,
    /// Overlay encapsulation; `None` until the source leaf encapsulates, and
    /// for traffic that never crosses the fabric.
    pub overlay: Option<Overlay>,
    /// ECN congestion-experienced mark: set by a switch when this data
    /// packet joined a queue deeper than the marking threshold (distinct
    /// from the CONGA overlay's `ce` congestion-extent field).
    pub ecn_ce: bool,
    /// ECN echo on ACKs: the receiver copies the data packet's `ecn_ce`
    /// here so the sender's controller sees the mark.
    pub ecn_echo: bool,
}

impl Packet {
    /// Build a data segment of `payload` bytes at sequence `seq`.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        flow: u32,
        subflow: u16,
        flow_hash: u64,
        src: HostId,
        dst: HostId,
        seq: u64,
        payload: u32,
        now: SimTime,
    ) -> Packet {
        Packet {
            id: 0,
            flow,
            subflow,
            flow_hash,
            src,
            dst,
            size: payload + WIRE_OVERHEAD,
            payload,
            kind: PacketKind::Data,
            seq,
            ack: 0,
            ts_echo: now,
            sack: SackBlocks::default(),
            overlay: None,
            ecn_ce: false,
            ecn_echo: false,
        }
    }

    /// Build a cumulative ACK for `ack` (next expected byte), echoing `ts`.
    pub fn ack_for(
        flow: u32,
        subflow: u16,
        flow_hash: u64,
        src: HostId,
        dst: HostId,
        ack: u64,
        ts: SimTime,
    ) -> Packet {
        Packet {
            id: 0,
            flow,
            subflow,
            flow_hash,
            src,
            dst,
            size: ACK_WIRE_BYTES,
            payload: 0,
            kind: PacketKind::Ack,
            seq: 0,
            ack,
            ts_echo: ts,
            sack: SackBlocks::default(),
            overlay: None,
            ecn_ce: false,
            ecn_echo: false,
        }
    }

    /// Whether this packet carries data the receiver must buffer.
    #[inline]
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data | PacketKind::Retransmit)
    }
}

/// Mix a flow hash with a per-switch salt so consecutive switches make
/// independent ECMP choices for the same flow (real switches use different
/// hash seeds per box for exactly this reason).
///
/// SplitMix64 finalizer: full-avalanche, cheap, deterministic.
#[inline]
pub fn ecmp_mix(flow_hash: u64, salt: u64) -> u64 {
    let mut z = flow_hash ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a (flow, subflow) identity into the packet's `flow_hash`. This plays
/// the role of hashing the 5-tuple: distinct subflows get distinct hashes,
/// which is precisely how MPTCP gets its subflows onto distinct ECMP paths.
#[inline]
pub fn flow_tuple_hash(flow: u32, subflow: u16) -> u64 {
    const TUPLE_SALT: u64 = 0xC04A_11AD_DEAD_BEEF;
    ecmp_mix(((flow as u64) << 16) | subflow as u64, TUPLE_SALT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_sizes_include_overhead() {
        let p = Packet::data(1, 0, 99, HostId(0), HostId(1), 0, 1460, SimTime::ZERO);
        assert_eq!(p.size, 1460 + WIRE_OVERHEAD);
        assert_eq!(p.payload, 1460);
        assert!(p.is_data());
    }

    #[test]
    fn ack_packet_is_header_only() {
        let p = Packet::ack_for(1, 0, 99, HostId(1), HostId(0), 1460, SimTime::ZERO);
        assert_eq!(p.size, ACK_WIRE_BYTES);
        assert_eq!(p.payload, 0);
        assert!(!p.is_data());
    }

    #[test]
    fn ecmp_mix_avalanches() {
        // Flipping one input bit should flip ~half the output bits.
        let a = ecmp_mix(0x1234, 7);
        let b = ecmp_mix(0x1235, 7);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "only {flipped} bits flipped");
    }

    #[test]
    fn per_switch_salts_decorrelate() {
        // The same flow should not systematically land on the same index at
        // two switches with different salts.
        let mut same = 0;
        for f in 0..1000u64 {
            if ecmp_mix(f, 1) % 4 == ecmp_mix(f, 2) % 4 {
                same += 1;
            }
        }
        // Expect ~250 collisions by chance; fail on near-total correlation.
        assert!(same < 400, "salted hashes too correlated: {same}/1000");
    }

    #[test]
    fn subflows_hash_differently() {
        let h0 = flow_tuple_hash(42, 0);
        let h1 = flow_tuple_hash(42, 1);
        assert_ne!(h0, h1);
    }

    #[test]
    fn overlay_starts_clean() {
        let o = Overlay::new(LeafId(0), LeafId(1));
        assert_eq!(o.ce, 0);
        assert!(!o.fb_valid);
    }
}
