//! # conga-net — packet-level datacenter fabric model
//!
//! The network substrate of the CONGA reproduction: packets with the
//! VXLAN-carried CONGA overlay header, byte-accurate drop-tail transmit
//! ports, parameterizable (and failable) Leaf-Spine topologies, and an
//! event-driven forwarding engine with two plug-in points — the switch
//! [`Dataplane`] (load-balancing policies, implemented in `conga-core`) and
//! the end-host [`HostAgent`] (transports, implemented in `conga-transport`).

#![warn(missing_docs)]

mod engine;
mod ids;
mod packet;
mod port;
mod shard;
mod topology;

pub use engine::{
    inject, Dataplane, EcnConfig, Emitter, EngineStats, HostAgent, Network, SampleLog, ShardCtx,
    SinkAgent,
};
pub use ids::{ChannelId, CoreId, HostId, LeafId, NodeId, SpineId};
pub use packet::{
    ecmp_mix, flow_tuple_hash, Overlay, Packet, PacketKind, SackBlocks, ACK_WIRE_BYTES, MAX_LBTAG,
    WIRE_OVERHEAD,
};
pub use port::{Enqueue, TxPort};
pub use shard::ShardedNetwork;
pub use topology::{
    Channel, ChannelKind, Fib, LeafSpineBuilder, QueueProfile, ThreeTierBuilder, Topology,
    TopologyBuilder,
};
