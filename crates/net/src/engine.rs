//! The network engine: an event-driven packet-level simulation of a fabric.
//!
//! The engine owns the topology, one [`TxPort`] per simplex channel, and the
//! future-event list. Two plug-in points make it policy- and
//! transport-agnostic:
//!
//! * [`Dataplane`] — the switch dataplane logic. Implementations live in
//!   `conga-core`: CONGA itself plus the baselines (ECMP, local
//!   congestion-aware, per-packet spray, weighted random). The engine tells
//!   the dataplane *which* ports are valid (routing); the dataplane picks
//!   *one* (load balancing) and maintains its own state (DREs, flowlet
//!   table, congestion tables).
//! * [`HostAgent`] — the end-host stack. Implementations live in
//!   `conga-transport` (TCP, MPTCP, CBR senders).
//!
//! Forwarding pipeline for a fabric-crossing packet:
//!
//! ```text
//! host --access--> source leaf --[leaf_ingress: encap + pick uplink]-->
//!   spine --[spine_forward: pick downlink]--> dest leaf --[leaf_egress:
//!   decap + harvest CE/feedback]--> host
//! ```
//!
//! On every *fabric* transmission the engine calls
//! [`Dataplane::on_fabric_tx`] so the policy can update that link's DRE and
//! fold the link's congestion into the packet's CE field — exactly the
//! hop-by-hop CE update of paper §3.3.

use crate::ids::{ChannelId, CoreId, LeafId, NodeId, SpineId};
use crate::packet::{ecmp_mix, Overlay, Packet};
use crate::port::{Enqueue, TxPort};
use crate::topology::{Fib, Topology};
use conga_sim::{EventQueue, SimDuration, SimRng, SimTime};
use conga_telemetry::profile::{self, Phase};
use conga_telemetry::{MetricsRegistry, SeriesRegistry};
use conga_trace::{TraceEvent, TraceHandle};

/// Switch dataplane behaviour: load-balancing choice plus congestion-state
/// maintenance. See the crate docs of `conga-core` for the implementations.
pub trait Dataplane {
    /// Called once before the simulation starts; size internal tables from
    /// the topology (number of channels, leaves, uplinks, link rates...).
    fn install(&mut self, topo: &Topology, fib: &Fib);

    /// A packet is entering the fabric at its source leaf. `candidates` are
    /// the uplink channels that can reach the packet's destination leaf
    /// (never empty). The packet's overlay header is already initialized
    /// with src/dst TEPs and CE = 0; the implementation must set
    /// `overlay.lbtag`, may stamp feedback fields, and returns the chosen
    /// uplink channel.
    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId;

    /// A packet at a spine must be forwarded toward its destination leaf;
    /// pick among the parallel downlinks (paper: spines use ECMP regardless
    /// of the leaf policy, footnote 3).
    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId;

    /// A packet at a spine has no direct downlink to its destination leaf
    /// (inter-pod traffic in a three-tier Clos, or every pod downlink
    /// failed): pick among the live spine→core channels. The tier above
    /// the leaves stays congestion-oblivious — paper footnote 3 has spines
    /// use ECMP regardless of the leaf policy — so the default flow-hashes
    /// across the candidates and no policy needs to override it.
    fn spine_up_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        let i =
            (ecmp_mix(pkt.flow_hash, 0x50000 + spine.0 as u64) % candidates.len() as u64) as usize;
        candidates[i]
    }

    /// A packet at a core switch must descend toward its destination leaf;
    /// pick among the live core→spine channels that still reach it. ECMP
    /// by default, like [`Dataplane::spine_up_forward`].
    fn core_forward(
        &mut self,
        core: CoreId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        let i =
            (ecmp_mix(pkt.flow_hash, 0xC0000 + core.0 as u64) % candidates.len() as u64) as usize;
        candidates[i]
    }

    /// A packet starts transmission on a fabric channel: update the
    /// channel's congestion estimate and fold it into the packet's CE.
    fn on_fabric_tx(&mut self, ch: ChannelId, pkt: &mut Packet, now: SimTime);

    /// A packet reached its destination leaf: harvest its CE into the
    /// Congestion-From-Leaf table and its feedback fields into the
    /// Congestion-To-Leaf table.
    fn leaf_egress(&mut self, leaf: LeafId, pkt: &Packet, now: SimTime);

    /// Human-readable scheme name for experiment output.
    fn name(&self) -> &'static str;

    /// Export the dataplane's internal counters (DREs, flowlet tables,
    /// congestion tables...) into the run-level metrics registry under
    /// stable `dataplane.*` names. Default: no metrics.
    fn export_metrics(&self, _reg: &mut MetricsRegistry) {}

    /// Adopt a trace handle for structured event emission (decisions,
    /// flowlet transitions, DRE updates...). Default: ignore it — only
    /// dataplanes with provenance worth recording override this.
    fn set_tracer(&mut self, _tracer: TraceHandle) {}

    /// Record the dataplane's live congestion observables (DRE
    /// estimates, flowlet-table occupancy, ...) into the windowed series
    /// registry. Called on every sampling boundary when periodic
    /// sampling is enabled. In a sharded run every domain is sampled on
    /// the same boundaries; implementations must record only state this
    /// domain *owns* (replica state is idle and reads zero), so the
    /// shard-domain series merge reproduces the monolithic reading.
    /// Default: no series.
    fn sample_series(&mut self, _now: SimTime, _out: &mut SeriesRegistry) {}
}

/// End-host stack: receives packets addressed to its hosts and timer
/// callbacks, and emits packets/timers through the [`Emitter`].
pub trait HostAgent {
    /// A packet was delivered to `pkt.dst`.
    fn on_packet(&mut self, pkt: Packet, now: SimTime, out: &mut Emitter);
    /// A timer set through [`Emitter::set_timer`] fired.
    fn on_timer(&mut self, token: u64, now: SimTime, out: &mut Emitter);

    /// Export the agent's transport counters (retransmits, RTOs,
    /// reordering...) into the run-level metrics registry under stable
    /// `transport.*` names. Default: no metrics.
    fn export_metrics(&self, _reg: &mut MetricsRegistry) {}

    /// Adopt a trace handle for structured event emission (cwnd moves,
    /// fast retransmits, RTOs). Default: ignore it.
    fn set_tracer(&mut self, _tracer: TraceHandle) {}

    /// Record the agent's live observables (active flows, ...) into the
    /// windowed series registry on every sampling boundary. The shard
    /// rule of [`Dataplane::sample_series`] applies: count only what
    /// this domain owns so partial values sum to the monolithic total.
    /// Default: no series.
    fn sample_series(&self, _now: SimTime, _out: &mut SeriesRegistry) {}
}

/// Collects the outputs of a [`HostAgent`] callback; the engine injects the
/// packets at their source host's NIC and schedules the timers after the
/// callback returns (avoiding re-entrancy).
#[derive(Default, Debug)]
pub struct Emitter {
    packets: Vec<Packet>,
    timers: Vec<(SimDuration, u64)>,
}

impl Emitter {
    /// Transmit `pkt` from `pkt.src`'s NIC.
    #[inline]
    pub fn send(&mut self, pkt: Packet) {
        self.packets.push(pkt);
    }

    /// Request `on_timer(token)` after `delay`.
    #[inline]
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.timers.push((delay, token));
    }
}

/// Engine events.
///
/// Deliberately small (12 bytes): every push/pop copies a whole
/// `Scheduled<Ev>` inside the future-event list, so packets are *not*
/// carried in the event. A packet in flight lives in its channel's wire
/// FIFO (`Network::wire`) and a jittered host emission in its host's
/// inject FIFO (`Network::inject_q`); the event stores only the index.
/// This is sound because both sequences are FIFO by construction: arrival
/// times on one channel are strictly increasing (the serializer is a
/// non-preemptive unit and each packet's arrival is scheduled after the
/// previous one's), and a host's NIC release times are monotone
/// non-decreasing with equal-time events popping in scheduling order.
#[derive(Debug)]
enum Ev {
    /// Packet finished wire traversal of `ch`; process at the channel dst.
    /// The packet (and the channel fail epoch captured at transmission
    /// start) is the head of `wire[ch]`.
    Arrive { ch: ChannelId },
    /// Serializer of `ch` finished.
    TxDone { ch: ChannelId },
    /// Host-agent timer.
    Timer { token: u64 },
    /// A host-emitted packet reaches its NIC queue (after emission jitter).
    /// The packet is the head of `inject_q[host]`.
    Inject { host: u32 },
    /// Periodic statistics sample.
    Sample,
    /// Scheduled link-state transition: `ch` goes down (`up = false`) or
    /// comes back up.
    Fault { ch: ChannelId, up: bool },
}

/// Periodic per-channel sample log (queue depth and cumulative tx bytes),
/// used for the throughput-imbalance and queue-CDF figures.
#[derive(Debug, Default, Clone)]
pub struct SampleLog {
    /// Sampled channels, in column order.
    pub channels: Vec<ChannelId>,
    /// Sample timestamps.
    pub times: Vec<SimTime>,
    /// `queue_bytes[col][row]` — queue depth of channel `col` at sample `row`.
    pub queue_bytes: Vec<Vec<u64>>,
    /// `tx_bytes[col][row]` — cumulative bytes transmitted.
    pub tx_bytes: Vec<Vec<u64>>,
}

/// Shard identity installed on a [`Network`] that models one domain of a
/// sharded run (see `crate::shard`). Every domain replicates the full
/// topology but *owns* only the channels whose source node lies in it:
/// transmissions on non-owned channels never happen here, and arrivals on
/// channels whose destination lies elsewhere are diverted into the
/// `outbox` for barrier delivery instead of being scheduled locally.
#[derive(Debug)]
pub struct ShardCtx {
    /// This domain's index.
    pub id: u8,
    /// Domain that processes each channel's arrivals (the domain of the
    /// channel's destination node), indexed by channel.
    pub arrive_domain: Vec<u8>,
    /// Whether this domain owns each channel's transmit side (the domain
    /// of the channel's source node), indexed by channel. Fault-transition
    /// accounting is gated on this so the merged telemetry counts each
    /// transition exactly once.
    pub owns_tx: Vec<bool>,
    /// Cross-domain transmissions captured during the current window:
    /// `(arrival time, channel, packet, fail epoch at tx start)`.
    pub outbox: Vec<(SimTime, ChannelId, Packet, u32)>,
}

/// Aggregate counters the engine maintains itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineStats {
    /// Packets emitted by host agents (counted once, before NIC jitter).
    pub injected_pkts: u64,
    /// Wire bytes emitted by host agents.
    pub injected_bytes: u64,
    /// Packets handed to the host agent.
    pub delivered_pkts: u64,
    /// Payload bytes handed to the host agent.
    pub delivered_payload: u64,
    /// Packets dropped because a destination became unreachable (network
    /// partition) — distinct from queue drops.
    pub unroutable: u64,
    /// Packets lost to a dead link: flushed from its queue at failure time,
    /// caught on the wire by the transition, or enqueued while it was down.
    pub blackholed: u64,
    /// Link-state transitions applied (fail + recover).
    pub fault_transitions: u64,
    /// Events processed.
    pub events: u64,
}

/// ECN marking configuration: a data packet that joins a queue already
/// holding at least `threshold_bytes` gets its CE bit set (instantaneous
/// queue-length marking on enqueue, as DCTCP prescribes). Applies to every
/// queue in the fabric; disabled unless installed with
/// [`Network::set_ecn`].
#[derive(Clone, Copy, Debug)]
pub struct EcnConfig {
    /// Mark when the target queue holds at least this many bytes.
    pub threshold_bytes: u64,
}

/// Marking state + counters (one per engine; in a sharded run each domain
/// marks only the enqueues it owns, so the counters merge by sum).
#[derive(Clone, Copy, Debug)]
struct EcnState {
    threshold_bytes: u64,
    /// Data-packet enqueues that newly set the CE mark.
    marked: u64,
    /// Data-packet enqueues examined for marking.
    seen: u64,
    /// Counter values at the previous sampling boundary (windowed series).
    last_marked: u64,
    last_seen: u64,
}

/// The simulated network.
pub struct Network<D: Dataplane, A: HostAgent> {
    /// Fabric description (immutable during a run).
    pub topo: Topology,
    /// Forwarding tables.
    pub fib: Fib,
    /// The load-balancing dataplane.
    pub dataplane: D,
    /// The end-host stack.
    pub agent: A,
    /// Deterministic randomness shared by the engine and dataplane.
    pub rng: SimRng,
    /// Engine counters.
    pub stats: EngineStats,
    /// Periodic sample log (empty unless sampling was enabled).
    pub samples: SampleLog,
    /// Windowed time-series gauges recorded on sampling boundaries
    /// (disabled unless sampling was enabled): per-channel queue depth
    /// and utilization plus whatever the dataplane and host agent
    /// contribute through their `sample_series` hooks.
    pub series: SeriesRegistry,

    ports: Vec<TxPort>,
    events: EventQueue<Ev>,
    now: SimTime,
    next_pkt_id: u64,
    /// Per-channel liveness; all true until a scheduled fault fires. The
    /// FIB is recomputed from this mask on every transition — the one
    /// controlled mutation of the otherwise-immutable topology state.
    link_up: Vec<bool>,
    /// Per-channel fail counter, bumped on every Fail transition; arrival
    /// events compare it against the value captured at transmission start
    /// to blackhole packets the failure caught on the wire.
    fail_epoch: Vec<u32>,
    /// Applied transitions `(time, channel, up)` in order, for telemetry.
    fault_log: Vec<(SimTime, ChannelId, bool)>,
    sample_every: Option<SimDuration>,
    scratch: Emitter,
    /// Reusable buffer for packets flushed off a failing link's queue.
    scratch_flush: Vec<Packet>,
    /// Per-channel FIFO of packets on the wire, with the fail epoch captured
    /// at transmission start. Heads are consumed by `Ev::Arrive`.
    wire: Vec<std::collections::VecDeque<(Packet, u32)>>,
    /// Per-host FIFO of emitted packets awaiting their jittered NIC release.
    /// Heads are consumed by `Ev::Inject`. Sized lazily with `nic_release`.
    inject_q: Vec<std::collections::VecDeque<Packet>>,
    /// Host emission jitter bound: each packet handed to the NIC is delayed
    /// by a uniform random amount in `[0, jitter)`, never reordering a
    /// host's own emissions. Models interrupt/scheduling noise and breaks
    /// the artificial flow synchronization (drop-tail phase lockout) that a
    /// perfectly deterministic simulation otherwise produces. Zero disables.
    host_jitter: SimDuration,
    nic_release: Vec<SimTime>,
    /// Structured event tracing; disabled (one dead branch per emission
    /// site) unless [`Network::set_tracer`] installed a recording handle.
    tracer: TraceHandle,
    /// Whether any fault was ever scheduled: the `net.blackholed_packets`
    /// and `net.fault_transitions` counters are exported only for runs
    /// with a fault schedule, keeping fault-free report diffs clean.
    faults_scheduled: bool,
    /// Shard identity when this network models one domain of a sharded
    /// run; `None` for the classic monolithic engine.
    shard: Option<ShardCtx>,
    /// ECN marking; `None` (the default) leaves every CE bit untouched and
    /// exports no ECN counters, keeping non-ECN reports byte-identical to
    /// pre-ECN baselines.
    ecn: Option<EcnState>,
}

impl<D: Dataplane, A: HostAgent> Network<D, A> {
    /// Build a network over `topo` with the given dataplane and host agent.
    pub fn new(topo: Topology, mut dataplane: D, agent: A, seed: u64) -> Self {
        let fib = topo.fib();
        dataplane.install(&topo, &fib);
        let ports: Vec<TxPort> = topo
            .channels
            .iter()
            .map(|c| TxPort::new(c.rate_bps, c.delay, c.queue_cap))
            .collect();
        let nc = ports.len();
        Network {
            topo,
            fib,
            dataplane,
            agent,
            rng: SimRng::new(seed),
            stats: EngineStats::default(),
            samples: SampleLog::default(),
            series: SeriesRegistry::disabled(),
            ports,
            events: EventQueue::with_capacity(1 << 16),
            now: SimTime::ZERO,
            next_pkt_id: 0,
            link_up: vec![true; nc],
            fail_epoch: vec![0; nc],
            fault_log: Vec::new(),
            sample_every: None,
            scratch: Emitter::default(),
            scratch_flush: Vec::new(),
            wire: (0..nc).map(|_| std::collections::VecDeque::new()).collect(),
            inject_q: Vec::new(),
            host_jitter: SimDuration::from_nanos(1_000),
            nic_release: Vec::new(),
            tracer: TraceHandle::disabled(),
            faults_scheduled: false,
            shard: None,
            ecn: None,
        }
    }

    /// Enable ECN marking at every queue. Call before injecting traffic;
    /// sharded runs install the same config in every domain (each domain
    /// marks only the enqueues it owns, so counters merge by sum).
    pub fn set_ecn(&mut self, cfg: EcnConfig) {
        self.ecn = Some(EcnState {
            threshold_bytes: cfg.threshold_bytes,
            marked: 0,
            seen: 0,
            last_marked: 0,
            last_seen: 0,
        });
    }

    /// Install a shard identity (see [`ShardCtx`]). Call right after
    /// construction, before anything is scheduled.
    pub fn set_shard(&mut self, ctx: ShardCtx) {
        debug_assert_eq!(ctx.arrive_domain.len(), self.topo.channels.len());
        debug_assert_eq!(ctx.owns_tx.len(), self.topo.channels.len());
        self.shard = Some(ctx);
    }

    /// Offset the packet-id counter so each shard domain mints ids in a
    /// disjoint range and merged traces stay collision-free.
    pub fn set_pkt_id_base(&mut self, base: u64) {
        assert_eq!(self.next_pkt_id, 0, "set the id base before injecting");
        self.next_pkt_id = base;
    }

    /// Select the future-event-list implementation (heap vs calendar).
    ///
    /// Purely a performance knob: both kinds implement the identical
    /// stable `(time, seq)` ordering, so artifacts do not change. Call
    /// right after construction, before anything is scheduled — the
    /// queue is replaced, not migrated.
    pub fn set_queue_kind(&mut self, kind: conga_sim::QueueKind) {
        assert!(
            self.events.is_empty() && self.events.total_pushed() == 0,
            "select the queue kind before scheduling events"
        );
        self.events = EventQueue::with_kind(kind, 1 << 16);
    }

    /// Install a trace handle, sharing it with the dataplane and the host
    /// agent so engine, policy, and transport events interleave into one
    /// deterministic sequence. Call before running the event loop.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer.clone();
        self.dataplane.set_tracer(tracer.clone());
        self.agent.set_tracer(tracer);
    }

    /// Override the host emission jitter (zero disables; see field docs).
    pub fn set_host_jitter(&mut self, j: SimDuration) {
        self.host_jitter = j;
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read-only access to a port (for statistics).
    #[inline]
    pub fn port(&self, ch: ChannelId) -> &TxPort {
        &self.ports[ch.idx()]
    }

    /// Mutable access to a port (for mean-queue finalization).
    #[inline]
    pub fn port_mut(&mut self, ch: ChannelId) -> &mut TxPort {
        &mut self.ports[ch.idx()]
    }

    /// Enable periodic sampling of the given channels every `every`.
    ///
    /// Also arms the windowed [`SeriesRegistry`] on the same cadence.
    /// `channels` may be empty: a sharded run enables *channel* sampling
    /// only in the domain that owns the observed uplinks, but every
    /// domain still needs the periodic tick so its dataplane/agent
    /// `sample_series` hooks fire on identical boundaries.
    pub fn enable_sampling(&mut self, channels: Vec<ChannelId>, every: SimDuration) {
        self.samples.queue_bytes = vec![Vec::new(); channels.len()];
        self.samples.tx_bytes = vec![Vec::new(); channels.len()];
        self.samples.channels = channels;
        self.sample_every = Some(every);
        self.series = SeriesRegistry::new(every);
        self.events.push(self.now + every, Ev::Sample);
    }

    /// Total queue drops across all channels.
    pub fn total_drops(&self) -> u64 {
        self.ports.iter().map(|p| p.drops).sum()
    }

    /// Export every engine-level metric into `reg`: the [`EngineStats`]
    /// counters under `engine.*`, per-port counters under `port.NNNN.*`
    /// (zero-padded channel index, so sorted keys follow channel order),
    /// any enabled [`SampleLog`] columns as `port.NNNN.queue_bytes` /
    /// `port.NNNN.tx_bytes` time series, and whatever the dataplane and
    /// host agent export under `dataplane.*` / `transport.*`.
    ///
    /// The result is a pure function of the simulation state, so two runs
    /// with identical seeds export identical registries.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.set_counter("engine.injected_pkts", self.stats.injected_pkts);
        reg.set_counter("engine.injected_bytes", self.stats.injected_bytes);
        reg.set_counter("engine.delivered_pkts", self.stats.delivered_pkts);
        reg.set_counter(
            "engine.delivered_payload_bytes",
            self.stats.delivered_payload,
        );
        reg.set_counter("engine.unroutable_pkts", self.stats.unroutable);
        reg.set_counter("engine.events", self.stats.events);
        reg.set_counter("engine.queue_drops", self.total_drops());
        // Fault-domain counters appear only in runs that scheduled faults:
        // fault-free reports stay free of zero-valued noise and diff clean
        // against pre-fault-subsystem baselines.
        if self.faults_scheduled {
            reg.set_counter("net.blackholed_packets", self.stats.blackholed);
            reg.set_counter("net.fault_transitions", self.stats.fault_transitions);
        }
        // ECN counters appear only when marking was enabled, for the same
        // reason as the fault-domain counters above.
        if let Some(e) = &self.ecn {
            reg.set_counter("net.ecn_marked_pkts", e.marked);
            reg.set_counter("net.ecn_seen_pkts", e.seen);
        }
        // Conservation residue: packets injected but neither delivered,
        // dropped, declared unroutable, nor blackholed by a dead link —
        // i.e. still in flight. Zero at quiescence; the invariant tests
        // assert exactly that.
        let accounted = self.stats.delivered_pkts
            + self.stats.unroutable
            + self.total_drops()
            + self.stats.blackholed;
        reg.set_gauge(
            "engine.inflight_pkts",
            self.stats.injected_pkts as i64 - accounted as i64,
        );
        // Link-state transition series: one 0/1 series per faulted channel,
        // in applied order (appends within a name stay time-ordered).
        for &(t, ch, up) in &self.fault_log {
            let name = format!("net.link_up.{:04}", ch.idx());
            reg.sample(&name, t, if up { 1.0 } else { 0.0 });
        }
        for (i, port) in self.ports.iter().enumerate() {
            port.export_metrics(&format!("port.{i:04}"), reg);
        }
        for (col, &ch) in self.samples.channels.iter().enumerate() {
            let qname = format!("port.{:04}.queue_bytes", ch.idx());
            let tname = format!("port.{:04}.tx_bytes", ch.idx());
            for (row, &t) in self.samples.times.iter().enumerate() {
                reg.sample(&qname, t, self.samples.queue_bytes[col][row] as f64);
                reg.sample(&tname, t, self.samples.tx_bytes[col][row] as f64);
            }
        }
        self.dataplane.export_metrics(reg);
        self.agent.export_metrics(reg);
    }

    /// Call into the host agent from outside the event loop (e.g. to start
    /// flows); emissions are processed immediately.
    pub fn agent_call<R>(&mut self, f: impl FnOnce(&mut A, SimTime, &mut Emitter) -> R) -> R {
        let mut em = std::mem::take(&mut self.scratch);
        let r = f(&mut self.agent, self.now, &mut em);
        self.process_emissions(&mut em);
        self.scratch = em;
        r
    }

    /// Schedule an agent timer from outside the event loop.
    pub fn schedule_timer(&mut self, delay: SimDuration, token: u64) {
        self.events.push(self.now + delay, Ev::Timer { token });
    }

    /// Schedule a single simplex channel to go down (`up = false`) or come
    /// back up at absolute time `at`. Transitions are ordinary events:
    /// equal-time events fire in scheduling order, so a fault schedule is
    /// part of the deterministic run configuration.
    pub fn schedule_channel_fault(&mut self, at: SimTime, ch: ChannelId, up: bool) {
        assert!(at >= self.now, "fault scheduled in the past");
        self.faults_scheduled = true;
        self.events.push(at, Ev::Fault { ch, up });
    }

    /// Schedule both directions of the `parallel_idx`-th surviving link
    /// between `leaf` and `spine` to fail at `at` — the runtime analogue of
    /// [`crate::LeafSpineBuilder::fail_link`]. Panics if no such link exists.
    pub fn schedule_link_fault(&mut self, at: SimTime, leaf: LeafId, spine: SpineId, p: usize) {
        let (upch, downch) = self.resolve_link(leaf, spine, p);
        self.schedule_channel_fault(at, upch, false);
        self.schedule_channel_fault(at, downch, false);
    }

    /// Schedule both directions of the `parallel_idx`-th surviving link
    /// between `leaf` and `spine` to come back up at `at`.
    pub fn schedule_link_recovery(&mut self, at: SimTime, leaf: LeafId, spine: SpineId, p: usize) {
        let (upch, downch) = self.resolve_link(leaf, spine, p);
        self.schedule_channel_fault(at, upch, true);
        self.schedule_channel_fault(at, downch, true);
    }

    fn resolve_link(&self, leaf: LeafId, spine: SpineId, p: usize) -> (ChannelId, ChannelId) {
        let pairs = self.topo.link_channels(leaf, spine);
        assert!(
            p < pairs.len(),
            "leaf{}-spine{} has {} links, no parallel index {p}",
            leaf.0,
            spine.0,
            pairs.len()
        );
        pairs[p]
    }

    /// Schedule both directions of the `p`-th link between `spine` and
    /// `core` to fail at `at` — the three-tier (CAFT-style) analogue of
    /// [`Network::schedule_link_fault`]. Panics if no such link exists.
    pub fn schedule_core_link_fault(
        &mut self,
        at: SimTime,
        spine: SpineId,
        core: CoreId,
        p: usize,
    ) {
        let (upch, downch) = self.resolve_core_link(spine, core, p);
        self.schedule_channel_fault(at, upch, false);
        self.schedule_channel_fault(at, downch, false);
    }

    /// Schedule both directions of the `p`-th link between `spine` and
    /// `core` to come back up at `at`.
    pub fn schedule_core_link_recovery(
        &mut self,
        at: SimTime,
        spine: SpineId,
        core: CoreId,
        p: usize,
    ) {
        let (upch, downch) = self.resolve_core_link(spine, core, p);
        self.schedule_channel_fault(at, upch, true);
        self.schedule_channel_fault(at, downch, true);
    }

    fn resolve_core_link(&self, spine: SpineId, core: CoreId, p: usize) -> (ChannelId, ChannelId) {
        let pairs = self.topo.core_link_channels(spine, core);
        assert!(
            p < pairs.len(),
            "spine{}-core{} has {} links, no parallel index {p}",
            spine.0,
            core.0,
            pairs.len()
        );
        pairs[p]
    }

    /// Whether a channel is currently up.
    #[inline]
    pub fn link_is_up(&self, ch: ChannelId) -> bool {
        self.link_up[ch.idx()]
    }

    /// Apply a link-state transition now: flip liveness, blackhole queued
    /// packets on a failing link, and recompute the FIB from the liveness
    /// mask. LBTags are stable across transitions (see
    /// [`crate::Topology::fib_live`]), so dataplane congestion state keyed
    /// by tag stays meaningful; only candidate lists shrink and grow.
    fn apply_fault(&mut self, ch: ChannelId, up: bool) {
        if self.link_up[ch.idx()] == up {
            return; // redundant transition: nothing changed
        }
        self.link_up[ch.idx()] = up;
        // In a sharded run every domain applies the full fault schedule
        // (liveness masks, fail epochs, and FIBs must agree everywhere),
        // but only the channel's transmit-side owner records the
        // transition — merged telemetry counts each one exactly once,
        // byte-identical to the monolithic run.
        let owns = self.shard.as_ref().is_none_or(|s| s.owns_tx[ch.idx()]);
        if owns {
            self.stats.fault_transitions += 1;
            self.fault_log.push((self.now, ch, up));
            if self.tracer.enabled() {
                self.tracer.emit(
                    self.now,
                    TraceEvent::FaultTransition {
                        ch: ch.idx() as u32,
                        up,
                    },
                );
            }
        }
        if !up {
            self.fail_epoch[ch.idx()] = self.fail_epoch[ch.idx()].wrapping_add(1);
            if owns {
                // A non-owner's replica port never transmits, so its queue
                // is empty by construction; flushing is owner-only.
                let mut flushed = std::mem::take(&mut self.scratch_flush);
                flushed.clear();
                let n = self.ports[ch.idx()].flush_dead(self.now, &mut flushed);
                self.stats.blackholed += n as u64;
                for pkt in &flushed {
                    if self.tracer.wants_flow(pkt.flow) {
                        self.tracer.emit(
                            self.now,
                            TraceEvent::PacketBlackhole {
                                ch: ch.idx() as u32,
                                pkt: pkt.id,
                                flow: pkt.flow,
                                size: pkt.size,
                            },
                        );
                    }
                }
                self.scratch_flush = flushed;
            }
        }
        self.fib.refresh_live(&self.topo, &self.link_up);
    }

    /// Run the event loop until `t_end` (inclusive) or until no events
    /// remain. Returns the number of events processed.
    pub fn run_until(&mut self, t_end: SimTime) -> u64 {
        let mut n = 0;
        while let Some(t) = self.events.peek_time() {
            if t > t_end {
                break;
            }
            let (t, ev) = self.events.pop().expect("peeked");
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatch(ev);
            n += 1;
        }
        if self.now < t_end {
            self.now = t_end;
        }
        self.stats.events += n;
        n
    }

    /// Run until the event list is empty (all traffic drained, all timers
    /// fired). Only sensible when the agent stops rescheduling timers.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_until(SimTime::MAX - SimDuration::from_nanos(1))
    }

    /// Timestamp of the earliest pending event, if any (`&mut` because a
    /// calendar queue rotates buckets to find its minimum). The barrier
    /// coordinator reduces this across domains to find the global minimum
    /// that anchors the next conservative window.
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Run the event loop over one conservative window: process every
    /// event with `t < bound` (strictly — the bound is exclusive) and
    /// return the number processed. Unlike [`Network::run_until`] the
    /// clock is *not* advanced to the bound afterwards: cross-domain
    /// deliveries injected at the next barrier may land anywhere in
    /// `[bound, ...)` and must not trip the monotonicity assertion.
    pub fn run_window(&mut self, bound: SimTime) -> u64 {
        let mut n = 0;
        while let Some(t) = self.events.peek_time() {
            if t >= bound {
                break;
            }
            let (t, ev) = self.events.pop().expect("peeked");
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.dispatch(ev);
            n += 1;
        }
        self.stats.events += n;
        n
    }

    /// Advance the clock to `t` without processing anything (no-op if the
    /// clock is already past `t`). The coordinator calls this once per
    /// `run_until` slice so every domain reports the same final time,
    /// matching the serial engine's end-of-slice clock advance.
    pub fn advance_to(&mut self, t: SimTime) {
        if self.now < t {
            self.now = t;
        }
    }

    /// Schedule the arrival of a packet transmitted by a remote domain:
    /// the barrier coordinator moves each outbox entry here, into the
    /// owning domain of the channel's destination. `epoch` is the fail
    /// epoch the *sender* captured at transmission start; the receiving
    /// domain applies the same fault schedule, so a mismatch at arrival
    /// blackholes the packet exactly as the monolithic engine would.
    pub fn deliver_remote(&mut self, at: SimTime, ch: ChannelId, pkt: Packet, epoch: u32) {
        debug_assert!(at >= self.now, "remote delivery inside the past window");
        self.wire[ch.idx()].push_back((pkt, epoch));
        self.events.push(at, Ev::Arrive { ch });
    }

    /// Move the accumulated cross-domain transmissions out of this
    /// domain's outbox (empty for monolithic networks).
    pub fn take_outbox(&mut self) -> Vec<(SimTime, ChannelId, Packet, u32)> {
        match &mut self.shard {
            Some(s) => std::mem::take(&mut s.outbox),
            None => Vec::new(),
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        let _t = profile::timer(Phase::Dispatch);
        match ev {
            Ev::Arrive { ch } => {
                let (pkt, epoch) = self.wire[ch.idx()]
                    .pop_front()
                    .expect("arrive event without a packet on the wire");
                self.arrive(ch, pkt, epoch);
            }
            Ev::TxDone { ch } => {
                if self.ports[ch.idx()].tx_done() {
                    self.start_tx(ch);
                }
            }
            Ev::Timer { token } => {
                let _t = profile::timer(Phase::Transport);
                let mut em = std::mem::take(&mut self.scratch);
                self.agent.on_timer(token, self.now, &mut em);
                self.process_emissions(&mut em);
                self.scratch = em;
            }
            Ev::Inject { host } => {
                let pkt = self.inject_q[host as usize]
                    .pop_front()
                    .expect("inject event without a pending packet");
                let access = self.fib.host_access[pkt.src.idx()];
                self.enqueue(access, pkt);
            }
            Ev::Sample => self.take_sample(),
            Ev::Fault { ch, up } => self.apply_fault(ch, up),
        }
    }

    fn take_sample(&mut self) {
        self.samples.times.push(self.now);
        for (col, &ch) in self.samples.channels.iter().enumerate() {
            let p = &self.ports[ch.idx()];
            // Utilization over the window that just closed: tx-byte
            // delta against the previous sample (cumulative counters
            // start at zero, so the first window needs no special case).
            let prev_tx = self.samples.tx_bytes[col].last().copied().unwrap_or(0);
            self.samples.queue_bytes[col].push(p.queued_bytes());
            self.samples.tx_bytes[col].push(p.tx_bytes);
            if let Some(every) = self.sample_every {
                let rate = self.topo.channels[ch.idx()].rate_bps as f64;
                let dt_s = every.as_secs_f64();
                let util = ((p.tx_bytes - prev_tx) as f64 * 8.0) / (rate * dt_s).max(1e-12);
                self.series.record(
                    &format!("port.{:04}.queue_bytes", ch.idx()),
                    self.now,
                    p.queued_bytes() as f64,
                );
                self.series
                    .record(&format!("port.{:04}.util", ch.idx()), self.now, util);
            }
        }
        // Windowed ECN mark counts (deltas, so domain merges stay additive;
        // the mark *fraction* is derived after merging). Recorded every
        // tick — zeros included — so windows align across shard domains.
        if let Some(e) = &mut self.ecn {
            let dm = (e.marked - e.last_marked) as f64;
            let ds = (e.seen - e.last_seen) as f64;
            e.last_marked = e.marked;
            e.last_seen = e.seen;
            self.series.record("ecn.marked_pkts", self.now, dm);
            self.series.record("ecn.enqueued_pkts", self.now, ds);
        }
        self.dataplane.sample_series(self.now, &mut self.series);
        self.agent.sample_series(self.now, &mut self.series);
        if let Some(every) = self.sample_every {
            self.events.push(self.now + every, Ev::Sample);
        }
    }

    /// Process packets/timers emitted by an agent callback.
    fn process_emissions(&mut self, em: &mut Emitter) {
        for (delay, token) in em.timers.drain(..) {
            self.events.push(self.now + delay, Ev::Timer { token });
        }
        for mut pkt in em.packets.drain(..) {
            pkt.id = self.next_pkt_id;
            self.next_pkt_id += 1;
            self.stats.injected_pkts += 1;
            self.stats.injected_bytes += pkt.size as u64;
            if self.host_jitter > SimDuration::ZERO {
                // Per-host monotone release times: jitter never reorders a
                // single host's emissions.
                if self.nic_release.is_empty() {
                    let nh = self.topo.n_hosts as usize;
                    self.nic_release = vec![SimTime::ZERO; nh];
                    self.inject_q = (0..nh).map(|_| std::collections::VecDeque::new()).collect();
                }
                let j = SimDuration::from_nanos(
                    self.rng.range_u64(0, self.host_jitter.as_nanos().max(1)),
                );
                let host = pkt.src.idx();
                let release = (self.now + j).max(self.nic_release[host]);
                self.nic_release[host] = release;
                self.inject_q[host].push_back(pkt);
                self.events.push(release, Ev::Inject { host: host as u32 });
            } else {
                let access = self.fib.host_access[pkt.src.idx()];
                self.enqueue(access, pkt);
            }
        }
    }

    /// Packet finished traversing `ch`: process at the receiving node.
    fn arrive(&mut self, ch: ChannelId, mut pkt: Packet, epoch: u32) {
        if epoch != self.fail_epoch[ch.idx()] {
            // The link failed while the packet was on the wire: lost.
            self.ports[ch.idx()].blackholed += 1;
            self.stats.blackholed += 1;
            if self.tracer.wants_flow(pkt.flow) {
                self.tracer.emit(
                    self.now,
                    TraceEvent::PacketBlackhole {
                        ch: ch.idx() as u32,
                        pkt: pkt.id,
                        flow: pkt.flow,
                        size: pkt.size,
                    },
                );
            }
            return;
        }
        {
            let p = &mut self.ports[ch.idx()];
            p.rx_pkts += 1;
            p.rx_bytes += pkt.size as u64;
        }
        let channel = &self.topo.channels[ch.idx()];
        match channel.dst {
            NodeId::Host(h) => {
                self.stats.delivered_pkts += 1;
                self.stats.delivered_payload += pkt.payload as u64;
                if self.tracer.wants_flow(pkt.flow) {
                    self.tracer.emit(
                        self.now,
                        TraceEvent::PacketDeliver {
                            host: h.0,
                            pkt: pkt.id,
                            flow: pkt.flow,
                            payload: pkt.payload,
                        },
                    );
                }
                let _t = profile::timer(Phase::Transport);
                let mut em = std::mem::take(&mut self.scratch);
                self.agent.on_packet(pkt, self.now, &mut em);
                self.process_emissions(&mut em);
                self.scratch = em;
            }
            NodeId::Leaf(l) => {
                if channel.kind.is_fabric() {
                    // Fabric → leaf: decapsulate; harvest CE + feedback.
                    self.dataplane.leaf_egress(l, &pkt, self.now);
                    pkt.overlay = None;
                }
                let dst_leaf = self.topo.leaf_of(pkt.dst);
                if dst_leaf == l {
                    let down = self.fib.host_down[pkt.dst.idx()];
                    self.enqueue(down, pkt);
                } else {
                    // Source leaf: encapsulate and load-balance.
                    let cands = &self.fib.up_candidates[l.idx()][dst_leaf.idx()];
                    if cands.is_empty() {
                        self.stats.unroutable += 1;
                        return;
                    }
                    pkt.overlay = Some(Overlay::new(l, dst_leaf));
                    let chosen = {
                        let _t = profile::timer(Phase::Route);
                        self.dataplane
                            .leaf_ingress(l, &mut pkt, cands, self.now, &mut self.rng)
                    };
                    debug_assert!(cands.contains(&chosen), "dataplane chose a non-candidate");
                    self.enqueue(chosen, pkt);
                }
            }
            NodeId::Spine(s) => {
                let dst_leaf = pkt
                    .overlay
                    .as_ref()
                    .expect("fabric packet without overlay at spine")
                    .dst_tep;
                let cands = &self.fib.spine_down[s.idx()][dst_leaf.idx()];
                if !cands.is_empty() {
                    let chosen = {
                        let _t = profile::timer(Phase::Route);
                        self.dataplane
                            .spine_forward(s, &mut pkt, cands, self.now, &mut self.rng)
                    };
                    debug_assert!(cands.contains(&chosen), "dataplane chose a non-candidate");
                    self.enqueue(chosen, pkt);
                    return;
                }
                // No direct downlink: detour through the core tier
                // (inter-pod traffic, or a pod downlink failure).
                let ups = &self.fib.spine_up_candidates[s.idx()][dst_leaf.idx()];
                if ups.is_empty() {
                    self.stats.unroutable += 1;
                    return;
                }
                let chosen = {
                    let _t = profile::timer(Phase::Route);
                    self.dataplane
                        .spine_up_forward(s, &mut pkt, ups, self.now, &mut self.rng)
                };
                debug_assert!(ups.contains(&chosen), "dataplane chose a non-candidate");
                self.enqueue(chosen, pkt);
            }
            NodeId::Core(co) => {
                let dst_leaf = pkt
                    .overlay
                    .as_ref()
                    .expect("fabric packet without overlay at core")
                    .dst_tep;
                let cands = &self.fib.core_down[co.idx()][dst_leaf.idx()];
                if cands.is_empty() {
                    self.stats.unroutable += 1;
                    return;
                }
                let chosen = {
                    let _t = profile::timer(Phase::Route);
                    self.dataplane
                        .core_forward(co, &mut pkt, cands, self.now, &mut self.rng)
                };
                debug_assert!(cands.contains(&chosen), "dataplane chose a non-candidate");
                self.enqueue(chosen, pkt);
            }
        }
    }

    fn enqueue(&mut self, ch: ChannelId, mut pkt: Packet) {
        // ECN: mark on enqueue against the instantaneous queue depth. This
        // runs in whichever domain owns the target port, exactly once per
        // hop, so marking decisions and counters are shard-invariant.
        if let Some(e) = &mut self.ecn {
            if pkt.is_data() {
                e.seen += 1;
                if !pkt.ecn_ce && self.ports[ch.idx()].queued_bytes() >= e.threshold_bytes {
                    pkt.ecn_ce = true;
                    e.marked += 1;
                }
            }
        }
        let traced = self.tracer.wants_flow(pkt.flow);
        // The port consumes the packet; capture identity first if traced.
        let (pid, flow, size) = (pkt.id, pkt.flow, pkt.size);
        if !self.link_up[ch.idx()] {
            // The FIB excludes dead fabric channels, but a dead access
            // link — or a race the dataplane cannot see — still swallows
            // the packet.
            self.ports[ch.idx()].blackholed += 1;
            self.stats.blackholed += 1;
            if traced {
                self.tracer.emit(
                    self.now,
                    TraceEvent::PacketBlackhole {
                        ch: ch.idx() as u32,
                        pkt: pid,
                        flow,
                        size,
                    },
                );
            }
            return;
        }
        let outcome = self.ports[ch.idx()].enqueue(pkt, self.now);
        if traced {
            let ev = match outcome {
                Enqueue::StartTx | Enqueue::Queued => TraceEvent::PacketEnqueue {
                    ch: ch.idx() as u32,
                    pkt: pid,
                    flow,
                    size,
                },
                Enqueue::Dropped => TraceEvent::PacketDrop {
                    ch: ch.idx() as u32,
                    pkt: pid,
                    flow,
                    size,
                },
            };
            self.tracer.emit(self.now, ev);
        }
        if let Enqueue::StartTx = outcome {
            self.start_tx(ch);
        }
    }

    fn start_tx(&mut self, ch: ChannelId) {
        let (mut pkt, ser) = self.ports[ch.idx()].begin_tx(self.now);
        if self.tracer.wants_flow(pkt.flow) {
            self.tracer.emit(
                self.now,
                TraceEvent::PacketTx {
                    ch: ch.idx() as u32,
                    pkt: pkt.id,
                    flow: pkt.flow,
                    size: pkt.size,
                },
            );
        }
        if self.topo.channels[ch.idx()].kind.is_fabric() {
            self.dataplane.on_fabric_tx(ch, &mut pkt, self.now);
        }
        let delay = self.ports[ch.idx()].delay;
        let epoch = self.fail_epoch[ch.idx()];
        self.events.push(self.now + ser, Ev::TxDone { ch });
        let arrival = self.now + ser + delay;
        if let Some(s) = &mut self.shard {
            if s.arrive_domain[ch.idx()] != s.id {
                // Cross-domain channel: the arrival happens in the remote
                // domain. Serializer occupancy and TxDone stay local (the
                // port is owned here); the packet rides the barrier.
                s.outbox.push((arrival, ch, pkt, epoch));
                return;
            }
        }
        self.wire[ch.idx()].push_back((pkt, epoch));
        self.events.push(arrival, Ev::Arrive { ch });
    }
}

/// A do-nothing host agent: packets are absorbed, timers ignored. Useful in
/// tests that drive raw packets through the fabric.
#[derive(Default, Debug)]
pub struct SinkAgent {
    /// Packets received, in arrival order.
    pub received: Vec<(SimTime, Packet)>,
}

impl HostAgent for SinkAgent {
    fn on_packet(&mut self, pkt: Packet, now: SimTime, _out: &mut Emitter) {
        self.received.push((now, pkt));
    }
    fn on_timer(&mut self, _token: u64, _now: SimTime, _out: &mut Emitter) {}
}

/// Helper used across tests and benches: inject a raw packet from its
/// source host.
pub fn inject<D: Dataplane, A: HostAgent>(net: &mut Network<D, A>, pkt: Packet) {
    net.agent_call(move |_a, _now, em| em.send(pkt));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;
    use crate::packet::{ecmp_mix, PacketKind};
    use crate::topology::{ChannelKind, LeafSpineBuilder, TopologyBuilder};

    /// Minimal ECMP-only dataplane for engine tests (the real policies live
    /// in conga-core).
    #[derive(Default)]
    struct TestEcmp;

    impl Dataplane for TestEcmp {
        fn install(&mut self, _topo: &Topology, _fib: &Fib) {}
        fn leaf_ingress(
            &mut self,
            leaf: LeafId,
            pkt: &mut Packet,
            candidates: &[ChannelId],
            _now: SimTime,
            _rng: &mut SimRng,
        ) -> ChannelId {
            let i = (ecmp_mix(pkt.flow_hash, leaf.0 as u64) % candidates.len() as u64) as usize;
            candidates[i]
        }
        fn spine_forward(
            &mut self,
            spine: SpineId,
            pkt: &mut Packet,
            candidates: &[ChannelId],
            _now: SimTime,
            _rng: &mut SimRng,
        ) -> ChannelId {
            let i =
                (ecmp_mix(pkt.flow_hash, 1000 + spine.0 as u64) % candidates.len() as u64) as usize;
            candidates[i]
        }
        fn on_fabric_tx(&mut self, _ch: ChannelId, _pkt: &mut Packet, _now: SimTime) {}
        fn leaf_egress(&mut self, _leaf: LeafId, _pkt: &Packet, _now: SimTime) {}
        fn name(&self) -> &'static str {
            "test-ecmp"
        }
    }

    fn small_net() -> Network<TestEcmp, SinkAgent> {
        let topo = LeafSpineBuilder::new(2, 2, 2)
            .host_rate_gbps(10)
            .fabric_rate_gbps(40)
            .build();
        Network::new(topo, TestEcmp, SinkAgent::default(), 1)
    }

    #[test]
    fn packet_crosses_fabric_and_arrives() {
        let mut net = small_net();
        let pkt = Packet::data(0, 0, 7, HostId(0), HostId(2), 0, 1460, SimTime::ZERO);
        inject(&mut net, pkt);
        net.run_to_quiescence();
        assert_eq!(net.agent.received.len(), 1);
        let (t, p) = &net.agent.received[0];
        assert_eq!(p.dst, HostId(2));
        assert_eq!(p.payload, 1460);
        // 4 hops of serialization + 4 propagation delays; must be non-zero.
        assert!(t.as_nanos() > 4_000);
        assert_eq!(net.stats.delivered_pkts, 1);
        assert_eq!(net.stats.delivered_payload, 1460);
    }

    #[test]
    fn same_leaf_traffic_skips_fabric() {
        let mut net = small_net();
        let pkt = Packet::data(0, 0, 7, HostId(0), HostId(1), 0, 1000, SimTime::ZERO);
        inject(&mut net, pkt);
        net.run_to_quiescence();
        assert_eq!(net.agent.received.len(), 1);
        // No fabric channel transmitted anything.
        for (i, c) in net.topo.channels.clone().iter().enumerate() {
            if c.kind.is_fabric() {
                assert_eq!(net.port(ChannelId(i as u32)).tx_pkts, 0);
            }
        }
    }

    #[test]
    fn overlay_is_stripped_at_destination_leaf() {
        let mut net = small_net();
        inject(
            &mut net,
            Packet::data(0, 0, 7, HostId(1), HostId(3), 0, 100, SimTime::ZERO),
        );
        net.run_to_quiescence();
        assert!(net.agent.received[0].1.overlay.is_none());
    }

    #[test]
    fn arrival_order_preserved_on_one_path() {
        let mut net = small_net();
        for seq in 0..50u64 {
            inject(
                &mut net,
                Packet::data(0, 0, 7, HostId(0), HostId(2), seq, 1460, SimTime::ZERO),
            );
        }
        net.run_to_quiescence();
        let seqs: Vec<u64> = net.agent.received.iter().map(|(_, p)| p.seq).collect();
        assert_eq!(
            seqs,
            (0..50).collect::<Vec<_>>(),
            "single flow must not reorder"
        );
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerLog {
            fired: Vec<(SimTime, u64)>,
        }
        impl HostAgent for TimerLog {
            fn on_packet(&mut self, _p: Packet, _n: SimTime, _o: &mut Emitter) {}
            fn on_timer(&mut self, token: u64, now: SimTime, _o: &mut Emitter) {
                self.fired.push((now, token));
            }
        }
        let topo = LeafSpineBuilder::new(2, 1, 1).build();
        let mut net = Network::new(topo, TestEcmp, TimerLog { fired: Vec::new() }, 3);
        net.schedule_timer(SimDuration::from_micros(30), 3);
        net.schedule_timer(SimDuration::from_micros(10), 1);
        net.schedule_timer(SimDuration::from_micros(20), 2);
        net.run_to_quiescence();
        let tokens: Vec<u64> = net.agent.fired.iter().map(|&(_, t)| t).collect();
        assert_eq!(tokens, vec![1, 2, 3]);
    }

    #[test]
    fn sampling_records_rows() {
        let mut net = small_net();
        let up0 = net.fib.leaf_uplinks[0].clone();
        net.enable_sampling(up0, SimDuration::from_micros(100));
        for _ in 0..10 {
            inject(
                &mut net,
                Packet::data(0, 0, 9, HostId(0), HostId(2), 0, 1460, SimTime::ZERO),
            );
        }
        net.run_until(SimTime::from_millis(1));
        assert!(
            net.samples.times.len() >= 9,
            "got {}",
            net.samples.times.len()
        );
        assert_eq!(net.samples.queue_bytes.len(), 2);
    }

    #[test]
    fn unroutable_counted_when_partitioned() {
        // Fail every spine's link to leaf 1: leaf 0 cannot reach leaf 1.
        let topo = LeafSpineBuilder::new(2, 2, 1)
            .fail_link(1, 0, 0)
            .fail_link(1, 1, 0)
            .build();
        let mut net = Network::new(topo, TestEcmp, SinkAgent::default(), 5);
        inject(
            &mut net,
            Packet::data(0, 0, 7, HostId(0), HostId(1), 0, 100, SimTime::ZERO),
        );
        net.run_to_quiescence();
        assert_eq!(net.stats.unroutable, 1);
        assert!(net.agent.received.is_empty());
    }

    #[test]
    fn ack_packets_flow_reverse() {
        let mut net = small_net();
        let ack = Packet::ack_for(0, 0, 7, HostId(2), HostId(0), 1460, SimTime::ZERO);
        inject(&mut net, ack);
        net.run_to_quiescence();
        assert_eq!(net.agent.received.len(), 1);
        assert_eq!(net.agent.received[0].1.kind, PacketKind::Ack);
    }

    #[test]
    fn fault_blackholes_queued_and_inflight_packets() {
        // Long propagation delays keep packets on the wire for 50 us, so a
        // mid-stream failure is guaranteed to catch some in flight.
        let topo = LeafSpineBuilder::new(2, 2, 2)
            .host_rate_gbps(10)
            .fabric_rate_gbps(40)
            .link_delay(SimDuration::from_micros(50))
            .build();
        let mut net = Network::new(topo, TestEcmp, SinkAgent::default(), 1);
        let n = 30u64;
        for seq in 0..n {
            inject(
                &mut net,
                Packet::data(0, 0, 7, HostId(0), HostId(2), seq, 1460, SimTime::ZERO),
            );
        }
        // The 10G access link feeds one packet every ~1.2 us from ~51 us on,
        // and each rides an uplink wire for 50 us. Killing both uplinks at
        // 70 us therefore catches packets mid-flight (blackholed) while the
        // tail of the burst is still arriving at the leaf (unroutable).
        for &u in &net.fib.leaf_uplinks[0].clone() {
            net.schedule_channel_fault(SimTime::from_micros(70), u, false);
        }
        net.run_to_quiescence();
        let s = net.stats;
        assert!(s.blackholed >= 1, "no packet caught by the transition");
        assert!(s.unroutable >= 1, "no packet stranded at the leaf");
        assert_eq!(
            s.injected_pkts,
            s.delivered_pkts + s.unroutable + s.blackholed + net.total_drops(),
            "conservation through a failure"
        );
        assert!((net.agent.received.len() as u64) < n);
        // Per-port blackhole counters agree with the engine total.
        let per_port: u64 = (0..net.topo.channels.len())
            .map(|i| net.port(ChannelId(i as u32)).blackholed)
            .sum();
        assert_eq!(per_port, s.blackholed);
    }

    #[test]
    fn link_recovery_restores_forwarding_and_keeps_lbtags() {
        let mut net = small_net();
        let before = (net.fib.up_candidates.clone(), net.fib.lbtag_of.clone());
        // Kill both directions of leaf0-spine0 at 1 us via the leaf-spine
        // convenience; recover at 1 ms.
        net.schedule_link_fault(SimTime::from_micros(1), LeafId(0), SpineId(0), 0);
        net.schedule_link_recovery(SimTime::from_millis(1), LeafId(0), SpineId(0), 0);
        net.run_until(SimTime::from_micros(10));
        // During the outage: spine0 is unusable in both directions, tags
        // unchanged.
        assert_eq!(net.fib.up_candidates[0][1].len(), 1);
        assert_eq!(net.fib.up_candidates[1][0].len(), 1);
        assert_eq!(net.fib.lbtag_of, before.1);
        let up0 = net.fib.leaf_uplinks[0][0];
        assert!(!net.link_is_up(up0));
        // After recovery the original FIB is back and traffic flows.
        net.run_until(SimTime::from_millis(2));
        assert_eq!(net.fib.up_candidates, before.0);
        assert!(net.link_is_up(up0));
        inject(
            &mut net,
            Packet::data(0, 0, 7, HostId(0), HostId(2), 0, 1460, SimTime::ZERO),
        );
        net.run_to_quiescence();
        assert_eq!(net.agent.received.len(), 1);
        assert_eq!(net.stats.fault_transitions, 4, "2 fail + 2 recover");
    }

    #[test]
    fn enqueue_into_dead_channel_is_blackholed() {
        let mut net = small_net();
        // Kill host 0's access uplink: its emissions die at the NIC.
        let access = net.fib.host_access[0];
        net.schedule_channel_fault(SimTime::from_nanos(1), access, false);
        net.run_until(SimTime::from_micros(1));
        inject(
            &mut net,
            Packet::data(0, 0, 7, HostId(0), HostId(2), 0, 1460, SimTime::ZERO),
        );
        net.run_to_quiescence();
        assert_eq!(net.stats.blackholed, 1);
        assert_eq!(net.port(access).blackholed, 1);
        assert!(net.agent.received.is_empty());
    }

    #[test]
    fn redundant_transitions_are_no_ops() {
        let mut net = small_net();
        let up0 = net.fib.leaf_uplinks[0][0];
        net.schedule_channel_fault(SimTime::from_micros(1), up0, true); // already up
        net.schedule_channel_fault(SimTime::from_micros(2), up0, false);
        net.schedule_channel_fault(SimTime::from_micros(3), up0, false); // already down
        net.run_until(SimTime::from_micros(10));
        assert_eq!(net.stats.fault_transitions, 1);
    }

    #[test]
    fn deterministic_through_fail_recover_cycle() {
        let run = || -> (Vec<u64>, u64, u64) {
            let mut net = small_net();
            let up0 = net.fib.leaf_uplinks[0][0];
            net.schedule_channel_fault(SimTime::from_micros(20), up0, false);
            net.schedule_channel_fault(SimTime::from_micros(200), up0, true);
            for f in 0..40u32 {
                inject(
                    &mut net,
                    Packet::data(
                        f,
                        0,
                        ecmp_mix(f as u64, 0xAB),
                        HostId(0),
                        HostId(2),
                        0,
                        1460,
                        SimTime::ZERO,
                    ),
                );
            }
            net.run_to_quiescence();
            let times = net
                .agent
                .received
                .iter()
                .map(|(t, _)| t.as_nanos())
                .collect();
            (times, net.stats.blackholed, net.stats.delivered_pkts)
        };
        assert_eq!(run(), run());
    }

    /// 2 pods x (2 leaves + 2 spines), 2 cores, 2 hosts/leaf. Host 0 is
    /// under leaf 0 (pod 0); host 4 is under leaf 2 (pod 1).
    fn three_tier_net() -> Network<TestEcmp, SinkAgent> {
        let topo = TopologyBuilder::three_tier(2, 2, 2, 2, 2).build();
        Network::new(topo, TestEcmp, SinkAgent::default(), 1)
    }

    #[test]
    fn three_tier_inter_pod_traffic_rides_the_core() {
        let mut net = three_tier_net();
        inject(
            &mut net,
            Packet::data(0, 0, 7, HostId(0), HostId(4), 0, 1460, SimTime::ZERO),
        );
        net.run_to_quiescence();
        assert_eq!(net.agent.received.len(), 1);
        assert!(
            net.agent.received[0].1.overlay.is_none(),
            "decapped at dst leaf"
        );
        // The packet must have crossed one spine-up and one core-down hop.
        let (mut spine_up_tx, mut core_down_tx) = (0, 0);
        for (i, c) in net.topo.channels.clone().iter().enumerate() {
            match c.kind {
                ChannelKind::SpineUp => spine_up_tx += net.port(ChannelId(i as u32)).tx_pkts,
                ChannelKind::CoreDown => core_down_tx += net.port(ChannelId(i as u32)).tx_pkts,
                _ => {}
            }
        }
        assert_eq!(spine_up_tx, 1);
        assert_eq!(core_down_tx, 1);
    }

    #[test]
    fn three_tier_intra_pod_traffic_skips_the_core() {
        let mut net = three_tier_net();
        // Host 0 (leaf 0) → host 2 (leaf 1), same pod.
        inject(
            &mut net,
            Packet::data(0, 0, 7, HostId(0), HostId(2), 0, 1460, SimTime::ZERO),
        );
        net.run_to_quiescence();
        assert_eq!(net.agent.received.len(), 1);
        for (i, c) in net.topo.channels.clone().iter().enumerate() {
            if matches!(c.kind, ChannelKind::SpineUp | ChannelKind::CoreDown) {
                assert_eq!(net.port(ChannelId(i as u32)).tx_pkts, 0);
            }
        }
    }

    #[test]
    fn core_link_fault_conserves_packets_and_recovery_restores_paths() {
        let mut net = three_tier_net();
        // Kill every core link of spine 0 and spine 1 toward core 0 early,
        // recover later; traffic in between survives via core 1.
        for s in [SpineId(0), SpineId(1)] {
            net.schedule_core_link_fault(SimTime::from_micros(1), s, CoreId(0), 0);
            net.schedule_core_link_recovery(SimTime::from_millis(2), s, CoreId(0), 0);
        }
        net.run_until(SimTime::from_micros(10));
        // During the outage: pod-0 spines detour only through core 1.
        assert_eq!(net.fib.spine_up_candidates[0][2].len(), 1);
        for f in 0..20u32 {
            inject(
                &mut net,
                Packet::data(
                    f,
                    0,
                    ecmp_mix(f as u64, 0xAB),
                    HostId(0),
                    HostId(4),
                    0,
                    1460,
                    SimTime::ZERO,
                ),
            );
        }
        net.run_to_quiescence();
        let s = net.stats;
        assert_eq!(
            s.injected_pkts,
            s.delivered_pkts + s.unroutable + s.blackholed + net.total_drops(),
            "conservation through a core fault"
        );
        assert_eq!(s.delivered_pkts, 20, "core 1 carries everything");
        // After recovery the full candidate set is back.
        assert_eq!(net.fib.spine_up_candidates[0][2].len(), 2);
        assert_eq!(s.fault_transitions, 8, "4 fail + 4 recover");
    }

    #[test]
    fn core_partition_counts_unroutable() {
        let mut net = three_tier_net();
        // Kill every spine-up link in pod 0: inter-pod traffic is stranded
        // at the spines.
        for s in [SpineId(0), SpineId(1)] {
            for c in [CoreId(0), CoreId(1)] {
                net.schedule_core_link_fault(SimTime::from_nanos(1), s, c, 0);
            }
        }
        net.run_until(SimTime::from_micros(1));
        inject(
            &mut net,
            Packet::data(0, 0, 7, HostId(0), HostId(4), 0, 1460, SimTime::ZERO),
        );
        net.run_to_quiescence();
        // The leaf sees no viable uplink at all (candidates prune through
        // the recursion), so the packet is unroutable at the source leaf.
        assert_eq!(net.stats.unroutable, 1);
        assert!(net.agent.received.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| -> Vec<u64> {
            let mut net = small_net();
            net.rng = SimRng::new(seed);
            for f in 0..20u32 {
                inject(
                    &mut net,
                    Packet::data(
                        f,
                        0,
                        ecmp_mix(f as u64, 0xAB),
                        HostId(0),
                        HostId(2),
                        0,
                        1460,
                        SimTime::ZERO,
                    ),
                );
            }
            net.run_to_quiescence();
            net.agent
                .received
                .iter()
                .map(|(t, _)| t.as_nanos())
                .collect()
        };
        assert_eq!(run(11), run(11));
    }
}
