//! Per-channel transmit port: a byte-bounded drop-tail FIFO plus statistics.
//!
//! Each simplex [`crate::topology::Channel`] gets one `TxPort`. A packet that
//! arrives while the serializer is busy waits in the FIFO; a packet that
//! would push the queued byte count past the capacity is dropped (drop-tail,
//! as in the paper's testbed switches). Occupancy is tracked as a
//! time-weighted integral so experiments can report exact mean queue depths,
//! and optionally sampled for CDFs (paper Figure 11c).

use crate::packet::Packet;
use conga_sim::{SimDuration, SimTime};
use conga_telemetry::MetricsRegistry;
use std::collections::VecDeque;

/// Outcome of an enqueue attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Enqueue {
    /// Packet accepted and the serializer was idle: start transmitting now.
    StartTx,
    /// Packet accepted behind others (or behind the in-flight packet).
    Queued,
    /// Packet dropped: queue full.
    Dropped,
}

/// Transmit side of one simplex channel.
#[derive(Debug)]
pub struct TxPort {
    /// Line rate, bits per second.
    pub rate_bps: u64,
    /// Propagation delay to the far end.
    pub delay: SimDuration,
    /// Queue capacity in bytes.
    pub cap: u64,
    /// Whether a packet is currently being serialized.
    pub busy: bool,
    queue: VecDeque<Packet>,
    queued_bytes: u64,

    // ---- statistics ----
    /// Total bytes transmitted (starts of transmission).
    pub tx_bytes: u64,
    /// Total packets transmitted.
    pub tx_pkts: u64,
    /// Packets dropped at the tail.
    pub drops: u64,
    /// Packets lost to this channel being down: flushed from the queue when
    /// the link failed, enqueued while it was dead, or caught on the wire by
    /// the transition. Maintained partly by the engine.
    pub blackholed: u64,
    /// Bytes that completed traversal of this channel (maintained by the
    /// engine on arrival at the far end).
    pub rx_bytes: u64,
    /// Packets that completed traversal of this channel.
    pub rx_pkts: u64,
    /// Peak queued bytes observed.
    pub max_queue: u64,
    /// Time-weighted integral of queued bytes (bytes × ns), for mean depth.
    occupancy_integral: u128,
    last_change: SimTime,
}

impl TxPort {
    /// Create a port for a channel with the given parameters.
    pub fn new(rate_bps: u64, delay: SimDuration, cap: u64) -> Self {
        TxPort {
            rate_bps,
            delay,
            cap,
            busy: false,
            queue: VecDeque::new(),
            queued_bytes: 0,
            tx_bytes: 0,
            tx_pkts: 0,
            drops: 0,
            blackholed: 0,
            rx_bytes: 0,
            rx_pkts: 0,
            max_queue: 0,
            occupancy_integral: 0,
            last_change: SimTime::ZERO,
        }
    }

    fn account(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_change).as_nanos() as u128;
        self.occupancy_integral += self.queued_bytes as u128 * dt;
        self.last_change = now;
    }

    /// Try to enqueue `pkt`. On `StartTx` the caller must immediately call
    /// [`TxPort::begin_tx`] to obtain the packet back and start serializing.
    pub fn enqueue(&mut self, pkt: Packet, now: SimTime) -> Enqueue {
        if self.queued_bytes + pkt.size as u64 > self.cap {
            self.drops += 1;
            return Enqueue::Dropped;
        }
        self.account(now);
        self.queued_bytes += pkt.size as u64;
        self.max_queue = self.max_queue.max(self.queued_bytes);
        self.queue.push_back(pkt);
        if self.busy {
            Enqueue::Queued
        } else {
            Enqueue::StartTx
        }
    }

    /// Pop the head packet and mark the serializer busy. Returns the packet
    /// and its serialization time. Panics if the queue is empty or busy.
    pub fn begin_tx(&mut self, now: SimTime) -> (Packet, SimDuration) {
        assert!(!self.busy, "begin_tx on busy port");
        self.account(now);
        let pkt = self.queue.pop_front().expect("begin_tx on empty port");
        self.queued_bytes -= pkt.size as u64;
        self.busy = true;
        self.tx_bytes += pkt.size as u64;
        self.tx_pkts += 1;
        let ser = SimDuration::serialization(pkt.size as u64, self.rate_bps);
        (pkt, ser)
    }

    /// Serializer finished; returns true if another packet is waiting (the
    /// caller should then `begin_tx` again).
    pub fn tx_done(&mut self) -> bool {
        debug_assert!(self.busy);
        self.busy = false;
        !self.queue.is_empty()
    }

    /// The channel just went down: discard every queued packet, counting
    /// each as blackholed. The serializer state is untouched — a packet
    /// already on the wire is the engine's to account (by arrival epoch).
    /// Appends the flushed packets in queue order to `out` (a reusable
    /// buffer, so repeated faults allocate nothing) so the engine can
    /// account (and trace) each loss individually; returns how many were
    /// flushed.
    pub fn flush_dead(&mut self, now: SimTime, out: &mut Vec<Packet>) -> usize {
        self.account(now);
        let n = self.queue.len();
        out.extend(self.queue.drain(..));
        self.queued_bytes = 0;
        self.blackholed += n as u64;
        n
    }

    /// Bytes currently waiting (not counting the packet on the wire).
    #[inline]
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets currently waiting.
    #[inline]
    pub fn queued_pkts(&self) -> usize {
        self.queue.len()
    }

    /// Export this port's counters into `reg` under `{prefix}.{counter}`
    /// names (e.g. `port.0007.drops`).
    pub fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
        reg.set_counter(&format!("{prefix}.tx_bytes"), self.tx_bytes);
        reg.set_counter(&format!("{prefix}.tx_pkts"), self.tx_pkts);
        reg.set_counter(&format!("{prefix}.rx_bytes"), self.rx_bytes);
        reg.set_counter(&format!("{prefix}.rx_pkts"), self.rx_pkts);
        reg.set_counter(&format!("{prefix}.drops"), self.drops);
        reg.set_counter(&format!("{prefix}.blackholed"), self.blackholed);
        reg.set_counter(&format!("{prefix}.max_queue_bytes"), self.max_queue);
    }

    /// Mean queued bytes over `[0, now]`.
    pub fn mean_queue_bytes(&mut self, now: SimTime) -> f64 {
        self.account(now);
        let t = now.as_nanos() as u128;
        if t == 0 {
            0.0
        } else {
            self.occupancy_integral as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;

    fn pkt(bytes: u32) -> Packet {
        let mut p = Packet::data(0, 0, 1, HostId(0), HostId(1), 0, 0, SimTime::ZERO);
        p.size = bytes;
        p
    }

    #[test]
    fn idle_port_starts_tx_immediately() {
        let mut p = TxPort::new(10_000_000_000, SimDuration::from_nanos(500), 10_000);
        assert_eq!(p.enqueue(pkt(1500), SimTime::ZERO), Enqueue::StartTx);
        let (pk, ser) = p.begin_tx(SimTime::ZERO);
        assert_eq!(pk.size, 1500);
        assert_eq!(ser.as_nanos(), 1200);
        assert!(p.busy);
        assert_eq!(p.queued_bytes(), 0);
    }

    #[test]
    fn busy_port_queues_then_drains_fifo() {
        let mut p = TxPort::new(10_000_000_000, SimDuration::ZERO, 10_000);
        let t0 = SimTime::ZERO;
        assert_eq!(p.enqueue(pkt(1000), t0), Enqueue::StartTx);
        let _ = p.begin_tx(t0);
        let mut a = pkt(100);
        a.seq = 11;
        let mut b = pkt(100);
        b.seq = 22;
        assert_eq!(p.enqueue(a, t0), Enqueue::Queued);
        assert_eq!(p.enqueue(b, t0), Enqueue::Queued);
        assert_eq!(p.queued_pkts(), 2);
        assert!(p.tx_done());
        let (first, _) = p.begin_tx(SimTime::from_nanos(800));
        assert_eq!(first.seq, 11, "FIFO order");
        assert!(p.tx_done());
        let (second, _) = p.begin_tx(SimTime::from_nanos(880));
        assert_eq!(second.seq, 22);
        assert!(!p.tx_done());
    }

    #[test]
    fn drop_tail_at_capacity() {
        let mut p = TxPort::new(1_000_000_000, SimDuration::ZERO, 2500);
        let t = SimTime::ZERO;
        assert_eq!(p.enqueue(pkt(1500), t), Enqueue::StartTx);
        let _ = p.begin_tx(t); // in flight, queue empty again
        assert_eq!(p.enqueue(pkt(1500), t), Enqueue::Queued);
        assert_eq!(
            p.enqueue(pkt(1500), t),
            Enqueue::Dropped,
            "2nd would exceed 2500B"
        );
        assert_eq!(p.drops, 1);
        assert_eq!(p.enqueue(pkt(1000), t), Enqueue::Queued, "smaller one fits");
        assert_eq!(p.queued_bytes(), 2500);
    }

    #[test]
    fn occupancy_integral_tracks_time_weighted_mean() {
        let mut p = TxPort::new(1_000_000_000, SimDuration::ZERO, 1 << 20);
        // Occupy 1000 bytes for 100ns, then drain.
        assert_eq!(p.enqueue(pkt(500), SimTime::ZERO), Enqueue::StartTx);
        let _ = p.begin_tx(SimTime::ZERO);
        p.enqueue(pkt(1000), SimTime::ZERO);
        // At t=100ns the first finishes, second starts (queue empties).
        p.tx_done();
        let _ = p.begin_tx(SimTime::from_nanos(100));
        // Mean over [0, 200ns]: 1000B * 100ns / 200ns = 500B.
        assert!((p.mean_queue_bytes(SimTime::from_nanos(200)) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn drop_and_byte_accounting_reaches_telemetry() {
        let mut p = TxPort::new(1_000_000_000, SimDuration::ZERO, 3000);
        let t = SimTime::ZERO;
        // One on the wire, two queued (3000B), then two tail drops.
        assert_eq!(p.enqueue(pkt(1500), t), Enqueue::StartTx);
        let _ = p.begin_tx(t);
        assert_eq!(p.enqueue(pkt(1500), t), Enqueue::Queued);
        assert_eq!(p.enqueue(pkt(1500), t), Enqueue::Queued);
        assert_eq!(p.enqueue(pkt(64), t), Enqueue::Dropped);
        assert_eq!(p.enqueue(pkt(9000), t), Enqueue::Dropped);
        // The engine credits rx on far-end arrival; emulate one delivery.
        p.rx_pkts += 1;
        p.rx_bytes += 1500;
        let mut reg = MetricsRegistry::new();
        p.export_metrics("port.0003", &mut reg);
        assert_eq!(reg.counter("port.0003.tx_pkts"), 1);
        assert_eq!(reg.counter("port.0003.tx_bytes"), 1500);
        assert_eq!(reg.counter("port.0003.drops"), 2);
        assert_eq!(reg.counter("port.0003.rx_pkts"), 1);
        assert_eq!(reg.counter("port.0003.rx_bytes"), 1500);
        assert_eq!(reg.counter("port.0003.max_queue_bytes"), 3000);
        // Dropped packets never count toward queued or transmitted bytes.
        assert_eq!(p.queued_bytes(), 3000);
        assert_eq!(p.tx_bytes + p.queued_bytes(), 4500);
    }

    #[test]
    fn flush_dead_empties_queue_and_counts_blackholes() {
        let mut p = TxPort::new(1_000_000_000, SimDuration::ZERO, 1 << 20);
        let t = SimTime::ZERO;
        assert_eq!(p.enqueue(pkt(1000), t), Enqueue::StartTx);
        let _ = p.begin_tx(t); // one on the wire
        assert_eq!(p.enqueue(pkt(500), t), Enqueue::Queued);
        assert_eq!(p.enqueue(pkt(500), t), Enqueue::Queued);
        let mut flushed = Vec::new();
        assert_eq!(p.flush_dead(SimTime::from_nanos(100), &mut flushed), 2);
        assert_eq!(flushed.len(), 2);
        assert_eq!(p.blackholed, 2);
        assert_eq!(p.queued_bytes(), 0);
        assert_eq!(p.queued_pkts(), 0);
        // The in-flight packet's serializer completes normally afterwards.
        assert!(p.busy);
        assert!(!p.tx_done(), "queue must be empty after flush");
        // Flushing an empty queue is a no-op (and appends nothing).
        assert_eq!(p.flush_dead(SimTime::from_nanos(200), &mut flushed), 0);
        assert_eq!(flushed.len(), 2);
        assert_eq!(p.blackholed, 2);
    }

    #[test]
    fn counters_accumulate() {
        let mut p = TxPort::new(40_000_000_000, SimDuration::ZERO, 1 << 20);
        for _ in 0..5 {
            assert_eq!(p.enqueue(pkt(1500), SimTime::ZERO), Enqueue::StartTx);
            let _ = p.begin_tx(SimTime::ZERO);
            p.tx_done();
        }
        assert_eq!(p.tx_pkts, 5);
        assert_eq!(p.tx_bytes, 7500);
        assert_eq!(p.max_queue, 1500);
    }
}
