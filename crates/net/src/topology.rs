//! Fabric topology description and forwarding tables.
//!
//! The primary deployment target of CONGA is the 2-tier Leaf-Spine (folded
//! Clos) fabric of paper Figure 4: hosts attach to leaf switches, every leaf
//! connects to every spine with one or more parallel links, and all
//! leaf-to-leaf paths are exactly two fabric hops. [`LeafSpineBuilder`]
//! constructs these, including the asymmetric variants the paper studies
//! (failed links, degraded link rates, mixed speeds).
//!
//! [`ThreeTierBuilder`] (entry point [`TopologyBuilder::three_tier`])
//! generalizes to the pod-structured three-tier Clos of larger deployments
//! (and of CAFT's fault studies): `n_pods` pods, each with its own leaves
//! and pod-local spines fully meshed, plus a core tier above connecting
//! every spine. CONGA's congestion-aware choice stays at the leaf (the
//! LBTag still names a leaf uplink); spines and cores forward with ECMP,
//! exactly as the paper's footnote on overlay deployments prescribes.
//!
//! After construction the [`Topology`] precomputes a forwarding information
//! base ([`Fib`]): for every (leaf, destination-leaf) the candidate uplink
//! channels, and for every (spine, destination-leaf) the candidate downlink
//! channels. A candidate uplink is only valid for a destination if the spine
//! it reaches still has at least one live link to that destination leaf —
//! this is how routing (as opposed to load balancing) reacts to failures.
//! In a three-tier fabric the reachability condition recurses one tier up:
//! a spine that has lost (or never had) a downlink to the destination leaf
//! is still a candidate if it can reach a core that can reach a spine that
//! can — candidate tables are computed top-down (`spine_down` →
//! `core_down` → `spine_up_candidates` → `up_candidates`), so every
//! forwarding step strictly decreases the remaining hop count and no
//! routing loops are possible.

use crate::ids::{ChannelId, CoreId, HostId, LeafId, NodeId, SpineId};
use crate::packet::MAX_LBTAG;
use conga_sim::SimDuration;

/// What role a channel plays in the fabric; used for statistics and to decide
/// where DREs / CE marking apply (fabric links only).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChannelKind {
    /// Host NIC → leaf.
    AccessUp,
    /// Leaf → host NIC.
    AccessDown,
    /// Leaf → spine (a leaf *uplink*; carries an LBTag).
    LeafUp,
    /// Spine → leaf (a spine *downlink*).
    SpineDown,
    /// Spine → core (three-tier fabrics only; ECMP, no LBTag).
    SpineUp,
    /// Core → spine (three-tier fabrics only; ECMP, no LBTag).
    CoreDown,
}

impl ChannelKind {
    /// Fabric channels are the ones CONGA measures with DREs and marks CE on.
    #[inline]
    pub fn is_fabric(self) -> bool {
        matches!(
            self,
            ChannelKind::LeafUp
                | ChannelKind::SpineDown
                | ChannelKind::SpineUp
                | ChannelKind::CoreDown
        )
    }
}

/// One simplex channel: a directed (src → dst) wire with its own transmit
/// queue, rate, and propagation delay.
#[derive(Clone, Debug)]
pub struct Channel {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Line rate in bits per second.
    pub rate_bps: u64,
    /// Propagation + pipeline delay.
    pub delay: SimDuration,
    /// Transmit queue capacity in bytes (drop-tail).
    pub queue_cap: u64,
    /// Role in the fabric.
    pub kind: ChannelKind,
}

/// Buffer sizing profile applied when building a topology.
#[derive(Clone, Copy, Debug)]
pub struct QueueProfile {
    /// Capacity of switch host-facing queues (leaf downlinks), bytes.
    pub access_bytes: u64,
    /// Capacity of fabric queues (leaf uplinks & spine ports), bytes.
    pub fabric_bytes: u64,
    /// Capacity of the host NIC transmit queue (the end-host qdisc), bytes.
    /// Hosts buffer generously — drops belong to switches, not senders.
    pub host_nic_bytes: u64,
}

impl Default for QueueProfile {
    fn default() -> Self {
        // Switch access ports are shallow (the paper leans on DCTCP-era
        // shallow edge buffers for its Incast dynamics); fabric ports are
        // deeper, matching the multi-MB occupancies of paper Figure 11(c).
        QueueProfile {
            // The testbed leaf ASIC has a ~12MB shared packet buffer with
            // dynamic thresholds: a single hot access port can absorb a
            // couple of MB before tail-dropping.
            access_bytes: 2 * 1024 * 1024,
            fabric_bytes: 12 * 1024 * 1024,
            host_nic_bytes: 4 * 1024 * 1024,
        }
    }
}

/// A complete fabric: inventory of nodes plus the channel list.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Number of hosts.
    pub n_hosts: u32,
    /// Number of leaf switches.
    pub n_leaves: u32,
    /// Number of spine switches.
    pub n_spines: u32,
    /// Number of core switches (0 in two-tier leaf-spine fabrics).
    pub n_cores: u32,
    /// Number of pods (1 in two-tier fabrics: every spine sees every leaf).
    pub n_pods: u32,
    /// The leaf each host attaches to.
    pub host_leaf: Vec<LeafId>,
    /// All simplex channels.
    pub channels: Vec<Channel>,
}

impl Topology {
    /// The leaf a host is attached to.
    #[inline]
    pub fn leaf_of(&self, h: HostId) -> LeafId {
        self.host_leaf[h.idx()]
    }

    /// Channel lookup.
    #[inline]
    pub fn channel(&self, c: ChannelId) -> &Channel {
        &self.channels[c.idx()]
    }

    /// Hosts attached to a given leaf.
    pub fn hosts_under(&self, l: LeafId) -> Vec<HostId> {
        (0..self.n_hosts)
            .map(HostId)
            .filter(|h| self.leaf_of(*h) == l)
            .collect()
    }

    /// Build the forwarding tables for the current channel set, with every
    /// channel considered live.
    pub fn fib(&self) -> Fib {
        Fib::build_live(self, None)
    }

    /// Build the forwarding tables with a liveness mask (`live[ch]` false ⇒
    /// the channel exists but is administratively down). Dead uplinks keep
    /// their position in [`Fib::leaf_uplinks`] — and therefore their LBTag —
    /// but are excluded from every candidate list, so a runtime link-state
    /// transition never renumbers the congestion tables.
    pub fn fib_live(&self, live: &[bool]) -> Fib {
        assert_eq!(live.len(), self.channels.len(), "liveness mask size");
        Fib::build_live(self, Some(live))
    }

    /// Leaves per pod (`n_leaves` itself in a two-tier fabric).
    #[inline]
    pub fn leaves_per_pod(&self) -> u32 {
        self.n_leaves / self.n_pods.max(1)
    }

    /// Spines per pod (`n_spines` itself in a two-tier fabric).
    #[inline]
    pub fn spines_per_pod(&self) -> u32 {
        self.n_spines / self.n_pods.max(1)
    }

    /// The pod a leaf belongs to (pod-major numbering).
    #[inline]
    pub fn pod_of_leaf(&self, l: LeafId) -> u32 {
        l.0 / self.leaves_per_pod().max(1)
    }

    /// The pod a spine belongs to (pod-major numbering).
    #[inline]
    pub fn pod_of_spine(&self, s: SpineId) -> u32 {
        s.0 / self.spines_per_pod().max(1)
    }

    /// The simplex channel pairs forming the parallel links between `leaf`
    /// and `spine`, in parallel-link order: `(leaf→spine, spine→leaf)`.
    /// Links removed at build time (static failures) do not appear.
    pub fn link_channels(&self, leaf: LeafId, spine: SpineId) -> Vec<(ChannelId, ChannelId)> {
        let ups = self.channels.iter().enumerate().filter_map(|(i, c)| {
            (c.kind == ChannelKind::LeafUp
                && c.src == NodeId::Leaf(leaf)
                && c.dst == NodeId::Spine(spine))
            .then_some(ChannelId(i as u32))
        });
        let downs = self.channels.iter().enumerate().filter_map(|(i, c)| {
            (c.kind == ChannelKind::SpineDown
                && c.src == NodeId::Spine(spine)
                && c.dst == NodeId::Leaf(leaf))
            .then_some(ChannelId(i as u32))
        });
        ups.zip(downs).collect()
    }

    /// The simplex channel pairs forming the parallel links between `spine`
    /// and `core`, in parallel-link order: `(spine→core, core→spine)`.
    /// Empty in two-tier fabrics.
    pub fn core_link_channels(&self, spine: SpineId, core: CoreId) -> Vec<(ChannelId, ChannelId)> {
        let ups = self.channels.iter().enumerate().filter_map(|(i, c)| {
            (c.kind == ChannelKind::SpineUp
                && c.src == NodeId::Spine(spine)
                && c.dst == NodeId::Core(core))
            .then_some(ChannelId(i as u32))
        });
        let downs = self.channels.iter().enumerate().filter_map(|(i, c)| {
            (c.kind == ChannelKind::CoreDown
                && c.src == NodeId::Core(core)
                && c.dst == NodeId::Spine(spine))
            .then_some(ChannelId(i as u32))
        });
        ups.zip(downs).collect()
    }

    /// Aggregate leaf-to-leaf bisection capacity in bits per second: the sum
    /// of uplink rates of one leaf, bounded by the corresponding spine
    /// downlink capacity toward each other leaf. Used to express offered
    /// load as a fraction, matching the paper's load axis.
    pub fn leaf_uplink_capacity(&self, l: LeafId) -> u64 {
        self.channels
            .iter()
            .filter(|c| c.kind == ChannelKind::LeafUp && c.src == NodeId::Leaf(l))
            .map(|c| c.rate_bps)
            .sum()
    }

    /// Total access (host NIC) capacity under a leaf in bits per second.
    pub fn access_capacity(&self, l: LeafId) -> u64 {
        self.channels
            .iter()
            .filter(|c| c.kind == ChannelKind::AccessUp)
            .filter(|c| matches!(c.src, NodeId::Host(h) if self.leaf_of(h) == l))
            .map(|c| c.rate_bps)
            .sum()
    }
}

/// Forwarding information base: candidate channels per destination,
/// precomputed once per topology so the per-packet path is just a vector
/// index.
#[derive(Clone, Debug)]
pub struct Fib {
    /// Host → its access uplink channel.
    pub host_access: Vec<ChannelId>,
    /// (leaf, local host) → downlink channel; indexed `[host]` globally.
    pub host_down: Vec<ChannelId>,
    /// All uplink channels of each leaf, ordered; the position of a channel
    /// in this vector **is** its LBTag. Uplinks that are administratively
    /// down (runtime fault) stay listed so tags remain stable across
    /// fail/recover transitions.
    pub leaf_uplinks: Vec<Vec<ChannelId>>,
    /// `up_candidates[leaf][dst_leaf]` — uplinks of `leaf` that can still
    /// reach `dst_leaf` (spine has a live downlink to it).
    pub up_candidates: Vec<Vec<Vec<ChannelId>>>,
    /// `spine_down[spine][dst_leaf]` — live parallel channels spine→leaf.
    pub spine_down: Vec<Vec<Vec<ChannelId>>>,
    /// All spine→core channels of each spine, in build order. Like
    /// `leaf_uplinks`, dead channels keep their slot so runtime
    /// fail/recover transitions never reorder the list. Empty per spine in
    /// two-tier fabrics.
    pub spine_up: Vec<Vec<ChannelId>>,
    /// `spine_up_candidates[spine][dst_leaf]` — live spine→core channels
    /// whose core can still reach `dst_leaf` (some live core→spine→leaf
    /// path exists). Consulted only when `spine_down[spine][dst_leaf]` is
    /// empty — the inter-pod (or pod-downlink-failure) detour.
    pub spine_up_candidates: Vec<Vec<Vec<ChannelId>>>,
    /// `core_down[core][dst_leaf]` — live core→spine channels toward spines
    /// that still have a live downlink to `dst_leaf`.
    pub core_down: Vec<Vec<Vec<ChannelId>>>,
    /// LBTag of each leaf-up channel (reverse map), indexed by channel.
    pub lbtag_of: Vec<u8>,
}

impl Fib {
    fn build_live(t: &Topology, live: Option<&[bool]>) -> Fib {
        let nl = t.n_leaves as usize;
        let ns = t.n_spines as usize;
        let ncore = t.n_cores as usize;
        let nc = t.channels.len();
        let is_live = |ch: ChannelId| live.map(|m| m[ch.idx()]).unwrap_or(true);

        let mut host_access = vec![ChannelId(u32::MAX); t.n_hosts as usize];
        let mut host_down = vec![ChannelId(u32::MAX); t.n_hosts as usize];
        let mut leaf_uplinks: Vec<Vec<ChannelId>> = vec![Vec::new(); nl];
        let mut spine_down: Vec<Vec<Vec<ChannelId>>> = vec![vec![Vec::new(); nl]; ns];
        let mut spine_up: Vec<Vec<ChannelId>> = vec![Vec::new(); ns];
        let mut lbtag_of = vec![u8::MAX; nc];

        for (i, c) in t.channels.iter().enumerate() {
            let id = ChannelId(i as u32);
            match (c.kind, c.src, c.dst) {
                (ChannelKind::AccessUp, NodeId::Host(h), NodeId::Leaf(_)) => {
                    host_access[h.idx()] = id;
                }
                (ChannelKind::AccessDown, NodeId::Leaf(_), NodeId::Host(h)) => {
                    host_down[h.idx()] = id;
                }
                (ChannelKind::LeafUp, NodeId::Leaf(l), NodeId::Spine(_)) => {
                    // Dead uplinks keep their slot: the slot index is the
                    // LBTag, which must survive fail/recover transitions.
                    leaf_uplinks[l.idx()].push(id);
                }
                (ChannelKind::SpineDown, NodeId::Spine(s), NodeId::Leaf(m)) => {
                    if is_live(id) {
                        spine_down[s.idx()][m.idx()].push(id);
                    }
                }
                (ChannelKind::SpineUp, NodeId::Spine(s), NodeId::Core(_)) => {
                    // Like leaf uplinks: dead channels keep their slot so
                    // the list order is stable across transitions.
                    spine_up[s.idx()].push(id);
                }
                (ChannelKind::CoreDown, NodeId::Core(_), NodeId::Spine(_)) => {
                    // Destination-dependent reachability is resolved below,
                    // once spine_down is complete.
                }
                _ => panic!("inconsistent channel: {c:?}"),
            }
        }

        for ups in &leaf_uplinks {
            assert!(
                ups.len() <= MAX_LBTAG,
                "leaf has {} uplinks; LBTag is 4 bits (max {MAX_LBTAG})",
                ups.len()
            );
        }
        for (l, ups) in leaf_uplinks.iter().enumerate() {
            for (tag, ch) in ups.iter().enumerate() {
                let _ = l;
                lbtag_of[ch.idx()] = tag as u8;
            }
        }

        // Candidate tables are computed top-down so each tier's
        // reachability question reduces to the tier below it.
        //
        // A core→spine channel is a candidate for dst leaf m iff it is live
        // and its spine still has a live downlink to m.
        let mut core_down: Vec<Vec<Vec<ChannelId>>> = vec![vec![Vec::new(); nl]; ncore];
        for (i, c) in t.channels.iter().enumerate() {
            if let (ChannelKind::CoreDown, NodeId::Core(co), NodeId::Spine(s)) =
                (c.kind, c.src, c.dst)
            {
                let id = ChannelId(i as u32);
                if !is_live(id) {
                    continue;
                }
                for m in 0..nl {
                    if !spine_down[s.idx()][m].is_empty() {
                        core_down[co.idx()][m].push(id);
                    }
                }
            }
        }

        // A spine→core channel is a candidate for dst leaf m iff it is live
        // and its core can still descend toward m.
        let mut spine_up_candidates: Vec<Vec<Vec<ChannelId>>> = vec![vec![Vec::new(); nl]; ns];
        for (s, ups) in spine_up.iter().enumerate() {
            for &u in ups {
                if !is_live(u) {
                    continue;
                }
                let NodeId::Core(co) = t.channel(u).dst else {
                    unreachable!()
                };
                for m in 0..nl {
                    if !core_down[co.idx()][m].is_empty() {
                        spine_up_candidates[s][m].push(u);
                    }
                }
            }
        }

        // An uplink leaf→spine s is a candidate for dst leaf m iff the
        // uplink itself is live and spine s can still reach m — directly
        // (live downlink) or via the core tier.
        let mut up_candidates = vec![vec![Vec::new(); nl]; nl];
        for (l, ups) in leaf_uplinks.iter().enumerate() {
            for m in 0..nl {
                if m == l {
                    continue;
                }
                for &u in ups {
                    if !is_live(u) {
                        continue;
                    }
                    let NodeId::Spine(s) = t.channel(u).dst else {
                        unreachable!()
                    };
                    if !spine_down[s.idx()][m].is_empty()
                        || !spine_up_candidates[s.idx()][m].is_empty()
                    {
                        up_candidates[l][m].push(u);
                    }
                }
            }
        }

        Fib {
            host_access,
            host_down,
            leaf_uplinks,
            up_candidates,
            spine_down,
            spine_up,
            spine_up_candidates,
            core_down,
            lbtag_of,
        }
    }

    /// Recompute the liveness-dependent tables (`spine_down`, `core_down`,
    /// `spine_up_candidates` and `up_candidates`) in place for a new
    /// liveness mask, reusing every existing allocation. The static tables —
    /// `host_access`, `host_down`, `leaf_uplinks`, `spine_up`, `lbtag_of` —
    /// do not depend on liveness and are left untouched, so a runtime
    /// link-state transition never renumbers LBTags. Produces candidate
    /// lists identical to a fresh [`Topology::fib_live`] build.
    pub fn refresh_live(&mut self, t: &Topology, live: &[bool]) {
        assert_eq!(live.len(), t.channels.len(), "liveness mask size");
        for per_spine in &mut self.spine_down {
            for v in per_spine {
                v.clear();
            }
        }
        for per_core in &mut self.core_down {
            for v in per_core {
                v.clear();
            }
        }
        for per_spine in &mut self.spine_up_candidates {
            for v in per_spine {
                v.clear();
            }
        }
        for per_leaf in &mut self.up_candidates {
            for v in per_leaf {
                v.clear();
            }
        }
        for (i, c) in t.channels.iter().enumerate() {
            if let (ChannelKind::SpineDown, NodeId::Spine(s), NodeId::Leaf(m)) =
                (c.kind, c.src, c.dst)
            {
                if live[i] {
                    self.spine_down[s.idx()][m.idx()].push(ChannelId(i as u32));
                }
            }
        }
        let nl = t.n_leaves as usize;
        for (i, c) in t.channels.iter().enumerate() {
            if let (ChannelKind::CoreDown, NodeId::Core(co), NodeId::Spine(s)) =
                (c.kind, c.src, c.dst)
            {
                if !live[i] {
                    continue;
                }
                for m in 0..nl {
                    if !self.spine_down[s.idx()][m].is_empty() {
                        self.core_down[co.idx()][m].push(ChannelId(i as u32));
                    }
                }
            }
        }
        for s in 0..self.spine_up.len() {
            for k in 0..self.spine_up[s].len() {
                let u = self.spine_up[s][k];
                if !live[u.idx()] {
                    continue;
                }
                let NodeId::Core(co) = t.channel(u).dst else {
                    unreachable!()
                };
                for m in 0..nl {
                    if !self.core_down[co.idx()][m].is_empty() {
                        self.spine_up_candidates[s][m].push(u);
                    }
                }
            }
        }
        for l in 0..nl {
            for k in 0..self.leaf_uplinks[l].len() {
                let u = self.leaf_uplinks[l][k];
                if !live[u.idx()] {
                    continue;
                }
                let NodeId::Spine(s) = t.channel(u).dst else {
                    unreachable!()
                };
                for m in 0..nl {
                    if m != l
                        && (!self.spine_down[s.idx()][m].is_empty()
                            || !self.spine_up_candidates[s.idx()][m].is_empty())
                    {
                        self.up_candidates[l][m].push(u);
                    }
                }
            }
        }
    }

    /// Number of distinct leaf-to-leaf paths from `l` to `m`: direct
    /// two-hop paths through a pod spine plus (in three-tier fabrics)
    /// four-hop detours through the core tier, counted only from spines
    /// with no direct downlink to `m` — the paths the dataplane can
    /// actually take, since spines prefer the direct descent.
    pub fn path_count(&self, t: &Topology, l: LeafId, m: LeafId) -> usize {
        self.up_candidates[l.idx()][m.idx()]
            .iter()
            .map(|&u| {
                let NodeId::Spine(s) = t.channel(u).dst else {
                    unreachable!()
                };
                let direct = self.spine_down[s.idx()][m.idx()].len();
                if direct > 0 {
                    return direct;
                }
                self.spine_up_candidates[s.idx()][m.idx()]
                    .iter()
                    .map(|&su| {
                        let NodeId::Core(co) = t.channel(su).dst else {
                            unreachable!()
                        };
                        self.core_down[co.idx()][m.idx()]
                            .iter()
                            .map(|&cd| {
                                let NodeId::Spine(s2) = t.channel(cd).dst else {
                                    unreachable!()
                                };
                                self.spine_down[s2.idx()][m.idx()].len()
                            })
                            .sum::<usize>()
                    })
                    .sum()
            })
            .sum()
    }
}

/// Builder for (possibly asymmetric) Leaf-Spine fabrics.
///
/// ```
/// use conga_net::LeafSpineBuilder;
///
/// // The paper's testbed: 2 leaves, 2 spines, 32 hosts/leaf, 10G access,
/// // 2x40G uplinks per leaf-spine pair (Figure 7a).
/// let topo = LeafSpineBuilder::new(2, 2, 32)
///     .host_rate_gbps(10)
///     .fabric_rate_gbps(40)
///     .parallel_links(2)
///     .build();
/// assert_eq!(topo.n_hosts, 64);
/// let fib = topo.fib();
/// assert_eq!(fib.leaf_uplinks[0].len(), 4); // 2 spines x 2 parallel links
/// ```
#[derive(Clone, Debug)]
pub struct LeafSpineBuilder {
    n_leaves: u32,
    n_spines: u32,
    hosts_per_leaf: u32,
    host_rate: u64,
    fabric_rate: u64,
    parallel: u32,
    host_delay: SimDuration,
    fabric_delay: SimDuration,
    queues: QueueProfile,
    /// (leaf, spine, parallel index) links to delete entirely.
    failed: Vec<(u32, u32, u32)>,
    /// (leaf, spine, parallel index, new rate) rate overrides.
    overrides: Vec<(u32, u32, u32, u64)>,
}

impl LeafSpineBuilder {
    /// Start a fabric with the given switch counts and hosts per leaf.
    pub fn new(n_leaves: u32, n_spines: u32, hosts_per_leaf: u32) -> Self {
        LeafSpineBuilder {
            n_leaves,
            n_spines,
            hosts_per_leaf,
            host_rate: 10_000_000_000,
            fabric_rate: 40_000_000_000,
            parallel: 1,
            // Host links carry the NIC + kernel stack latency (several us
            // each way in the paper's era); fabric hops are cut-through
            // switch pipelines (~1 us). Base leaf-to-leaf RTT ~ 25 us.
            host_delay: SimDuration::from_nanos(4_000),
            fabric_delay: SimDuration::from_nanos(1_000),
            queues: QueueProfile::default(),
            failed: Vec::new(),
            overrides: Vec::new(),
        }
    }

    /// Host NIC rate in Gbps.
    pub fn host_rate_gbps(mut self, g: u64) -> Self {
        self.host_rate = g * 1_000_000_000;
        self
    }

    /// Fabric link rate in Gbps.
    pub fn fabric_rate_gbps(mut self, g: u64) -> Self {
        self.fabric_rate = g * 1_000_000_000;
        self
    }

    /// Number of parallel links between each leaf-spine pair.
    pub fn parallel_links(mut self, k: u32) -> Self {
        self.parallel = k;
        self
    }

    /// Per-hop propagation/pipeline delay for all links.
    pub fn link_delay(mut self, d: SimDuration) -> Self {
        self.host_delay = d;
        self.fabric_delay = d;
        self
    }

    /// Queue capacities.
    pub fn queue_profile(mut self, q: QueueProfile) -> Self {
        self.queues = q;
        self
    }

    /// Remove one parallel link between `leaf` and `spine` (both directions)
    /// — the paper's Figure 7(b) failure.
    pub fn fail_link(mut self, leaf: u32, spine: u32, parallel_idx: u32) -> Self {
        self.failed.push((leaf, spine, parallel_idx));
        self
    }

    /// Override the rate of one parallel link (both directions), modelling a
    /// degraded LAG or a mixed-speed fabric (paper Figure 2's half-rate link).
    pub fn override_link_rate_gbps(
        mut self,
        leaf: u32,
        spine: u32,
        parallel_idx: u32,
        gbps: u64,
    ) -> Self {
        self.overrides
            .push((leaf, spine, parallel_idx, gbps * 1_000_000_000));
        self
    }

    /// Construct the topology.
    pub fn build(self) -> Topology {
        let n_hosts = self.n_leaves * self.hosts_per_leaf;
        let mut host_leaf = Vec::with_capacity(n_hosts as usize);
        let mut channels = Vec::new();

        for l in 0..self.n_leaves {
            for _ in 0..self.hosts_per_leaf {
                host_leaf.push(LeafId(l));
            }
        }

        // Access links (both directions per host).
        for h in 0..n_hosts {
            let l = host_leaf[h as usize];
            channels.push(Channel {
                src: NodeId::Host(HostId(h)),
                dst: NodeId::Leaf(l),
                rate_bps: self.host_rate,
                delay: self.host_delay,
                queue_cap: self.queues.host_nic_bytes,
                kind: ChannelKind::AccessUp,
            });
            channels.push(Channel {
                src: NodeId::Leaf(l),
                dst: NodeId::Host(HostId(h)),
                rate_bps: self.host_rate,
                delay: self.host_delay,
                queue_cap: self.queues.access_bytes,
                kind: ChannelKind::AccessDown,
            });
        }

        // Fabric links: for each (leaf, spine, parallel idx) that survives.
        for l in 0..self.n_leaves {
            for s in 0..self.n_spines {
                for p in 0..self.parallel {
                    if self.failed.contains(&(l, s, p)) {
                        continue;
                    }
                    let rate = self
                        .overrides
                        .iter()
                        .find(|&&(ol, os, op, _)| (ol, os, op) == (l, s, p))
                        .map(|&(_, _, _, r)| r)
                        .unwrap_or(self.fabric_rate);
                    channels.push(Channel {
                        src: NodeId::Leaf(LeafId(l)),
                        dst: NodeId::Spine(SpineId(s)),
                        rate_bps: rate,
                        delay: self.fabric_delay,
                        queue_cap: self.queues.fabric_bytes,
                        kind: ChannelKind::LeafUp,
                    });
                    channels.push(Channel {
                        src: NodeId::Spine(SpineId(s)),
                        dst: NodeId::Leaf(LeafId(l)),
                        rate_bps: rate,
                        delay: self.fabric_delay,
                        queue_cap: self.queues.fabric_bytes,
                        kind: ChannelKind::SpineDown,
                    });
                }
            }
        }

        Topology {
            n_hosts,
            n_leaves: self.n_leaves,
            n_spines: self.n_spines,
            n_cores: 0,
            n_pods: 1,
            host_leaf,
            channels,
        }
    }
}

/// Entry point for topology construction: the two-tier leaf-spine builder
/// the paper's testbed uses, or the pod-structured three-tier Clos for
/// large-scale cells.
pub struct TopologyBuilder;

impl TopologyBuilder {
    /// A two-tier leaf-spine fabric — identical to [`LeafSpineBuilder::new`].
    pub fn leaf_spine(n_leaves: u32, n_spines: u32, hosts_per_leaf: u32) -> LeafSpineBuilder {
        LeafSpineBuilder::new(n_leaves, n_spines, hosts_per_leaf)
    }

    /// A pod-structured three-tier Clos: `n_pods` pods of
    /// `leaves_per_pod` leaves fully meshed with `spines_per_pod` pod-local
    /// spines, plus `n_cores` core switches each connected to every spine.
    pub fn three_tier(
        n_pods: u32,
        leaves_per_pod: u32,
        spines_per_pod: u32,
        n_cores: u32,
        hosts_per_leaf: u32,
    ) -> ThreeTierBuilder {
        ThreeTierBuilder::new(
            n_pods,
            leaves_per_pod,
            spines_per_pod,
            n_cores,
            hosts_per_leaf,
        )
    }
}

/// Builder for pod-structured three-tier Clos fabrics.
///
/// Numbering is pod-major: pod `p` owns leaves
/// `p*leaves_per_pod .. (p+1)*leaves_per_pod` and spines
/// `p*spines_per_pod .. (p+1)*spines_per_pod`; cores are global. With
/// `n_pods == 1` and `n_cores == 0` the construction degenerates to the
/// two-tier leaf-spine fabric (every spine sees every leaf, no core
/// channels) — the channel list is then identical to
/// [`LeafSpineBuilder::build`]'s.
///
/// ```
/// use conga_net::TopologyBuilder;
///
/// // 2 pods x (2 leaves + 2 spines), 2 cores, 4 hosts per leaf.
/// let topo = TopologyBuilder::three_tier(2, 2, 2, 2, 4).build();
/// assert_eq!(topo.n_hosts, 16);
/// assert_eq!(topo.n_leaves, 4);
/// assert_eq!(topo.n_spines, 4);
/// assert_eq!(topo.n_cores, 2);
/// let fib = topo.fib();
/// // Each leaf meshes only with its pod's 2 spines.
/// assert_eq!(fib.leaf_uplinks[0].len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ThreeTierBuilder {
    n_pods: u32,
    leaves_per_pod: u32,
    spines_per_pod: u32,
    n_cores: u32,
    hosts_per_leaf: u32,
    host_rate: u64,
    fabric_rate: u64,
    core_rate: u64,
    parallel: u32,
    host_delay: SimDuration,
    fabric_delay: SimDuration,
    queues: QueueProfile,
}

impl ThreeTierBuilder {
    /// Start a three-tier fabric with the given pod structure.
    pub fn new(
        n_pods: u32,
        leaves_per_pod: u32,
        spines_per_pod: u32,
        n_cores: u32,
        hosts_per_leaf: u32,
    ) -> Self {
        assert!(n_pods >= 1 && leaves_per_pod >= 1 && spines_per_pod >= 1);
        assert!(
            n_pods == 1 || n_cores >= 1,
            "a multi-pod fabric needs at least one core switch"
        );
        ThreeTierBuilder {
            n_pods,
            leaves_per_pod,
            spines_per_pod,
            n_cores,
            hosts_per_leaf,
            host_rate: 10_000_000_000,
            fabric_rate: 40_000_000_000,
            core_rate: 40_000_000_000,
            parallel: 1,
            host_delay: SimDuration::from_nanos(4_000),
            fabric_delay: SimDuration::from_nanos(1_000),
            queues: QueueProfile::default(),
        }
    }

    /// Host NIC rate in Gbps.
    pub fn host_rate_gbps(mut self, g: u64) -> Self {
        self.host_rate = g * 1_000_000_000;
        self
    }

    /// Leaf-spine fabric link rate in Gbps.
    pub fn fabric_rate_gbps(mut self, g: u64) -> Self {
        self.fabric_rate = g * 1_000_000_000;
        self
    }

    /// Spine-core link rate in Gbps (defaults to the fabric rate).
    pub fn core_rate_gbps(mut self, g: u64) -> Self {
        self.core_rate = g * 1_000_000_000;
        self
    }

    /// Number of parallel links between each pod-local leaf-spine pair.
    pub fn parallel_links(mut self, k: u32) -> Self {
        self.parallel = k;
        self
    }

    /// Queue capacities.
    pub fn queue_profile(mut self, q: QueueProfile) -> Self {
        self.queues = q;
        self
    }

    /// Construct the topology. Channel order: access pairs per host, then
    /// pod-local `(leaf, spine, parallel)`-ordered LeafUp/SpineDown pairs,
    /// then `(spine, core)`-ordered SpineUp/CoreDown pairs.
    pub fn build(self) -> Topology {
        let n_leaves = self.n_pods * self.leaves_per_pod;
        let n_spines = self.n_pods * self.spines_per_pod;
        let n_hosts = n_leaves * self.hosts_per_leaf;
        let mut host_leaf = Vec::with_capacity(n_hosts as usize);
        let mut channels = Vec::new();

        for l in 0..n_leaves {
            for _ in 0..self.hosts_per_leaf {
                host_leaf.push(LeafId(l));
            }
        }

        for h in 0..n_hosts {
            let l = host_leaf[h as usize];
            channels.push(Channel {
                src: NodeId::Host(HostId(h)),
                dst: NodeId::Leaf(l),
                rate_bps: self.host_rate,
                delay: self.host_delay,
                queue_cap: self.queues.host_nic_bytes,
                kind: ChannelKind::AccessUp,
            });
            channels.push(Channel {
                src: NodeId::Leaf(l),
                dst: NodeId::Host(HostId(h)),
                rate_bps: self.host_rate,
                delay: self.host_delay,
                queue_cap: self.queues.access_bytes,
                kind: ChannelKind::AccessDown,
            });
        }

        // Pod-local leaf-spine mesh.
        for l in 0..n_leaves {
            let pod = l / self.leaves_per_pod;
            for sl in 0..self.spines_per_pod {
                let s = pod * self.spines_per_pod + sl;
                for _ in 0..self.parallel {
                    channels.push(Channel {
                        src: NodeId::Leaf(LeafId(l)),
                        dst: NodeId::Spine(SpineId(s)),
                        rate_bps: self.fabric_rate,
                        delay: self.fabric_delay,
                        queue_cap: self.queues.fabric_bytes,
                        kind: ChannelKind::LeafUp,
                    });
                    channels.push(Channel {
                        src: NodeId::Spine(SpineId(s)),
                        dst: NodeId::Leaf(LeafId(l)),
                        rate_bps: self.fabric_rate,
                        delay: self.fabric_delay,
                        queue_cap: self.queues.fabric_bytes,
                        kind: ChannelKind::SpineDown,
                    });
                }
            }
        }

        // Core tier: every spine connects to every core.
        for s in 0..n_spines {
            for c in 0..self.n_cores {
                channels.push(Channel {
                    src: NodeId::Spine(SpineId(s)),
                    dst: NodeId::Core(CoreId(c)),
                    rate_bps: self.core_rate,
                    delay: self.fabric_delay,
                    queue_cap: self.queues.fabric_bytes,
                    kind: ChannelKind::SpineUp,
                });
                channels.push(Channel {
                    src: NodeId::Core(CoreId(c)),
                    dst: NodeId::Spine(SpineId(s)),
                    rate_bps: self.core_rate,
                    delay: self.fabric_delay,
                    queue_cap: self.queues.fabric_bytes,
                    kind: ChannelKind::CoreDown,
                });
            }
        }

        Topology {
            n_hosts,
            n_leaves,
            n_spines,
            n_cores: self.n_cores,
            n_pods: self.n_pods,
            host_leaf,
            channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbed() -> Topology {
        LeafSpineBuilder::new(2, 2, 32)
            .host_rate_gbps(10)
            .fabric_rate_gbps(40)
            .parallel_links(2)
            .build()
    }

    #[test]
    fn testbed_shape_matches_paper_fig7a() {
        let t = testbed();
        assert_eq!(t.n_hosts, 64);
        assert_eq!(t.channels.len(), 64 * 2 + 2 * 2 * 2 * 2);
        let fib = t.fib();
        for l in 0..2 {
            assert_eq!(fib.leaf_uplinks[l].len(), 4, "2 spines x 2 parallel");
        }
        // 2:1 oversubscription: 320G access vs 160G uplink per leaf.
        assert_eq!(t.access_capacity(LeafId(0)), 320_000_000_000);
        assert_eq!(t.leaf_uplink_capacity(LeafId(0)), 160_000_000_000);
        assert_eq!(fib.path_count(&t, LeafId(0), LeafId(1)), 8);
    }

    #[test]
    fn lbtags_are_dense_and_within_field_width() {
        let t = testbed();
        let fib = t.fib();
        for l in 0..2usize {
            let tags: Vec<u8> = fib.leaf_uplinks[l]
                .iter()
                .map(|c| fib.lbtag_of[c.idx()])
                .collect();
            assert_eq!(tags, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn failed_link_removes_both_directions_and_prunes_candidates() {
        let t = LeafSpineBuilder::new(2, 2, 4)
            .parallel_links(2)
            .fail_link(1, 1, 0)
            .build();
        let fib = t.fib();
        // Leaf 1 lost one uplink.
        assert_eq!(fib.leaf_uplinks[1].len(), 3);
        assert_eq!(fib.leaf_uplinks[0].len(), 4);
        // Spine 1 now has a single channel to leaf 1.
        assert_eq!(fib.spine_down[1][1].len(), 1);
        // All of leaf 0's uplinks still reach leaf 1 (spine 1 retains one link).
        assert_eq!(fib.up_candidates[0][1].len(), 4);
        assert_eq!(fib.path_count(&t, LeafId(0), LeafId(1)), 2 * 2 + 2);
    }

    #[test]
    fn fully_failed_spine_is_not_a_candidate() {
        // Kill both parallel links spine1<->leaf1: leaf0 must stop using
        // spine 1 for traffic to leaf 1 entirely.
        let t = LeafSpineBuilder::new(2, 2, 4)
            .parallel_links(2)
            .fail_link(1, 1, 0)
            .fail_link(1, 1, 1)
            .build();
        let fib = t.fib();
        let cands = &fib.up_candidates[0][1];
        assert_eq!(cands.len(), 2);
        for &u in cands {
            assert_eq!(t.channel(u).dst, NodeId::Spine(SpineId(0)));
        }
    }

    #[test]
    fn rate_override_applies_to_both_directions() {
        let t = LeafSpineBuilder::new(2, 2, 1)
            .fabric_rate_gbps(80)
            .override_link_rate_gbps(1, 1, 0, 40)
            .build();
        let slow: Vec<&Channel> = t
            .channels
            .iter()
            .filter(|c| c.rate_bps == 40_000_000_000 && c.kind.is_fabric())
            .collect();
        assert_eq!(slow.len(), 2);
    }

    #[test]
    fn hosts_map_to_leaves_in_blocks() {
        let t = testbed();
        assert_eq!(t.leaf_of(HostId(0)), LeafId(0));
        assert_eq!(t.leaf_of(HostId(31)), LeafId(0));
        assert_eq!(t.leaf_of(HostId(32)), LeafId(1));
        assert_eq!(t.hosts_under(LeafId(1)).len(), 32);
    }

    #[test]
    fn fib_live_prunes_candidates_but_keeps_lbtags() {
        let t = testbed();
        let full = t.fib();
        // Take down both directions of the first leaf1-spine1 parallel link.
        let (up, down) = t.link_channels(LeafId(1), SpineId(1))[0];
        let mut live = vec![true; t.channels.len()];
        live[up.idx()] = false;
        live[down.idx()] = false;
        let fib = t.fib_live(&live);
        // The dead uplink keeps its slot (and tag) but is not a candidate.
        assert_eq!(fib.leaf_uplinks, full.leaf_uplinks);
        assert_eq!(fib.lbtag_of, full.lbtag_of);
        assert_eq!(fib.up_candidates[1][0].len(), 3);
        assert!(!fib.up_candidates[1][0].contains(&up));
        // Spine 1 lost one downlink to leaf 1; leaf 0 keeps all 4 uplinks.
        assert_eq!(fib.spine_down[1][1].len(), 1);
        assert!(!fib.spine_down[1][1].contains(&down));
        assert_eq!(fib.up_candidates[0][1].len(), 4);
        // An all-true mask reproduces the unconstrained FIB.
        let all = t.fib_live(&vec![true; t.channels.len()]);
        assert_eq!(all.up_candidates, full.up_candidates);
        assert_eq!(all.spine_down, full.spine_down);
    }

    #[test]
    fn refresh_live_matches_fresh_build() {
        let t = testbed();
        let mut fib = t.fib();
        // Fail, recover, and fail a different link: after every transition
        // the in-place refresh must equal a from-scratch fib_live build.
        let (up_a, down_a) = t.link_channels(LeafId(1), SpineId(1))[0];
        let (up_b, down_b) = t.link_channels(LeafId(0), SpineId(0))[1];
        let mut live = vec![true; t.channels.len()];
        let transitions: [(&[ChannelId], bool); 3] = [
            (&[up_a, down_a], false),
            (&[up_a, down_a], true),
            (&[up_b, down_b], false),
        ];
        for (chs, state) in transitions {
            for ch in chs {
                live[ch.idx()] = state;
            }
            fib.refresh_live(&t, &live);
            let fresh = t.fib_live(&live);
            assert_eq!(fib.up_candidates, fresh.up_candidates);
            assert_eq!(fib.spine_down, fresh.spine_down);
            assert_eq!(fib.leaf_uplinks, fresh.leaf_uplinks);
            assert_eq!(fib.lbtag_of, fresh.lbtag_of);
        }
    }

    #[test]
    fn fib_live_drops_spine_with_no_live_downlink() {
        let t = testbed();
        let mut live = vec![true; t.channels.len()];
        for (up, down) in t.link_channels(LeafId(1), SpineId(1)) {
            live[up.idx()] = false;
            live[down.idx()] = false;
        }
        let fib = t.fib_live(&live);
        // Spine 1 cannot reach leaf 1 at all: leaf 0 must avoid it.
        assert_eq!(fib.up_candidates[0][1].len(), 2);
        for &u in &fib.up_candidates[0][1] {
            assert_eq!(t.channel(u).dst, NodeId::Spine(SpineId(0)));
        }
        assert_eq!(fib.up_candidates[1][0].len(), 2);
    }

    #[test]
    fn link_channels_pairs_both_directions_in_parallel_order() {
        let t = testbed();
        let pairs = t.link_channels(LeafId(0), SpineId(1));
        assert_eq!(pairs.len(), 2, "2 parallel links");
        for (up, down) in pairs {
            assert_eq!(t.channel(up).src, NodeId::Leaf(LeafId(0)));
            assert_eq!(t.channel(up).dst, NodeId::Spine(SpineId(1)));
            assert_eq!(t.channel(down).src, NodeId::Spine(SpineId(1)));
            assert_eq!(t.channel(down).dst, NodeId::Leaf(LeafId(0)));
        }
        // Statically failed links are absent from the pair list.
        let t2 = LeafSpineBuilder::new(2, 2, 4)
            .parallel_links(2)
            .fail_link(1, 1, 0)
            .build();
        assert_eq!(t2.link_channels(LeafId(1), SpineId(1)).len(), 1);
        assert_eq!(t2.link_channels(LeafId(0), SpineId(1)).len(), 2);
    }

    #[test]
    fn large_fabric_fig16_shape() {
        // Paper Figure 16: 6 leaves x 4 spines x 3 parallel 40G links.
        let t = LeafSpineBuilder::new(6, 4, 8).parallel_links(3).build();
        let fib = t.fib();
        for l in 0..6 {
            assert_eq!(fib.leaf_uplinks[l].len(), 12);
        }
        assert_eq!(fib.path_count(&t, LeafId(0), LeafId(5)), 12 * 3);
    }

    fn three_tier() -> Topology {
        // 2 pods x (2 leaves + 2 spines), 2 cores, 4 hosts/leaf.
        TopologyBuilder::three_tier(2, 2, 2, 2, 4).build()
    }

    #[test]
    fn three_tier_shape_and_pod_structure() {
        let t = three_tier();
        assert_eq!(
            (t.n_hosts, t.n_leaves, t.n_spines, t.n_cores),
            (16, 4, 4, 2)
        );
        assert_eq!(t.n_pods, 2);
        assert_eq!(t.leaves_per_pod(), 2);
        assert_eq!(t.spines_per_pod(), 2);
        assert_eq!(t.pod_of_leaf(LeafId(1)), 0);
        assert_eq!(t.pod_of_leaf(LeafId(2)), 1);
        assert_eq!(t.pod_of_spine(SpineId(3)), 1);
        // Channels: 16 access pairs + 4 leaves x 2 pod spines pairs
        // + 4 spines x 2 cores pairs.
        assert_eq!(t.channels.len(), 16 * 2 + 4 * 2 * 2 + 4 * 2 * 2);
        // Leaf 0 meshes only with pod-0 spines.
        let fib = t.fib();
        for &u in &fib.leaf_uplinks[0] {
            let NodeId::Spine(s) = t.channel(u).dst else {
                panic!("uplink must end at a spine")
            };
            assert_eq!(t.pod_of_spine(s), 0);
        }
        assert_eq!(fib.spine_up[0].len(), 2, "each spine sees both cores");
        assert_eq!(t.core_link_channels(SpineId(1), CoreId(0)).len(), 1);
    }

    #[test]
    fn three_tier_routes_inter_pod_via_core_only() {
        let t = three_tier();
        let fib = t.fib();
        // Intra-pod dst: direct spine descent; spine-up detour not needed
        // but spines can still reach it through the core.
        assert!(!fib.spine_down[0][1].is_empty());
        // Inter-pod dst (leaf 2 in pod 1): pod-0 spines have NO direct
        // downlink and must go through the core tier.
        assert!(fib.spine_down[0][2].is_empty());
        assert_eq!(fib.spine_up_candidates[0][2].len(), 2);
        assert_eq!(
            fib.core_down[0][2].len(),
            2,
            "both pod-1 spines reach leaf 2"
        );
        // All of leaf 0's uplinks remain candidates for the inter-pod dst.
        assert_eq!(fib.up_candidates[0][2].len(), 2);
        // Inter-pod paths: 2 uplinks x 2 cores x 2 down-spines x 1 downlink.
        assert_eq!(fib.path_count(&t, LeafId(0), LeafId(2)), 8);
        // Intra-pod paths look exactly like a two-tier fabric's.
        assert_eq!(fib.path_count(&t, LeafId(0), LeafId(1)), 2);
    }

    #[test]
    fn three_tier_refresh_live_matches_fresh_build() {
        let t = three_tier();
        let mut fib = t.fib();
        let (su, cd) = t.core_link_channels(SpineId(2), CoreId(0))[0];
        let (lu, sd) = t.link_channels(LeafId(2), SpineId(2))[0];
        let mut live = vec![true; t.channels.len()];
        let transitions: [(&[ChannelId], bool); 3] =
            [(&[su, cd], false), (&[lu, sd], false), (&[su, cd], true)];
        for (chs, state) in transitions {
            for ch in chs {
                live[ch.idx()] = state;
            }
            fib.refresh_live(&t, &live);
            let fresh = t.fib_live(&live);
            assert_eq!(fib.up_candidates, fresh.up_candidates);
            assert_eq!(fib.spine_down, fresh.spine_down);
            assert_eq!(fib.spine_up_candidates, fresh.spine_up_candidates);
            assert_eq!(fib.core_down, fresh.core_down);
            assert_eq!(fib.spine_up, fresh.spine_up);
        }
    }

    #[test]
    fn three_tier_core_failure_prunes_detours_not_tags() {
        let t = three_tier();
        let full = t.fib();
        // Kill core 0 entirely (all its links, both directions).
        let mut live = vec![true; t.channels.len()];
        for s in 0..t.n_spines {
            for (su, cd) in t.core_link_channels(SpineId(s), CoreId(0)) {
                live[su.idx()] = false;
                live[cd.idx()] = false;
            }
        }
        let fib = t.fib_live(&live);
        // LBTags and uplink slots are untouched.
        assert_eq!(fib.leaf_uplinks, full.leaf_uplinks);
        assert_eq!(fib.lbtag_of, full.lbtag_of);
        assert_eq!(fib.spine_up, full.spine_up);
        // Inter-pod candidates survive through core 1, at half the paths.
        assert_eq!(fib.spine_up_candidates[0][2].len(), 1);
        assert_eq!(fib.up_candidates[0][2].len(), 2);
        assert_eq!(fib.path_count(&t, LeafId(0), LeafId(2)), 4);
    }

    #[test]
    fn three_tier_pod_downlink_failure_detours_through_core() {
        // Kill spine 0's only downlink to leaf 1 (same pod): leaf 0's
        // uplink to spine 0 must stay a candidate for leaf 1, because the
        // spine can detour up through a core and down via spine 1.
        let t = three_tier();
        let (lu, sd) = t.link_channels(LeafId(1), SpineId(0))[0];
        let mut live = vec![true; t.channels.len()];
        live[lu.idx()] = false;
        live[sd.idx()] = false;
        let fib = t.fib_live(&live);
        assert!(fib.spine_down[0][1].is_empty());
        assert_eq!(fib.spine_up_candidates[0][1].len(), 2);
        assert_eq!(fib.up_candidates[0][1].len(), 2);
        // Paths 0→1: spine0 detour (2 cores x 1 spine x 1 downlink = 2)
        // plus spine1 direct (1).
        assert_eq!(fib.path_count(&t, LeafId(0), LeafId(1)), 3);
    }

    #[test]
    fn single_pod_three_tier_matches_leaf_spine_channels() {
        // n_pods == 1, n_cores == 0 degenerates to the two-tier builder.
        let a = TopologyBuilder::three_tier(1, 2, 2, 0, 4).build();
        let b = LeafSpineBuilder::new(2, 2, 4).build();
        assert_eq!(a.channels.len(), b.channels.len());
        for (x, y) in a.channels.iter().zip(&b.channels) {
            assert_eq!((x.src, x.dst, x.kind), (y.src, y.dst, y.kind));
            assert_eq!(
                (x.rate_bps, x.delay, x.queue_cap),
                (y.rate_bps, y.delay, y.queue_cap)
            );
        }
        let fa = a.fib();
        let fb = b.fib();
        assert_eq!(fa.up_candidates, fb.up_candidates);
        assert_eq!(fa.spine_down, fb.spine_down);
        assert_eq!(fa.lbtag_of, fb.lbtag_of);
    }
}
