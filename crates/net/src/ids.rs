//! Strongly-typed identifiers for network entities.
//!
//! Everything is a dense `u32` index under the hood so the engine can use
//! flat vectors instead of hash maps in the per-packet hot path.

use std::fmt;

/// Identifies a server (end host).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u32);

/// Identifies a leaf (top-of-rack) switch — also a tunnel endpoint (TEP) in
/// the overlay.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LeafId(pub u32);

/// Identifies a spine (pod aggregation) switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpineId(pub u32);

/// Identifies a core switch (the third tier above the pod spines in a
/// three-tier Clos; absent from two-tier leaf-spine fabrics).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CoreId(pub u32);

/// Identifies a simplex channel (one direction of a physical link). The
/// transmit queue, rate and propagation delay live per-channel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// Flat index for vector storage.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl HostId {
    /// Flat index for vector storage.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LeafId {
    /// Flat index for vector storage.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl SpineId {
    /// Flat index for vector storage.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl CoreId {
    /// Flat index for vector storage.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Any node in the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeId {
    /// A server.
    Host(HostId),
    /// A top-of-rack switch.
    Leaf(LeafId),
    /// A pod aggregation (spine) switch.
    Spine(SpineId),
    /// A third-tier core switch.
    Core(CoreId),
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Host(h) => write!(f, "host{}", h.0),
            NodeId::Leaf(l) => write!(f, "leaf{}", l.0),
            NodeId::Spine(s) => write!(f, "spine{}", s.0),
            NodeId::Core(c) => write!(f, "core{}", c.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(NodeId::Host(HostId(3)).to_string(), "host3");
        assert_eq!(NodeId::Leaf(LeafId(0)).to_string(), "leaf0");
        assert_eq!(NodeId::Spine(SpineId(7)).to_string(), "spine7");
        assert_eq!(NodeId::Core(CoreId(2)).to_string(), "core2");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(ChannelId(1));
        s.insert(ChannelId(1));
        s.insert(ChannelId(2));
        assert_eq!(s.len(), 2);
        assert!(HostId(1) < HostId(2));
    }
}
