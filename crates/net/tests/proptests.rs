//! Property-style tests for the network substrate. Cases are sampled from
//! the in-tree deterministic RNG with fixed seeds (no external test-case
//! generation crate), so every run explores the same inputs.

use conga_net::{
    ecmp_mix, Channel, ChannelKind, Enqueue, HostId, LeafSpineBuilder, NodeId, Packet, TxPort,
};
use conga_sim::{SimDuration, SimRng, SimTime};

/// FIB invariants on arbitrary Leaf-Spine shapes: every candidate uplink
/// leaves the right leaf, reaches a spine that still serves the
/// destination, and LBTags stay within the 4-bit field.
#[test]
fn fib_candidates_are_sound() {
    let mut rng = SimRng::new(0xF1B_CAFE);
    let mut cases = 0;
    while cases < 64 {
        let leaves = rng.range_u64(2, 6) as u32;
        let spines = rng.range_u64(1, 5) as u32;
        let parallel = rng.range_u64(1, 4) as u32;
        if spines * parallel > 16 {
            continue;
        }
        cases += 1;
        let fail_bits = rng.u64();
        let mut b = LeafSpineBuilder::new(leaves, spines, 2).parallel_links(parallel);
        // Fail a pseudo-random subset of links (never all of a leaf's).
        let mut killed = 0;
        'outer: for l in 0..leaves {
            for s in 0..spines {
                for p in 0..parallel {
                    let bit = (l * 16 + s * 4 + p) % 64;
                    if fail_bits >> bit & 1 == 1 && killed < (spines * parallel - 1) {
                        b = b.fail_link(l, s, p);
                        killed += 1;
                        if killed > 6 {
                            break 'outer;
                        }
                    }
                }
            }
        }
        let topo = b.build();
        let fib = topo.fib();
        for l in 0..leaves as usize {
            for (tag, &u) in fib.leaf_uplinks[l].iter().enumerate() {
                assert!(tag < 16);
                assert_eq!(fib.lbtag_of[u.idx()] as usize, tag);
                let c: &Channel = topo.channel(u);
                assert_eq!(c.kind, ChannelKind::LeafUp);
                assert!(matches!(c.src, NodeId::Leaf(x) if x.idx() == l));
            }
            for m in 0..leaves as usize {
                if m == l {
                    continue;
                }
                for &u in &fib.up_candidates[l][m] {
                    let NodeId::Spine(s) = topo.channel(u).dst else {
                        panic!("uplink not to a spine");
                    };
                    assert!(
                        !fib.spine_down[s.idx()][m].is_empty(),
                        "candidate via a spine with no path to dst"
                    );
                }
            }
        }
    }
}

/// The drop-tail port conserves packets: accepted == transmitted + still
/// queued (+ the in-flight one), and never exceeds capacity.
#[test]
fn txport_conserves_packets() {
    let mut rng = SimRng::new(0x7890_9087);
    for _case in 0..128 {
        let cap = rng.range_u64(5_000, 50_000);
        let n = rng.range_u64(1, 100) as usize;
        let sizes: Vec<u32> = (0..n).map(|_| rng.range_u64(64, 9000) as u32).collect();
        let mut p = TxPort::new(10_000_000_000, SimDuration::ZERO, cap);
        let mut accepted = 0u64;
        let mut transmitted = 0u64;
        let mut busy = false;
        let now = SimTime::ZERO;
        for (i, &sz) in sizes.iter().enumerate() {
            let mut pkt = Packet::data(i as u32, 0, i as u64, HostId(0), HostId(1), 0, 0, now);
            pkt.size = sz;
            match p.enqueue(pkt, now) {
                Enqueue::StartTx => {
                    assert!(!busy);
                    let _ = p.begin_tx(now);
                    busy = true;
                    accepted += 1;
                    transmitted += 1;
                }
                Enqueue::Queued => {
                    accepted += 1;
                    assert!(p.queued_bytes() <= cap);
                }
                Enqueue::Dropped => {}
            }
            // Occasionally drain one.
            if busy && i % 3 == 0 {
                if p.tx_done() {
                    let _ = p.begin_tx(now);
                    transmitted += 1;
                } else {
                    busy = false;
                }
            }
        }
        assert_eq!(accepted, transmitted + p.queued_pkts() as u64);
        assert_eq!(p.tx_pkts, transmitted);
    }
}

/// ecmp_mix is a bijection-quality mixer: distinct inputs rarely collide
/// mod small n, and the same input always maps identically.
#[test]
fn ecmp_mix_uniformity() {
    let mut rng = SimRng::new(0xEC3_3713);
    for _case in 0..64 {
        let salt = rng.u64();
        let n = 4u64;
        let mut counts = [0u32; 4];
        for f in 0..2000u64 {
            counts[(ecmp_mix(f, salt) % n) as usize] += 1;
        }
        for &c in &counts {
            assert!((350..=650).contains(&c), "bucket {c}/2000 (salt {salt:#x})");
        }
    }
}

/// SACK blocks: push/iter round-trips up to three blocks, ignores more.
#[test]
fn sack_blocks_capacity() {
    use conga_net::SackBlocks;
    let mut rng = SimRng::new(0x5AC_B10C);
    for _case in 0..256 {
        let n = rng.below(6);
        let ranges: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.below(1000) as u64, rng.range_u64(1, 100)))
            .collect();
        let mut b = SackBlocks::default();
        for &(s, l) in &ranges {
            b.push(s, s + l);
        }
        let got: Vec<(u64, u64)> = b.iter().collect();
        let expect: Vec<(u64, u64)> = ranges.iter().take(3).map(|&(s, l)| (s, s + l)).collect();
        assert_eq!(got, expect);
    }
}
