//! Property tests for the network substrate.

use conga_net::{
    ecmp_mix, Channel, ChannelId, ChannelKind, Enqueue, HostId, LeafSpineBuilder, NodeId,
    Packet, TxPort,
};
use conga_sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// FIB invariants on arbitrary Leaf-Spine shapes: every candidate
    /// uplink leaves the right leaf, reaches a spine that still serves the
    /// destination, and LBTags stay within the 4-bit field.
    #[test]
    fn fib_candidates_are_sound(
        leaves in 2u32..6,
        spines in 1u32..5,
        parallel in 1u32..4,
        fail_bits in any::<u64>(),
    ) {
        prop_assume!(spines * parallel <= 16);
        let mut b = LeafSpineBuilder::new(leaves, spines, 2).parallel_links(parallel);
        // Fail a pseudo-random subset of links (never all of a leaf's).
        let mut killed = 0;
        'outer: for l in 0..leaves {
            for s in 0..spines {
                for p in 0..parallel {
                    let bit = (l * 16 + s * 4 + p) % 64;
                    if fail_bits >> bit & 1 == 1 && killed < (spines * parallel - 1) {
                        b = b.fail_link(l, s, p);
                        killed += 1;
                        if killed > 6 { break 'outer; }
                    }
                }
            }
        }
        let topo = b.build();
        let fib = topo.fib();
        for l in 0..leaves as usize {
            for (tag, &u) in fib.leaf_uplinks[l].iter().enumerate() {
                prop_assert!(tag < 16);
                prop_assert_eq!(fib.lbtag_of[u.idx()] as usize, tag);
                let c: &Channel = topo.channel(u);
                prop_assert_eq!(c.kind, ChannelKind::LeafUp);
                prop_assert!(matches!(c.src, NodeId::Leaf(x) if x.idx() == l));
            }
            for m in 0..leaves as usize {
                if m == l { continue; }
                for &u in &fib.up_candidates[l][m] {
                    let NodeId::Spine(s) = topo.channel(u).dst else {
                        return Err(TestCaseError::fail("uplink not to a spine"));
                    };
                    prop_assert!(
                        !fib.spine_down[s.idx()][m].is_empty(),
                        "candidate via a spine with no path to dst"
                    );
                }
            }
        }
    }

    /// The drop-tail port conserves packets: accepted == transmitted +
    /// still queued (+ the in-flight one), and never exceeds capacity.
    #[test]
    fn txport_conserves_packets(sizes in proptest::collection::vec(64u32..9000, 1..100), cap in 5_000u64..50_000) {
        let mut p = TxPort::new(10_000_000_000, SimDuration::ZERO, cap);
        let mut accepted = 0u64;
        let mut transmitted = 0u64;
        let mut busy = false;
        let now = SimTime::ZERO;
        for (i, &sz) in sizes.iter().enumerate() {
            let mut pkt = Packet::data(i as u32, 0, i as u64, HostId(0), HostId(1), 0, 0, now);
            pkt.size = sz;
            match p.enqueue(pkt, now) {
                Enqueue::StartTx => {
                    prop_assert!(!busy);
                    let _ = p.begin_tx(now);
                    busy = true;
                    accepted += 1;
                    transmitted += 1;
                }
                Enqueue::Queued => {
                    accepted += 1;
                    prop_assert!(p.queued_bytes() <= cap);
                }
                Enqueue::Dropped => {}
            }
            // Occasionally drain one.
            if busy && i % 3 == 0 {
                if p.tx_done() {
                    let _ = p.begin_tx(now);
                    transmitted += 1;
                } else {
                    busy = false;
                }
            }
        }
        prop_assert_eq!(accepted, transmitted + p.queued_pkts() as u64);
        prop_assert_eq!(p.tx_pkts, transmitted);
    }

    /// ecmp_mix is a bijection-quality mixer: distinct inputs rarely
    /// collide mod small n, and the same input always maps identically.
    #[test]
    fn ecmp_mix_uniformity(salt in any::<u64>()) {
        let n = 4u64;
        let mut counts = [0u32; 4];
        for f in 0..2000u64 {
            counts[(ecmp_mix(f, salt) % n) as usize] += 1;
        }
        for &c in &counts {
            prop_assert!((350..=650).contains(&c), "bucket {c}/2000");
        }
    }

    /// SACK blocks: push/iter round-trips up to three blocks, ignores more.
    #[test]
    fn sack_blocks_capacity(ranges in proptest::collection::vec((0u64..1000, 1u64..100), 0..6)) {
        use conga_net::SackBlocks;
        let mut b = SackBlocks::default();
        for &(s, l) in &ranges {
            b.push(s, s + l);
        }
        let got: Vec<(u64, u64)> = b.iter().collect();
        let expect: Vec<(u64, u64)> =
            ranges.iter().take(3).map(|&(s, l)| (s, s + l)).collect();
        prop_assert_eq!(got, expect);
    }
}
