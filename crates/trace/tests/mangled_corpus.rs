//! Fuzz-ish corpus test: mangle valid trace JSONL lines with a
//! fixed-seed RNG and assert the parser and validator return `Err` (or
//! `Ok`) on every variant — never panic, never overflow the stack.
//!
//! The corpus is deterministic (seeded splitmix64, no wall clock), so a
//! failure reproduces exactly; bump `ROUNDS` locally to widen the
//! search.

use conga_trace::explain;
use conga_trace::json;

const SEED: u64 = 0xC04A_5EED_0005;
const ROUNDS: usize = 4_000;

/// Minimal deterministic RNG; the workspace carries no external crates.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Realistic exporter output lines — one of each envelope shape,
/// including the nested-candidate decision event.
const BASE: &[&str] = &[
    r#"{"seq":1,"t_ns":1000,"ev":"enqueue","ch":3,"pkt":7,"flow":42,"size":1500}"#,
    r#"{"seq":2,"t_ns":1200,"ev":"deliver","host":5,"pkt":7,"flow":42,"payload":1460}"#,
    r#"{"seq":3,"t_ns":1300,"ev":"dre","ch":3,"flow":42,"bytes":1500,"q":2}"#,
    r#"{"seq":4,"t_ns":1400,"ev":"decision","leaf":0,"flow":42,"dst_leaf":1,"cand":[{"ch":4,"lbtag":0,"local":1,"remote":2,"metric":2}],"chosen":4,"lbtag":0,"sticky":false}"#,
    r#"{"seq":5,"t_ns":1500,"ev":"fault","ch":4,"up":false}"#,
    r#"{"seq":6,"t_ns":1600,"ev":"cwnd","flow":42,"sub":0,"cwnd":14600}"#,
];

/// Apply one random mangle to a line's bytes.
fn mangle(rng: &mut SplitMix, line: &str) -> Vec<u8> {
    let mut b = line.as_bytes().to_vec();
    if b.is_empty() {
        return b;
    }
    match rng.below(6) {
        // Truncate at a random byte.
        0 => b.truncate(rng.below(b.len() + 1)),
        // Flip one byte to an arbitrary value (may break UTF-8).
        1 => {
            let i = rng.below(b.len());
            b[i] = (rng.next() & 0xFF) as u8;
        }
        // Insert structural noise where it hurts the grammar most.
        2 => {
            let noise = br#""\{}[]:,u"#;
            let i = rng.below(b.len() + 1);
            b.insert(i, noise[rng.below(noise.len())]);
        }
        // Delete a random span.
        3 => {
            let i = rng.below(b.len());
            let n = 1 + rng.below(8).min(b.len() - i - 1);
            b.drain(i..i + n);
        }
        // Splice a truncated escape into the middle.
        4 => {
            let i = rng.below(b.len() + 1);
            let frag: &[u8] = [&b"\\u00"[..], &b"\\"[..], &b"\\ud800"[..]][rng.below(3)];
            for (k, &x) in frag.iter().enumerate() {
                b.insert(i + k, x);
            }
        }
        // Duplicate a chunk (yields trailing content / repeated keys).
        _ => {
            let i = rng.below(b.len());
            let n = 1 + rng.below(16).min(b.len() - i - 1);
            let chunk: Vec<u8> = b[i..i + n].to_vec();
            b.extend_from_slice(&chunk);
        }
    }
    b
}

#[test]
fn mangled_jsonl_never_panics_parser_or_validator() {
    let mut rng = SplitMix(SEED);
    let mut rejected = 0usize;
    for _ in 0..ROUNDS {
        let base = BASE[rng.below(BASE.len())];
        let mut bytes = mangle(&mut rng, base);
        // Occasionally stack a second mangle for compound damage.
        if rng.below(3) == 0 {
            let s = String::from_utf8_lossy(&bytes).into_owned();
            bytes = mangle(&mut rng, &s);
        }
        // The binary reads traces with `read_to_string`, which lossily
        // never passes invalid UTF-8 through; mirror that boundary.
        let text = String::from_utf8_lossy(&bytes);
        // Surviving the next two calls IS the assertion: any panic or
        // stack overflow fails the test (the latter aborts the harness).
        let parsed = json::parse(&text);
        let validated = explain::validate(&text);
        // (An empty mangle validates Ok — zero JSONL lines — while
        // failing document parse, so the two verdicts are independent.)
        if parsed.is_err() || validated.is_err() {
            rejected += 1;
        }
    }
    // The corpus must actually exercise the error paths, not mutate
    // whitespace into whitespace.
    assert!(
        rejected > ROUNDS / 2,
        "corpus too tame: only {rejected}/{ROUNDS} rejected"
    );
}

#[test]
fn hostile_nesting_is_rejected_not_fatal() {
    for doc in [
        "[".repeat(1 << 20),
        "{\"a\":".repeat(1 << 18),
        format!("{}1{}", "[".repeat(1 << 16), "]".repeat(1 << 16)),
    ] {
        let err = json::parse(&doc).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
    }
}

#[test]
fn validate_reports_the_offending_line() {
    let good = r#"{"seq":1,"t_ns":1000,"ev":"fault","ch":4,"up":false}"#;
    let bad = r#"{"seq":2,"t_ns":900,"ev":"fault","ch":4,"up":true}"#;
    let err = explain::validate(&format!("{good}\n{bad}\n")).unwrap_err();
    assert!(err.contains("line 2"), "{err}");
    assert!(err.contains("went backwards"), "{err}");
    assert!(
        err.contains(bad),
        "error must echo the offending line: {err}"
    );
}
