//! Replay a JSONL trace and print its causal chains.
//!
//! ```text
//! trace_explain <trace.jsonl>                overview (validates first)
//! trace_explain <trace.jsonl> --validate     schema check only
//! trace_explain <trace.jsonl> --summary      overview + per-flow event-type
//!                                            counts and first/last timestamps
//! trace_explain <trace.jsonl> --flow N       causal chain for flow N
//! ```
//!
//! Exits nonzero if the trace fails validation.

use conga_trace::explain;

fn usage() -> ! {
    eprintln!("usage: trace_explain <trace.jsonl> [--validate] [--summary] [--flow N]");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut validate_only = false;
    let mut summary = false;
    let mut flow: Option<u64> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--validate" => validate_only = true,
            "--summary" => summary = true,
            "--flow" => {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| usage());
                flow = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--help" | "-h" => usage(),
            a if a.starts_with("--") => usage(),
            a => {
                if path.replace(a.to_string()).is_some() {
                    usage();
                }
            }
        }
        i += 1;
    }
    let Some(path) = path else { usage() };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_explain: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match explain::validate(&text) {
        Ok(s) => {
            if validate_only {
                println!(
                    "{path}: ok ({} events, {} flows, span {:.3} ms)",
                    s.events,
                    s.flows,
                    s.last_t_ns as f64 / 1e6
                );
                return;
            }
        }
        Err(e) => {
            eprintln!("{path}: INVALID: {e}");
            std::process::exit(1);
        }
    }
    match flow {
        Some(f) => print!("{}", explain::explain_flow(&text, f)),
        None => {
            let rendered = if summary {
                explain::summarize_flows(&text)
            } else {
                explain::summarize(&text)
            };
            match rendered {
                Ok(s) => print!("{s}"),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
