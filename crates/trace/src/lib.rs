//! Deterministic structured event tracing for the CONGA simulator.
//!
//! The simulator's telemetry layer (`conga-telemetry`) answers *how much*
//! — aggregate counters at quiescence. This crate answers *why*: a typed
//! event stream recording every load-balancing decision with its full
//! candidate congestion vector, every flowlet transition, DRE update,
//! feedback exchange, queue event, loss, and fault transition — enough to
//! reconstruct the causal chain behind any packet's path through the
//! fabric.
//!
//! Design constraints, in order:
//!
//! 1. **Zero overhead when disabled.** The instrumented crates hold a
//!    [`TraceHandle`], a newtype over `Option<Arc<Mutex<..>>>`. The
//!    default handle is `None`; every emission site guards on
//!    [`TraceHandle::enabled`]/[`TraceHandle::wants_flow`] (one branch on
//!    a local field) before building an event. No payload is constructed,
//!    no allocation happens, on the disabled path.
//! 2. **Determinism.** Events are recorded in simulation order with a
//!    monotonic sequence number; both exporters are pure functions of the
//!    recorded stream. Same seed + same config ⇒ byte-identical JSONL and
//!    Chrome traces (asserted in `tests/trace.rs`).
//! 3. **No dependency cycle.** Events carry plain integers (channel
//!    indices, flow ids, quantized congestion bytes) rather than types
//!    from `conga-net`/`conga-core`, so this crate sits directly above
//!    `conga-sim` and below everything it instruments.
//!
//! Two exporters ship with the recorder: newline-delimited JSON
//! ([`TraceHandle::export_jsonl`]) for grepping and programmatic replay,
//! and the Chrome `trace_event` format ([`TraceHandle::export_chrome`])
//! which opens directly in `chrome://tracing` or Perfetto with one lane
//! per fabric channel and one per sampled flow. The `trace_explain`
//! binary replays a JSONL trace and prints the decision provenance for a
//! chosen flow.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod explain;
pub mod json;

use conga_sim::SimTime;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// One candidate uplink considered by a CONGA routing decision.
///
/// `metric = max(local, remote)` is the value the decision minimizes: the
/// worst congestion the packet would see along that path (leaf→spine DRE
/// locally, spine→leaf extent from the Congestion-To-Leaf table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Global channel index of the candidate uplink.
    pub ch: u32,
    /// The LBTag the packet would carry on this uplink.
    pub lbtag: u8,
    /// Quantized local DRE register for the uplink (leaf→spine hop).
    pub local: u8,
    /// Remote congestion metric from the Congestion-To-Leaf table.
    pub remote: u8,
    /// `max(local, remote)` — the path metric actually compared.
    pub metric: u8,
}

/// A typed trace event. Every variant carries plain integers so the event
/// layer has no dependency on the network/core crates it instruments.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A packet was accepted into a channel's transmit queue.
    PacketEnqueue {
        /// Global channel index.
        ch: u32,
        /// Engine-assigned packet id.
        pkt: u64,
        /// Flow the packet belongs to.
        flow: u32,
        /// Wire size in bytes.
        size: u32,
    },
    /// A packet began serialization onto the wire (dequeue).
    PacketTx {
        /// Global channel index.
        ch: u32,
        /// Engine-assigned packet id.
        pkt: u64,
        /// Flow the packet belongs to.
        flow: u32,
        /// Wire size in bytes.
        size: u32,
    },
    /// A packet was tail-dropped by a full transmit queue.
    PacketDrop {
        /// Global channel index.
        ch: u32,
        /// Engine-assigned packet id.
        pkt: u64,
        /// Flow the packet belongs to.
        flow: u32,
        /// Wire size in bytes.
        size: u32,
    },
    /// A packet was lost to a dead link (queued, in flight, or enqueued
    /// into a failed channel). Every such event corresponds to one
    /// increment of the engine's `net.blackholed_packets` counter.
    PacketBlackhole {
        /// Global channel index of the dead channel.
        ch: u32,
        /// Engine-assigned packet id.
        pkt: u64,
        /// Flow the packet belongs to.
        flow: u32,
        /// Wire size in bytes.
        size: u32,
    },
    /// A packet was delivered to its destination host.
    PacketDeliver {
        /// Destination host id.
        host: u32,
        /// Engine-assigned packet id.
        pkt: u64,
        /// Flow the packet belongs to.
        flow: u32,
        /// Payload bytes (excluding wire overhead).
        payload: u32,
    },
    /// A leaf's DRE register absorbed bytes for an uplink transmission.
    DreUpdate {
        /// Global channel index whose DRE was updated.
        ch: u32,
        /// Flow of the packet that caused the update.
        flow: u32,
        /// Bytes added to the register.
        bytes: u32,
        /// Quantized register value immediately after the update.
        quantized: u8,
    },
    /// A new flowlet was committed to an uplink. `prev` is the port the
    /// previous flowlet of this flow used, if one existed (its presence
    /// means the previous flowlet aged out — expiry is lazy, detectable
    /// only at the next lookup).
    FlowletNew {
        /// Source leaf index.
        leaf: u32,
        /// Flow id.
        flow: u32,
        /// Channel the new flowlet was committed to.
        ch: u32,
        /// Channel the expired previous flowlet used, if any.
        prev: Option<u32>,
    },
    /// A flowlet aged out (observed at lookup time, immediately before
    /// the matching [`TraceEvent::FlowletNew`]).
    FlowletExpire {
        /// Source leaf index.
        leaf: u32,
        /// Flow id.
        flow: u32,
        /// Channel the expired flowlet had used.
        ch: u32,
    },
    /// A CONGA routing decision with its full provenance: every candidate
    /// uplink with the congestion metrics compared, and the winner.
    Decision {
        /// Source leaf index making the decision.
        leaf: u32,
        /// Flow id.
        flow: u32,
        /// Destination leaf index.
        dst_leaf: u32,
        /// Per-candidate congestion vector, in candidate order.
        candidates: Vec<Candidate>,
        /// Channel index of the chosen uplink.
        chosen: u32,
        /// LBTag the packet will carry.
        lbtag: u8,
        /// True if the tie-break kept the flow's previous port (sticky).
        sticky: bool,
    },
    /// Feedback was piggybacked onto an outgoing packet's overlay header.
    FeedbackPiggyback {
        /// Leaf originating the feedback.
        leaf: u32,
        /// Flow of the carrying packet.
        flow: u32,
        /// Destination leaf the feedback is addressed to.
        dst_leaf: u32,
        /// LBTag the feedback describes.
        lbtag: u8,
        /// Congestion metric being fed back.
        metric: u8,
    },
    /// Piggybacked feedback was harvested into a Congestion-To-Leaf table.
    FeedbackApply {
        /// Leaf applying the feedback (the original sender).
        leaf: u32,
        /// Flow of the carrying packet.
        flow: u32,
        /// Leaf the feedback came from.
        src_leaf: u32,
        /// LBTag the feedback describes.
        lbtag: u8,
        /// Congestion metric applied.
        metric: u8,
    },
    /// A subflow's congestion window changed while processing an ACK or a
    /// retransmission timeout.
    CwndUpdate {
        /// Flow id.
        flow: u32,
        /// Subflow index within the flow.
        subflow: u16,
        /// New congestion window, in bytes (fractional during congestion
        /// avoidance).
        cwnd: f64,
    },
    /// A subflow entered fast retransmit (triple duplicate ACK / SACK).
    FastRetx {
        /// Flow id.
        flow: u32,
        /// Subflow index within the flow.
        subflow: u16,
    },
    /// A subflow's retransmission timer fired.
    Rto {
        /// Flow id.
        flow: u32,
        /// Subflow index within the flow.
        subflow: u16,
    },
    /// A fabric channel changed liveness (link failure or recovery).
    /// Never subject to flow sampling.
    FaultTransition {
        /// Global channel index.
        ch: u32,
        /// New liveness state.
        up: bool,
    },
}

impl TraceEvent {
    /// The flow this event is attributed to for sampling purposes, if any.
    /// Events returning `None` (fault transitions) bypass the flow filter.
    pub fn flow(&self) -> Option<u32> {
        match *self {
            TraceEvent::PacketEnqueue { flow, .. }
            | TraceEvent::PacketTx { flow, .. }
            | TraceEvent::PacketDrop { flow, .. }
            | TraceEvent::PacketBlackhole { flow, .. }
            | TraceEvent::PacketDeliver { flow, .. }
            | TraceEvent::DreUpdate { flow, .. }
            | TraceEvent::FlowletNew { flow, .. }
            | TraceEvent::FlowletExpire { flow, .. }
            | TraceEvent::Decision { flow, .. }
            | TraceEvent::FeedbackPiggyback { flow, .. }
            | TraceEvent::FeedbackApply { flow, .. }
            | TraceEvent::CwndUpdate { flow, .. }
            | TraceEvent::FastRetx { flow, .. }
            | TraceEvent::Rto { flow, .. } => Some(flow),
            TraceEvent::FaultTransition { .. } => None,
        }
    }

    /// The stable type tag used in the JSONL `"ev"` field and as the
    /// Chrome event name.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::PacketEnqueue { .. } => "enqueue",
            TraceEvent::PacketTx { .. } => "tx",
            TraceEvent::PacketDrop { .. } => "drop",
            TraceEvent::PacketBlackhole { .. } => "blackhole",
            TraceEvent::PacketDeliver { .. } => "deliver",
            TraceEvent::DreUpdate { .. } => "dre",
            TraceEvent::FlowletNew { .. } => "flowlet_new",
            TraceEvent::FlowletExpire { .. } => "flowlet_expire",
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::FeedbackPiggyback { .. } => "fb_piggyback",
            TraceEvent::FeedbackApply { .. } => "fb_apply",
            TraceEvent::CwndUpdate { .. } => "cwnd",
            TraceEvent::FastRetx { .. } => "fast_retx",
            TraceEvent::Rto { .. } => "rto",
            TraceEvent::FaultTransition { .. } => "fault",
        }
    }
}

/// One recorded event: sequence number, simulation timestamp, payload.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Monotonically increasing sequence number (emission order). Gaps
    /// appear only when the ring buffer evicted older records.
    pub seq: u64,
    /// Simulation time the event was emitted.
    pub t: SimTime,
    /// The event payload.
    pub event: TraceEvent,
}

/// Per-run trace configuration: which flows to sample and whether to
/// bound the recorder as a flight-recorder ring.
#[derive(Clone, Debug, Default)]
pub struct TraceConfig {
    /// Flow-id sampling filter: `None` records every flow; `Some(set)`
    /// records only events attributed to a flow in the set. Fault
    /// transitions are always recorded.
    pub flows: Option<BTreeSet<u32>>,
    /// Flight-recorder mode: `Some(cap)` keeps only the most recent
    /// `cap` records, evicting the oldest and counting evictions in
    /// [`TraceHandle::dropped`]. `None` is unbounded.
    pub ring: Option<usize>,
}

impl TraceConfig {
    /// Record every flow, unbounded.
    pub fn all() -> Self {
        Self::default()
    }

    /// Record only the given flow ids.
    pub fn for_flows<I: IntoIterator<Item = u32>>(flows: I) -> Self {
        Self {
            flows: Some(flows.into_iter().collect()),
            ring: None,
        }
    }

    /// Bound the recorder to the most recent `cap` records.
    pub fn with_ring(mut self, cap: usize) -> Self {
        self.ring = Some(cap);
        self
    }
}

/// A sink for trace events. The built-in [`TraceHandle`] recorder is the
/// only sink the simulator binaries use, but the trait lets tests and
/// external tools observe the stream without materializing it.
pub trait TraceSink {
    /// Accept one event at simulation time `now`.
    fn record(&mut self, now: SimTime, event: TraceEvent);
}

/// The in-memory recorder behind an enabled [`TraceHandle`].
#[derive(Debug)]
struct Recorder {
    cfg: TraceConfig,
    next_seq: u64,
    dropped: u64,
    records: VecDeque<TraceRecord>,
}

impl TraceSink for Recorder {
    fn record(&mut self, now: SimTime, event: TraceEvent) {
        if let (Some(set), Some(flow)) = (&self.cfg.flows, event.flow()) {
            if !set.contains(&flow) {
                return;
            }
        }
        if let Some(cap) = self.cfg.ring {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            if self.records.len() >= cap {
                self.records.pop_front();
                self.dropped += 1;
            }
        }
        self.records.push_back(TraceRecord {
            seq: self.next_seq,
            t: now,
            event,
        });
        self.next_seq += 1;
    }
}

/// A cheap-to-clone handle to a shared trace recorder.
///
/// The default handle is *disabled*: [`enabled`](Self::enabled) and
/// [`wants_flow`](Self::wants_flow) return `false` after one branch, and
/// [`emit`](Self::emit) is a no-op. Instrumented code holds a clone and
/// guards every emission site on `wants_flow`/`enabled` so that the
/// disabled path constructs no event payloads at all.
///
/// All clones within one shard share one recorder, so events from the
/// engine, the fabric policy, and the transport interleave into a single
/// sequence in simulation order. The recorder sits behind a mutex so a
/// handle can move into a shard worker thread; emission is still
/// effectively uncontended because every shard records into its own
/// handle, merged deterministically afterwards with
/// [`TraceHandle::merged`].
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<Mutex<Recorder>>>);

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => write!(f, "TraceHandle(disabled)"),
            Some(r) => write!(f, "TraceHandle({} events)", lock(r).records.len()),
        }
    }
}

/// Lock a recorder; a poisoned mutex is unrecoverable for a deterministic
/// artifact, so propagate the panic.
fn lock(r: &Arc<Mutex<Recorder>>) -> std::sync::MutexGuard<'_, Recorder> {
    r.lock().expect("trace recorder mutex poisoned")
}

impl TraceHandle {
    /// A disabled handle (same as `TraceHandle::default()`).
    pub fn disabled() -> Self {
        Self(None)
    }

    /// An enabled handle recording under the given configuration.
    pub fn recording(cfg: TraceConfig) -> Self {
        Self(Some(Arc::new(Mutex::new(Recorder {
            cfg,
            next_seq: 0,
            dropped: 0,
            records: VecDeque::new(),
        }))))
    }

    /// Deterministically merge per-shard trace streams into one handle.
    ///
    /// Records are ordered by `(time, shard index, shard-local seq)` and
    /// renumbered from zero; eviction counts sum. Because each shard's
    /// stream is itself a pure function of `(code, seed, config)` — the
    /// shard schedule does not depend on the worker count — the merged
    /// stream is byte-stable for any `--shards N`.
    pub fn merged(cfg: TraceConfig, parts: &[TraceHandle]) -> TraceHandle {
        let mut all: Vec<(u64, usize, TraceRecord)> = Vec::new();
        let mut dropped = 0u64;
        for (idx, part) in parts.iter().enumerate() {
            dropped += part.dropped();
            for rec in part.records() {
                all.push((rec.t.as_nanos(), idx, rec));
            }
        }
        all.sort_by_key(|a| (a.0, a.1, a.2.seq));
        // Re-apply the ring bound to the *merged* stream: each shard kept
        // its own newest `cap` records, so the union can exceed the cap —
        // evict the oldest of the union, exactly as one recorder would have.
        if let Some(cap) = cfg.ring {
            if all.len() > cap {
                let evict = all.len() - cap;
                dropped += evict as u64;
                all.drain(..evict);
            }
        }
        let records: VecDeque<TraceRecord> = all
            .into_iter()
            .enumerate()
            .map(|(seq, (_, _, mut rec))| {
                rec.seq = seq as u64;
                rec
            })
            .collect();
        let next_seq = records.len() as u64;
        Self(Some(Arc::new(Mutex::new(Recorder {
            cfg,
            next_seq,
            dropped,
            records,
        }))))
    }

    /// Whether any recording is active. Call sites for events without a
    /// flow attribution (fault transitions) guard on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Whether events attributed to `flow` would be recorded. Call sites
    /// guard on this *before* building event payloads, so a disabled or
    /// non-matching handle costs one branch and no allocation.
    #[inline]
    pub fn wants_flow(&self, flow: u32) -> bool {
        match &self.0 {
            None => false,
            Some(r) => match &lock(r).cfg.flows {
                None => true,
                Some(set) => set.contains(&flow),
            },
        }
    }

    /// Record one event at simulation time `now`. No-op when disabled;
    /// applies the flow filter and ring bound when enabled.
    pub fn emit(&self, now: SimTime, event: TraceEvent) {
        if let Some(r) = &self.0 {
            lock(r).record(now, event);
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |r| lock(r).records.len())
    }

    /// True when no records are held (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted by the ring bound (0 when unbounded or disabled).
    pub fn dropped(&self) -> u64 {
        self.0.as_ref().map_or(0, |r| lock(r).dropped)
    }

    /// Snapshot of the recorded stream, in sequence order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |r| lock(r).records.iter().cloned().collect())
    }

    /// Export the trace as newline-delimited JSON, one event per line,
    /// or `None` when disabled. Deterministic: a pure function of the
    /// recorded stream.
    pub fn export_jsonl(&self) -> Option<String> {
        let r = self.0.as_ref()?;
        let r = lock(r);
        let mut out = String::new();
        for rec in &r.records {
            write_jsonl_record(&mut out, rec);
            out.push('\n');
        }
        Some(out)
    }

    /// Export the trace in Chrome `trace_event` JSON format (openable in
    /// `chrome://tracing` / Perfetto), or `None` when disabled.
    ///
    /// Lanes: process 1 ("fabric") has one thread per channel carrying
    /// queue/DRE/fault events; process 2 ("flows") has one thread per
    /// sampled flow carrying decisions, flowlet transitions, feedback,
    /// and transport events. Congestion windows additionally render as
    /// counter tracks. Deterministic: a pure function of the stream.
    pub fn export_chrome(&self) -> Option<String> {
        let r = self.0.as_ref()?;
        let r = lock(r);
        Some(export_chrome_trace(&r.records))
    }
}

// ---------------------------------------------------------------------------
// JSONL exporter
// ---------------------------------------------------------------------------

/// Escape and write a JSON string literal (same escaping contract as
/// `conga-telemetry`'s report writer).
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write an `f64` deterministically: `Display`, with `.0` appended to
/// integral values so the token is unambiguously a float; non-finite
/// values become `null`.
fn write_json_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_jsonl_record(out: &mut String, rec: &TraceRecord) {
    let _ = write!(
        out,
        "{{\"seq\":{},\"t_ns\":{},\"ev\":",
        rec.seq,
        rec.t.as_nanos()
    );
    write_json_string(out, rec.event.kind());
    match &rec.event {
        TraceEvent::PacketEnqueue {
            ch,
            pkt,
            flow,
            size,
        }
        | TraceEvent::PacketTx {
            ch,
            pkt,
            flow,
            size,
        }
        | TraceEvent::PacketDrop {
            ch,
            pkt,
            flow,
            size,
        }
        | TraceEvent::PacketBlackhole {
            ch,
            pkt,
            flow,
            size,
        } => {
            let _ = write!(
                out,
                ",\"ch\":{ch},\"pkt\":{pkt},\"flow\":{flow},\"size\":{size}"
            );
        }
        TraceEvent::PacketDeliver {
            host,
            pkt,
            flow,
            payload,
        } => {
            let _ = write!(
                out,
                ",\"host\":{host},\"pkt\":{pkt},\"flow\":{flow},\"payload\":{payload}"
            );
        }
        TraceEvent::DreUpdate {
            ch,
            flow,
            bytes,
            quantized,
        } => {
            let _ = write!(
                out,
                ",\"ch\":{ch},\"flow\":{flow},\"bytes\":{bytes},\"q\":{quantized}"
            );
        }
        TraceEvent::FlowletNew {
            leaf,
            flow,
            ch,
            prev,
        } => {
            let _ = write!(
                out,
                ",\"leaf\":{leaf},\"flow\":{flow},\"ch\":{ch},\"prev\":"
            );
            match prev {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
        }
        TraceEvent::FlowletExpire { leaf, flow, ch } => {
            let _ = write!(out, ",\"leaf\":{leaf},\"flow\":{flow},\"ch\":{ch}");
        }
        TraceEvent::Decision {
            leaf,
            flow,
            dst_leaf,
            candidates,
            chosen,
            lbtag,
            sticky,
        } => {
            let _ = write!(
                out,
                ",\"leaf\":{leaf},\"flow\":{flow},\"dst_leaf\":{dst_leaf},\"cand\":["
            );
            for (i, c) in candidates.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"ch\":{},\"lbtag\":{},\"local\":{},\"remote\":{},\"metric\":{}}}",
                    c.ch, c.lbtag, c.local, c.remote, c.metric
                );
            }
            let _ = write!(
                out,
                "],\"chosen\":{chosen},\"lbtag\":{lbtag},\"sticky\":{sticky}"
            );
        }
        TraceEvent::FeedbackPiggyback {
            leaf,
            flow,
            dst_leaf,
            lbtag,
            metric,
        } => {
            let _ = write!(
                out,
                ",\"leaf\":{leaf},\"flow\":{flow},\"dst_leaf\":{dst_leaf},\"lbtag\":{lbtag},\"metric\":{metric}"
            );
        }
        TraceEvent::FeedbackApply {
            leaf,
            flow,
            src_leaf,
            lbtag,
            metric,
        } => {
            let _ = write!(
                out,
                ",\"leaf\":{leaf},\"flow\":{flow},\"src_leaf\":{src_leaf},\"lbtag\":{lbtag},\"metric\":{metric}"
            );
        }
        TraceEvent::CwndUpdate {
            flow,
            subflow,
            cwnd,
        } => {
            let _ = write!(out, ",\"flow\":{flow},\"sub\":{subflow},\"cwnd\":");
            write_json_f64(out, *cwnd);
        }
        TraceEvent::FastRetx { flow, subflow } | TraceEvent::Rto { flow, subflow } => {
            let _ = write!(out, ",\"flow\":{flow},\"sub\":{subflow}");
        }
        TraceEvent::FaultTransition { ch, up } => {
            let _ = write!(out, ",\"ch\":{ch},\"up\":{up}");
        }
    }
    out.push('}');
}

// ---------------------------------------------------------------------------
// Chrome trace_event exporter
// ---------------------------------------------------------------------------

/// Chrome process id used for per-channel fabric lanes.
const PID_FABRIC: u32 = 1;
/// Chrome process id used for per-flow lanes.
const PID_FLOWS: u32 = 2;

/// Write a Chrome `ts` value: microseconds with exactly three decimals,
/// computed from integer nanoseconds so the text is deterministic.
fn write_chrome_ts(out: &mut String, t: SimTime) {
    let ns = t.as_nanos();
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn chrome_lane(event: &TraceEvent) -> (u32, u32) {
    match *event {
        TraceEvent::PacketEnqueue { ch, .. }
        | TraceEvent::PacketTx { ch, .. }
        | TraceEvent::PacketDrop { ch, .. }
        | TraceEvent::PacketBlackhole { ch, .. }
        | TraceEvent::DreUpdate { ch, .. }
        | TraceEvent::FaultTransition { ch, .. } => (PID_FABRIC, ch),
        TraceEvent::PacketDeliver { flow, .. }
        | TraceEvent::FlowletNew { flow, .. }
        | TraceEvent::FlowletExpire { flow, .. }
        | TraceEvent::Decision { flow, .. }
        | TraceEvent::FeedbackPiggyback { flow, .. }
        | TraceEvent::FeedbackApply { flow, .. }
        | TraceEvent::CwndUpdate { flow, .. }
        | TraceEvent::FastRetx { flow, .. }
        | TraceEvent::Rto { flow, .. } => (PID_FLOWS, flow),
    }
}

fn write_chrome_args(out: &mut String, rec: &TraceRecord) {
    // Reuse the JSONL object as the args payload: it already serializes
    // every field deterministically.
    let mut line = String::new();
    write_jsonl_record(&mut line, rec);
    out.push_str(&line);
}

fn write_metadata(out: &mut String, first: &mut bool, pid: u32, tid: Option<u32>, name: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    match tid {
        None => {
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":"
            );
        }
        Some(t) => {
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{t},\"args\":{{\"name\":"
            );
        }
    }
    write_json_string(out, name);
    out.push_str("}}");
}

fn export_chrome_trace(records: &VecDeque<TraceRecord>) -> String {
    // Collect lanes first so metadata naming is complete and ordered.
    let mut fabric_lanes: BTreeSet<u32> = BTreeSet::new();
    let mut flow_lanes: BTreeSet<u32> = BTreeSet::new();
    for rec in records {
        let (pid, tid) = chrome_lane(&rec.event);
        if pid == PID_FABRIC {
            fabric_lanes.insert(tid);
        } else {
            flow_lanes.insert(tid);
        }
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    write_metadata(&mut out, &mut first, PID_FABRIC, None, "fabric");
    write_metadata(&mut out, &mut first, PID_FLOWS, None, "flows");
    for &ch in &fabric_lanes {
        write_metadata(
            &mut out,
            &mut first,
            PID_FABRIC,
            Some(ch),
            &format!("channel {ch}"),
        );
    }
    for &f in &flow_lanes {
        write_metadata(
            &mut out,
            &mut first,
            PID_FLOWS,
            Some(f),
            &format!("flow {f}"),
        );
    }
    for rec in records {
        let (pid, tid) = chrome_lane(&rec.event);
        out.push_str(",\n");
        let _ = write!(out, "{{\"name\":");
        write_json_string(&mut out, rec.event.kind());
        let _ = write!(out, ",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
        write_chrome_ts(&mut out, rec.t);
        let _ = write!(out, ",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"event\":");
        write_chrome_args(&mut out, rec);
        out.push_str("}}");
        // Congestion windows additionally render as a counter track so
        // Perfetto draws the sawtooth.
        if let TraceEvent::CwndUpdate {
            flow,
            subflow,
            cwnd,
        } = rec.event
        {
            out.push_str(",\n");
            let _ = write!(out, "{{\"name\":");
            write_json_string(&mut out, &format!("cwnd flow {flow}/{subflow}"));
            let _ = write!(out, ",\"ph\":\"C\",\"ts\":");
            write_chrome_ts(&mut out, rec.t);
            let _ = write!(
                out,
                ",\"pid\":{PID_FLOWS},\"tid\":{flow},\"args\":{{\"cwnd\":"
            );
            write_json_f64(&mut out, cwnd);
            out.push_str("}}");
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_handle_records_nothing_and_exports_none() {
        let h = TraceHandle::default();
        assert!(!h.enabled());
        assert!(!h.wants_flow(0));
        h.emit(t(1), TraceEvent::FaultTransition { ch: 0, up: false });
        assert!(h.is_empty());
        assert!(h.export_jsonl().is_none());
        assert!(h.export_chrome().is_none());
    }

    #[test]
    fn flow_filter_drops_unsampled_flows_but_keeps_faults() {
        let h = TraceHandle::recording(TraceConfig::for_flows([7]));
        assert!(h.wants_flow(7));
        assert!(!h.wants_flow(8));
        h.emit(
            t(1),
            TraceEvent::PacketTx {
                ch: 0,
                pkt: 1,
                flow: 8,
                size: 100,
            },
        );
        h.emit(
            t(2),
            TraceEvent::PacketTx {
                ch: 0,
                pkt: 2,
                flow: 7,
                size: 100,
            },
        );
        h.emit(t(3), TraceEvent::FaultTransition { ch: 4, up: false });
        let recs = h.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].event.flow(), Some(7));
        assert_eq!(recs[1].event.flow(), None);
        // Sequence numbers are assigned to accepted events only.
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
    }

    #[test]
    fn ring_mode_keeps_the_most_recent_records() {
        let h = TraceHandle::recording(TraceConfig::all().with_ring(3));
        for i in 0..10u64 {
            h.emit(
                t(i),
                TraceEvent::PacketTx {
                    ch: 0,
                    pkt: i,
                    flow: 0,
                    size: 1,
                },
            );
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.dropped(), 7);
        let recs = h.records();
        assert_eq!(recs[0].seq, 7);
        assert_eq!(recs[2].seq, 9);
    }

    #[test]
    fn jsonl_lines_parse_and_carry_decision_provenance() {
        let h = TraceHandle::recording(TraceConfig::all());
        h.emit(
            t(1500),
            TraceEvent::Decision {
                leaf: 0,
                flow: 3,
                dst_leaf: 1,
                candidates: vec![
                    Candidate {
                        ch: 4,
                        lbtag: 0,
                        local: 1,
                        remote: 2,
                        metric: 2,
                    },
                    Candidate {
                        ch: 5,
                        lbtag: 1,
                        local: 0,
                        remote: 0,
                        metric: 0,
                    },
                ],
                chosen: 5,
                lbtag: 1,
                sticky: false,
            },
        );
        let text = h.export_jsonl().unwrap();
        let v = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(v.get("ev").and_then(json::Value::as_str), Some("decision"));
        let cand = v.get("cand").and_then(json::Value::as_arr).unwrap();
        assert_eq!(cand.len(), 2);
        assert_eq!(cand[1].get("metric").and_then(json::Value::as_u64), Some(0));
        assert_eq!(v.get("chosen").and_then(json::Value::as_u64), Some(5));
    }

    #[test]
    fn chrome_export_is_valid_json_with_lane_metadata() {
        let h = TraceHandle::recording(TraceConfig::all());
        h.emit(
            t(1_000_000),
            TraceEvent::PacketEnqueue {
                ch: 2,
                pkt: 0,
                flow: 1,
                size: 1500,
            },
        );
        h.emit(
            t(2_000_500),
            TraceEvent::CwndUpdate {
                flow: 1,
                subflow: 0,
                cwnd: 10.5,
            },
        );
        let text = h.export_chrome().unwrap();
        let v = json::parse(&text).expect("chrome export must be valid JSON");
        let events = v.get("traceEvents").and_then(json::Value::as_arr).unwrap();
        // 2 process_name + 1 channel lane + 1 flow lane + 2 events + 1 counter.
        assert_eq!(events.len(), 7);
        assert_eq!(events[0].get("ph").and_then(json::Value::as_str), Some("M"));
        // ts is microseconds with three deterministic decimals.
        let text_has_ts = text.contains("\"ts\":2000.500");
        assert!(text_has_ts, "expected deterministic ts formatting");
    }
}
