//! Replay and validation of JSONL traces: the logic behind the
//! `trace_explain` binary, kept in the library so tests and CI can call
//! it directly.

use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Summary returned by a successful [`validate`] pass.
#[derive(Clone, Debug, Default)]
pub struct ValidateSummary {
    /// Total events in the trace.
    pub events: usize,
    /// Event counts by type tag.
    pub by_type: BTreeMap<String, usize>,
    /// Distinct flow ids seen (events carrying a `flow` field).
    pub flows: usize,
    /// Timestamp of the last event, nanoseconds.
    pub last_t_ns: u64,
    /// Per-flow breakdown, keyed by flow id (events carrying a `flow`
    /// field only; global events such as faults are not attributed).
    pub per_flow: BTreeMap<u64, FlowSummary>,
}

/// One flow's slice of a trace, collected during [`validate`].
#[derive(Clone, Debug, Default)]
pub struct FlowSummary {
    /// Events carrying this flow id.
    pub events: usize,
    /// Timestamp of the flow's first event, nanoseconds.
    pub first_t_ns: u64,
    /// Timestamp of the flow's last event, nanoseconds.
    pub last_t_ns: u64,
    /// Event counts by type tag, for this flow only.
    pub by_type: BTreeMap<String, usize>,
}

/// Required fields per event type, beyond the envelope (`seq`, `t_ns`,
/// `ev`). The schema check is exact: unknown types fail validation.
fn required_fields(kind: &str) -> Option<&'static [&'static str]> {
    Some(match kind {
        "enqueue" | "tx" | "drop" | "blackhole" => &["ch", "pkt", "flow", "size"],
        "deliver" => &["host", "pkt", "flow", "payload"],
        "dre" => &["ch", "flow", "bytes", "q"],
        "flowlet_new" => &["leaf", "flow", "ch", "prev"],
        "flowlet_expire" => &["leaf", "flow", "ch"],
        "decision" => &[
            "leaf", "flow", "dst_leaf", "cand", "chosen", "lbtag", "sticky",
        ],
        "fb_piggyback" => &["leaf", "flow", "dst_leaf", "lbtag", "metric"],
        "fb_apply" => &["leaf", "flow", "src_leaf", "lbtag", "metric"],
        "cwnd" => &["flow", "sub", "cwnd"],
        "fast_retx" | "rto" => &["flow", "sub"],
        "fault" => &["ch", "up"],
        _ => return None,
    })
}

/// Format a validation error anchored to its offending line: the
/// diagnostic plus the line's content (truncated for sanity), so a
/// failure is actionable without opening the trace by hand.
fn line_error(ln: usize, line: &str, msg: impl std::fmt::Display) -> String {
    const SHOW: usize = 160;
    let shown: String = line.chars().take(SHOW).collect();
    let truncated = if shown.len() < line.len() { " ..." } else { "" };
    format!("line {ln}: {msg}\n  offending line: {shown}{truncated}")
}

/// Validate a JSONL trace: every line must parse as JSON, carry the
/// envelope fields, use a known event type with its required fields,
/// have strictly increasing `seq`, and non-decreasing `t_ns`. Decision
/// events must list their chosen channel among the candidates.
///
/// Errors name the offending line number and echo its content; malformed
/// input of any shape (including invalid UTF-8 escapes and pathological
/// nesting) yields `Err`, never a panic.
pub fn validate(text: &str) -> Result<ValidateSummary, String> {
    let mut summary = ValidateSummary::default();
    let mut last_seq: Option<u64> = None;
    let mut last_t: u64 = 0;
    let mut flows = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        let v = json::parse(line).map_err(|e| line_error(ln, line, e))?;
        let seq = v
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or_else(|| line_error(ln, line, "missing seq"))?;
        let t = v
            .get("t_ns")
            .and_then(Value::as_u64)
            .ok_or_else(|| line_error(ln, line, "missing t_ns"))?;
        let ev = v
            .get("ev")
            .and_then(Value::as_str)
            .ok_or_else(|| line_error(ln, line, "missing ev"))?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(line_error(ln, line, format!("seq {seq} not above {prev}")));
            }
            if t < last_t {
                return Err(line_error(
                    ln,
                    line,
                    format!("t_ns {t} went backwards from {last_t}"),
                ));
            }
        }
        last_seq = Some(seq);
        last_t = t;
        let fields = required_fields(ev)
            .ok_or_else(|| line_error(ln, line, format!("unknown event type {ev:?}")))?;
        for f in fields {
            if v.get(f).is_none() {
                return Err(line_error(ln, line, format!("{ev} missing field {f:?}")));
            }
        }
        if ev == "decision" {
            let chosen = v
                .get("chosen")
                .and_then(Value::as_u64)
                .ok_or_else(|| line_error(ln, line, "decision chosen not a number"))?;
            let cand = v
                .get("cand")
                .and_then(Value::as_arr)
                .ok_or_else(|| line_error(ln, line, "decision cand not an array"))?;
            if cand.is_empty() {
                return Err(line_error(ln, line, "decision with no candidates"));
            }
            let mut found = false;
            for c in cand {
                for f in ["ch", "lbtag", "local", "remote", "metric"] {
                    if c.get(f).and_then(Value::as_u64).is_none() {
                        return Err(line_error(ln, line, format!("candidate missing {f:?}")));
                    }
                }
                if c.get("ch").and_then(Value::as_u64) == Some(chosen) {
                    found = true;
                }
            }
            if !found {
                return Err(line_error(
                    ln,
                    line,
                    format!("chosen channel {chosen} not among candidates"),
                ));
            }
        }
        if let Some(f) = v.get("flow").and_then(Value::as_u64) {
            flows.insert(f);
            let fs = summary.per_flow.entry(f).or_insert_with(|| FlowSummary {
                first_t_ns: t,
                ..FlowSummary::default()
            });
            fs.events += 1;
            fs.last_t_ns = t;
            *fs.by_type.entry(ev.to_string()).or_insert(0) += 1;
        }
        summary.events += 1;
        *summary.by_type.entry(ev.to_string()).or_insert(0) += 1;
    }
    summary.flows = flows.len();
    summary.last_t_ns = last_t;
    Ok(summary)
}

fn ms(t_ns: u64) -> String {
    format!("{:>10.3} ms", t_ns as f64 / 1e6)
}

/// Replay the trace and print the causal chain for one flow: flowlet
/// transitions, every routing decision with its candidate congestion
/// vector, feedback exchanges, losses, and transport reactions. Fault
/// transitions are included for context (they are global events).
///
/// The trace must already pass [`validate`]; malformed lines are skipped
/// here rather than re-reported.
pub fn explain_flow(text: &str, flow: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "causal chain for flow {flow}:");
    let mut shown = 0usize;
    let mut flow_specific = 0usize;
    let mut pkts = 0usize;
    for line in text.lines() {
        let Ok(v) = json::parse(line) else { continue };
        let Some(t) = v.get("t_ns").and_then(Value::as_u64) else {
            continue;
        };
        let Some(ev) = v.get("ev").and_then(Value::as_str) else {
            continue;
        };
        let ev_flow = v.get("flow").and_then(Value::as_u64);
        if ev != "fault" && ev_flow != Some(flow) {
            continue;
        }
        if ev_flow == Some(flow) {
            flow_specific += 1;
        }
        let num = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
        match ev {
            "fault" => {
                let up = v.get("up").and_then(Value::as_bool).unwrap_or(false);
                let _ = writeln!(
                    out,
                    "{}  FAULT      channel {} {}",
                    ms(t),
                    num("ch"),
                    if up { "recovered" } else { "FAILED" }
                );
                shown += 1;
            }
            "flowlet_new" => {
                let prev = match v.get("prev") {
                    Some(Value::Num(_)) => {
                        format!(" (previous flowlet on channel {} aged out)", num("prev"))
                    }
                    _ => String::new(),
                };
                let _ = writeln!(
                    out,
                    "{}  FLOWLET    leaf {} committed new flowlet to channel {}{}",
                    ms(t),
                    num("leaf"),
                    num("ch"),
                    prev
                );
                shown += 1;
            }
            "flowlet_expire" => {
                let _ = writeln!(
                    out,
                    "{}  FLOWLET    leaf {} flowlet on channel {} expired",
                    ms(t),
                    num("leaf"),
                    num("ch")
                );
                shown += 1;
            }
            "decision" => {
                let sticky = v.get("sticky").and_then(Value::as_bool).unwrap_or(false);
                let _ = writeln!(
                    out,
                    "{}  DECISION   leaf {} -> leaf {}: chose channel {} (lbtag {}){}",
                    ms(t),
                    num("leaf"),
                    num("dst_leaf"),
                    num("chosen"),
                    num("lbtag"),
                    if sticky { " [sticky]" } else { "" }
                );
                if let Some(cand) = v.get("cand").and_then(Value::as_arr) {
                    for c in cand {
                        let g = |k: &str| c.get(k).and_then(Value::as_u64).unwrap_or(0);
                        let mark = if Some(g("ch")) == v.get("chosen").and_then(Value::as_u64) {
                            " <= chosen"
                        } else {
                            ""
                        };
                        let _ = writeln!(
                            out,
                            "                 candidate ch {:>3} lbtag {:>2}: local {} remote {} -> metric {}{}",
                            g("ch"),
                            g("lbtag"),
                            g("local"),
                            g("remote"),
                            g("metric"),
                            mark
                        );
                    }
                }
                shown += 1;
            }
            "fb_piggyback" => {
                let _ = writeln!(
                    out,
                    "{}  FEEDBACK   leaf {} piggybacked lbtag {} metric {} toward leaf {}",
                    ms(t),
                    num("leaf"),
                    num("lbtag"),
                    num("metric"),
                    num("dst_leaf")
                );
                shown += 1;
            }
            "fb_apply" => {
                let _ = writeln!(
                    out,
                    "{}  FEEDBACK   leaf {} applied lbtag {} metric {} from leaf {}",
                    ms(t),
                    num("leaf"),
                    num("lbtag"),
                    num("metric"),
                    num("src_leaf")
                );
                shown += 1;
            }
            "drop" => {
                let _ = writeln!(
                    out,
                    "{}  LOSS       packet {} tail-dropped at channel {}",
                    ms(t),
                    num("pkt"),
                    num("ch")
                );
                shown += 1;
            }
            "blackhole" => {
                let _ = writeln!(
                    out,
                    "{}  LOSS       packet {} blackholed on dead channel {}",
                    ms(t),
                    num("pkt"),
                    num("ch")
                );
                shown += 1;
            }
            "fast_retx" => {
                let _ = writeln!(
                    out,
                    "{}  TRANSPORT  subflow {} entered fast retransmit",
                    ms(t),
                    num("sub")
                );
                shown += 1;
            }
            "rto" => {
                let _ = writeln!(
                    out,
                    "{}  TRANSPORT  subflow {} retransmission timeout",
                    ms(t),
                    num("sub")
                );
                shown += 1;
            }
            "cwnd" => {
                let cw = v.get("cwnd").and_then(Value::as_f64).unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "{}  TRANSPORT  subflow {} cwnd -> {:.0} bytes",
                    ms(t),
                    num("sub"),
                    cw
                );
                shown += 1;
            }
            // Per-packet queue/DRE/delivery events are summarized, not
            // printed line by line.
            _ => pkts += 1,
        }
    }
    if flow_specific == 0 {
        let _ = writeln!(
            out,
            "  (no events recorded for this flow — was it sampled?)"
        );
    } else {
        let _ = writeln!(
            out,
            "  ({} decision/loss/transport events shown; {} per-packet events elided)",
            shown, pkts
        );
    }
    out
}

/// One-paragraph overview of a trace: event counts by type, flow count,
/// and span. Used when `trace_explain` is run without `--flow`.
pub fn summarize(text: &str) -> Result<String, String> {
    let s = validate(text)?;
    let mut out = String::new();
    overview(&mut out, &s);
    Ok(out)
}

/// The detailed summary behind `trace_explain --summary`: the overview
/// plus, per flow, event-type counts and first/last timestamps.
pub fn summarize_flows(text: &str) -> Result<String, String> {
    let s = validate(text)?;
    let mut out = String::new();
    overview(&mut out, &s);
    for (flow, fs) in &s.per_flow {
        let _ = writeln!(
            out,
            "flow {flow}: {} events, first {:.3} ms, last {:.3} ms",
            fs.events,
            fs.first_t_ns as f64 / 1e6,
            fs.last_t_ns as f64 / 1e6
        );
        for (k, n) in &fs.by_type {
            let _ = writeln!(out, "    {k:<14} {n}");
        }
    }
    Ok(out)
}

fn overview(out: &mut String, s: &ValidateSummary) {
    let _ = writeln!(
        out,
        "{} events over {:.3} ms across {} flows",
        s.events,
        s.last_t_ns as f64 / 1e6,
        s.flows
    );
    for (k, n) in &s.by_type {
        let _ = writeln!(out, "  {k:<14} {n}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Candidate, TraceConfig, TraceEvent, TraceHandle};
    use conga_sim::SimTime;

    fn sample_trace() -> String {
        let h = TraceHandle::recording(TraceConfig::all());
        h.emit(
            SimTime::from_nanos(1000),
            TraceEvent::FlowletNew {
                leaf: 0,
                flow: 1,
                ch: 4,
                prev: None,
            },
        );
        h.emit(
            SimTime::from_nanos(1000),
            TraceEvent::Decision {
                leaf: 0,
                flow: 1,
                dst_leaf: 1,
                candidates: vec![Candidate {
                    ch: 4,
                    lbtag: 0,
                    local: 0,
                    remote: 0,
                    metric: 0,
                }],
                chosen: 4,
                lbtag: 0,
                sticky: false,
            },
        );
        h.emit(
            SimTime::from_nanos(2000),
            TraceEvent::FaultTransition { ch: 4, up: false },
        );
        h.emit(
            SimTime::from_nanos(3000),
            TraceEvent::PacketBlackhole {
                ch: 4,
                pkt: 9,
                flow: 1,
                size: 1500,
            },
        );
        h.export_jsonl().unwrap()
    }

    #[test]
    fn validate_accepts_generated_traces() {
        let s = validate(&sample_trace()).expect("generated trace must validate");
        assert_eq!(s.events, 4);
        assert_eq!(s.by_type["decision"], 1);
        assert_eq!(s.flows, 1);
    }

    #[test]
    fn validate_rejects_malformed_lines() {
        assert!(validate("not json\n").is_err());
        assert!(validate("{\"seq\":0,\"t_ns\":1}\n").is_err());
        // Regressing sequence numbers.
        let bad = "{\"seq\":1,\"t_ns\":1,\"ev\":\"fault\",\"ch\":0,\"up\":true}\n\
                   {\"seq\":1,\"t_ns\":2,\"ev\":\"fault\",\"ch\":0,\"up\":false}\n";
        assert!(validate(bad).is_err());
        // Chosen channel must be a candidate.
        let bad = "{\"seq\":0,\"t_ns\":1,\"ev\":\"decision\",\"leaf\":0,\"flow\":0,\
                   \"dst_leaf\":1,\"cand\":[{\"ch\":1,\"lbtag\":0,\"local\":0,\
                   \"remote\":0,\"metric\":0}],\"chosen\":2,\"lbtag\":0,\"sticky\":false}\n";
        assert!(validate(bad).is_err());
    }

    #[test]
    fn summary_breaks_down_per_flow() {
        let text = sample_trace();
        let s = validate(&text).expect("trace validates");
        let fs = &s.per_flow[&1];
        assert_eq!(fs.events, 3, "flowlet_new + decision + blackhole");
        assert_eq!(fs.first_t_ns, 1000);
        assert_eq!(fs.last_t_ns, 3000);
        assert_eq!(fs.by_type["decision"], 1);
        assert_eq!(fs.by_type["blackhole"], 1);
        let rendered = summarize_flows(&text).expect("summary renders");
        assert!(
            rendered.contains("flow 1: 3 events, first 0.001 ms, last 0.003 ms"),
            "{rendered}"
        );
        assert!(rendered.contains("decision"), "{rendered}");
    }

    #[test]
    fn explain_prints_the_causal_chain() {
        let text = sample_trace();
        let e = explain_flow(&text, 1);
        assert!(e.contains("DECISION"), "{e}");
        assert!(e.contains("candidate ch"), "{e}");
        assert!(e.contains("FAULT"), "{e}");
        assert!(e.contains("blackholed"), "{e}");
        let none = explain_flow(&text, 99);
        assert!(none.contains("no events"), "{none}");
    }
}
