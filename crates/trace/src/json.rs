//! A minimal recursive-descent JSON parser, used by `trace_explain` and
//! the trace validation tests to read back the crate's own exports. The
//! workspace is deliberately free of external dependencies, so this is
//! hand-rolled; it covers the full JSON grammar the exporters emit
//! (objects, arrays, strings with escapes, numbers, booleans, null).

/// A parsed JSON value. Numbers are held as `f64`, which is exact for
/// every integer the trace exporters emit (all below 2^53).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A JSON string (escapes decoded).
    Str(String),
    /// A JSON array.
    Arr(Vec<Value>),
    /// A JSON object, in source key order (the exporters emit stable
    /// orders, and duplicate keys never occur).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up an object key, or `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing whitespace is allowed; any
/// other trailing content is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Exporters only escape control characters, so
                            // surrogate pairs never occur in our traces.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u codepoint".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte. Decode from a
                    // bounded window: validating the whole remaining input
                    // per character would make parsing quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(window) {
                        Ok(s) => s.chars().next().unwrap(),
                        // A trailing multi-byte scalar can leave an
                        // incomplete suffix in the window; the valid prefix
                        // still holds the next scalar if there is one.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err("invalid UTF-8 in string".to_string()),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_arrays_and_objects() {
        let v = parse(r#"{"a":1,"b":[true,null,"x\n"],"c":-2.5e3}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        let arr = v.get("b").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Value::Null);
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(v.get("c").and_then(Value::as_f64), Some(-2500.0));
    }

    #[test]
    fn decodes_multibyte_scalars_in_strings() {
        // 2-, 3-, and 4-byte scalars, including one ending the document,
        // exercise the bounded decode window.
        let v = parse("\"é → 🦀\"").unwrap();
        assert_eq!(v.as_str(), Some("é → 🦀"));
        let v = parse("{\"k\":\"π\"}").unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some("π"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,").is_err());
    }
}
