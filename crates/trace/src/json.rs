//! A minimal recursive-descent JSON parser, used by `trace_explain` and
//! the trace validation tests to read back the crate's own exports. The
//! workspace is deliberately free of external dependencies, so this is
//! hand-rolled; it covers the full JSON grammar the exporters emit
//! (objects, arrays, strings with escapes, numbers, booleans, null).

/// A parsed JSON value. Numbers are held as `f64`, which is exact for
/// every integer the trace exporters emit (all below 2^53).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A JSON string (escapes decoded).
    Str(String),
    /// A JSON array.
    Arr(Vec<Value>),
    /// A JSON object, in source key order (the exporters emit stable
    /// orders, and duplicate keys never occur).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up an object key, or `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// The maximum container-nesting depth [`parse`] accepts. Recursive
/// descent means attacker-controlled nesting is attacker-controlled
/// stack use; without a cap, a line of a few thousand `[`s aborts the
/// whole process with a stack overflow that no caller can catch. Every
/// exporter in this crate nests at most 4 deep.
pub const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document. Trailing whitespace is allowed; any
/// other trailing content is an error. Malformed input of any shape —
/// truncated escapes, invalid UTF-8, nesting deeper than [`MAX_DEPTH`]
/// — returns `Err`, never panics.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser {
        bytes,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Exporters only escape control characters, so
                            // surrogate pairs never occur in our traces.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u codepoint".to_string())?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte. Decode from a
                    // bounded window: validating the whole remaining input
                    // per character would make parsing quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    // A trailing multi-byte scalar can leave an incomplete
                    // suffix in the window; the valid prefix still holds
                    // the next scalar if there is one.
                    let valid = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        Err(e) => std::str::from_utf8(&window[..e.valid_up_to()])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?,
                    };
                    let Some(c) = valid.chars().next() else {
                        return Err("invalid UTF-8 in string".to_string());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned slice is ASCII by construction, but route through a
        // fallible conversion anyway: this path must never panic.
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_arrays_and_objects() {
        let v = parse(r#"{"a":1,"b":[true,null,"x\n"],"c":-2.5e3}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        let arr = v.get("b").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Value::Null);
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(v.get("c").and_then(Value::as_f64), Some(-2500.0));
    }

    #[test]
    fn decodes_multibyte_scalars_in_strings() {
        // 2-, 3-, and 4-byte scalars, including one ending the document,
        // exercise the bounded decode window.
        let v = parse("\"é → 🦀\"").unwrap();
        assert_eq!(v.as_str(), Some("é → 🦀"));
        let v = parse("{\"k\":\"π\"}").unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some("π"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,").is_err());
    }

    #[test]
    fn rejects_truncated_and_invalid_escapes() {
        assert!(parse("\"\\").is_err());
        assert!(parse("\"\\u").is_err());
        assert!(parse("\"\\u00").is_err());
        assert!(parse("\"\\u12").is_err());
        assert!(parse("\"\\uzzzz\"").is_err());
        assert!(parse("\"\\ud800\"").is_err(), "lone surrogate");
        assert!(parse("\"\\q\"").is_err());
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn caps_nesting_depth_instead_of_overflowing_the_stack() {
        // Well past any real stack limit: without the cap this aborts the
        // process, which no test harness can recover from.
        let deep_arr = "[".repeat(100_000);
        assert!(parse(&deep_arr).unwrap_err().contains("nesting deeper"));
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(parse(&deep_obj).unwrap_err().contains("nesting deeper"));
        // Exactly at the cap still parses.
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let over = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(parse(&over).is_err());
        // Depth is nesting, not total container count: siblings don't
        // accumulate.
        let wide = format!("[{}]", vec!["[]"; 10 * MAX_DEPTH].join(","));
        assert!(parse(&wide).is_ok());
    }
}
