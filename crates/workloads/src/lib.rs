//! # conga-workloads — datacenter workload models
//!
//! Everything the paper's evaluation throws at the fabric:
//!
//! * [`FlowSizeDist`] — the empirical enterprise / data-mining / web-search
//!   flow-size distributions (paper Figure 8);
//! * [`PoissonPlan`] — the §5.2 open-loop Poisson request generator with
//!   load expressed as a fraction of bisection bandwidth;
//! * [`IncastPattern`] — the §5.3 synchronized striped-read pattern;
//! * [`HdfsJob`] — the §5.4 TestDFSIO write model (blocks, 3-way
//!   replication pipelines, closed loop);
//! * [`trace`] — synthetic bursty packet traces and the flowlet splitter
//!   behind Figure 5.

#![warn(missing_docs)]

mod arrivals;
mod dist;
mod hdfs;
pub mod trace;

pub use arrivals::{Arrival, IncastPattern, PoissonPlan};
pub use dist::FlowSizeDist;
pub use hdfs::{BlockPipeline, HdfsJob};
