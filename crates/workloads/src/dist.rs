//! Empirical flow-size distributions (paper Figure 8 and §5.5).
//!
//! Three workloads drive the evaluation:
//!
//! * **Enterprise** — derived from the authors' own production traces
//!   (§2.6): mostly small flows; roughly half of all bytes come from flows
//!   smaller than 35 MB. The "lighter" workload where even ECMP does well.
//! * **Data-mining** — from a large analytics cluster (VL2's distribution,
//!   also used by pFabric): extremely heavy-tailed, ~3.6 % of flows are
//!   larger than 35 MB yet carry ~95 % of the bytes.
//! * **Web-search** — the DCTCP cluster distribution, used for the
//!   large-scale simulations (Figures 15 and 16).
//!
//! Distributions are piecewise log-linear interpolations of published CDF
//! points. [`FlowSizeDist::byte_fraction_below`] and
//! [`FlowSizeDist::coeff_of_variation`] expose the byte-weighted and
//! second-moment structure that Theorem 2 ties to load-balancing
//! difficulty.

use conga_sim::SimRng;

/// A flow-size distribution given as CDF breakpoints `(bytes, P[S <= bytes])`.
#[derive(Clone, Debug)]
pub struct FlowSizeDist {
    name: &'static str,
    /// Strictly increasing in both coordinates; first prob is 0, last is 1.
    points: Vec<(f64, f64)>,
}

impl FlowSizeDist {
    /// Build from CDF breakpoints. Panics on malformed input.
    pub fn from_points(name: &'static str, points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        assert_eq!(points[0].1, 0.0, "CDF must start at probability 0");
        assert!(
            (points.last().expect("non-empty").1 - 1.0).abs() < 1e-9,
            "CDF must end at probability 1"
        );
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must increase");
            assert!(w[0].1 <= w[1].1, "probabilities must not decrease");
        }
        FlowSizeDist {
            name,
            points: points.to_vec(),
        }
    }

    /// The enterprise workload of paper Figure 8(a).
    ///
    /// Calibrated so that (i) the median flow is a few kB, (ii) ~half of
    /// all *bytes* come from flows under 35 MB — the paper's headline
    /// characterization.
    pub fn enterprise() -> Self {
        Self::from_points(
            "enterprise",
            &[
                (100.0, 0.0),
                (500.0, 0.2),
                (1_000.0, 0.30),
                (5_000.0, 0.52),
                (10_000.0, 0.60),
                (50_000.0, 0.75),
                (100_000.0, 0.80),
                (500_000.0, 0.90),
                (1_000_000.0, 0.93),
                (5_000_000.0, 0.97),
                (10_000_000.0, 0.982),
                (35_000_000.0, 0.992),
                (90_000_000.0, 1.0),
            ],
        )
    }

    /// The data-mining workload of paper Figure 8(b) (VL2 / pFabric).
    pub fn data_mining() -> Self {
        Self::from_points(
            "data-mining",
            &[
                (100.0, 0.0),
                (180.0, 0.10),
                (250.0, 0.20),
                (560.0, 0.30),
                (900.0, 0.40),
                (1_100.0, 0.50),
                (1_870.0, 0.60),
                (3_160.0, 0.70),
                (10_000.0, 0.80),
                (400_000.0, 0.90),
                (3_160_000.0, 0.95),
                (100_000_000.0, 0.98),
                (1_000_000_000.0, 1.0),
            ],
        )
    }

    /// The web-search workload (DCTCP cluster), for Figures 15–16.
    pub fn web_search() -> Self {
        Self::from_points(
            "web-search",
            &[
                (6_000.0, 0.0),
                (10_000.0, 0.15),
                (13_000.0, 0.20),
                (19_000.0, 0.30),
                (33_000.0, 0.40),
                (53_000.0, 0.53),
                (133_000.0, 0.60),
                (667_000.0, 0.70),
                (1_333_000.0, 0.80),
                (3_333_000.0, 0.90),
                (6_667_000.0, 0.95),
                (20_000_000.0, 0.98),
                (30_000_000.0, 1.0),
            ],
        )
    }

    /// Workload name for experiment output.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Inverse-CDF sampling with log-linear interpolation between
    /// breakpoints (sizes span 7 orders of magnitude, so interpolating in
    /// log-size is the faithful choice).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.f64();
        let i = match self
            .points
            .binary_search_by(|&(_, p)| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i,
        };
        if i == 0 {
            return self.points[0].0 as u64;
        }
        if i >= self.points.len() {
            return self.points.last().expect("non-empty").0 as u64;
        }
        let (x0, p0) = self.points[i - 1];
        let (x1, p1) = self.points[i];
        if p1 <= p0 {
            return x1 as u64;
        }
        let f = (u - p0) / (p1 - p0);
        let lx = x0.ln() + f * (x1.ln() - x0.ln());
        lx.exp().max(1.0) as u64
    }

    /// Mean flow size in bytes (numerical, via fine inverse-CDF quadrature).
    pub fn mean(&self) -> f64 {
        self.moment(1)
    }

    /// Coefficient of variation `σ/μ` of the flow size.
    pub fn coeff_of_variation(&self) -> f64 {
        let m1 = self.moment(1);
        let m2 = self.moment(2);
        (m2 - m1 * m1).max(0.0).sqrt() / m1
    }

    fn moment(&self, k: i32) -> f64 {
        // Integrate x^k dP using the log-linear interpolation, by fine
        // uniform sampling of the inverse CDF.
        const STEPS: usize = 200_000;
        let mut acc = 0.0;
        for j in 0..STEPS {
            let u = (j as f64 + 0.5) / STEPS as f64;
            acc += self.quantile(u).powi(k);
        }
        acc / STEPS as f64
    }

    /// The u-quantile of the size distribution.
    pub fn quantile(&self, u: f64) -> f64 {
        let i = match self
            .points
            .binary_search_by(|&(_, p)| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i,
        };
        if i == 0 {
            return self.points[0].0;
        }
        if i >= self.points.len() {
            return self.points.last().expect("non-empty").0;
        }
        let (x0, p0) = self.points[i - 1];
        let (x1, p1) = self.points[i];
        if p1 <= p0 {
            return x1;
        }
        let f = (u - p0) / (p1 - p0);
        (x0.ln() + f * (x1.ln() - x0.ln())).exp()
    }

    /// Fraction of all *bytes* carried by flows of size ≤ `x` (the
    /// byte-weighted CDF the paper plots alongside the flow CDF).
    pub fn byte_fraction_below(&self, x: f64) -> f64 {
        const STEPS: usize = 200_000;
        let mut below = 0.0;
        let mut total = 0.0;
        for j in 0..STEPS {
            let u = (j as f64 + 0.5) / STEPS as f64;
            let s = self.quantile(u);
            total += s;
            if s <= x {
                below += s;
            }
        }
        below / total
    }

    /// CDF value `P[S <= x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.points[0].0 {
            return 0.0;
        }
        if x >= self.points.last().expect("non-empty").0 {
            return 1.0;
        }
        let i = self.points.partition_point(|&(s, _)| s <= x).max(1);
        let (x0, p0) = self.points[i - 1];
        let (x1, p1) = self.points[i];
        let f = (x.ln() - x0.ln()) / (x1.ln() - x0.ln());
        p0 + f * (p1 - p0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_matches_cdf_breakpoints() {
        let d = FlowSizeDist::data_mining();
        let mut rng = SimRng::new(1);
        let n = 200_000;
        let mut below_10k = 0usize;
        for _ in 0..n {
            if d.sample(&mut rng) <= 10_000 {
                below_10k += 1;
            }
        }
        let frac = below_10k as f64 / n as f64;
        assert!((frac - 0.80).abs() < 0.01, "P[S<=10k] = {frac}, want 0.80");
    }

    #[test]
    fn data_mining_is_very_heavy_tailed() {
        let d = FlowSizeDist::data_mining();
        // Paper: flows > 35MB are ~3.6% of flows but ~95% of bytes.
        let p_large = 1.0 - d.cdf(35e6);
        assert!((0.02..=0.06).contains(&p_large), "P[S>35M] = {p_large}");
        let bytes_small = d.byte_fraction_below(35e6);
        assert!(
            bytes_small < 0.15,
            "data-mining: flows <35MB carry {bytes_small:.2} of bytes, paper says ~5%"
        );
    }

    #[test]
    fn enterprise_half_the_bytes_below_35mb() {
        let d = FlowSizeDist::enterprise();
        let frac = d.byte_fraction_below(35e6);
        assert!(
            (0.35..=0.65).contains(&frac),
            "enterprise: {frac:.2} of bytes below 35MB, paper says ~50%"
        );
    }

    #[test]
    fn enterprise_lighter_than_data_mining() {
        let e = FlowSizeDist::enterprise();
        let d = FlowSizeDist::data_mining();
        assert!(
            e.coeff_of_variation() < d.coeff_of_variation(),
            "CV(enterprise) {} must be below CV(data-mining) {}",
            e.coeff_of_variation(),
            d.coeff_of_variation()
        );
    }

    #[test]
    fn means_are_in_plausible_ranges() {
        // Sanity anchors for load computation (flows/sec = load*C/(8*mean)).
        let e = FlowSizeDist::enterprise().mean();
        let d = FlowSizeDist::data_mining().mean();
        let w = FlowSizeDist::web_search().mean();
        assert!((50e3..2e6).contains(&e), "enterprise mean {e}");
        assert!((1e6..20e6).contains(&d), "data-mining mean {d}");
        assert!((0.5e6..5e6).contains(&w), "web-search mean {w}");
    }

    #[test]
    fn quantiles_monotone() {
        let d = FlowSizeDist::web_search();
        let mut prev = 0.0;
        for j in 1..100 {
            let q = d.quantile(j as f64 / 100.0);
            assert!(q >= prev, "quantile not monotone at {j}");
            prev = q;
        }
    }

    #[test]
    fn cdf_and_quantile_are_inverses() {
        let d = FlowSizeDist::enterprise();
        for &u in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let x = d.quantile(u);
            let back = d.cdf(x);
            assert!((back - u).abs() < 0.01, "u={u} -> x={x} -> {back}");
        }
    }

    #[test]
    #[should_panic(expected = "CDF must start")]
    fn malformed_cdf_rejected() {
        FlowSizeDist::from_points("bad", &[(10.0, 0.5), (20.0, 1.0)]);
    }

    #[test]
    fn mean_matches_montecarlo() {
        let d = FlowSizeDist::web_search();
        let mut rng = SimRng::new(7);
        let n = 300_000;
        let mc: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let analytic = d.mean();
        assert!(
            (mc - analytic).abs() / analytic < 0.05,
            "MC {mc} vs quadrature {analytic}"
        );
    }
}
