//! Open-loop flow arrival processes (the paper's §5.2 traffic generator).
//!
//! The testbed methodology: clients request flows according to a Poisson
//! process from randomly chosen servers, with sizes sampled from an
//! empirical distribution, and the request rate set by the target offered
//! load. Clients under Leaf 0 use servers under Leaf 1 and vice-versa so
//! all traffic crosses the spine.

use crate::dist::FlowSizeDist;
use conga_sim::{SimDuration, SimRng};

/// One planned flow arrival.
#[derive(Clone, Copy, Debug)]
pub struct Arrival {
    /// Gap after the previous arrival.
    pub gap: SimDuration,
    /// Index into the source host group.
    pub src: u32,
    /// Index into the destination host group.
    pub dst: u32,
    /// Flow size in bytes.
    pub bytes: u64,
}

/// Poisson open-loop arrival plan between two host groups.
///
/// `load` is the fraction of `capacity_bps` the offered traffic should
/// consume in each direction; the arrival rate is
/// `load * capacity / (8 * E[S])` flows per second per direction.
#[derive(Clone, Debug)]
pub struct PoissonPlan {
    /// Arrivals in time order (direction A→B and B→A interleaved).
    pub forward: Vec<Arrival>,
    /// Arrivals for the reverse direction.
    pub reverse: Vec<Arrival>,
    /// The arrival rate per direction, flows/sec.
    pub rate_per_dir: f64,
}

impl PoissonPlan {
    /// Generate `n_flows` arrivals per direction.
    ///
    /// * `group_a`, `group_b` — host counts of the two groups;
    /// * `capacity_bps` — the bisection capacity the load is relative to;
    /// * `load` — offered load fraction (0, 1];
    /// * sources and destinations are chosen uniformly at random.
    pub fn generate(
        dist: &FlowSizeDist,
        group_a: u32,
        group_b: u32,
        capacity_bps: u64,
        load: f64,
        n_flows: usize,
        rng: &mut SimRng,
    ) -> PoissonPlan {
        assert!(load > 0.0 && load <= 1.2, "silly load {load}");
        let rate = load * capacity_bps as f64 / (8.0 * dist.mean());
        let gen_dir = |src_n: u32, dst_n: u32, rng: &mut SimRng| {
            (0..n_flows)
                .map(|_| Arrival {
                    gap: SimDuration::from_secs_f64(rng.exp(rate)),
                    src: rng.below(src_n as usize) as u32,
                    dst: rng.below(dst_n as usize) as u32,
                    bytes: dist.sample(rng),
                })
                .collect::<Vec<_>>()
        };
        let forward = gen_dir(group_a, group_b, rng);
        let reverse = gen_dir(group_b, group_a, rng);
        PoissonPlan {
            forward,
            reverse,
            rate_per_dir: rate,
        }
    }
}

/// The synchronized Incast pattern (paper §5.3): a client requests a file
/// striped over `fanout` servers; all servers respond at once with
/// `total_bytes / fanout` each.
#[derive(Clone, Debug)]
pub struct IncastPattern {
    /// Bytes each server sends.
    pub per_server: u64,
    /// Number of concurrent senders.
    pub fanout: u32,
}

impl IncastPattern {
    /// The paper's setup: a 10 MB file striped over `fanout` servers.
    pub fn paper(fanout: u32) -> Self {
        IncastPattern {
            per_server: (10_000_000u64).div_ceil(fanout as u64),
            fanout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_matches_load() {
        let dist = FlowSizeDist::enterprise();
        let mut rng = SimRng::new(3);
        let cap = 160_000_000_000u64; // 160G bisection
        let load = 0.6;
        let plan = PoissonPlan::generate(&dist, 32, 32, cap, load, 20_000, &mut rng);
        // Offered bits/sec ~= sum(bytes)*8 / duration.
        let dur: f64 = plan
            .forward
            .iter()
            .map(|a| a.gap.as_secs_f64())
            .sum::<f64>();
        let bits: f64 = plan.forward.iter().map(|a| a.bytes as f64 * 8.0).sum();
        let offered = bits / dur;
        let target = load * cap as f64;
        assert!(
            (offered - target).abs() / target < 0.15,
            "offered {offered:.3e} vs target {target:.3e}"
        );
    }

    #[test]
    fn arrivals_cover_both_directions_and_all_hosts() {
        let dist = FlowSizeDist::web_search();
        let mut rng = SimRng::new(4);
        let plan = PoissonPlan::generate(&dist, 8, 8, 80_000_000_000, 0.4, 4000, &mut rng);
        assert_eq!(plan.forward.len(), 4000);
        assert_eq!(plan.reverse.len(), 4000);
        let used: std::collections::HashSet<u32> = plan.forward.iter().map(|a| a.src).collect();
        assert_eq!(used.len(), 8, "every source host participates");
    }

    #[test]
    fn incast_stripes_the_file() {
        let p = IncastPattern::paper(16);
        assert_eq!(p.per_server, 625_000);
        assert_eq!(p.fanout, 16);
        // Striping never loses bytes.
        assert!(p.per_server * 16 >= 10_000_000);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let dist = FlowSizeDist::data_mining();
        let mk = || {
            let mut rng = SimRng::new(9);
            PoissonPlan::generate(&dist, 4, 4, 40_000_000_000, 0.5, 100, &mut rng)
                .forward
                .iter()
                .map(|a| (a.gap.as_nanos(), a.src, a.dst, a.bytes))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
