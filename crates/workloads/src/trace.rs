//! Synthetic bursty packet-trace generation and flowlet splitting — the
//! substitute for the production packet captures behind paper Figure 5
//! (§2.6.1).
//!
//! The paper's measurement: flows in production datacenters transmit as
//! short line-rate *bursts* separated by sub-millisecond idle gaps (NIC
//! offload, application pacing), so even small flowlet-inactivity gaps
//! carve flows into much smaller flowlets. We reproduce the phenomenon
//! with a generator that emits each flow as a sequence of offload-sized
//! bursts at line rate with lognormal inter-burst gaps, then measure —
//! exactly as the paper does — how the *bytes* distribute across transfer
//! sizes when the trace is split at different inactivity gaps.

use crate::dist::FlowSizeDist;
use conga_sim::{SimDuration, SimRng, SimTime};

/// One packet record of a synthetic trace.
#[derive(Clone, Copy, Debug)]
pub struct TracePkt {
    /// Transmission timestamp.
    pub at: SimTime,
    /// Flow the packet belongs to.
    pub flow: u32,
    /// Payload bytes.
    pub bytes: u32,
}

/// Parameters of the burst-structure model.
#[derive(Clone, Copy, Debug)]
pub struct BurstModel {
    /// NIC line rate while bursting, bits/sec.
    pub line_rate_bps: u64,
    /// Mean burst size in bytes (TSO/GSO chunk trains; ~64 KB typical).
    pub mean_burst_bytes: f64,
    /// Lognormal σ of the inter-burst gap (in log-space).
    pub gap_sigma: f64,
    /// Median inter-burst gap.
    pub median_gap: SimDuration,
    /// Packet size on the wire.
    pub pkt_bytes: u32,
}

impl Default for BurstModel {
    fn default() -> Self {
        BurstModel {
            line_rate_bps: 10_000_000_000,
            mean_burst_bytes: 64.0 * 1024.0,
            gap_sigma: 1.2,
            median_gap: SimDuration::from_micros(300),
            pkt_bytes: 1460,
        }
    }
}

/// Generate a packet trace of `n_flows` flows drawn from `dist`, each
/// transmitted as bursts per `model`, with flow start times spread by a
/// Poisson process of `flow_rate` flows/sec.
pub fn generate_trace(
    dist: &FlowSizeDist,
    model: &BurstModel,
    n_flows: u32,
    flow_rate: f64,
    rng: &mut SimRng,
) -> Vec<TracePkt> {
    let mut pkts = Vec::new();
    let mut start = SimTime::ZERO;
    let gap_mu = (model.median_gap.as_nanos() as f64).ln();
    for flow in 0..n_flows {
        start += SimDuration::from_secs_f64(rng.exp(flow_rate));
        let mut remaining = dist.sample(rng);
        let mut t = start;
        while remaining > 0 {
            // One burst: an exponential-sized train of packets at line rate.
            let burst = (rng.exp(1.0 / model.mean_burst_bytes) as u64)
                .clamp(model.pkt_bytes as u64, 4 << 20)
                .min(remaining);
            let mut sent = 0u64;
            while sent < burst {
                let b = (burst - sent).min(model.pkt_bytes as u64) as u32;
                pkts.push(TracePkt {
                    at: t,
                    flow,
                    bytes: b,
                });
                t += SimDuration::serialization(b as u64, model.line_rate_bps);
                sent += b as u64;
            }
            remaining -= burst;
            if remaining > 0 {
                // Idle gap before the next burst (lognormal, median as set).
                let gap_ns = rng.lognormal(gap_mu, model.gap_sigma);
                t += SimDuration::from_nanos(gap_ns as u64);
            }
        }
    }
    pkts.sort_by_key(|p| (p.at, p.flow));
    pkts
}

/// Split a trace into transfers at inactivity gap `gap` (per flow) and
/// return each transfer's size in bytes. `gap = None` returns whole-flow
/// sizes (the paper's "Flow (250 ms)" reference curve is equivalent: no
/// intra-flow gap exceeds 250 ms).
pub fn split_flowlets(pkts: &[TracePkt], gap: Option<SimDuration>) -> Vec<u64> {
    use std::collections::HashMap;
    // (last packet time, current flowlet size)
    let mut state: HashMap<u32, (SimTime, u64)> = HashMap::new();
    let mut out = Vec::new();
    for p in pkts {
        let e = state.entry(p.flow).or_insert((p.at, 0));
        if let Some(g) = gap {
            if p.at.saturating_since(e.0) > g && e.1 > 0 {
                out.push(e.1);
                e.1 = 0;
            }
        }
        e.0 = p.at;
        e.1 += p.bytes as u64;
    }
    out.extend(state.values().map(|&(_, sz)| sz).filter(|&s| s > 0));
    out
}

/// The byte-weighted CDF of transfer sizes: fraction of all bytes carried
/// by transfers of size ≤ x, evaluated at each distinct size (paper
/// Figure 5's y-axis). Returns sorted `(size, cumulative byte fraction)`.
pub fn bytes_by_size_cdf(sizes: &[u64]) -> Vec<(u64, f64)> {
    let mut s: Vec<u64> = sizes.to_vec();
    s.sort_unstable();
    let total: u128 = s.iter().map(|&x| x as u128).sum();
    let mut acc: u128 = 0;
    let mut out = Vec::with_capacity(s.len());
    for x in s {
        acc += x as u128;
        out.push((x, acc as f64 / total as f64));
    }
    out
}

/// The size below which `frac` of the bytes live (inverse of
/// [`bytes_by_size_cdf`]); the paper quotes the 50 % point.
pub fn byte_weighted_quantile(sizes: &[u64], frac: f64) -> u64 {
    let cdf = bytes_by_size_cdf(sizes);
    cdf.iter()
        .find(|&&(_, f)| f >= frac)
        .map(|&(x, _)| x)
        .unwrap_or_else(|| cdf.last().map(|&(x, _)| x).unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace(seed: u64) -> Vec<TracePkt> {
        let mut rng = SimRng::new(seed);
        generate_trace(
            &FlowSizeDist::enterprise(),
            &BurstModel::default(),
            400,
            2_000.0,
            &mut rng,
        )
    }

    #[test]
    fn trace_is_time_sorted_and_conserves_bytes() {
        let t = small_trace(1);
        assert!(t.windows(2).all(|w| w[0].at <= w[1].at));
        let total: u64 = t.iter().map(|p| p.bytes as u64).sum();
        // Splitting with no gap must conserve bytes exactly.
        let sizes = split_flowlets(&t, None);
        assert_eq!(sizes.iter().sum::<u64>(), total);
        assert_eq!(sizes.len(), 400, "one transfer per flow with no gap");
    }

    #[test]
    fn smaller_gaps_make_smaller_flowlets() {
        let t = small_trace(2);
        let flows = split_flowlets(&t, None);
        let fl500 = split_flowlets(&t, Some(SimDuration::from_micros(500)));
        let fl100 = split_flowlets(&t, Some(SimDuration::from_micros(100)));
        assert!(fl500.len() > flows.len());
        assert!(fl100.len() >= fl500.len());
        // Byte conservation under any split.
        let total: u64 = flows.iter().sum();
        assert_eq!(fl500.iter().sum::<u64>(), total);
        assert_eq!(fl100.iter().sum::<u64>(), total);
    }

    #[test]
    fn flowlet_split_shrinks_byte_weighted_median_by_orders_of_magnitude() {
        // The headline of paper Figure 5: with a 500us gap, the size that
        // covers half the bytes drops by ~2 orders of magnitude.
        let t = small_trace(3);
        let m_flow = byte_weighted_quantile(&split_flowlets(&t, None), 0.5);
        let m_500 = byte_weighted_quantile(
            &split_flowlets(&t, Some(SimDuration::from_micros(500))),
            0.5,
        );
        assert!(
            m_flow as f64 / m_500 as f64 > 10.0,
            "median bytes-transfer {m_flow} -> {m_500}: expected >=10x reduction"
        );
    }

    #[test]
    fn burst_gaps_respect_line_rate() {
        // Within a burst, packets are spaced at exactly the line rate. A
        // single flow can be a lone packet (most enterprise flows are
        // tiny), so sample enough flows that at least one multi-packet
        // burst is all but certain.
        let mut rng = SimRng::new(4);
        let model = BurstModel::default();
        let t = generate_trace(&FlowSizeDist::enterprise(), &model, 40, 1000.0, &mut rng);
        let per_pkt = SimDuration::serialization(1460, model.line_rate_bps);
        let mut in_burst = 0;
        for w in t.windows(2) {
            if w[1].at - w[0].at == per_pkt {
                in_burst += 1;
            }
        }
        assert!(in_burst > 0, "no back-to-back line-rate packets found");
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let t = small_trace(5);
        let cdf = bytes_by_size_cdf(&split_flowlets(&t, Some(SimDuration::from_micros(500))));
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 <= w[1].0));
        assert!((cdf.last().expect("non-empty").1 - 1.0).abs() < 1e-9);
    }
}
