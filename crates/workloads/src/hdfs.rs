//! HDFS write-benchmark model (paper §5.4, Figure 14).
//!
//! The paper runs Hadoop `TestDFSIO`: a MapReduce job writing a large file
//! into HDFS with 3-way replication, measuring job completion time. The
//! network-visible structure is: each writer streams its share of the file
//! in blocks; each block is replicated through a pipeline of three
//! datanodes (writer → DN1 → DN2 → DN3, with DN1/DN2 forwarding as they
//! receive). The job finishes when the last block's last replica lands.
//!
//! [`HdfsJob`] plans the block pipelines up front (deterministic given a
//! seed) and exposes a closed-loop state machine: the experiment harness
//! starts the flows of a writer's current block, and when all three
//! pipeline flows complete, asks for the next block.

use conga_sim::SimRng;

/// One replication pipeline: three point-to-point transfers of one block.
#[derive(Clone, Copy, Debug)]
pub struct BlockPipeline {
    /// writer → first datanode.
    pub hop1: (u32, u32),
    /// first → second datanode.
    pub hop2: (u32, u32),
    /// second → third datanode.
    pub hop3: (u32, u32),
    /// Block size in bytes.
    pub bytes: u64,
}

/// Closed-loop HDFS write job.
#[derive(Clone, Debug)]
pub struct HdfsJob {
    /// Per-writer queues of pending blocks (front = next to write).
    plans: Vec<Vec<BlockPipeline>>,
    /// Blocks currently in flight per writer.
    in_flight: Vec<Option<usize>>,
    /// Completed hop-flows of the in-flight block, per writer.
    hops_done: Vec<u8>,
    /// Total blocks completed.
    pub blocks_done: usize,
    /// Total blocks planned.
    pub blocks_total: usize,
}

impl HdfsJob {
    /// Plan a job: `writers` hosts each write `total_per_writer` bytes in
    /// `block_size` blocks; replica datanodes are chosen uniformly from
    /// `datanodes` excluding the writer (first replica remote, HDFS-style
    /// rack-aware placement is approximated by pure random placement).
    pub fn plan(
        writers: &[u32],
        datanodes: &[u32],
        total_per_writer: u64,
        block_size: u64,
        rng: &mut SimRng,
    ) -> HdfsJob {
        assert!(datanodes.len() >= 4, "need enough datanodes for pipelines");
        let mut plans = Vec::with_capacity(writers.len());
        let mut total_blocks = 0;
        for &w in writers {
            let mut blocks = Vec::new();
            let mut left = total_per_writer;
            while left > 0 {
                let bytes = left.min(block_size);
                left -= bytes;
                // Pick three distinct datanodes, none equal to the writer.
                let mut picks = Vec::with_capacity(3);
                while picks.len() < 3 {
                    let d = *rng.choose(datanodes);
                    if d != w && !picks.contains(&d) {
                        picks.push(d);
                    }
                }
                blocks.push(BlockPipeline {
                    hop1: (w, picks[0]),
                    hop2: (picks[0], picks[1]),
                    hop3: (picks[1], picks[2]),
                    bytes,
                });
                total_blocks += 1;
            }
            plans.push(blocks);
        }
        let n = plans.len();
        HdfsJob {
            plans,
            in_flight: vec![None; n],
            hops_done: vec![0; n],
            blocks_done: 0,
            blocks_total: total_blocks,
        }
    }

    /// Number of writers.
    pub fn writers(&self) -> usize {
        self.plans.len()
    }

    /// If writer `w` is idle and has blocks left, start its next block:
    /// returns the pipeline whose three hops the caller must launch.
    pub fn next_block(&mut self, w: usize) -> Option<BlockPipeline> {
        if self.in_flight[w].is_some() {
            return None;
        }
        if self.plans[w].is_empty() {
            return None;
        }
        let block = self.plans[w].remove(0);
        self.in_flight[w] = Some(0);
        self.hops_done[w] = 0;
        Some(block)
    }

    /// One hop-flow of writer `w`'s in-flight block finished. Returns true
    /// if the whole block (all three hops) is now complete.
    pub fn hop_done(&mut self, w: usize) -> bool {
        debug_assert!(self.in_flight[w].is_some(), "no block in flight");
        self.hops_done[w] += 1;
        if self.hops_done[w] == 3 {
            self.in_flight[w] = None;
            self.blocks_done += 1;
            true
        } else {
            false
        }
    }

    /// All blocks written.
    pub fn done(&self) -> bool {
        self.blocks_done == self.blocks_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seed: u64) -> HdfsJob {
        let writers: Vec<u32> = (0..8).collect();
        let datanodes: Vec<u32> = (0..32).collect();
        let mut rng = SimRng::new(seed);
        HdfsJob::plan(&writers, &datanodes, 256 << 20, 64 << 20, &mut rng)
    }

    #[test]
    fn plan_covers_all_bytes_in_blocks() {
        let mut j = job(1);
        assert_eq!(j.blocks_total, 8 * 4, "256MB / 64MB = 4 blocks per writer");
        let mut seen = 0u64;
        for w in 0..8 {
            while let Some(b) = j.next_block(w) {
                seen += b.bytes;
                for _ in 0..3 {
                    j.hop_done(w);
                }
            }
        }
        assert_eq!(seen, 8 * (256 << 20));
        assert!(j.done());
    }

    #[test]
    fn pipelines_avoid_writer_and_repeat_nodes() {
        let mut j = job(2);
        for w in 0..8 {
            while let Some(b) = j.next_block(w) {
                let nodes = [b.hop1.1, b.hop2.1, b.hop3.1];
                assert!(!nodes.contains(&(w as u32)), "replica on the writer");
                assert_eq!(b.hop1.0, w as u32);
                assert_eq!(b.hop1.1, b.hop2.0);
                assert_eq!(b.hop2.1, b.hop3.0);
                let mut uniq = nodes.to_vec();
                uniq.dedup();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), 3, "replicas must be distinct");
                for _ in 0..3 {
                    j.hop_done(w);
                }
            }
        }
    }

    #[test]
    fn closed_loop_one_block_at_a_time() {
        let mut j = job(3);
        let b = j.next_block(0);
        assert!(b.is_some());
        assert!(j.next_block(0).is_none(), "writer busy until hops complete");
        assert!(!j.hop_done(0));
        assert!(!j.hop_done(0));
        assert!(j.hop_done(0), "third hop completes the block");
        assert!(j.next_block(0).is_some());
    }

    #[test]
    fn uneven_totals_produce_short_tail_block() {
        let mut rng = SimRng::new(4);
        let j = HdfsJob::plan(
            &[0],
            &(0..8).collect::<Vec<_>>(),
            100 << 20,
            64 << 20,
            &mut rng,
        );
        assert_eq!(j.blocks_total, 2);
    }

    #[test]
    fn deterministic_plans() {
        let a = format!("{:?}", job(7).plans);
        let b = format!("{:?}", job(7).plans);
        assert_eq!(a, b);
    }
}
