//! The Discounting Rate Estimator (paper §3.2).
//!
//! One register `X` per fabric link: incremented by the packet size on every
//! transmission, multiplied by `(1 − α)` every `T_dre`. In steady state
//! `X ≈ R·τ` with `τ = T_dre/α`, so `X / (C·τ)` estimates link utilization.
//! The congestion metric is that ratio quantized to `Q` bits.
//!
//! The hardware decays on a timer; this implementation applies the same
//! discrete decay *lazily* — on each access it applies however many whole
//! `T_dre` periods have elapsed — which is numerically identical to the
//! timer version at packet/decision boundaries while requiring no simulator
//! events.

use conga_sim::{SimDuration, SimTime};

/// A single link's Discounting Rate Estimator.
#[derive(Clone, Debug)]
pub struct Dre {
    x_bytes: f64,
    last_decay: SimTime,
    tdre: SimDuration,
    one_minus_alpha: f64,
    /// `C·τ` expressed in bytes: the register value corresponding to 100 %
    /// utilization.
    full_scale_bytes: f64,
}

impl Dre {
    /// Create a DRE for a link of `rate_bps`, with decay period `tdre` and
    /// factor `alpha`.
    pub fn new(rate_bps: u64, tdre: SimDuration, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        let tau_sec = tdre.as_secs_f64() / alpha;
        Dre {
            x_bytes: 0.0,
            last_decay: SimTime::ZERO,
            tdre,
            one_minus_alpha: 1.0 - alpha,
            full_scale_bytes: rate_bps as f64 / 8.0 * tau_sec,
        }
    }

    /// Apply all whole decay periods elapsed up to `now`.
    fn decay_to(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_decay);
        let k = dt.as_nanos() / self.tdre.as_nanos();
        if k > 0 {
            // (1-α)^k with integer k; k is capped to avoid useless pow work
            // once X has underflowed to ~0.
            if k > 600 {
                self.x_bytes = 0.0;
            } else {
                self.x_bytes *= self.one_minus_alpha.powi(k as i32);
            }
            self.last_decay += self.tdre.saturating_mul(k);
        }
    }

    /// Account a transmitted packet of `bytes`.
    #[inline]
    pub fn on_send(&mut self, bytes: u32, now: SimTime) {
        self.decay_to(now);
        self.x_bytes += bytes as f64;
    }

    /// Estimated utilization `X / (C·τ)` (can transiently exceed 1 under
    /// bursts).
    #[inline]
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.decay_to(now);
        self.x_bytes / self.full_scale_bytes
    }

    /// Utilization quantized to `q_bits`: `round(util · (2^Q − 1))`, clamped
    /// to the representable range.
    #[inline]
    pub fn quantized(&mut self, now: SimTime, q_bits: u8) -> u8 {
        let max = ((1u16 << q_bits) - 1) as f64;
        let u = self.utilization(now);
        (u * max).round().min(max) as u8
    }

    /// Raw register value in bytes (for tests and debugging).
    pub fn register(&mut self, now: SimTime) -> f64 {
        self.decay_to(now);
        self.x_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS10: u64 = 10_000_000_000;

    fn dre() -> Dre {
        // Paper defaults: T_dre = 16 us, alpha = 0.1 => tau = 160 us.
        Dre::new(GBPS10, SimDuration::from_micros(16), 0.1)
    }

    /// Drive the DRE with a constant packet rate and return the register.
    fn drive(d: &mut Dre, rate_bps: f64, duration: SimDuration) -> SimTime {
        let pkt = 1500u32;
        let interval_ns = (pkt as f64 * 8.0 / rate_bps * 1e9) as u64;
        let mut t = SimTime::ZERO;
        while t < SimTime::ZERO + duration {
            d.on_send(pkt, t);
            t += SimDuration::from_nanos(interval_ns);
        }
        t
    }

    #[test]
    fn steady_state_register_approximates_rate_times_tau() {
        let mut d = dre();
        // 5 Gbps for 2 ms (>> tau): X should settle near R*tau.
        let t = drive(&mut d, 5e9, SimDuration::from_millis(2));
        let expect = 5e9 / 8.0 * 160e-6; // bytes
        let got = d.register(t);
        assert!(
            (got - expect).abs() / expect < 0.1,
            "X = {got}, expected ~{expect}"
        );
    }

    #[test]
    fn utilization_tracks_offered_rate() {
        for load in [0.25, 0.5, 0.9] {
            let mut d = dre();
            let t = drive(&mut d, load * GBPS10 as f64, SimDuration::from_millis(2));
            let u = d.utilization(t);
            assert!((u - load).abs() < 0.1, "load {load}: estimated {u}");
        }
    }

    #[test]
    fn rise_time_is_about_tau() {
        // After sending at rate R for exactly tau, X should be ~(1 - 1/e) of
        // its steady-state value (the paper calls this the DRE's rise time).
        let mut d = dre();
        let t = drive(&mut d, 8e9, SimDuration::from_micros(160));
        let steady = 8e9 / 8.0 * 160e-6;
        let frac = d.register(t) / steady;
        assert!(
            (frac - (1.0 - (-1.0f64).exp())).abs() < 0.12,
            "rise fraction {frac}"
        );
    }

    #[test]
    fn decays_toward_zero_when_idle() {
        let mut d = dre();
        let t = drive(&mut d, 9e9, SimDuration::from_millis(1));
        assert!(d.utilization(t) > 0.7);
        // After 10 tau of silence the register is essentially empty.
        let later = t + SimDuration::from_micros(1600);
        assert!(d.utilization(later) < 0.01);
        // And the long-idle fast path zeroes it exactly.
        let much_later = later + SimDuration::from_secs(1);
        assert_eq!(d.register(much_later), 0.0);
    }

    #[test]
    fn quantization_endpoints() {
        let mut d = dre();
        assert_eq!(d.quantized(SimTime::ZERO, 3), 0);
        // Saturate the register far beyond full scale; metric clamps at 7.
        for _ in 0..100_000 {
            d.on_send(1500, SimTime::from_micros(1));
        }
        assert_eq!(d.quantized(SimTime::from_micros(1), 3), 7);
        assert_eq!(d.quantized(SimTime::from_micros(1), 6), 63);
    }

    #[test]
    fn quantization_mid_scale() {
        let mut d = dre();
        let t = drive(&mut d, 0.5 * GBPS10 as f64, SimDuration::from_millis(2));
        let q = d.quantized(t, 3);
        // 50 % of 7 = 3.5: either 3 or 4 acceptable given estimator noise.
        assert!((3..=4).contains(&q), "quantized = {q}");
    }

    #[test]
    fn reacts_immediately_to_bursts() {
        // Unlike a sampled EWMA, increments land instantly: a burst is
        // visible in the very next read.
        let mut d = dre();
        let before = d.utilization(SimTime::from_micros(5));
        for _ in 0..100 {
            d.on_send(9000, SimTime::from_micros(5));
        }
        let after = d.utilization(SimTime::from_micros(5));
        assert_eq!(before, 0.0);
        assert!(after > 0.04, "burst invisible: {after}");
    }

    #[test]
    fn lazy_decay_matches_timer_decay() {
        // Applying k periods lazily must equal applying them one at a time.
        let mut lazy = dre();
        let mut step = dre();
        lazy.on_send(150_000, SimTime::ZERO);
        step.on_send(150_000, SimTime::ZERO);
        // Step version: touch at every period boundary.
        for k in 1..=50u64 {
            let t = SimTime::from_nanos(k * 16_000);
            step.register(t);
        }
        let t_end = SimTime::from_nanos(50 * 16_000);
        let a = lazy.register(t_end);
        let b = step.register(t_end);
        assert!((a - b).abs() < 1e-6, "lazy {a} vs step {b}");
    }
}
