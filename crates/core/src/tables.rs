//! The leaf switches' congestion state tables (paper §3.3, Figure 6).
//!
//! * **Congestion-To-Leaf** (at the *source* leaf): for each destination
//!   leaf and each local uplink (LBTag), the latest path congestion metric
//!   fed back by that destination. Consulted on every load-balancing
//!   decision.
//! * **Congestion-From-Leaf** (at the *destination* leaf): for each source
//!   leaf and LBTag, the latest CE seen on arriving packets — the metrics
//!   waiting to be piggybacked back. Feedback is selected round-robin,
//!   favouring entries whose value changed since they were last sent
//!   (paper §3.3 step 4).
//!
//! Both tables age: a metric not refreshed within `metric_age` reads as
//! zero, which both bounds staleness and guarantees a congested-looking
//! path is eventually probed again.

use conga_sim::{SimDuration, SimTime};

#[derive(Clone, Copy, Debug, Default)]
struct Cell {
    value: u8,
    updated_at: SimTime,
    valid: bool,
    /// From-Leaf only: value changed since last piggybacked.
    changed: bool,
}

/// Congestion-To-Leaf: remote (path-wise) congestion metrics, indexed by
/// `(destination leaf, LBTag)`.
#[derive(Clone, Debug)]
pub struct CongestionToLeaf {
    cells: Vec<Cell>,
    n_tags: usize,
    age: SimDuration,
}

impl CongestionToLeaf {
    /// Table for `n_leaves` possible destinations and `n_tags` local uplinks.
    pub fn new(n_leaves: usize, n_tags: usize, age: SimDuration) -> Self {
        CongestionToLeaf {
            cells: vec![Cell::default(); n_leaves * n_tags],
            n_tags,
            age,
        }
    }

    #[inline]
    fn idx(&self, dst_leaf: usize, tag: u8) -> usize {
        dst_leaf * self.n_tags + tag as usize
    }

    /// Store feedback: "path via your uplink `tag` toward `dst_leaf` has
    /// congestion `metric`".
    pub fn update(&mut self, dst_leaf: usize, tag: u8, metric: u8, now: SimTime) {
        let i = self.idx(dst_leaf, tag);
        self.cells[i] = Cell {
            value: metric,
            updated_at: now,
            valid: true,
            changed: false,
        };
    }

    /// Read the remote metric for `(dst_leaf, tag)`. Unknown or aged-out
    /// entries read as zero — optimistic, so unprobed paths get tried.
    pub fn read(&self, dst_leaf: usize, tag: u8, now: SimTime) -> u8 {
        let c = &self.cells[self.idx(dst_leaf, tag)];
        if !c.valid || now.saturating_since(c.updated_at) > self.age {
            0
        } else {
            c.value
        }
    }
}

/// Congestion-From-Leaf: CE metrics harvested from arriving packets,
/// indexed by `(source leaf, LBTag)`, with round-robin feedback selection.
#[derive(Clone, Debug)]
pub struct CongestionFromLeaf {
    cells: Vec<Cell>,
    /// Round-robin cursor per source leaf.
    cursor: Vec<u8>,
    n_tags: usize,
    age: SimDuration,
}

impl CongestionFromLeaf {
    /// Table for `n_leaves` possible sources, each with up to `n_tags`
    /// uplinks.
    pub fn new(n_leaves: usize, n_tags: usize, age: SimDuration) -> Self {
        CongestionFromLeaf {
            cells: vec![Cell::default(); n_leaves * n_tags],
            cursor: vec![0; n_leaves],
            n_tags,
            age,
        }
    }

    #[inline]
    fn idx(&self, src_leaf: usize, tag: u8) -> usize {
        src_leaf * self.n_tags + tag as usize
    }

    /// Record the CE of a packet that arrived from `src_leaf` with `tag`.
    pub fn record(&mut self, src_leaf: usize, tag: u8, ce: u8, now: SimTime) {
        let i = self.idx(src_leaf, tag);
        let c = &mut self.cells[i];
        // "Changed" drives the feedback priority: flag transitions only.
        if !c.valid || c.value != ce {
            c.changed = true;
        }
        c.value = ce;
        c.updated_at = now;
        c.valid = true;
    }

    /// Pick one metric to piggyback on a packet heading to `src_leaf`.
    /// Round-robin over the row, preferring changed entries; the chosen
    /// entry's changed flag is cleared. Returns `(tag, metric)`.
    pub fn select_feedback(&mut self, src_leaf: usize, now: SimTime) -> Option<(u8, u8)> {
        let start = self.cursor[src_leaf] as usize;
        let n = self.n_tags;
        let fresh = |c: &Cell| c.valid && now.saturating_since(c.updated_at) <= self.age;

        // First pass: changed entries, in round-robin order from the cursor.
        let mut pick: Option<usize> = None;
        for k in 0..n {
            let tag = (start + k) % n;
            let c = &self.cells[self.idx(src_leaf, tag as u8)];
            if fresh(c) && c.changed {
                pick = Some(tag);
                break;
            }
        }
        // Second pass: any fresh entry.
        if pick.is_none() {
            for k in 0..n {
                let tag = (start + k) % n;
                if fresh(&self.cells[self.idx(src_leaf, tag as u8)]) {
                    pick = Some(tag);
                    break;
                }
            }
        }
        let tag = pick?;
        let i = self.idx(src_leaf, tag as u8);
        self.cells[i].changed = false;
        self.cursor[src_leaf] = ((tag + 1) % n) as u8;
        Some((tag as u8, self.cells[i].value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AGE: SimDuration = SimDuration::from_millis(10);

    #[test]
    fn to_leaf_read_back() {
        let mut t = CongestionToLeaf::new(4, 12, AGE);
        t.update(2, 5, 6, SimTime::from_micros(50));
        assert_eq!(t.read(2, 5, SimTime::from_micros(60)), 6);
        assert_eq!(t.read(2, 4, SimTime::from_micros(60)), 0, "untouched tag");
        assert_eq!(t.read(1, 5, SimTime::from_micros(60)), 0, "untouched leaf");
    }

    #[test]
    fn to_leaf_ages_to_zero() {
        let mut t = CongestionToLeaf::new(2, 4, AGE);
        t.update(1, 0, 7, SimTime::ZERO);
        assert_eq!(t.read(1, 0, SimTime::from_millis(9)), 7);
        assert_eq!(
            t.read(1, 0, SimTime::from_millis(11)),
            0,
            "stale metric must decay so the path is probed again"
        );
    }

    #[test]
    fn from_leaf_records_and_feeds_back() {
        let mut t = CongestionFromLeaf::new(2, 4, AGE);
        let now = SimTime::from_micros(5);
        t.record(1, 2, 4, now);
        let (tag, m) = t.select_feedback(1, now).unwrap();
        assert_eq!((tag, m), (2, 4));
    }

    #[test]
    fn feedback_prefers_changed_metrics() {
        let mut t = CongestionFromLeaf::new(1, 4, AGE);
        let now = SimTime::from_micros(1);
        t.record(0, 0, 1, now);
        t.record(0, 1, 2, now);
        t.record(0, 2, 3, now);
        // Send feedback for all three; all start as changed.
        let mut sent: Vec<u8> = Vec::new();
        for _ in 0..3 {
            sent.push(t.select_feedback(0, now).unwrap().0);
        }
        sent.sort_unstable();
        assert_eq!(sent, vec![0, 1, 2], "round-robin covers every tag");
        // Now only tag 1 changes; it must be selected next even though the
        // cursor points elsewhere.
        t.record(0, 1, 5, now);
        assert_eq!(t.select_feedback(0, now).unwrap(), (1, 5));
    }

    #[test]
    fn feedback_round_robins_when_nothing_changed() {
        let mut t = CongestionFromLeaf::new(1, 3, AGE);
        let now = SimTime::from_micros(1);
        for tag in 0..3 {
            t.record(0, tag, tag + 1, now);
        }
        // Exhaust the changed flags.
        for _ in 0..3 {
            t.select_feedback(0, now);
        }
        // Unchanged entries still get cycled through (staleness refresh).
        let a = t.select_feedback(0, now).unwrap().0;
        let b = t.select_feedback(0, now).unwrap().0;
        let c = t.select_feedback(0, now).unwrap().0;
        let mut all = vec![a, b, c];
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn feedback_skips_stale_rows() {
        let mut t = CongestionFromLeaf::new(1, 2, AGE);
        t.record(0, 0, 3, SimTime::ZERO);
        assert_eq!(
            t.select_feedback(0, SimTime::from_millis(20)),
            None,
            "everything aged out"
        );
    }

    #[test]
    fn no_feedback_without_any_traffic() {
        let mut t = CongestionFromLeaf::new(3, 4, AGE);
        assert_eq!(t.select_feedback(2, SimTime::from_micros(9)), None);
    }

    #[test]
    fn record_same_value_does_not_set_changed() {
        let mut t = CongestionFromLeaf::new(1, 2, AGE);
        let now = SimTime::from_micros(1);
        t.record(0, 0, 4, now);
        let _ = t.select_feedback(0, now); // clears changed
        t.record(0, 0, 4, now); // same value: no change flag
        t.record(0, 1, 1, now); // a genuinely new entry
                                // The changed entry (tag 1) wins even though cursor is at tag 1...
                                // regardless of cursor position the changed one must be preferred.
        assert_eq!(t.select_feedback(0, now).unwrap().0, 1);
    }
}
