//! The flowlet table (paper §3.4).
//!
//! A hash-indexed table of 64 K entries, each holding the uplink chosen for
//! the currently-active flowlet of whatever flow(s) hash there. There is no
//! key check: colliding flows simply share an entry, which costs load-
//! balancing opportunities but never correctness (paper Remark 1).
//!
//! The hardware expires entries with a single *age bit* swept every `T_fl`:
//! a packet clears the bit; the sweep expires entries whose bit is still set
//! from the previous sweep. The observable effect is that a flowlet gap is
//! declared after an idle interval somewhere in `(T_fl, 2·T_fl]`, depending
//! on where the last packet fell in the sweep phase. Both that behaviour
//! ([`GapMode::AgeBit`]) and the idealized exact-timestamp variant
//! ([`GapMode::Exact`]) are implemented — lazily, with no timer events: the
//! expiry instant of the age-bit scheme is a pure function of the last
//! packet's timestamp.

use crate::params::GapMode;
use conga_net::ChannelId;
use conga_sim::{SimDuration, SimTime};

#[derive(Clone, Copy, Debug)]
struct Entry {
    port: ChannelId,
    last_seen: SimTime,
    ever_used: bool,
}

/// Result of a flowlet-table lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// The flowlet is active; keep using this uplink (the entry's timestamp
    /// has been refreshed).
    Active(ChannelId),
    /// A new flowlet begins. `prev` is the uplink the *previous* flowlet in
    /// this entry used, if any — the paper's tie-break prefers it so a flow
    /// only moves when a strictly better path exists.
    NewFlowlet {
        /// Uplink cached in the (expired) entry.
        prev: Option<ChannelId>,
    },
}

/// Statistics the table keeps for analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowletStats {
    /// Lookups that found an active flowlet.
    pub hits: u64,
    /// Lookups that started a new flowlet.
    pub new_flowlets: u64,
}

/// A leaf switch's flowlet table.
#[derive(Clone, Debug)]
pub struct FlowletTable {
    entries: Vec<Entry>,
    mask: usize,
    tfl: SimDuration,
    mode: GapMode,
    /// Counters.
    pub stats: FlowletStats,
}

impl FlowletTable {
    /// Create a table with `entries` slots (rounded up to a power of two)
    /// and inactivity timeout `tfl`.
    pub fn new(entries: usize, tfl: SimDuration, mode: GapMode) -> Self {
        let n = entries.next_power_of_two().max(2);
        FlowletTable {
            entries: vec![
                Entry {
                    port: ChannelId(0),
                    last_seen: SimTime::ZERO,
                    ever_used: false,
                };
                n
            ],
            mask: n - 1,
            tfl,
            mode,
            stats: FlowletStats::default(),
        }
    }

    #[inline]
    fn slot(&self, flow_hash: u64) -> usize {
        // The low bits of the already-avalanched flow hash index the table.
        (flow_hash as usize) & self.mask
    }

    /// When does an entry last touched at `last_seen` expire?
    #[inline]
    fn expiry(&self, last_seen: SimTime) -> SimTime {
        let tfl = self.tfl.as_nanos();
        match self.mode {
            // Exact: gap declared strictly after T_fl of silence.
            GapMode::Exact => SimTime::from_nanos(last_seen.as_nanos() + tfl),
            // Age bit: the sweep at the *second* period boundary after the
            // last packet finds the age bit still set and expires the entry.
            GapMode::AgeBit => SimTime::from_nanos((last_seen.as_nanos() / tfl + 2) * tfl),
        }
    }

    /// Look up the flowlet for `flow_hash` at time `now`. If active, the
    /// entry is refreshed and its uplink returned; otherwise the caller must
    /// make a load-balancing decision and [`FlowletTable::commit`] it.
    pub fn lookup(&mut self, flow_hash: u64, now: SimTime) -> Lookup {
        let i = self.slot(flow_hash);
        let expiry = self.expiry(self.entries[i].last_seen);
        let e = &mut self.entries[i];
        if e.ever_used && now < expiry {
            e.last_seen = now;
            self.stats.hits += 1;
            Lookup::Active(e.port)
        } else {
            self.stats.new_flowlets += 1;
            Lookup::NewFlowlet {
                prev: e.ever_used.then_some(e.port),
            }
        }
    }

    /// Record the decision for a new flowlet: cache `port` and mark the
    /// entry valid.
    pub fn commit(&mut self, flow_hash: u64, port: ChannelId, now: SimTime) {
        let i = self.slot(flow_hash);
        self.entries[i] = Entry {
            port,
            last_seen: now,
            ever_used: true,
        };
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Entries holding a live (unexpired) flowlet at `now`. An O(capacity)
    /// scan — only the telemetry sampler calls this, and only on sampled
    /// runs, so the cost never touches the event hot path.
    pub fn occupancy(&self, now: SimTime) -> usize {
        self.entries
            .iter()
            .filter(|e| e.ever_used && now < self.expiry(e.last_seen))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(mode: GapMode) -> FlowletTable {
        FlowletTable::new(1024, SimDuration::from_micros(500), mode)
    }

    #[test]
    fn first_packet_starts_a_flowlet() {
        let mut t = table(GapMode::Exact);
        assert_eq!(
            t.lookup(42, SimTime::ZERO),
            Lookup::NewFlowlet { prev: None }
        );
        t.commit(42, ChannelId(3), SimTime::ZERO);
        assert_eq!(t.stats.new_flowlets, 1);
    }

    #[test]
    fn packets_within_gap_stick_to_port() {
        let mut t = table(GapMode::Exact);
        t.lookup(42, SimTime::ZERO);
        t.commit(42, ChannelId(3), SimTime::ZERO);
        for us in [100u64, 400, 800, 1200] {
            // Each packet refreshes the timestamp, so 400us steps never gap.
            assert_eq!(
                t.lookup(42, SimTime::from_micros(us)),
                Lookup::Active(ChannelId(3)),
                "at {us}us"
            );
        }
        assert_eq!(t.stats.hits, 4);
    }

    #[test]
    fn exact_mode_gaps_after_exactly_tfl() {
        let mut t = table(GapMode::Exact);
        t.lookup(7, SimTime::ZERO);
        t.commit(7, ChannelId(1), SimTime::ZERO);
        // 499us later: still active.
        assert!(matches!(
            t.lookup(7, SimTime::from_micros(499)),
            Lookup::Active(_)
        ));
        // That lookup refreshed the entry; 501us after it: expired.
        assert_eq!(
            t.lookup(7, SimTime::from_micros(499 + 501)),
            Lookup::NewFlowlet {
                prev: Some(ChannelId(1))
            }
        );
    }

    #[test]
    fn age_bit_mode_gap_window_is_tfl_to_2tfl() {
        // Last packet at 100us into a 500us period: sweep at 500us clears...
        // sets the age bit; sweep at 1000us expires. Idle threshold = 900us.
        let mut t = table(GapMode::AgeBit);
        t.lookup(7, SimTime::from_micros(100));
        t.commit(7, ChannelId(1), SimTime::from_micros(100));
        // 899us of silence -> still active (expiry at t=1000us).
        assert!(matches!(
            t.lookup(7, SimTime::from_micros(999)),
            Lookup::Active(_)
        ));
        // Entry refreshed at 999us; expiry now at (999/500+2)*500 = 1500us.
        assert!(matches!(
            t.lookup(7, SimTime::from_micros(1499)),
            Lookup::Active(_)
        ));
        // Refreshed at 1499us (period 2); expiry at (2+2)*500 = 2000us.
        assert!(matches!(
            t.lookup(7, SimTime::from_micros(1999)),
            Lookup::Active(_)
        ));
        // Refreshed at 1999us (period 3); expiry at 2500us: a 501us-past-
        // expiry gap must expire the entry.
        let e = t.lookup(7, SimTime::from_micros(2500));
        assert_eq!(
            e,
            Lookup::NewFlowlet {
                prev: Some(ChannelId(1))
            }
        );
    }

    #[test]
    fn age_bit_detected_gap_bounds() {
        // Sweep the last-packet phase across the period and verify the idle
        // time needed to expire is always in (Tfl, 2*Tfl].
        let tfl = 500_000u64; // ns
        for phase_ns in (0..tfl).step_by(50_000) {
            let mut t = table(GapMode::AgeBit);
            let last = SimTime::from_nanos(7 * tfl + phase_ns);
            t.lookup(9, last);
            t.commit(9, ChannelId(2), last);
            // Find the smallest idle gap that expires the entry.
            let expiry = (last.as_nanos() / tfl + 2) * tfl;
            let gap = expiry - last.as_nanos();
            assert!(gap > tfl && gap <= 2 * tfl, "phase {phase_ns}: gap {gap}");
            assert!(matches!(
                t.lookup(9, SimTime::from_nanos(expiry - 1)),
                Lookup::Active(_)
            ));
            // Fresh table to avoid the refresh from the previous assert.
            let mut t2 = table(GapMode::AgeBit);
            t2.lookup(9, last);
            t2.commit(9, ChannelId(2), last);
            assert!(matches!(
                t2.lookup(9, SimTime::from_nanos(expiry)),
                Lookup::NewFlowlet { .. }
            ));
        }
    }

    #[test]
    fn collisions_share_entries_without_error() {
        let mut t = FlowletTable::new(2, SimDuration::from_micros(500), GapMode::Exact);
        // Two flows, same slot (hashes congruent mod 2).
        t.lookup(4, SimTime::ZERO);
        t.commit(4, ChannelId(0), SimTime::ZERO);
        // Flow with hash 6 collides and inherits the active entry.
        assert_eq!(
            t.lookup(6, SimTime::from_micros(10)),
            Lookup::Active(ChannelId(0))
        );
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let t = FlowletTable::new(60_000, SimDuration::from_micros(500), GapMode::Exact);
        assert_eq!(t.capacity(), 65_536);
    }

    #[test]
    fn occupancy_counts_live_entries_only() {
        let mut t = table(GapMode::Exact);
        assert_eq!(t.occupancy(SimTime::ZERO), 0);
        t.commit(1, ChannelId(0), SimTime::ZERO);
        t.commit(2, ChannelId(1), SimTime::from_micros(300));
        assert_eq!(t.occupancy(SimTime::from_micros(400)), 2);
        // Entry 1 (last seen t=0, Tfl=500us) has expired by 600us.
        assert_eq!(t.occupancy(SimTime::from_micros(600)), 1);
        assert_eq!(t.occupancy(SimTime::from_micros(2000)), 0);
    }

    #[test]
    fn distinct_slots_are_independent() {
        let mut t = table(GapMode::Exact);
        t.lookup(1, SimTime::ZERO);
        t.commit(1, ChannelId(5), SimTime::ZERO);
        assert_eq!(
            t.lookup(2, SimTime::from_micros(1)),
            Lookup::NewFlowlet { prev: None }
        );
    }
}
