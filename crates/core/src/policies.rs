//! Baseline load-balancing policies the paper compares against, plus the
//! [`FabricPolicy`] enum that lets experiments swap schemes without generic
//! plumbing.
//!
//! * [`Ecmp`] — static per-flow hashing (the deployed default CONGA
//!   displaces).
//! * [`LocalAware`] — the §2.4 strawman: flowlet granularity but decisions
//!   from *local* DREs only. Provably mishandles asymmetry (Figure 2b).
//! * [`PacketSpray`] — per-packet round-robin (DRB-style); optimal balance,
//!   maximal reordering.
//! * [`WeightedRandom`] — oblivious routing with static topology-derived
//!   weights (§2.4's "can't handle traffic-matrix-dependent asymmetry").
//! * [`LetFlow`] — flowlet detection with uniform-random path choice; no
//!   congestion state at all (flowlet elasticity does the balancing).
//! * [`LatencyAware`] — per-uplink EWMA of observed one-way fabric latency
//!   with threshold-based exclusion, modeled on client-side latency-aware
//!   replica selection (scylla's `LatencyAwareness`).
//!
//! Every policy honours the same degrade-don't-panic contract: a missing
//! overlay costs only the optional header stamps, and an empty candidate
//! slice (possible transiently while a FIB rebuild races a total uplink
//! failure) yields the deterministic [`FallbackTable`] channel, where the
//! engine blackhole-accounts the packet instead of the process dying.

use crate::conga::Conga;
use crate::dre::Dre;
use crate::flowlet::{FlowletTable, Lookup};
use crate::params::CongaParams;
use conga_net::{
    ecmp_mix, ChannelId, Dataplane, Fib, LeafId, NodeId, Packet, SpineId, Topology, MAX_LBTAG,
};
use conga_sim::{SimDuration, SimRng, SimTime};
use conga_telemetry::{policy_series, MetricsRegistry, SeriesRegistry};

// ---------------------------------------------------------------------------
// Shared degrade-don't-panic plumbing
// ---------------------------------------------------------------------------

/// Deterministic last-resort channels, one per leaf and per spine: each
/// node's first fabric channel in the topology (falling back to the
/// topology's first fabric channel, then channel 0). Returned by every
/// policy when it is handed an empty candidate slice; if that channel is
/// dead the engine's enqueue path blackhole-accounts the packet, so total
/// uplink failure shows up as counted loss rather than a panic.
#[derive(Clone, Debug, Default)]
pub struct FallbackTable {
    leaf: Vec<ChannelId>,
    spine: Vec<ChannelId>,
}

impl FallbackTable {
    /// Precompute the per-node fallback channels.
    pub fn install(&mut self, topo: &Topology) {
        let first_fabric = topo
            .channels
            .iter()
            .position(|c| c.kind.is_fabric())
            .map(|i| ChannelId(i as u32))
            .unwrap_or(ChannelId(0));
        let first_from = |node: NodeId| {
            topo.channels
                .iter()
                .position(|c| c.kind.is_fabric() && c.src == node)
                .map(|i| ChannelId(i as u32))
                .unwrap_or(first_fabric)
        };
        self.leaf = (0..topo.n_leaves)
            .map(|l| first_from(NodeId::Leaf(LeafId(l))))
            .collect();
        self.spine = (0..topo.n_spines)
            .map(|s| first_from(NodeId::Spine(SpineId(s))))
            .collect();
    }

    /// The fallback channel for a leaf's ingress path.
    pub fn leaf(&self, leaf: LeafId) -> ChannelId {
        self.leaf.get(leaf.idx()).copied().unwrap_or(ChannelId(0))
    }

    /// The fallback channel for a spine's forwarding path.
    pub fn spine(&self, spine: SpineId) -> ChannelId {
        self.spine.get(spine.idx()).copied().unwrap_or(ChannelId(0))
    }
}

/// Deterministic per-flow hash pick among a non-empty candidate slice.
#[inline]
fn hash_pick(candidates: &[ChannelId], h: u64) -> ChannelId {
    candidates[(h % candidates.len() as u64) as usize]
}

// ---------------------------------------------------------------------------
// ECMP
// ---------------------------------------------------------------------------

/// Static per-flow Equal-Cost Multi-Path hashing.
#[derive(Clone, Debug, Default)]
pub struct Ecmp {
    lbtag_of: Vec<u8>,
    fallback: FallbackTable,
}

impl Dataplane for Ecmp {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        self.lbtag_of = fib.lbtag_of.clone();
        self.fallback.install(topo);
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.leaf(leaf);
        }
        let ch = hash_pick(
            candidates,
            ecmp_mix(pkt.flow_hash, 0x1EAF_0000 + leaf.0 as u64),
        );
        // The engine encapsulates before ingress, so the overlay is
        // normally present — but a missing one only costs the LBTag stamp
        // (ECMP carries no feedback), so degrade instead of panicking.
        if let Some(ov) = pkt.overlay.as_mut() {
            ov.lbtag = self.lbtag_of[ch.idx()];
        }
        ch
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.spine(spine);
        }
        hash_pick(
            candidates,
            ecmp_mix(pkt.flow_hash, 0x5B1E_0000 + spine.0 as u64),
        )
    }

    fn on_fabric_tx(&mut self, _ch: ChannelId, _pkt: &mut Packet, _now: SimTime) {}
    fn leaf_egress(&mut self, _leaf: LeafId, _pkt: &Packet, _now: SimTime) {}
    fn name(&self) -> &'static str {
        "ecmp"
    }
}

// ---------------------------------------------------------------------------
// Local congestion-aware (the strawman of §2.4)
// ---------------------------------------------------------------------------

/// Flowlet-granularity load balancing using only *local* uplink DREs —
/// the paper's illustration of why global information is required.
#[derive(Clone, Debug)]
pub struct LocalAware {
    params: CongaParams,
    dres: Vec<Option<Dre>>,
    lbtag_of: Vec<u8>,
    flowlets: Vec<FlowletTable>,
    fallback: FallbackTable,
}

impl LocalAware {
    /// Local-only policy with CONGA's flowlet/DRE parameters.
    pub fn new(params: CongaParams) -> Self {
        LocalAware {
            params,
            dres: Vec::new(),
            lbtag_of: Vec::new(),
            flowlets: Vec::new(),
            fallback: FallbackTable::default(),
        }
    }

    fn decide(
        &mut self,
        candidates: &[ChannelId],
        prev: Option<ChannelId>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        debug_assert!(!candidates.is_empty());
        let q = self.params.q_bits;
        let mut best = u8::MAX;
        let mut ties: Vec<ChannelId> = Vec::with_capacity(candidates.len());
        for &u in candidates {
            // A candidate without a DRE (a channel added by a FIB rebuild
            // the policy was never re-installed for) reads as idle rather
            // than panicking.
            let m = match self.dres.get_mut(u.idx()).and_then(Option::as_mut) {
                Some(d) => d.quantized(now, q),
                None => 0,
            };
            if m < best {
                best = m;
                ties.clear();
                ties.push(u);
            } else if m == best {
                ties.push(u);
            }
        }
        if let Some(p) = prev {
            if ties.contains(&p) {
                return p;
            }
        }
        *rng.choose(&ties)
    }
}

impl Dataplane for LocalAware {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        self.dres = topo
            .channels
            .iter()
            .map(|c| {
                c.kind
                    .is_fabric()
                    .then(|| Dre::new(c.rate_bps, self.params.tdre, self.params.alpha))
            })
            .collect();
        self.lbtag_of = fib.lbtag_of.clone();
        self.flowlets = (0..topo.n_leaves)
            .map(|_| {
                FlowletTable::new(
                    self.params.flowlet_entries,
                    self.params.tfl,
                    self.params.gap_mode,
                )
            })
            .collect();
        self.fallback.install(topo);
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.leaf(leaf);
        }
        let l = leaf.idx();
        let ch = match self.flowlets[l].lookup(pkt.flow_hash, now) {
            Lookup::Active(port) if candidates.contains(&port) => port,
            Lookup::Active(stale) => {
                let port = self.decide(
                    candidates,
                    Some(stale).filter(|p| candidates.contains(p)),
                    now,
                    rng,
                );
                self.flowlets[l].commit(pkt.flow_hash, port, now);
                port
            }
            Lookup::NewFlowlet { prev } => {
                let port = self.decide(
                    candidates,
                    prev.filter(|p| candidates.contains(p)),
                    now,
                    rng,
                );
                self.flowlets[l].commit(pkt.flow_hash, port, now);
                port
            }
        };
        // Degrade on a missing overlay: only the LBTag stamp is lost.
        if let Some(ov) = pkt.overlay.as_mut() {
            ov.lbtag = self.lbtag_of[ch.idx()];
        }
        ch
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.spine(spine);
        }
        hash_pick(
            candidates,
            ecmp_mix(pkt.flow_hash, 0x5B1E_0000 + spine.0 as u64),
        )
    }

    fn on_fabric_tx(&mut self, ch: ChannelId, pkt: &mut Packet, now: SimTime) {
        // DREs are maintained so local decisions see local load; CE is NOT
        // stamped (that is CONGA's global machinery).
        if let Some(d) = self.dres.get_mut(ch.idx()).and_then(Option::as_mut) {
            d.on_send(pkt.size, now);
        }
    }

    fn leaf_egress(&mut self, _leaf: LeafId, _pkt: &Packet, _now: SimTime) {}
    fn name(&self) -> &'static str {
        "local"
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        let (mut hits, mut new_flowlets) = (0u64, 0u64);
        for t in &self.flowlets {
            hits += t.stats.hits;
            new_flowlets += t.stats.new_flowlets;
        }
        reg.set_counter("dataplane.flowlet_hits", hits);
        reg.set_counter("dataplane.flowlet_new", new_flowlets);
    }
}

// ---------------------------------------------------------------------------
// Per-packet spray
// ---------------------------------------------------------------------------

/// Per-packet round-robin spraying (in the spirit of DRB / packet-spray).
#[derive(Clone, Debug, Default)]
pub struct PacketSpray {
    lbtag_of: Vec<u8>,
    /// Round-robin cursor per (leaf, dst leaf).
    leaf_rr: Vec<Vec<usize>>,
    /// Round-robin cursor per (spine, dst leaf).
    spine_rr: Vec<Vec<usize>>,
    fallback: FallbackTable,
}

impl Dataplane for PacketSpray {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        self.lbtag_of = fib.lbtag_of.clone();
        let nl = topo.n_leaves as usize;
        self.leaf_rr = vec![vec![0; nl]; nl];
        self.spine_rr = vec![vec![0; nl]; topo.n_spines as usize];
        self.fallback.install(topo);
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.leaf(leaf);
        }
        // Without an overlay the per-destination cursor is unknowable:
        // degrade to stateless hashing and leave the spray state untouched.
        let Some(dst) = pkt.overlay.as_ref().map(|o| o.dst_tep.idx()) else {
            return hash_pick(
                candidates,
                ecmp_mix(pkt.flow_hash, 0x1EAF_0000 + leaf.0 as u64),
            );
        };
        let cur = &mut self.leaf_rr[leaf.idx()][dst];
        let ch = candidates[*cur % candidates.len()];
        *cur = (*cur + 1) % candidates.len();
        if let Some(ov) = pkt.overlay.as_mut() {
            ov.lbtag = self.lbtag_of[ch.idx()];
        }
        ch
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.spine(spine);
        }
        let Some(dst) = pkt.overlay.as_ref().map(|o| o.dst_tep.idx()) else {
            return hash_pick(
                candidates,
                ecmp_mix(pkt.flow_hash, 0x5B1E_0000 + spine.0 as u64),
            );
        };
        let cur = &mut self.spine_rr[spine.idx()][dst];
        let ch = candidates[*cur % candidates.len()];
        *cur = (*cur + 1) % candidates.len();
        ch
    }

    fn on_fabric_tx(&mut self, _ch: ChannelId, _pkt: &mut Packet, _now: SimTime) {}
    fn leaf_egress(&mut self, _leaf: LeafId, _pkt: &Packet, _now: SimTime) {}
    fn name(&self) -> &'static str {
        "spray"
    }
}

// ---------------------------------------------------------------------------
// Weighted random (oblivious routing)
// ---------------------------------------------------------------------------

/// Static weighted-random load balancing: per-flow choice with weights
/// proportional to each uplink's bottleneck path capacity. The best a
/// topology-aware but traffic-oblivious scheme can do (§2.4, Figure 3).
#[derive(Clone, Debug, Default)]
pub struct WeightedRandom {
    lbtag_of: Vec<u8>,
    /// `weights[leaf][dst][i]` — cumulative weight of `up_candidates[leaf][dst][i]`.
    cum_weights: Vec<Vec<Vec<f64>>>,
    fallback: FallbackTable,
}

impl WeightedRandom {
    /// Install-time cumulative weights (testing hook: the tournament's
    /// degraded-topology regression asserts these stay finite and monotone).
    pub fn cum_weights(&self) -> &[Vec<Vec<f64>>] {
        &self.cum_weights
    }
}

impl Dataplane for WeightedRandom {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        self.lbtag_of = fib.lbtag_of.clone();
        self.fallback.install(topo);
        let nl = topo.n_leaves as usize;
        self.cum_weights = vec![vec![Vec::new(); nl]; nl];
        for l in 0..nl {
            for m in 0..nl {
                let cands = &fib.up_candidates[l][m];
                if cands.is_empty() {
                    continue;
                }
                let mut cum = 0.0;
                let mut v = Vec::with_capacity(cands.len());
                for &u in cands {
                    let up = topo.channel(u);
                    let NodeId::Spine(s) = up.dst else {
                        unreachable!()
                    };
                    // Capacity share through this uplink: bounded by the
                    // uplink itself and by a fair share of the spine's
                    // downlink capacity toward the destination.
                    let down: u64 = fib.spine_down[s.idx()][m]
                        .iter()
                        .map(|&d| topo.channel(d).rate_bps)
                        .sum();
                    let into_spine: u64 = fib.leaf_uplinks[l]
                        .iter()
                        .filter(|&&x| topo.channel(x).dst == up.dst)
                        .map(|&x| topo.channel(x).rate_bps)
                        .sum();
                    // A spine whose uplinks are all down (or zero-rate) at
                    // install time carries nothing: weight 0, keeping the
                    // entry aligned with its candidate instead of poisoning
                    // the cumulative sums with a 0/0 NaN.
                    let share = if into_spine == 0 {
                        0.0
                    } else {
                        down as f64 * up.rate_bps as f64 / into_spine as f64
                    };
                    let w = (up.rate_bps as f64).min(share);
                    cum += w;
                    v.push(cum);
                }
                self.cum_weights[l][m] = v;
            }
        }
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.leaf(leaf);
        }
        let hashed = hash_pick(
            candidates,
            ecmp_mix(pkt.flow_hash, 0x1EAF_0000 + leaf.0 as u64),
        );
        // Weights are static (oblivious routing): a runtime link fault
        // changes the candidate list out from under them, and a fully
        // degraded destination has zero total weight. Fall back to plain
        // hashing in both cases — exactly the paper's point that oblivious
        // schemes cannot react. A missing overlay also hashes (the weights
        // are per-destination, which only the overlay names).
        let ch = match pkt.overlay.as_ref().map(|o| o.dst_tep.idx()) {
            Some(dst) => {
                let cum = &self.cum_weights[leaf.idx()][dst];
                let total = cum.last().copied().unwrap_or(0.0);
                if cum.len() == candidates.len() && total > 0.0 {
                    // Deterministic per-flow draw: hash to [0, total).
                    let u = (ecmp_mix(pkt.flow_hash, 0x3EED) as f64 / u64::MAX as f64) * total;
                    let i = cum.partition_point(|&c| c <= u).min(cum.len() - 1);
                    candidates[i]
                } else {
                    hashed
                }
            }
            None => hashed,
        };
        if let Some(ov) = pkt.overlay.as_mut() {
            ov.lbtag = self.lbtag_of[ch.idx()];
        }
        ch
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.spine(spine);
        }
        hash_pick(
            candidates,
            ecmp_mix(pkt.flow_hash, 0x5B1E_0000 + spine.0 as u64),
        )
    }

    fn on_fabric_tx(&mut self, _ch: ChannelId, _pkt: &mut Packet, _now: SimTime) {}
    fn leaf_egress(&mut self, _leaf: LeafId, _pkt: &Packet, _now: SimTime) {}
    fn name(&self) -> &'static str {
        "weighted"
    }
}

// ---------------------------------------------------------------------------
// LetFlow: flowlet switching with uniform-random path choice
// ---------------------------------------------------------------------------

/// LetFlow-style load balancing: flowlet detection exactly as in CONGA, but
/// the first packet of every flowlet picks a *uniformly random* uplink — no
/// DREs, no feedback, no congestion state of any kind. The elasticity of
/// flowlet sizes (congested paths emit fewer, shorter flowlets) is the whole
/// balancing mechanism.
#[derive(Clone, Debug)]
pub struct LetFlow {
    params: CongaParams,
    lbtag_of: Vec<u8>,
    flowlets: Vec<FlowletTable>,
    fallback: FallbackTable,
    /// Flowlet decisions that drew a fresh uniform-random uplink.
    pub random_decisions: u64,
}

impl LetFlow {
    /// LetFlow with the given flowlet parameters (only `tfl`,
    /// `flowlet_entries` and `gap_mode` are consulted).
    pub fn new(params: CongaParams) -> Self {
        LetFlow {
            params,
            lbtag_of: Vec::new(),
            flowlets: Vec::new(),
            fallback: FallbackTable::default(),
            random_decisions: 0,
        }
    }
}

impl Dataplane for LetFlow {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        self.lbtag_of = fib.lbtag_of.clone();
        self.flowlets = (0..topo.n_leaves)
            .map(|_| {
                FlowletTable::new(
                    self.params.flowlet_entries,
                    self.params.tfl,
                    self.params.gap_mode,
                )
            })
            .collect();
        self.fallback.install(topo);
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.leaf(leaf);
        }
        let l = leaf.idx();
        let ch = match self.flowlets[l].lookup(pkt.flow_hash, now) {
            Lookup::Active(port) if candidates.contains(&port) => port,
            _ => {
                // First packet of a flowlet (or the cached port can no
                // longer reach the destination): draw uniformly.
                let port = *rng.choose(candidates);
                self.flowlets[l].commit(pkt.flow_hash, port, now);
                self.random_decisions += 1;
                port
            }
        };
        if let Some(ov) = pkt.overlay.as_mut() {
            ov.lbtag = self.lbtag_of[ch.idx()];
        }
        ch
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.spine(spine);
        }
        hash_pick(
            candidates,
            ecmp_mix(pkt.flow_hash, 0x5B1E_0000 + spine.0 as u64),
        )
    }

    fn on_fabric_tx(&mut self, _ch: ChannelId, _pkt: &mut Packet, _now: SimTime) {}
    fn leaf_egress(&mut self, _leaf: LeafId, _pkt: &Packet, _now: SimTime) {}
    fn name(&self) -> &'static str {
        "letflow"
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        let (mut hits, mut new_flowlets) = (0u64, 0u64);
        for t in &self.flowlets {
            hits += t.stats.hits;
            new_flowlets += t.stats.new_flowlets;
        }
        reg.set_counter("dataplane.flowlet_hits", hits);
        reg.set_counter("dataplane.flowlet_new", new_flowlets);
        reg.set_counter(
            &policy_series("letflow", "random_decisions"),
            self.random_decisions,
        );
    }

    fn sample_series(&mut self, now: SimTime, out: &mut SeriesRegistry) {
        // Same shard rule as CONGA's tables: only the owning domain's
        // table has live entries; zero occupancy is skipped everywhere so
        // the shard merge reproduces the monolithic sample.
        for (l, t) in self.flowlets.iter().enumerate() {
            let occ = t.occupancy(now);
            if occ > 0 {
                out.record(&format!("dataplane.flowlets.leaf{l}"), now, occ as f64);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Latency-aware EWMA exclusion (scylla-style LatencyAwareness)
// ---------------------------------------------------------------------------

/// Parameters for [`LatencyAware`], fabric-scaled from the scylla driver's
/// `LatencyAwareness` defaults (`exclusion_threshold` 2.0, `retry_period`
/// 10 s, `scale` 100 ms, `minimum_measurements` 50): datacenter fabric
/// latencies sit ~5 orders of magnitude below the wide-area RTTs those
/// defaults target, so the time constants shrink to flowlet scale while the
/// dimensionless threshold carries over unchanged.
#[derive(Clone, Copy, Debug)]
pub struct LatencyAwareParams {
    /// An uplink is excluded when its latency EWMA exceeds
    /// `exclusion_threshold ×` the best measured candidate's EWMA.
    pub exclusion_threshold: f64,
    /// An excluded uplink is re-probed with one flowlet every
    /// `retry_period`, so a recovered path can rejoin the rotation.
    pub retry_period: SimDuration,
    /// EWMA time scale: a sample arriving `dt` after the previous one
    /// carries weight `1 − exp(−dt / scale)`.
    pub scale: SimDuration,
    /// Below this many samples a path is "unmeasured": it is never
    /// excluded, and until at least one candidate is measured the decision
    /// degrades to ECMP hashing (warmup).
    pub min_measurements: u64,
    /// Flowlet detection parameters (same machinery as CONGA).
    pub flowlet: CongaParams,
}

impl LatencyAwareParams {
    /// Defaults scaled for an intra-datacenter fabric.
    pub fn fabric_default() -> Self {
        LatencyAwareParams {
            exclusion_threshold: 2.0,
            retry_period: SimDuration::from_micros(500),
            scale: SimDuration::from_micros(100),
            min_measurements: 20,
            flowlet: CongaParams::paper_default(),
        }
    }
}

impl Default for LatencyAwareParams {
    fn default() -> Self {
        Self::fabric_default()
    }
}

/// One EWMA cell: the observed one-way fabric latency of a (destination
/// leaf, source uplink LBTag) path.
#[derive(Clone, Copy, Debug, Default)]
struct LatCell {
    ewma_ns: f64,
    count: u64,
    last: SimTime,
    next_retry: SimTime,
}

/// Latency-aware flowlet load balancing. The source leaf stamps an ingress
/// timestamp into the overlay; the destination leaf measures the one-way
/// fabric latency at decapsulation and piggybacks one `(LBTag, latency)`
/// feedback entry on reverse traffic — structurally the CONGA feedback loop
/// with latency EWMAs in place of quantized DRE metrics. Decisions exclude
/// uplinks whose EWMA exceeds a multiple of the best candidate's, choose
/// uniformly among the rest, and periodically re-probe excluded paths.
#[derive(Clone, Debug)]
pub struct LatencyAware {
    /// Parameters (public so experiments can report them).
    pub params: LatencyAwareParams,
    lbtag_of: Vec<u8>,
    n_leaves: usize,
    /// Per source leaf: EWMA cells indexed `dst_leaf * MAX_LBTAG + lbtag`.
    to_leaf: Vec<Vec<LatCell>>,
    /// Per destination leaf: pending one-way samples awaiting piggyback,
    /// indexed `src_leaf * MAX_LBTAG + lbtag`.
    pending: Vec<Vec<Option<u64>>>,
    /// Per leaf: round-robin piggyback cursor per peer leaf.
    cursor: Vec<Vec<u8>>,
    flowlets: Vec<FlowletTable>,
    fallback: FallbackTable,
    /// Decisions made below the measurement warmup (ECMP hashing).
    pub warmup_decisions: u64,
    /// Candidate exclusions applied (EWMA over the threshold).
    pub excluded: u64,
    /// Re-probes of excluded uplinks after the retry period.
    pub probes: u64,
    /// Latency samples folded into EWMAs.
    pub samples: u64,
}

impl LatencyAware {
    /// Latency-aware policy with the given parameters.
    pub fn new(params: LatencyAwareParams) -> Self {
        LatencyAware {
            params,
            lbtag_of: Vec::new(),
            n_leaves: 0,
            to_leaf: Vec::new(),
            pending: Vec::new(),
            cursor: Vec::new(),
            flowlets: Vec::new(),
            fallback: FallbackTable::default(),
            warmup_decisions: 0,
            excluded: 0,
            probes: 0,
            samples: 0,
        }
    }

    /// Pop the next pending latency sample this leaf owes `peer`, round-robin
    /// across that peer's LBTags so every path's measurement gets through.
    fn take_pending(&mut self, leaf: usize, peer: usize) -> Option<(u8, u64)> {
        let start = self.cursor[leaf][peer] as usize;
        for k in 0..MAX_LBTAG {
            let tag = (start + k) % MAX_LBTAG;
            if let Some(delay) = self.pending[leaf][peer * MAX_LBTAG + tag].take() {
                self.cursor[leaf][peer] = ((tag + 1) % MAX_LBTAG) as u8;
                return Some((tag as u8, delay));
            }
        }
        None
    }

    /// Fold a feedback sample into the (peer, tag) EWMA cell of `leaf`.
    fn observe(&mut self, leaf: usize, peer: usize, tag: u8, sample_ns: u64, now: SimTime) {
        let cell = &mut self.to_leaf[leaf][peer * MAX_LBTAG + tag as usize];
        let s = sample_ns as f64;
        if cell.count == 0 {
            cell.ewma_ns = s;
        } else {
            let dt = now.saturating_since(cell.last).as_secs_f64();
            let w = (-dt / self.params.scale.as_secs_f64()).exp();
            cell.ewma_ns = cell.ewma_ns * w + s * (1.0 - w);
        }
        cell.count += 1;
        cell.last = now;
        self.samples += 1;
    }

    /// Pick an uplink toward `dst`: warmup-hash until any candidate is
    /// measured, otherwise reservoir-uniform over the non-excluded set.
    #[allow(clippy::too_many_arguments)]
    fn decide(
        &mut self,
        leaf: usize,
        dst: usize,
        flow_hash: u64,
        candidates: &[ChannelId],
        prev: Option<ChannelId>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        debug_assert!(!candidates.is_empty());
        let min_n = self.params.min_measurements;
        // Best (lowest) EWMA among candidates with enough measurements.
        let mut best: Option<f64> = None;
        for &u in candidates {
            let tag = self.lbtag_of[u.idx()] as usize;
            let c = self.to_leaf[leaf][dst * MAX_LBTAG + tag];
            if c.count >= min_n {
                best = Some(best.map_or(c.ewma_ns, |b: f64| b.min(c.ewma_ns)));
            }
        }
        let Some(best) = best else {
            // Warmup: nothing trustworthy to compare yet. Hash like ECMP —
            // deterministic and rng-free, so the warmup phase consumes no
            // randomness.
            self.warmup_decisions += 1;
            return hash_pick(candidates, ecmp_mix(flow_hash, 0x1EAF_0000 + leaf as u64));
        };
        let threshold = best * self.params.exclusion_threshold;
        let mut pick = candidates[0];
        let mut included = 0usize;
        let mut prev_in = false;
        for &u in candidates {
            let idx = dst * MAX_LBTAG + self.lbtag_of[u.idx()] as usize;
            let c = self.to_leaf[leaf][idx];
            let include = if c.count < min_n || c.ewma_ns <= threshold {
                true
            } else if now >= c.next_retry {
                // Probe: let one flowlet through an excluded uplink so a
                // recovered path can prove itself again.
                self.to_leaf[leaf][idx].next_retry = now.saturating_add(self.params.retry_period);
                self.probes += 1;
                true
            } else {
                self.excluded += 1;
                false
            };
            if include {
                included += 1;
                // Single-pass reservoir: uniform over the included set.
                if rng.below(included) == 0 {
                    pick = u;
                }
                prev_in |= prev == Some(u);
            }
        }
        // Stay put when the previous port is still acceptable: flowlet
        // moves only need to happen off excluded paths.
        if prev_in {
            if let Some(p) = prev {
                return p;
            }
        }
        pick
    }
}

impl Dataplane for LatencyAware {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        self.lbtag_of = fib.lbtag_of.clone();
        let nl = topo.n_leaves as usize;
        self.n_leaves = nl;
        self.to_leaf = vec![vec![LatCell::default(); nl * MAX_LBTAG]; nl];
        self.pending = vec![vec![None; nl * MAX_LBTAG]; nl];
        self.cursor = vec![vec![0; nl]; nl];
        let fl = self.params.flowlet;
        self.flowlets = (0..nl)
            .map(|_| FlowletTable::new(fl.flowlet_entries, fl.tfl, fl.gap_mode))
            .collect();
        self.fallback.install(topo);
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.leaf(leaf);
        }
        let l = leaf.idx();
        // No overlay: nowhere to stamp the timestamp or read the
        // destination from. Degrade to hashing without touching any state.
        let Some(dst) = pkt.overlay.as_ref().map(|o| o.dst_tep.idx()) else {
            return hash_pick(
                candidates,
                ecmp_mix(pkt.flow_hash, 0x1EAF_0000 + leaf.0 as u64),
            );
        };
        // Piggyback one pending latency sample for the destination leaf
        // (the latency analogue of CONGA §3.3 step 4).
        if dst < self.n_leaves {
            if let Some((tag, delay)) = self.take_pending(l, dst) {
                if let Some(o) = pkt.overlay.as_mut() {
                    o.lat_fb = Some((tag, delay));
                }
            }
        }
        // Flowlet lookup; decide only on the first packet of a flowlet.
        let ch = match self.flowlets[l].lookup(pkt.flow_hash, now) {
            Lookup::Active(port) if candidates.contains(&port) => port,
            Lookup::Active(stale) => {
                let prev = Some(stale).filter(|p| candidates.contains(p));
                let port = self.decide(l, dst, pkt.flow_hash, candidates, prev, now, rng);
                self.flowlets[l].commit(pkt.flow_hash, port, now);
                port
            }
            Lookup::NewFlowlet { prev } => {
                let prev = prev.filter(|p| candidates.contains(p));
                let port = self.decide(l, dst, pkt.flow_hash, candidates, prev, now, rng);
                self.flowlets[l].commit(pkt.flow_hash, port, now);
                port
            }
        };
        if let Some(o) = pkt.overlay.as_mut() {
            o.lbtag = self.lbtag_of[ch.idx()];
            o.lat_sent = Some(now);
        }
        ch
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.spine(spine);
        }
        hash_pick(
            candidates,
            ecmp_mix(pkt.flow_hash, 0x5B1E_0000 + spine.0 as u64),
        )
    }

    fn on_fabric_tx(&mut self, _ch: ChannelId, _pkt: &mut Packet, _now: SimTime) {}

    fn leaf_egress(&mut self, leaf: LeafId, pkt: &Packet, now: SimTime) {
        let Some(o) = pkt.overlay.as_ref() else {
            return;
        };
        let d = leaf.idx();
        let src = o.src_tep.idx();
        if d >= self.n_leaves || src >= self.n_leaves {
            return;
        }
        // Measure the one-way fabric latency of the (src uplink = LBTag)
        // path; the freshest sample per path wins the piggyback slot.
        if let Some(sent) = o.lat_sent {
            let delay = now.saturating_since(sent).as_nanos();
            if (o.lbtag as usize) < MAX_LBTAG {
                self.pending[d][src * MAX_LBTAG + o.lbtag as usize] = Some(delay);
            }
        }
        // Harvest piggybacked feedback into this leaf's own EWMA table:
        // `(tag, delay)` describes *our* uplink `tag` toward `src`.
        if let Some((tag, delay)) = o.lat_fb {
            if (tag as usize) < MAX_LBTAG {
                self.observe(d, src, tag, delay, now);
            }
        }
    }

    fn name(&self) -> &'static str {
        "latency-aware"
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        let (mut hits, mut new_flowlets) = (0u64, 0u64);
        for t in &self.flowlets {
            hits += t.stats.hits;
            new_flowlets += t.stats.new_flowlets;
        }
        reg.set_counter("dataplane.flowlet_hits", hits);
        reg.set_counter("dataplane.flowlet_new", new_flowlets);
        reg.set_counter(&policy_series("latency", "samples"), self.samples);
        reg.set_counter(
            &policy_series("latency", "warmup_decisions"),
            self.warmup_decisions,
        );
        reg.set_counter(&policy_series("latency", "excluded"), self.excluded);
        reg.set_counter(&policy_series("latency", "probes"), self.probes);
    }
}

// ---------------------------------------------------------------------------
// Incremental deployment: CONGA on a subset of leaves (paper §7)
// ---------------------------------------------------------------------------

/// Mixed deployment: leaves flagged in `conga_leaves` run CONGA; the rest
/// run plain ECMP. The CONGA machinery (DREs, CE marking, feedback) runs
/// fabric-wide — exactly as in a real rollout, where legacy ToRs simply
/// ignore the overlay congestion fields. Traffic not controlled by CONGA
/// just becomes bandwidth asymmetry that CONGA adapts around.
#[derive(Clone, Debug)]
pub struct Incremental {
    conga: Conga,
    ecmp: Ecmp,
    conga_leaves: Vec<bool>,
}

impl Incremental {
    /// CONGA on the leaves whose flag is true.
    pub fn new(params: CongaParams, conga_leaves: Vec<bool>) -> Self {
        Incremental {
            conga: Conga::new(params),
            ecmp: Ecmp::default(),
            conga_leaves,
        }
    }
}

impl Dataplane for Incremental {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        assert_eq!(self.conga_leaves.len(), topo.n_leaves as usize);
        self.conga.install(topo, fib);
        self.ecmp.install(topo, fib);
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        if self.conga_leaves[leaf.idx()] {
            self.conga.leaf_ingress(leaf, pkt, candidates, now, rng)
        } else {
            self.ecmp.leaf_ingress(leaf, pkt, candidates, now, rng)
        }
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        self.conga.spine_forward(spine, pkt, candidates, now, rng)
    }

    fn on_fabric_tx(&mut self, ch: ChannelId, pkt: &mut Packet, now: SimTime) {
        // DREs and CE marking run fabric-wide (spine ASICs are upgraded
        // first in a rollout); ECMP leaves simply never read them.
        self.conga.on_fabric_tx(ch, pkt, now);
    }

    fn leaf_egress(&mut self, leaf: LeafId, pkt: &Packet, now: SimTime) {
        self.conga.leaf_egress(leaf, pkt, now);
    }

    fn name(&self) -> &'static str {
        "incremental"
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        Dataplane::export_metrics(&self.conga, reg);
        reg.set_counter(
            "dataplane.conga_leaves",
            self.conga_leaves.iter().filter(|&&b| b).count() as u64,
        );
    }

    fn sample_series(&mut self, now: SimTime, out: &mut SeriesRegistry) {
        // The CONGA half carries all the sampled state (DREs run
        // fabric-wide; ECMP leaves keep no tables).
        self.conga.sample_series(now, out);
    }

    fn set_tracer(&mut self, tracer: conga_trace::TraceHandle) {
        // Only the CONGA half has decision provenance to record.
        self.conga.set_tracer(tracer);
    }
}

// ---------------------------------------------------------------------------
// The policy enum
// ---------------------------------------------------------------------------

/// Any of the fabric load-balancing schemes, behind one concrete type so the
/// engine stays monomorphic (`Network<FabricPolicy, _>`).
#[derive(Clone, Debug)]
pub enum FabricPolicy {
    /// Static per-flow hashing.
    Ecmp(Ecmp),
    /// CONGA (or CONGA-Flow, depending on parameters).
    Conga(Box<Conga>),
    /// Local-DRE-only strawman.
    Local(LocalAware),
    /// Per-packet round-robin.
    Spray(PacketSpray),
    /// Static weighted random.
    Weighted(WeightedRandom),
    /// Flowlet switching with uniform-random choice (LetFlow).
    LetFlow(LetFlow),
    /// Latency-EWMA exclusion (scylla-style latency awareness).
    LatencyAware(Box<LatencyAware>),
    /// CONGA on a subset of leaves, ECMP elsewhere (incremental rollout).
    Incremental(Box<Incremental>),
}

impl FabricPolicy {
    /// ECMP baseline.
    pub fn ecmp() -> Self {
        FabricPolicy::Ecmp(Ecmp::default())
    }
    /// CONGA with the paper's default parameters.
    pub fn conga() -> Self {
        FabricPolicy::Conga(Box::new(Conga::new(CongaParams::paper_default())))
    }
    /// CONGA with custom parameters.
    pub fn conga_with(params: CongaParams) -> Self {
        FabricPolicy::Conga(Box::new(Conga::new(params)))
    }
    /// CONGA-Flow (13 ms flowlet timeout — one decision per flow).
    pub fn conga_flow() -> Self {
        FabricPolicy::Conga(Box::new(Conga::conga_flow()))
    }
    /// Local congestion-aware strawman.
    pub fn local() -> Self {
        FabricPolicy::Local(LocalAware::new(CongaParams::paper_default()))
    }
    /// Per-packet round-robin spray.
    pub fn spray() -> Self {
        FabricPolicy::Spray(PacketSpray::default())
    }
    /// Weighted-random oblivious routing.
    pub fn weighted() -> Self {
        FabricPolicy::Weighted(WeightedRandom::default())
    }
    /// LetFlow with CONGA's flowlet parameters.
    pub fn letflow() -> Self {
        FabricPolicy::LetFlow(LetFlow::new(CongaParams::paper_default()))
    }
    /// Latency-aware EWMA exclusion with fabric-scaled defaults.
    pub fn latency_aware() -> Self {
        FabricPolicy::LatencyAware(Box::new(LatencyAware::new(
            LatencyAwareParams::fabric_default(),
        )))
    }

    /// CONGA on the flagged leaves only, ECMP on the rest (paper §7).
    pub fn incremental(conga_leaves: Vec<bool>) -> Self {
        FabricPolicy::Incremental(Box::new(Incremental::new(
            CongaParams::paper_default(),
            conga_leaves,
        )))
    }

    /// Access the inner CONGA state, if this policy is CONGA.
    pub fn as_conga(&self) -> Option<&Conga> {
        match self {
            FabricPolicy::Conga(c) => Some(c),
            _ => None,
        }
    }
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            FabricPolicy::Ecmp($inner) => $body,
            FabricPolicy::Conga($inner) => $body,
            FabricPolicy::Local($inner) => $body,
            FabricPolicy::Spray($inner) => $body,
            FabricPolicy::Weighted($inner) => $body,
            FabricPolicy::LetFlow($inner) => $body,
            FabricPolicy::LatencyAware($inner) => $body,
            FabricPolicy::Incremental($inner) => $body,
        }
    };
}

impl Dataplane for FabricPolicy {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        delegate!(self, p => p.install(topo, fib))
    }
    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        delegate!(self, p => p.leaf_ingress(leaf, pkt, candidates, now, rng))
    }
    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        delegate!(self, p => p.spine_forward(spine, pkt, candidates, now, rng))
    }
    fn on_fabric_tx(&mut self, ch: ChannelId, pkt: &mut Packet, now: SimTime) {
        delegate!(self, p => p.on_fabric_tx(ch, pkt, now))
    }
    fn leaf_egress(&mut self, leaf: LeafId, pkt: &Packet, now: SimTime) {
        delegate!(self, p => p.leaf_egress(leaf, pkt, now))
    }
    fn name(&self) -> &'static str {
        delegate!(self, p => p.name())
    }
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        delegate!(self, p => p.export_metrics(reg))
    }
    fn sample_series(&mut self, now: SimTime, out: &mut SeriesRegistry) {
        delegate!(self, p => p.sample_series(now, out))
    }
    fn set_tracer(&mut self, tracer: conga_trace::TraceHandle) {
        delegate!(self, p => p.set_tracer(tracer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conga_net::{HostId, LeafSpineBuilder, Overlay};

    fn setup<P: Dataplane>(mut p: P) -> (Topology, Fib, P) {
        let topo = LeafSpineBuilder::new(2, 2, 2).parallel_links(2).build();
        let fib = topo.fib();
        p.install(&topo, &fib);
        (topo, fib, p)
    }

    fn fabric_pkt(flow_hash: u64) -> Packet {
        let mut p = Packet::data(
            0,
            0,
            flow_hash,
            HostId(0),
            HostId(2),
            0,
            1460,
            SimTime::ZERO,
        );
        p.overlay = Some(Overlay::new(LeafId(0), LeafId(1)));
        p
    }

    #[test]
    fn ecmp_is_deterministic_per_flow_and_spreads_across_flows() {
        let (_t, fib, mut e) = setup(Ecmp::default());
        let mut rng = SimRng::new(1);
        let cands = fib.up_candidates[0][1].clone();
        let mut counts = vec![0usize; cands.len()];
        for f in 0..4000u64 {
            let h = ecmp_mix(f, 99);
            let c1 = e.leaf_ingress(
                LeafId(0),
                &mut fabric_pkt(h),
                &cands,
                SimTime::ZERO,
                &mut rng,
            );
            let c2 = e.leaf_ingress(
                LeafId(0),
                &mut fabric_pkt(h),
                &cands,
                SimTime::ZERO,
                &mut rng,
            );
            assert_eq!(c1, c2, "same flow must always hash to the same path");
            counts[cands.iter().position(|&x| x == c1).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..=1200).contains(&c), "uplink {i} got {c}/4000 flows");
        }
    }

    #[test]
    fn ecmp_ingress_without_overlay_does_not_panic() {
        // Regression: this used to `expect("ingress without overlay")`.
        // A bare packet still gets a valid (and deterministic) candidate;
        // only the LBTag stamp is skipped.
        let (_t, fib, mut e) = setup(Ecmp::default());
        let mut rng = SimRng::new(3);
        let cands = fib.up_candidates[0][1].clone();
        let mut bare = fabric_pkt(ecmp_mix(42, 99));
        bare.overlay = None;
        let c1 = e.leaf_ingress(LeafId(0), &mut bare, &cands, SimTime::ZERO, &mut rng);
        assert!(cands.contains(&c1));
        assert!(bare.overlay.is_none());
        let mut with = fabric_pkt(ecmp_mix(42, 99));
        let c2 = e.leaf_ingress(LeafId(0), &mut with, &cands, SimTime::ZERO, &mut rng);
        assert_eq!(c1, c2, "overlay presence must not change the hash choice");
    }

    #[test]
    fn spray_round_robins_per_packet() {
        let (_t, fib, mut s) = setup(PacketSpray::default());
        let mut rng = SimRng::new(2);
        let cands = fib.up_candidates[0][1].clone();
        let picks: Vec<ChannelId> = (0..8)
            .map(|_| {
                s.leaf_ingress(
                    LeafId(0),
                    &mut fabric_pkt(7),
                    &cands,
                    SimTime::ZERO,
                    &mut rng,
                )
            })
            .collect();
        // Perfect rotation: every candidate appears exactly twice in 8 picks.
        for &c in &cands {
            assert_eq!(picks.iter().filter(|&&x| x == c).count(), 2);
        }
        // And consecutive picks differ (maximal reordering).
        assert_ne!(picks[0], picks[1]);
    }

    #[test]
    fn local_aware_prefers_idle_uplink() {
        let (_t, fib, mut p) = setup(LocalAware::new(CongaParams::paper_default()));
        let mut rng = SimRng::new(3);
        let cands = fib.up_candidates[0][1].clone();
        let now = SimTime::from_micros(10);
        // Saturate all but candidate 1.
        for (i, &u) in cands.iter().enumerate() {
            if i == 1 {
                continue;
            }
            for _ in 0..10_000 {
                p.on_fabric_tx(u, &mut fabric_pkt(1), now);
            }
        }
        for f in 0..10u64 {
            let ch = p.leaf_ingress(LeafId(0), &mut fabric_pkt(100 + f), &cands, now, &mut rng);
            assert_eq!(ch, cands[1], "flow {f}");
        }
    }

    #[test]
    fn weighted_random_splits_by_capacity() {
        // Figure 2 topology: single links, lower path at half rate.
        let topo = LeafSpineBuilder::new(2, 2, 2)
            .fabric_rate_gbps(80)
            .parallel_links(1)
            .override_link_rate_gbps(1, 1, 0, 40)
            .build();
        let fib = topo.fib();
        let mut w = WeightedRandom::default();
        w.install(&topo, &fib);
        let mut rng = SimRng::new(4);
        let cands = fib.up_candidates[0][1].clone();
        let mut counts = vec![0usize; cands.len()];
        for f in 0..30_000u64 {
            let mut pkt = fabric_pkt(ecmp_mix(f, 5));
            let ch = w.leaf_ingress(LeafId(0), &mut pkt, &cands, SimTime::ZERO, &mut rng);
            counts[cands.iter().position(|&x| x == ch).unwrap()] += 1;
        }
        // Uplink to spine0 (80G path) should carry ~2/3; to spine1 ~1/3.
        let to_s0 = counts[0] as f64 / 30_000.0;
        assert!(
            (to_s0 - 2.0 / 3.0).abs() < 0.03,
            "80G-path share {to_s0}, expected ~0.667"
        );
    }

    #[test]
    fn spray_ingress_without_overlay_does_not_panic() {
        // Regression: this used to `expect("ingress without overlay")`.
        // The degraded pick must also leave the round-robin cursor alone,
        // so the spray rotation is unperturbed by the odd bare packet.
        let (_t, fib, mut s) = setup(PacketSpray::default());
        let mut rng = SimRng::new(7);
        let cands = fib.up_candidates[0][1].clone();
        let mut bare = fabric_pkt(5);
        bare.overlay = None;
        let c = s.leaf_ingress(LeafId(0), &mut bare, &cands, SimTime::ZERO, &mut rng);
        assert!(cands.contains(&c));
        let mut bare2 = fabric_pkt(5);
        bare2.overlay = None;
        let c2 = s.spine_forward(SpineId(0), &mut bare2, &cands, SimTime::ZERO, &mut rng);
        assert!(cands.contains(&c2));
        // Cursor untouched: the first overlay packet starts the rotation
        // at candidate 0 as if the bare packets never happened.
        let first = s.leaf_ingress(
            LeafId(0),
            &mut fabric_pkt(5),
            &cands,
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(first, cands[0]);
    }

    #[test]
    fn local_aware_ingress_without_overlay_does_not_panic() {
        // Regression: LBTag stamping used to `expect("ingress without
        // overlay")`. The decision itself must still be valid.
        let (_t, fib, mut p) = setup(LocalAware::new(CongaParams::paper_default()));
        let mut rng = SimRng::new(8);
        let cands = fib.up_candidates[0][1].clone();
        let mut bare = fabric_pkt(6);
        bare.overlay = None;
        let c = p.leaf_ingress(LeafId(0), &mut bare, &cands, SimTime::ZERO, &mut rng);
        assert!(cands.contains(&c));
        assert!(bare.overlay.is_none());
    }

    #[test]
    fn weighted_ingress_without_overlay_does_not_panic() {
        let (_t, fib, mut w) = setup(WeightedRandom::default());
        let mut rng = SimRng::new(9);
        let cands = fib.up_candidates[0][1].clone();
        let mut bare = fabric_pkt(6);
        bare.overlay = None;
        let c = w.leaf_ingress(LeafId(0), &mut bare, &cands, SimTime::ZERO, &mut rng);
        assert!(cands.contains(&c));
    }

    #[test]
    fn empty_candidates_fall_back_deterministically() {
        // Total uplink failure mid-run can transiently hand any policy an
        // empty candidate slice. Every policy must return the same
        // deterministic fallback channel rooted at the asking node — the
        // engine blackhole-accounts the packet downstream.
        let policies: Vec<FabricPolicy> = vec![
            FabricPolicy::ecmp(),
            FabricPolicy::conga(),
            FabricPolicy::conga_flow(),
            FabricPolicy::local(),
            FabricPolicy::spray(),
            FabricPolicy::weighted(),
            FabricPolicy::letflow(),
            FabricPolicy::latency_aware(),
        ];
        for p in policies {
            let name = p.name();
            let (topo, _fib, mut p) = setup(p);
            let mut rng = SimRng::new(10);
            let a = p.leaf_ingress(LeafId(0), &mut fabric_pkt(1), &[], SimTime::ZERO, &mut rng);
            let b = p.leaf_ingress(LeafId(0), &mut fabric_pkt(2), &[], SimTime::ZERO, &mut rng);
            assert_eq!(a, b, "{name}: leaf fallback must be deterministic");
            assert_eq!(
                topo.channel(a).src,
                NodeId::Leaf(LeafId(0)),
                "{name}: leaf fallback must leave the asking leaf"
            );
            let s = p.spine_forward(SpineId(1), &mut fabric_pkt(3), &[], SimTime::ZERO, &mut rng);
            assert_eq!(
                topo.channel(s).src,
                NodeId::Spine(SpineId(1)),
                "{name}: spine fallback must leave the asking spine"
            );
        }
    }

    #[test]
    fn weighted_cum_weights_finite_and_monotone_on_degraded_topology() {
        // Regression: a spine whose every uplink from a leaf is zero-rate
        // made `into_spine == 0`, and the 0/0 division seeded NaN into the
        // cumulative weights, silently skewing all later draws.
        let topo = LeafSpineBuilder::new(2, 2, 2)
            .parallel_links(1)
            .override_link_rate_gbps(0, 1, 0, 0)
            .build();
        let fib = topo.fib();
        let mut w = WeightedRandom::default();
        w.install(&topo, &fib);
        for (l, per_dst) in w.cum_weights().iter().enumerate() {
            for (m, cum) in per_dst.iter().enumerate() {
                let mut prev = 0.0f64;
                for (i, &c) in cum.iter().enumerate() {
                    assert!(c.is_finite(), "cum_weights[{l}][{m}][{i}] = {c}");
                    assert!(c >= prev, "cum_weights[{l}][{m}] not monotone at {i}");
                    prev = c;
                }
            }
        }
        // And the degraded leaf still picks valid candidates.
        let mut rng = SimRng::new(11);
        let cands = fib.up_candidates[0][1].clone();
        for f in 0..200u64 {
            let ch = w.leaf_ingress(
                LeafId(0),
                &mut fabric_pkt(ecmp_mix(f, 3)),
                &cands,
                SimTime::ZERO,
                &mut rng,
            );
            assert!(cands.contains(&ch));
        }
    }

    #[test]
    fn letflow_spreads_new_flowlets_uniformly() {
        // Mirrors the CONGA reservoir uniformity test: every distinct flow
        // opens a fresh flowlet, and LetFlow must choose uniformly.
        let (_t, fib, mut lf) = setup(LetFlow::new(CongaParams::paper_default()));
        let mut rng = SimRng::new(12);
        let cands = fib.up_candidates[0][1].clone();
        let rounds = 8000usize;
        let mut counts = vec![0usize; cands.len()];
        for f in 0..rounds as u64 {
            let ch = lf.leaf_ingress(
                LeafId(0),
                &mut fabric_pkt(ecmp_mix(f, 21)),
                &cands,
                SimTime::ZERO,
                &mut rng,
            );
            counts[cands.iter().position(|&x| x == ch).unwrap()] += 1;
        }
        let expected = rounds / cands.len();
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c >= expected * 8 / 10 && c <= expected * 12 / 10,
                "uplink {i} got {c}/{rounds} flowlets (expected ~{expected})"
            );
        }
        // Table collisions make a few flows inherit an active entry (paper
        // Remark 1), so slightly fewer than `rounds` decisions are random.
        assert!(
            lf.random_decisions as usize >= rounds * 9 / 10,
            "only {}/{rounds} decisions were random",
            lf.random_decisions
        );
    }

    #[test]
    fn letflow_flowlet_stays_put_and_same_seed_is_deterministic() {
        let run = |seed: u64| -> Vec<ChannelId> {
            let (_t, fib, mut lf) = setup(LetFlow::new(CongaParams::paper_default()));
            let mut rng = SimRng::new(seed);
            let cands = fib.up_candidates[0][1].clone();
            (0..64u64)
                .map(|i| {
                    // Packets of flow 9 arrive well inside T_fl: one flowlet.
                    let t = SimTime::from_micros(i * 10);
                    lf.leaf_ingress(LeafId(0), &mut fabric_pkt(9), &cands, t, &mut rng)
                })
                .collect()
        };
        let a = run(77);
        assert!(
            a.iter().all(|&c| c == a[0]),
            "flowlet must not switch paths mid-burst"
        );
        let b = run(77);
        assert_eq!(a, b, "same seed must reproduce the same picks");
        // And the choice is genuinely random across flowlets: a different
        // seed is allowed to (and across many flows, will) differ.
        let mut any_diff = false;
        for seed in 1..20u64 {
            if run(seed)[0] != a[0] {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "letflow never varied its pick across 20 seeds");
    }

    /// Push `n` latency feedback samples for (peer leaf 1, `tag`) into leaf
    /// 0's EWMA table by decapsulating crafted reverse packets.
    fn feed_latency(la: &mut LatencyAware, tag: u8, delay_ns: u64, n: u64) {
        for i in 0..n {
            let mut p = fabric_pkt(1);
            // Reverse direction: a packet from leaf 1 arriving at leaf 0.
            let mut o = Overlay::new(LeafId(1), LeafId(0));
            o.lat_fb = Some((tag, delay_ns));
            p.overlay = Some(o);
            la.leaf_egress(LeafId(0), &p, SimTime::from_micros(10 + i));
        }
    }

    #[test]
    fn latency_aware_warms_up_as_ecmp_without_consuming_rng() {
        let (_t, fib, mut la) = setup(LatencyAware::new(LatencyAwareParams::fabric_default()));
        let cands = fib.up_candidates[0][1].clone();
        // Two differently seeded rngs: warmup decisions must not depend on
        // the rng at all (pure hashing), so the picks agree.
        let mut r1 = SimRng::new(1);
        let mut r2 = SimRng::new(999);
        let mut counts = vec![0usize; cands.len()];
        for f in 0..4000u64 {
            let h = ecmp_mix(f, 31);
            let c1 = la.leaf_ingress(
                LeafId(0),
                &mut fabric_pkt(h),
                &cands,
                SimTime::ZERO,
                &mut r1,
            );
            let c2 = la.leaf_ingress(
                LeafId(0),
                &mut fabric_pkt(h),
                &cands,
                SimTime::ZERO,
                &mut r2,
            );
            assert_eq!(c1, c2, "warmup must be rng-free");
            counts[cands.iter().position(|&x| x == c1).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..=1200).contains(&c), "uplink {i} got {c}/4000 flows");
        }
        assert!(la.warmup_decisions > 0);
        assert_eq!(la.excluded, 0);
    }

    #[test]
    fn latency_aware_excludes_slow_uplink_and_probes_it() {
        let (_t, fib, mut la) = setup(LatencyAware::new(LatencyAwareParams::fabric_default()));
        let cands = fib.up_candidates[0][1].clone();
        let min_n = la.params.min_measurements;
        // Tag 0 measures 10× slower than the rest (threshold is 2×).
        for &u in &cands {
            let tag = fib.lbtag_of[u.idx()];
            let delay = if tag == 0 { 10_000 } else { 1_000 };
            feed_latency(&mut la, tag, delay, min_n);
        }
        let slow: Vec<ChannelId> = cands
            .iter()
            .copied()
            .filter(|&u| fib.lbtag_of[u.idx()] == 0)
            .collect();
        let now = SimTime::from_micros(100);
        let mut rng = SimRng::new(13);
        let mut slow_picks = 0usize;
        let rounds = 3000u64;
        for f in 0..rounds {
            let ch = la.leaf_ingress(
                LeafId(0),
                &mut fabric_pkt(ecmp_mix(f, 41)),
                &cands,
                now,
                &mut rng,
            );
            assert!(cands.contains(&ch));
            if slow.contains(&ch) {
                slow_picks += 1;
            }
        }
        // The slow uplink is admitted once as a probe (its retry window
        // then closes for 500 µs of simulated time), so it can win at most
        // a handful of early decisions instead of its uniform ~1/4 share.
        assert!(
            slow_picks <= 5,
            "slow uplink won {slow_picks}/{rounds} decisions despite exclusion"
        );
        assert!(la.excluded > 0, "no exclusions recorded");
        assert!(la.probes >= 1, "the excluded uplink was never probed");
        assert_eq!(la.samples, min_n * cands.len() as u64);
    }

    #[test]
    fn latency_aware_same_seed_is_deterministic() {
        let run = |seed: u64| -> Vec<ChannelId> {
            let (_t, fib, mut la) = setup(LatencyAware::new(LatencyAwareParams::fabric_default()));
            let cands = fib.up_candidates[0][1].clone();
            let min_n = la.params.min_measurements;
            for &u in &cands {
                let tag = fib.lbtag_of[u.idx()];
                let delay = if tag == 0 { 5_000 } else { 1_000 };
                feed_latency(&mut la, tag, delay, min_n);
            }
            let mut rng = SimRng::new(seed);
            (0..500u64)
                .map(|f| {
                    la.leaf_ingress(
                        LeafId(0),
                        &mut fabric_pkt(ecmp_mix(f, 51)),
                        &cands,
                        SimTime::from_micros(200),
                        &mut rng,
                    )
                })
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed must reproduce the same picks");
    }

    #[test]
    fn latency_aware_feedback_loop_round_trips() {
        // A measured one-way delay at the destination leaf must ride a
        // reverse packet home and land in the source's EWMA table.
        let (_t, fib, mut la) = setup(LatencyAware::new(LatencyAwareParams::fabric_default()));
        let mut rng = SimRng::new(14);
        // Leaf 0 sends to leaf 1: the overlay gets a send timestamp.
        let mut fwd = fabric_pkt(70);
        let cands = fib.up_candidates[0][1].clone();
        let sent_at = SimTime::from_micros(50);
        let ch = la.leaf_ingress(LeafId(0), &mut fwd, &cands, sent_at, &mut rng);
        let o = fwd.overlay.unwrap();
        assert_eq!(o.lat_sent, Some(sent_at));
        assert_eq!(o.lbtag, fib.lbtag_of[ch.idx()]);
        // Leaf 1 decapsulates 7 µs later: a pending sample is recorded.
        la.leaf_egress(LeafId(1), &fwd, SimTime::from_micros(57));
        // Leaf 1 sends back to leaf 0: the sample rides along.
        let mut rev = Packet::data(0, 0, 71, HostId(2), HostId(0), 0, 1460, SimTime::ZERO);
        rev.overlay = Some(Overlay::new(LeafId(1), LeafId(0)));
        let rcands = fib.up_candidates[1][0].clone();
        la.leaf_ingress(
            LeafId(1),
            &mut rev,
            &rcands,
            SimTime::from_micros(60),
            &mut rng,
        );
        let fb = rev.overlay.unwrap().lat_fb;
        assert_eq!(fb, Some((o.lbtag, 7_000)), "sample must piggyback");
        // Leaf 0 decapsulates the reverse packet: EWMA observed.
        assert_eq!(la.samples, 0);
        la.leaf_egress(LeafId(0), &rev, SimTime::from_micros(65));
        assert_eq!(la.samples, 1);
    }

    #[test]
    fn policy_enum_delegates() {
        for (mk, name) in [
            (FabricPolicy::ecmp as fn() -> FabricPolicy, "ecmp"),
            (FabricPolicy::conga, "conga"),
            (FabricPolicy::conga_flow, "conga-flow"),
            (FabricPolicy::local, "local"),
            (FabricPolicy::spray, "spray"),
            (FabricPolicy::weighted, "weighted"),
            (FabricPolicy::letflow, "letflow"),
            (FabricPolicy::latency_aware, "latency-aware"),
        ] {
            let (_t, fib, mut p) = setup(mk());
            assert_eq!(p.name(), name);
            let mut rng = SimRng::new(5);
            let cands = fib.up_candidates[0][1].clone();
            let ch = p.leaf_ingress(
                LeafId(0),
                &mut fabric_pkt(9),
                &cands,
                SimTime::ZERO,
                &mut rng,
            );
            assert!(cands.contains(&ch));
        }
    }
}
