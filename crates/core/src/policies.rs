//! Baseline load-balancing policies the paper compares against, plus the
//! [`FabricPolicy`] enum that lets experiments swap schemes without generic
//! plumbing.
//!
//! * [`Ecmp`] — static per-flow hashing (the deployed default CONGA
//!   displaces).
//! * [`LocalAware`] — the §2.4 strawman: flowlet granularity but decisions
//!   from *local* DREs only. Provably mishandles asymmetry (Figure 2b).
//! * [`PacketSpray`] — per-packet round-robin (DRB-style); optimal balance,
//!   maximal reordering.
//! * [`WeightedRandom`] — oblivious routing with static topology-derived
//!   weights (§2.4's "can't handle traffic-matrix-dependent asymmetry").

use crate::conga::Conga;
use crate::dre::Dre;
use crate::flowlet::{FlowletTable, Lookup};
use crate::params::CongaParams;
use conga_net::{ecmp_mix, ChannelId, Dataplane, Fib, LeafId, NodeId, Packet, SpineId, Topology};
use conga_sim::{SimRng, SimTime};
use conga_telemetry::MetricsRegistry;

// ---------------------------------------------------------------------------
// ECMP
// ---------------------------------------------------------------------------

/// Static per-flow Equal-Cost Multi-Path hashing.
#[derive(Clone, Debug, Default)]
pub struct Ecmp {
    lbtag_of: Vec<u8>,
}

impl Dataplane for Ecmp {
    fn install(&mut self, _topo: &Topology, fib: &Fib) {
        self.lbtag_of = fib.lbtag_of.clone();
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        let h = ecmp_mix(pkt.flow_hash, 0x1EAF_0000 + leaf.0 as u64);
        let ch = candidates[(h % candidates.len() as u64) as usize];
        // The engine encapsulates before ingress, so the overlay is
        // normally present — but a missing one only costs the LBTag stamp
        // (ECMP carries no feedback), so degrade instead of panicking.
        if let Some(ov) = pkt.overlay.as_mut() {
            ov.lbtag = self.lbtag_of[ch.idx()];
        }
        ch
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        let h = ecmp_mix(pkt.flow_hash, 0x5B1E_0000 + spine.0 as u64);
        candidates[(h % candidates.len() as u64) as usize]
    }

    fn on_fabric_tx(&mut self, _ch: ChannelId, _pkt: &mut Packet, _now: SimTime) {}
    fn leaf_egress(&mut self, _leaf: LeafId, _pkt: &Packet, _now: SimTime) {}
    fn name(&self) -> &'static str {
        "ecmp"
    }
}

// ---------------------------------------------------------------------------
// Local congestion-aware (the strawman of §2.4)
// ---------------------------------------------------------------------------

/// Flowlet-granularity load balancing using only *local* uplink DREs —
/// the paper's illustration of why global information is required.
#[derive(Clone, Debug)]
pub struct LocalAware {
    params: CongaParams,
    dres: Vec<Option<Dre>>,
    lbtag_of: Vec<u8>,
    flowlets: Vec<FlowletTable>,
}

impl LocalAware {
    /// Local-only policy with CONGA's flowlet/DRE parameters.
    pub fn new(params: CongaParams) -> Self {
        LocalAware {
            params,
            dres: Vec::new(),
            lbtag_of: Vec::new(),
            flowlets: Vec::new(),
        }
    }

    fn decide(
        &mut self,
        candidates: &[ChannelId],
        prev: Option<ChannelId>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        let q = self.params.q_bits;
        let mut best = u8::MAX;
        let mut ties: Vec<ChannelId> = Vec::with_capacity(candidates.len());
        for &u in candidates {
            let m = self.dres[u.idx()]
                .as_mut()
                .expect("uplink without DRE")
                .quantized(now, q);
            if m < best {
                best = m;
                ties.clear();
                ties.push(u);
            } else if m == best {
                ties.push(u);
            }
        }
        if let Some(p) = prev {
            if ties.contains(&p) {
                return p;
            }
        }
        *rng.choose(&ties)
    }
}

impl Dataplane for LocalAware {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        self.dres = topo
            .channels
            .iter()
            .map(|c| {
                c.kind
                    .is_fabric()
                    .then(|| Dre::new(c.rate_bps, self.params.tdre, self.params.alpha))
            })
            .collect();
        self.lbtag_of = fib.lbtag_of.clone();
        self.flowlets = (0..topo.n_leaves)
            .map(|_| {
                FlowletTable::new(
                    self.params.flowlet_entries,
                    self.params.tfl,
                    self.params.gap_mode,
                )
            })
            .collect();
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        let l = leaf.idx();
        let ch = match self.flowlets[l].lookup(pkt.flow_hash, now) {
            Lookup::Active(port) if candidates.contains(&port) => port,
            Lookup::Active(stale) => {
                let port = self.decide(
                    candidates,
                    Some(stale).filter(|p| candidates.contains(p)),
                    now,
                    rng,
                );
                self.flowlets[l].commit(pkt.flow_hash, port, now);
                port
            }
            Lookup::NewFlowlet { prev } => {
                let port = self.decide(
                    candidates,
                    prev.filter(|p| candidates.contains(p)),
                    now,
                    rng,
                );
                self.flowlets[l].commit(pkt.flow_hash, port, now);
                port
            }
        };
        pkt.overlay.as_mut().expect("ingress without overlay").lbtag = self.lbtag_of[ch.idx()];
        ch
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        let h = ecmp_mix(pkt.flow_hash, 0x5B1E_0000 + spine.0 as u64);
        candidates[(h % candidates.len() as u64) as usize]
    }

    fn on_fabric_tx(&mut self, ch: ChannelId, pkt: &mut Packet, now: SimTime) {
        // DREs are maintained so local decisions see local load; CE is NOT
        // stamped (that is CONGA's global machinery).
        if let Some(d) = self.dres[ch.idx()].as_mut() {
            d.on_send(pkt.size, now);
        }
    }

    fn leaf_egress(&mut self, _leaf: LeafId, _pkt: &Packet, _now: SimTime) {}
    fn name(&self) -> &'static str {
        "local"
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        let (mut hits, mut new_flowlets) = (0u64, 0u64);
        for t in &self.flowlets {
            hits += t.stats.hits;
            new_flowlets += t.stats.new_flowlets;
        }
        reg.set_counter("dataplane.flowlet_hits", hits);
        reg.set_counter("dataplane.flowlet_new", new_flowlets);
    }
}

// ---------------------------------------------------------------------------
// Per-packet spray
// ---------------------------------------------------------------------------

/// Per-packet round-robin spraying (in the spirit of DRB / packet-spray).
#[derive(Clone, Debug, Default)]
pub struct PacketSpray {
    lbtag_of: Vec<u8>,
    /// Round-robin cursor per (leaf, dst leaf).
    leaf_rr: Vec<Vec<usize>>,
    /// Round-robin cursor per (spine, dst leaf).
    spine_rr: Vec<Vec<usize>>,
}

impl Dataplane for PacketSpray {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        self.lbtag_of = fib.lbtag_of.clone();
        let nl = topo.n_leaves as usize;
        self.leaf_rr = vec![vec![0; nl]; nl];
        self.spine_rr = vec![vec![0; nl]; topo.n_spines as usize];
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        let dst = pkt.overlay.expect("ingress without overlay").dst_tep.idx();
        let cur = &mut self.leaf_rr[leaf.idx()][dst];
        let ch = candidates[*cur % candidates.len()];
        *cur = (*cur + 1) % candidates.len();
        pkt.overlay.as_mut().expect("checked").lbtag = self.lbtag_of[ch.idx()];
        ch
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        let dst = pkt.overlay.expect("fabric packet").dst_tep.idx();
        let cur = &mut self.spine_rr[spine.idx()][dst];
        let ch = candidates[*cur % candidates.len()];
        *cur = (*cur + 1) % candidates.len();
        ch
    }

    fn on_fabric_tx(&mut self, _ch: ChannelId, _pkt: &mut Packet, _now: SimTime) {}
    fn leaf_egress(&mut self, _leaf: LeafId, _pkt: &Packet, _now: SimTime) {}
    fn name(&self) -> &'static str {
        "spray"
    }
}

// ---------------------------------------------------------------------------
// Weighted random (oblivious routing)
// ---------------------------------------------------------------------------

/// Static weighted-random load balancing: per-flow choice with weights
/// proportional to each uplink's bottleneck path capacity. The best a
/// topology-aware but traffic-oblivious scheme can do (§2.4, Figure 3).
#[derive(Clone, Debug, Default)]
pub struct WeightedRandom {
    lbtag_of: Vec<u8>,
    /// `weights[leaf][dst][i]` — cumulative weight of `up_candidates[leaf][dst][i]`.
    cum_weights: Vec<Vec<Vec<f64>>>,
}

impl Dataplane for WeightedRandom {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        self.lbtag_of = fib.lbtag_of.clone();
        let nl = topo.n_leaves as usize;
        self.cum_weights = vec![vec![Vec::new(); nl]; nl];
        for l in 0..nl {
            for m in 0..nl {
                let cands = &fib.up_candidates[l][m];
                if cands.is_empty() {
                    continue;
                }
                let mut cum = 0.0;
                let mut v = Vec::with_capacity(cands.len());
                for &u in cands {
                    let up = topo.channel(u);
                    let NodeId::Spine(s) = up.dst else {
                        unreachable!()
                    };
                    // Capacity share through this uplink: bounded by the
                    // uplink itself and by a fair share of the spine's
                    // downlink capacity toward the destination.
                    let down: u64 = fib.spine_down[s.idx()][m]
                        .iter()
                        .map(|&d| topo.channel(d).rate_bps)
                        .sum();
                    let into_spine: u64 = fib.leaf_uplinks[l]
                        .iter()
                        .filter(|&&x| topo.channel(x).dst == up.dst)
                        .map(|&x| topo.channel(x).rate_bps)
                        .sum();
                    let share = down as f64 * up.rate_bps as f64 / into_spine as f64;
                    let w = (up.rate_bps as f64).min(share);
                    cum += w;
                    v.push(cum);
                }
                self.cum_weights[l][m] = v;
            }
        }
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        let dst = pkt.overlay.expect("ingress without overlay").dst_tep.idx();
        let cum = &self.cum_weights[leaf.idx()][dst];
        // Weights are static (oblivious routing): a runtime link fault
        // changes the candidate list out from under them. Fall back to
        // plain hashing until the install-time candidate set returns —
        // exactly the paper's point that oblivious schemes cannot react.
        let ch = if cum.len() == candidates.len() {
            let total = *cum.last().expect("non-empty candidates");
            // Deterministic per-flow draw: hash to [0, total).
            let u = (ecmp_mix(pkt.flow_hash, 0x3EED) as f64 / u64::MAX as f64) * total;
            let i = cum.partition_point(|&c| c <= u).min(cum.len() - 1);
            candidates[i]
        } else {
            let h = ecmp_mix(pkt.flow_hash, 0x1EAF_0000 + leaf.0 as u64);
            candidates[(h % candidates.len() as u64) as usize]
        };
        pkt.overlay.as_mut().expect("checked").lbtag = self.lbtag_of[ch.idx()];
        ch
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        let h = ecmp_mix(pkt.flow_hash, 0x5B1E_0000 + spine.0 as u64);
        candidates[(h % candidates.len() as u64) as usize]
    }

    fn on_fabric_tx(&mut self, _ch: ChannelId, _pkt: &mut Packet, _now: SimTime) {}
    fn leaf_egress(&mut self, _leaf: LeafId, _pkt: &Packet, _now: SimTime) {}
    fn name(&self) -> &'static str {
        "weighted"
    }
}

// ---------------------------------------------------------------------------
// Incremental deployment: CONGA on a subset of leaves (paper §7)
// ---------------------------------------------------------------------------

/// Mixed deployment: leaves flagged in `conga_leaves` run CONGA; the rest
/// run plain ECMP. The CONGA machinery (DREs, CE marking, feedback) runs
/// fabric-wide — exactly as in a real rollout, where legacy ToRs simply
/// ignore the overlay congestion fields. Traffic not controlled by CONGA
/// just becomes bandwidth asymmetry that CONGA adapts around.
#[derive(Clone, Debug)]
pub struct Incremental {
    conga: Conga,
    ecmp: Ecmp,
    conga_leaves: Vec<bool>,
}

impl Incremental {
    /// CONGA on the leaves whose flag is true.
    pub fn new(params: CongaParams, conga_leaves: Vec<bool>) -> Self {
        Incremental {
            conga: Conga::new(params),
            ecmp: Ecmp::default(),
            conga_leaves,
        }
    }
}

impl Dataplane for Incremental {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        assert_eq!(self.conga_leaves.len(), topo.n_leaves as usize);
        self.conga.install(topo, fib);
        self.ecmp.install(topo, fib);
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        if self.conga_leaves[leaf.idx()] {
            self.conga.leaf_ingress(leaf, pkt, candidates, now, rng)
        } else {
            self.ecmp.leaf_ingress(leaf, pkt, candidates, now, rng)
        }
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        self.conga.spine_forward(spine, pkt, candidates, now, rng)
    }

    fn on_fabric_tx(&mut self, ch: ChannelId, pkt: &mut Packet, now: SimTime) {
        // DREs and CE marking run fabric-wide (spine ASICs are upgraded
        // first in a rollout); ECMP leaves simply never read them.
        self.conga.on_fabric_tx(ch, pkt, now);
    }

    fn leaf_egress(&mut self, leaf: LeafId, pkt: &Packet, now: SimTime) {
        self.conga.leaf_egress(leaf, pkt, now);
    }

    fn name(&self) -> &'static str {
        "incremental"
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        Dataplane::export_metrics(&self.conga, reg);
        reg.set_counter(
            "dataplane.conga_leaves",
            self.conga_leaves.iter().filter(|&&b| b).count() as u64,
        );
    }

    fn set_tracer(&mut self, tracer: conga_trace::TraceHandle) {
        // Only the CONGA half has decision provenance to record.
        self.conga.set_tracer(tracer);
    }
}

// ---------------------------------------------------------------------------
// The policy enum
// ---------------------------------------------------------------------------

/// Any of the fabric load-balancing schemes, behind one concrete type so the
/// engine stays monomorphic (`Network<FabricPolicy, _>`).
#[derive(Clone, Debug)]
pub enum FabricPolicy {
    /// Static per-flow hashing.
    Ecmp(Ecmp),
    /// CONGA (or CONGA-Flow, depending on parameters).
    Conga(Box<Conga>),
    /// Local-DRE-only strawman.
    Local(LocalAware),
    /// Per-packet round-robin.
    Spray(PacketSpray),
    /// Static weighted random.
    Weighted(WeightedRandom),
    /// CONGA on a subset of leaves, ECMP elsewhere (incremental rollout).
    Incremental(Box<Incremental>),
}

impl FabricPolicy {
    /// ECMP baseline.
    pub fn ecmp() -> Self {
        FabricPolicy::Ecmp(Ecmp::default())
    }
    /// CONGA with the paper's default parameters.
    pub fn conga() -> Self {
        FabricPolicy::Conga(Box::new(Conga::new(CongaParams::paper_default())))
    }
    /// CONGA with custom parameters.
    pub fn conga_with(params: CongaParams) -> Self {
        FabricPolicy::Conga(Box::new(Conga::new(params)))
    }
    /// CONGA-Flow (13 ms flowlet timeout — one decision per flow).
    pub fn conga_flow() -> Self {
        FabricPolicy::Conga(Box::new(Conga::conga_flow()))
    }
    /// Local congestion-aware strawman.
    pub fn local() -> Self {
        FabricPolicy::Local(LocalAware::new(CongaParams::paper_default()))
    }
    /// Per-packet round-robin spray.
    pub fn spray() -> Self {
        FabricPolicy::Spray(PacketSpray::default())
    }
    /// Weighted-random oblivious routing.
    pub fn weighted() -> Self {
        FabricPolicy::Weighted(WeightedRandom::default())
    }

    /// CONGA on the flagged leaves only, ECMP on the rest (paper §7).
    pub fn incremental(conga_leaves: Vec<bool>) -> Self {
        FabricPolicy::Incremental(Box::new(Incremental::new(
            CongaParams::paper_default(),
            conga_leaves,
        )))
    }

    /// Access the inner CONGA state, if this policy is CONGA.
    pub fn as_conga(&self) -> Option<&Conga> {
        match self {
            FabricPolicy::Conga(c) => Some(c),
            _ => None,
        }
    }
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            FabricPolicy::Ecmp($inner) => $body,
            FabricPolicy::Conga($inner) => $body,
            FabricPolicy::Local($inner) => $body,
            FabricPolicy::Spray($inner) => $body,
            FabricPolicy::Weighted($inner) => $body,
            FabricPolicy::Incremental($inner) => $body,
        }
    };
}

impl Dataplane for FabricPolicy {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        delegate!(self, p => p.install(topo, fib))
    }
    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        delegate!(self, p => p.leaf_ingress(leaf, pkt, candidates, now, rng))
    }
    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        delegate!(self, p => p.spine_forward(spine, pkt, candidates, now, rng))
    }
    fn on_fabric_tx(&mut self, ch: ChannelId, pkt: &mut Packet, now: SimTime) {
        delegate!(self, p => p.on_fabric_tx(ch, pkt, now))
    }
    fn leaf_egress(&mut self, leaf: LeafId, pkt: &Packet, now: SimTime) {
        delegate!(self, p => p.leaf_egress(leaf, pkt, now))
    }
    fn name(&self) -> &'static str {
        delegate!(self, p => p.name())
    }
    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        delegate!(self, p => p.export_metrics(reg))
    }
    fn set_tracer(&mut self, tracer: conga_trace::TraceHandle) {
        delegate!(self, p => p.set_tracer(tracer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conga_net::{HostId, LeafSpineBuilder, Overlay};

    fn setup<P: Dataplane>(mut p: P) -> (Topology, Fib, P) {
        let topo = LeafSpineBuilder::new(2, 2, 2).parallel_links(2).build();
        let fib = topo.fib();
        p.install(&topo, &fib);
        (topo, fib, p)
    }

    fn fabric_pkt(flow_hash: u64) -> Packet {
        let mut p = Packet::data(
            0,
            0,
            flow_hash,
            HostId(0),
            HostId(2),
            0,
            1460,
            SimTime::ZERO,
        );
        p.overlay = Some(Overlay::new(LeafId(0), LeafId(1)));
        p
    }

    #[test]
    fn ecmp_is_deterministic_per_flow_and_spreads_across_flows() {
        let (_t, fib, mut e) = setup(Ecmp::default());
        let mut rng = SimRng::new(1);
        let cands = fib.up_candidates[0][1].clone();
        let mut counts = vec![0usize; cands.len()];
        for f in 0..4000u64 {
            let h = ecmp_mix(f, 99);
            let c1 = e.leaf_ingress(
                LeafId(0),
                &mut fabric_pkt(h),
                &cands,
                SimTime::ZERO,
                &mut rng,
            );
            let c2 = e.leaf_ingress(
                LeafId(0),
                &mut fabric_pkt(h),
                &cands,
                SimTime::ZERO,
                &mut rng,
            );
            assert_eq!(c1, c2, "same flow must always hash to the same path");
            counts[cands.iter().position(|&x| x == c1).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..=1200).contains(&c), "uplink {i} got {c}/4000 flows");
        }
    }

    #[test]
    fn ecmp_ingress_without_overlay_does_not_panic() {
        // Regression: this used to `expect("ingress without overlay")`.
        // A bare packet still gets a valid (and deterministic) candidate;
        // only the LBTag stamp is skipped.
        let (_t, fib, mut e) = setup(Ecmp::default());
        let mut rng = SimRng::new(3);
        let cands = fib.up_candidates[0][1].clone();
        let mut bare = fabric_pkt(ecmp_mix(42, 99));
        bare.overlay = None;
        let c1 = e.leaf_ingress(LeafId(0), &mut bare, &cands, SimTime::ZERO, &mut rng);
        assert!(cands.contains(&c1));
        assert!(bare.overlay.is_none());
        let mut with = fabric_pkt(ecmp_mix(42, 99));
        let c2 = e.leaf_ingress(LeafId(0), &mut with, &cands, SimTime::ZERO, &mut rng);
        assert_eq!(c1, c2, "overlay presence must not change the hash choice");
    }

    #[test]
    fn spray_round_robins_per_packet() {
        let (_t, fib, mut s) = setup(PacketSpray::default());
        let mut rng = SimRng::new(2);
        let cands = fib.up_candidates[0][1].clone();
        let picks: Vec<ChannelId> = (0..8)
            .map(|_| {
                s.leaf_ingress(
                    LeafId(0),
                    &mut fabric_pkt(7),
                    &cands,
                    SimTime::ZERO,
                    &mut rng,
                )
            })
            .collect();
        // Perfect rotation: every candidate appears exactly twice in 8 picks.
        for &c in &cands {
            assert_eq!(picks.iter().filter(|&&x| x == c).count(), 2);
        }
        // And consecutive picks differ (maximal reordering).
        assert_ne!(picks[0], picks[1]);
    }

    #[test]
    fn local_aware_prefers_idle_uplink() {
        let (_t, fib, mut p) = setup(LocalAware::new(CongaParams::paper_default()));
        let mut rng = SimRng::new(3);
        let cands = fib.up_candidates[0][1].clone();
        let now = SimTime::from_micros(10);
        // Saturate all but candidate 1.
        for (i, &u) in cands.iter().enumerate() {
            if i == 1 {
                continue;
            }
            for _ in 0..10_000 {
                p.on_fabric_tx(u, &mut fabric_pkt(1), now);
            }
        }
        for f in 0..10u64 {
            let ch = p.leaf_ingress(LeafId(0), &mut fabric_pkt(100 + f), &cands, now, &mut rng);
            assert_eq!(ch, cands[1], "flow {f}");
        }
    }

    #[test]
    fn weighted_random_splits_by_capacity() {
        // Figure 2 topology: single links, lower path at half rate.
        let topo = LeafSpineBuilder::new(2, 2, 2)
            .fabric_rate_gbps(80)
            .parallel_links(1)
            .override_link_rate_gbps(1, 1, 0, 40)
            .build();
        let fib = topo.fib();
        let mut w = WeightedRandom::default();
        w.install(&topo, &fib);
        let mut rng = SimRng::new(4);
        let cands = fib.up_candidates[0][1].clone();
        let mut counts = vec![0usize; cands.len()];
        for f in 0..30_000u64 {
            let mut pkt = fabric_pkt(ecmp_mix(f, 5));
            let ch = w.leaf_ingress(LeafId(0), &mut pkt, &cands, SimTime::ZERO, &mut rng);
            counts[cands.iter().position(|&x| x == ch).unwrap()] += 1;
        }
        // Uplink to spine0 (80G path) should carry ~2/3; to spine1 ~1/3.
        let to_s0 = counts[0] as f64 / 30_000.0;
        assert!(
            (to_s0 - 2.0 / 3.0).abs() < 0.03,
            "80G-path share {to_s0}, expected ~0.667"
        );
    }

    #[test]
    fn policy_enum_delegates() {
        for (mk, name) in [
            (FabricPolicy::ecmp as fn() -> FabricPolicy, "ecmp"),
            (FabricPolicy::conga, "conga"),
            (FabricPolicy::conga_flow, "conga-flow"),
            (FabricPolicy::local, "local"),
            (FabricPolicy::spray, "spray"),
            (FabricPolicy::weighted, "weighted"),
        ] {
            let (_t, fib, mut p) = setup(mk());
            assert_eq!(p.name(), name);
            let mut rng = SimRng::new(5);
            let cands = fib.up_candidates[0][1].clone();
            let ch = p.leaf_ingress(
                LeafId(0),
                &mut fabric_pkt(9),
                &cands,
                SimTime::ZERO,
                &mut rng,
            );
            assert!(cands.contains(&ch));
        }
    }
}
