//! CONGA's tunable parameters (paper §3.6).
//!
//! The paper's defaults: `Q = 3` quantization bits, DRE time constant
//! `τ = T_dre/α = 160 µs`, flowlet inactivity timeout `T_fl = 500 µs`, and a
//! ~10 ms metric-aging horizon. `CONGA-Flow` is the same machinery with
//! `T_fl = 13 ms` (longer than the testbed's worst-case path latency), which
//! effectively makes one decision per flow.

use conga_sim::SimDuration;

/// How the flowlet table detects inactivity gaps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GapMode {
    /// Full-timestamp comparison: a gap is declared exactly when the idle
    /// interval exceeds `T_fl`.
    Exact,
    /// The hardware scheme of paper §3.4: one age bit per entry, checked and
    /// set by a timer every `T_fl`; detected gaps therefore fall in
    /// `(T_fl, 2·T_fl]`. Cheaper in silicon, slightly lazier in effect.
    AgeBit,
}

/// The full parameter set for CONGA's dataplane.
#[derive(Clone, Copy, Debug)]
pub struct CongaParams {
    /// Congestion-metric quantization width in bits (paper: 3–6 work well).
    pub q_bits: u8,
    /// DRE decrement period `T_dre`.
    pub tdre: SimDuration,
    /// DRE multiplicative decay factor `α` (per `T_dre`).
    pub alpha: f64,
    /// Flowlet inactivity timeout `T_fl`.
    pub tfl: SimDuration,
    /// Congestion metrics not refreshed for this long decay to zero (§3.3).
    pub metric_age: SimDuration,
    /// Number of flowlet-table entries (their ASIC: 64 K).
    pub flowlet_entries: usize,
    /// Gap-detection mode.
    pub gap_mode: GapMode,
}

impl CongaParams {
    /// The paper's default configuration: `Q = 3`, `τ = 160 µs`
    /// (`T_dre = 16 µs`, `α = 0.1`), `T_fl = 500 µs`.
    pub fn paper_default() -> Self {
        CongaParams {
            q_bits: 3,
            tdre: SimDuration::from_micros(16),
            alpha: 0.1,
            tfl: SimDuration::from_micros(500),
            metric_age: SimDuration::from_millis(10),
            flowlet_entries: 64 * 1024,
            gap_mode: GapMode::AgeBit,
        }
    }

    /// CONGA-Flow: identical but with a 13 ms flowlet timeout, guaranteeing
    /// no packet reordering in the paper's testbed (one decision per flow).
    pub fn conga_flow() -> Self {
        CongaParams {
            tfl: SimDuration::from_millis(13),
            ..Self::paper_default()
        }
    }

    /// The DRE time constant `τ = T_dre / α`.
    pub fn tau(&self) -> SimDuration {
        SimDuration::from_nanos((self.tdre.as_nanos() as f64 / self.alpha).round() as u64)
    }

    /// Largest representable quantized metric: `2^Q − 1`.
    pub fn metric_max(&self) -> u8 {
        ((1u16 << self.q_bits) - 1) as u8
    }
}

impl Default for CongaParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_3_6() {
        let p = CongaParams::paper_default();
        assert_eq!(p.q_bits, 3);
        assert_eq!(p.tau(), SimDuration::from_micros(160));
        assert_eq!(p.tfl, SimDuration::from_micros(500));
        assert_eq!(p.metric_max(), 7);
        assert_eq!(p.flowlet_entries, 65536);
    }

    #[test]
    fn conga_flow_only_changes_the_timeout() {
        let a = CongaParams::paper_default();
        let b = CongaParams::conga_flow();
        assert_eq!(b.tfl, SimDuration::from_millis(13));
        assert_eq!(a.q_bits, b.q_bits);
        assert_eq!(a.tdre, b.tdre);
    }

    #[test]
    fn metric_max_tracks_q() {
        let mut p = CongaParams::paper_default();
        p.q_bits = 6;
        assert_eq!(p.metric_max(), 63);
    }
}
