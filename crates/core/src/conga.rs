//! The CONGA dataplane (paper §3, Figure 6).
//!
//! One [`Conga`] instance models the dataplane logic of *every* switch in
//! the fabric (the per-switch state is internally partitioned, exactly as
//! each physical ASIC holds only its own tables):
//!
//! * per fabric link: a [`Dre`] congestion estimator;
//! * per leaf: a [`FlowletTable`], a [`CongestionToLeaf`] table and a
//!   [`CongestionFromLeaf`] table;
//! * spine switches forward with standard ECMP hashing (paper footnote 3)
//!   while their DREs stamp the CE field of passing packets.
//!
//! The decision rule (§3.5): on the first packet of a flowlet, pick the
//! uplink minimizing `max(local DRE metric, remote Congestion-To-Leaf
//! metric)`; break ties in favour of the port the flow's previous flowlet
//! used (a flow only moves if a strictly better uplink exists), then
//! randomly.

use crate::dre::Dre;
use crate::flowlet::{FlowletTable, Lookup};
use crate::params::CongaParams;
use crate::policies::FallbackTable;
use crate::tables::{CongestionFromLeaf, CongestionToLeaf};
use conga_net::{
    ecmp_mix, ChannelId, Dataplane, Fib, LeafId, Packet, SpineId, Topology, MAX_LBTAG,
};
use conga_sim::{SimRng, SimTime};
use conga_telemetry::{MetricsRegistry, SeriesRegistry};
use conga_trace::{Candidate, TraceEvent, TraceHandle};

/// Per-leaf CONGA state.
#[derive(Clone, Debug)]
struct LeafState {
    flowlets: FlowletTable,
    to_leaf: CongestionToLeaf,
    from_leaf: CongestionFromLeaf,
}

/// The CONGA dataplane: implements [`Dataplane`] for the whole fabric.
#[derive(Clone, Debug)]
pub struct Conga {
    /// Parameters (public so experiments can report them).
    pub params: CongaParams,
    dres: Vec<Option<Dre>>,
    lbtag_of: Vec<u8>,
    leaves: Vec<LeafState>,
    /// Decisions where the flow stayed on its previous port (tie-break).
    pub sticky_decisions: u64,
    /// Decisions that moved a flow to a strictly better port.
    pub moved_decisions: u64,
    /// DRE updates (one per fabric transmission).
    pub dre_updates: u64,
    /// Fabric transmissions where the link's DRE raised the packet's CE.
    pub ce_raised: u64,
    /// Feedback metrics piggybacked onto outgoing packets (§3.3 step 4).
    pub feedback_piggybacked: u64,
    /// Feedback metrics harvested into Congestion-To-Leaf at egress.
    pub feedback_harvested: u64,
    /// Path-congestion observations recorded into Congestion-From-Leaf.
    pub from_leaf_records: u64,
    label: &'static str,
    tracer: TraceHandle,
    fallback: FallbackTable,
}

impl Conga {
    /// CONGA with the given parameters.
    pub fn new(params: CongaParams) -> Self {
        Conga {
            params,
            dres: Vec::new(),
            lbtag_of: Vec::new(),
            leaves: Vec::new(),
            sticky_decisions: 0,
            moved_decisions: 0,
            dre_updates: 0,
            ce_raised: 0,
            feedback_piggybacked: 0,
            feedback_harvested: 0,
            from_leaf_records: 0,
            label: "conga",
            tracer: TraceHandle::disabled(),
            fallback: FallbackTable::default(),
        }
    }

    /// The paper's CONGA-Flow variant (one decision per flow).
    pub fn conga_flow() -> Self {
        let mut c = Conga::new(CongaParams::conga_flow());
        c.label = "conga-flow";
        c
    }

    /// Flowlet statistics for a leaf (hits / new flowlets).
    pub fn flowlet_stats(&self, leaf: LeafId) -> crate::flowlet::FlowletStats {
        self.leaves[leaf.idx()].flowlets.stats
    }

    /// Current quantized local DRE metric of a channel (for debugging and
    /// the parameter-ablation experiments).
    pub fn link_metric(&mut self, ch: ChannelId, now: SimTime) -> Option<u8> {
        let q = self.params.q_bits;
        self.dres[ch.idx()].as_mut().map(|d| d.quantized(now, q))
    }

    /// Decision core, shared by CONGA and (via `remote = 0`) the local-only
    /// baseline: pick argmin over candidates of `max(local, remote)`.
    #[allow(clippy::too_many_arguments)]
    fn decide(
        dres: &mut [Option<Dre>],
        to_leaf: Option<&CongestionToLeaf>,
        lbtag_of: &[u8],
        dst_leaf: usize,
        candidates: &[ChannelId],
        prev: Option<ChannelId>,
        q_bits: u8,
        now: SimTime,
        rng: &mut SimRng,
        mut capture: Option<&mut Vec<Candidate>>,
    ) -> (ChannelId, bool) {
        debug_assert!(!candidates.is_empty());
        let mut best: u16 = u16::MAX;
        // Single-pass reservoir over the tied minimum: the k-th candidate
        // matching the best metric replaces the provisional pick with
        // probability 1/k, so every tied uplink is equally likely no matter
        // how many tie (a fixed-size tie buffer silently dropped ties past
        // its capacity, biasing large fabrics toward low-indexed uplinks).
        let mut pick = candidates[0];
        let mut n_ties = 0u64;
        let mut tied_prev: Option<ChannelId> = None;
        for &u in candidates {
            // A candidate without a DRE (a channel surfaced by a FIB
            // rebuild the dataplane was never re-installed for) reads as
            // idle rather than panicking.
            let local = match dres.get_mut(u.idx()).and_then(Option::as_mut) {
                Some(d) => d.quantized(now, q_bits),
                None => 0,
            };
            let remote = to_leaf
                .map(|t| t.read(dst_leaf, lbtag_of[u.idx()], now))
                .unwrap_or(0);
            let m = local.max(remote) as u16;
            if let Some(cap) = capture.as_deref_mut() {
                cap.push(Candidate {
                    ch: u.idx() as u32,
                    lbtag: lbtag_of[u.idx()],
                    local,
                    remote,
                    metric: local.max(remote),
                });
            }
            if m < best {
                best = m;
                pick = u;
                n_ties = 1;
                tied_prev = if prev == Some(u) { prev } else { None };
            } else if m == best {
                n_ties += 1;
                if rng.below(n_ties as usize) == 0 {
                    pick = u;
                }
                if prev == Some(u) {
                    tied_prev = prev;
                }
            }
        }
        // Prefer the previous port if it is among the best.
        if let Some(p) = tied_prev {
            return (p, true);
        }
        (pick, false)
    }
}

impl Dataplane for Conga {
    fn install(&mut self, topo: &Topology, fib: &Fib) {
        self.dres = topo
            .channels
            .iter()
            .map(|c| {
                c.kind
                    .is_fabric()
                    .then(|| Dre::new(c.rate_bps, self.params.tdre, self.params.alpha))
            })
            .collect();
        self.lbtag_of = fib.lbtag_of.clone();
        let nl = topo.n_leaves as usize;
        self.leaves = (0..nl)
            .map(|_| LeafState {
                flowlets: FlowletTable::new(
                    self.params.flowlet_entries,
                    self.params.tfl,
                    self.params.gap_mode,
                ),
                to_leaf: CongestionToLeaf::new(nl, MAX_LBTAG, self.params.metric_age),
                from_leaf: CongestionFromLeaf::new(nl, MAX_LBTAG, self.params.metric_age),
            })
            .collect();
        self.fallback.install(topo);
    }

    fn leaf_ingress(
        &mut self,
        leaf: LeafId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        now: SimTime,
        rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            // Total uplink failure mid-rebuild: deterministic fallback, the
            // engine blackhole-accounts the packet on the dead channel.
            return self.fallback.leaf(leaf);
        }
        let l = leaf.idx();
        let Some(dst) = pkt.overlay.as_ref().map(|o| o.dst_tep.idx()) else {
            // No overlay means no destination table and nowhere to stamp:
            // degrade to stateless hashing without touching flowlet state.
            let h = ecmp_mix(pkt.flow_hash, 0x1EAF_0000 + leaf.0 as u64);
            return candidates[(h % candidates.len() as u64) as usize];
        };
        let traced = self.tracer.wants_flow(pkt.flow);

        // Opportunistically piggyback one feedback metric for the
        // destination leaf (paper §3.3 step 4).
        if let Some((tag, metric)) = self.leaves[l].from_leaf.select_feedback(dst, now) {
            if let Some(o) = pkt.overlay.as_mut() {
                o.fb_lbtag = tag;
                o.fb_metric = metric;
                o.fb_valid = true;
            }
            self.feedback_piggybacked += 1;
            if traced {
                self.tracer.emit(
                    now,
                    TraceEvent::FeedbackPiggyback {
                        leaf: l as u32,
                        flow: pkt.flow,
                        dst_leaf: dst as u32,
                        lbtag: tag,
                        metric,
                    },
                );
            }
        }

        // Flowlet lookup; decide only on the first packet of a flowlet.
        let lookup = self.leaves[l].flowlets.lookup(pkt.flow_hash, now);
        let chosen = match lookup {
            Lookup::Active(port) if candidates.contains(&port) => port,
            Lookup::Active(stale) => {
                // Cached port can no longer reach this destination (link
                // failure or a table collision across destinations):
                // decide afresh.
                let state = &mut self.leaves[l];
                let mut cap: Vec<Candidate> = Vec::new();
                let (port, sticky) = Self::decide(
                    &mut self.dres,
                    Some(&state.to_leaf),
                    &self.lbtag_of,
                    dst,
                    candidates,
                    Some(stale).filter(|p| candidates.contains(p)),
                    self.params.q_bits,
                    now,
                    rng,
                    traced.then_some(&mut cap),
                );
                if sticky {
                    self.sticky_decisions += 1;
                }
                state.flowlets.commit(pkt.flow_hash, port, now);
                if traced {
                    self.tracer.emit(
                        now,
                        TraceEvent::Decision {
                            leaf: l as u32,
                            flow: pkt.flow,
                            dst_leaf: dst as u32,
                            candidates: cap,
                            chosen: port.idx() as u32,
                            lbtag: self.lbtag_of[port.idx()],
                            sticky,
                        },
                    );
                }
                port
            }
            Lookup::NewFlowlet { prev } => {
                let state = &mut self.leaves[l];
                if traced {
                    // `prev` means the flow's previous flowlet aged out —
                    // expiry is lazy, observable only at this lookup.
                    if let Some(p) = prev {
                        self.tracer.emit(
                            now,
                            TraceEvent::FlowletExpire {
                                leaf: l as u32,
                                flow: pkt.flow,
                                ch: p.idx() as u32,
                            },
                        );
                    }
                }
                let mut cap: Vec<Candidate> = Vec::new();
                let (port, sticky) = Self::decide(
                    &mut self.dres,
                    Some(&state.to_leaf),
                    &self.lbtag_of,
                    dst,
                    candidates,
                    prev.filter(|p| candidates.contains(p)),
                    self.params.q_bits,
                    now,
                    rng,
                    traced.then_some(&mut cap),
                );
                if sticky {
                    self.sticky_decisions += 1;
                } else if prev.is_some() {
                    self.moved_decisions += 1;
                }
                state.flowlets.commit(pkt.flow_hash, port, now);
                if traced {
                    self.tracer.emit(
                        now,
                        TraceEvent::FlowletNew {
                            leaf: l as u32,
                            flow: pkt.flow,
                            ch: port.idx() as u32,
                            prev: prev.map(|p| p.idx() as u32),
                        },
                    );
                    self.tracer.emit(
                        now,
                        TraceEvent::Decision {
                            leaf: l as u32,
                            flow: pkt.flow,
                            dst_leaf: dst as u32,
                            candidates: cap,
                            chosen: port.idx() as u32,
                            lbtag: self.lbtag_of[port.idx()],
                            sticky,
                        },
                    );
                }
                port
            }
        };

        if let Some(o) = pkt.overlay.as_mut() {
            o.lbtag = self.lbtag_of[chosen.idx()];
        }
        chosen
    }

    fn spine_forward(
        &mut self,
        spine: SpineId,
        pkt: &mut Packet,
        candidates: &[ChannelId],
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> ChannelId {
        if candidates.is_empty() {
            return self.fallback.spine(spine);
        }
        // Standard ECMP among the (parallel) downlinks, paper footnote 3.
        let h = ecmp_mix(pkt.flow_hash, 0x5B1E_0000 + spine.0 as u64);
        candidates[(h % candidates.len() as u64) as usize]
    }

    fn on_fabric_tx(&mut self, ch: ChannelId, pkt: &mut Packet, now: SimTime) {
        let q = self.params.q_bits;
        let Some(dre) = self.dres.get_mut(ch.idx()).and_then(Option::as_mut) else {
            // Host-access channels (and any channel unknown to this
            // install) carry no DRE; nothing to update.
            return;
        };
        dre.on_send(pkt.size, now);
        self.dre_updates += 1;
        if self.tracer.wants_flow(pkt.flow) {
            // Quantization is lazy but idempotent at a fixed `now`, so the
            // traced value matches what the CE update below reads.
            let quantized = dre.quantized(now, q);
            self.tracer.emit(
                now,
                TraceEvent::DreUpdate {
                    ch: ch.idx() as u32,
                    flow: pkt.flow,
                    bytes: pkt.size,
                    quantized,
                },
            );
        }
        if let Some(o) = pkt.overlay.as_mut() {
            // CE accumulates the maximum link congestion along the path.
            let m = dre.quantized(now, q);
            if m > o.ce {
                o.ce = m;
                self.ce_raised += 1;
            }
        }
    }

    fn leaf_egress(&mut self, leaf: LeafId, pkt: &Packet, now: SimTime) {
        let Some(o) = pkt.overlay.as_ref() else {
            return;
        };
        let state = &mut self.leaves[leaf.idx()];
        // Store this packet's path congestion for later piggybacking...
        state.from_leaf.record(o.src_tep.idx(), o.lbtag, o.ce, now);
        self.from_leaf_records += 1;
        // ...and absorb the feedback it carries into Congestion-To-Leaf.
        if o.fb_valid {
            state
                .to_leaf
                .update(o.src_tep.idx(), o.fb_lbtag, o.fb_metric, now);
            self.feedback_harvested += 1;
            if self.tracer.wants_flow(pkt.flow) {
                self.tracer.emit(
                    now,
                    TraceEvent::FeedbackApply {
                        leaf: leaf.idx() as u32,
                        flow: pkt.flow,
                        src_leaf: o.src_tep.idx() as u32,
                        lbtag: o.fb_lbtag,
                        metric: o.fb_metric,
                    },
                );
            }
        }
    }

    fn name(&self) -> &'static str {
        self.label
    }

    fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    fn sample_series(&mut self, now: SimTime, out: &mut SeriesRegistry) {
        // Shard rule: leaf L's tables and a link's DRE are only exercised
        // in the domain that owns them; replica copies elsewhere read zero.
        // Zero DRE readings are skipped (idle links and replicas alike), so
        // the shard sum-merge reproduces the monolithic sample exactly.
        let q = self.params.q_bits;
        for (i, dre) in self.dres.iter_mut().enumerate() {
            if let Some(d) = dre.as_mut() {
                let m = d.quantized(now, q);
                if m > 0 {
                    out.record(&format!("dataplane.dre.{i:04}"), now, m as f64);
                }
            }
        }
        for (l, leaf) in self.leaves.iter().enumerate() {
            let occ = leaf.flowlets.occupancy(now);
            if occ > 0 {
                out.record(&format!("dataplane.flowlets.leaf{l}"), now, occ as f64);
            }
        }
    }

    fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.set_counter("dataplane.sticky_decisions", self.sticky_decisions);
        reg.set_counter("dataplane.moved_decisions", self.moved_decisions);
        reg.set_counter("dataplane.dre_updates", self.dre_updates);
        reg.set_counter("dataplane.ce_raised", self.ce_raised);
        reg.set_counter("dataplane.feedback_piggybacked", self.feedback_piggybacked);
        reg.set_counter("dataplane.feedback_harvested", self.feedback_harvested);
        reg.set_counter("dataplane.from_leaf_records", self.from_leaf_records);
        let (mut hits, mut new_flowlets) = (0u64, 0u64);
        for leaf in &self.leaves {
            hits += leaf.flowlets.stats.hits;
            new_flowlets += leaf.flowlets.stats.new_flowlets;
        }
        reg.set_counter("dataplane.flowlet_hits", hits);
        reg.set_counter("dataplane.flowlet_new", new_flowlets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conga_net::{HostId, LeafSpineBuilder, Overlay};

    fn setup() -> (Topology, Fib, Conga) {
        let topo = LeafSpineBuilder::new(2, 2, 2)
            .host_rate_gbps(10)
            .fabric_rate_gbps(40)
            .parallel_links(2)
            .build();
        let fib = topo.fib();
        let mut conga = Conga::new(CongaParams::paper_default());
        conga.install(&topo, &fib);
        (topo, fib, conga)
    }

    fn fabric_pkt(flow_hash: u64, src_leaf: u32, dst_leaf: u32) -> Packet {
        let mut p = Packet::data(
            0,
            0,
            flow_hash,
            HostId(0),
            HostId(2),
            0,
            1460,
            SimTime::ZERO,
        );
        p.overlay = Some(Overlay::new(LeafId(src_leaf), LeafId(dst_leaf)));
        p
    }

    #[test]
    fn ingress_sets_lbtag_of_chosen_uplink() {
        let (_t, fib, mut c) = setup();
        let mut rng = SimRng::new(1);
        let mut p = fabric_pkt(77, 0, 1);
        let cands = fib.up_candidates[0][1].clone();
        let ch = c.leaf_ingress(LeafId(0), &mut p, &cands, SimTime::ZERO, &mut rng);
        assert!(cands.contains(&ch));
        assert_eq!(p.overlay.unwrap().lbtag, fib.lbtag_of[ch.idx()]);
    }

    #[test]
    fn flowlet_keeps_packets_on_one_uplink() {
        let (_t, fib, mut c) = setup();
        let mut rng = SimRng::new(2);
        let cands = fib.up_candidates[0][1].clone();
        let mut first = fabric_pkt(99, 0, 1);
        let ch0 = c.leaf_ingress(LeafId(0), &mut first, &cands, SimTime::ZERO, &mut rng);
        for i in 1..50u64 {
            let mut p = fabric_pkt(99, 0, 1);
            let t = SimTime::from_micros(i * 10); // well under T_fl
            let ch = c.leaf_ingress(LeafId(0), &mut p, &cands, t, &mut rng);
            assert_eq!(ch, ch0, "flowlet must not switch paths mid-burst");
        }
        assert_eq!(c.flowlet_stats(LeafId(0)).new_flowlets, 1);
    }

    #[test]
    fn decision_avoids_congested_uplink_via_remote_metric() {
        let (_t, fib, mut c) = setup();
        let mut rng = SimRng::new(3);
        let cands = fib.up_candidates[0][1].clone();
        let now = SimTime::from_micros(100);
        // Feedback says: every uplink except tag 2 is badly congested.
        for &u in &cands {
            let tag = fib.lbtag_of[u.idx()];
            let metric = if tag == 2 { 0 } else { 7 };
            c.leaves[0].to_leaf.update(1, tag, metric, now);
        }
        // Many distinct flows: all must pick the uncongested uplink.
        for f in 0..20u64 {
            let mut p = fabric_pkt(1000 + f, 0, 1);
            let ch = c.leaf_ingress(LeafId(0), &mut p, &cands, now, &mut rng);
            assert_eq!(fib.lbtag_of[ch.idx()], 2, "flow {f} took a congested path");
        }
    }

    #[test]
    fn decision_avoids_congested_uplink_via_local_dre() {
        let (_t, fib, mut c) = setup();
        let mut rng = SimRng::new(4);
        let cands = fib.up_candidates[0][1].clone();
        let now = SimTime::from_micros(50);
        // Blast the DRE of uplink 0 to saturation.
        let hot = cands[0];
        for _ in 0..10_000 {
            c.on_fabric_tx(hot, &mut fabric_pkt(1, 0, 1), now);
        }
        for f in 0..20u64 {
            let mut p = fabric_pkt(2000 + f, 0, 1);
            let ch = c.leaf_ingress(LeafId(0), &mut p, &cands, now, &mut rng);
            assert_ne!(ch, hot, "flow {f} picked the locally congested uplink");
        }
    }

    #[test]
    fn ce_field_accumulates_max_along_path() {
        let (_t, fib, mut c) = setup();
        let now = SimTime::from_micros(10);
        let up = fib.leaf_uplinks[0][0];
        // Pre-load the DRE so the quantized metric is nonzero.
        for _ in 0..5_000 {
            c.on_fabric_tx(up, &mut fabric_pkt(5, 0, 1), now);
        }
        let mut p = fabric_pkt(6, 0, 1);
        c.on_fabric_tx(up, &mut p, now);
        let ce1 = p.overlay.unwrap().ce;
        assert!(ce1 > 0);
        // A later hop with an idle DRE must not lower CE.
        let down = fib.spine_down[0][1][0];
        c.on_fabric_tx(down, &mut p, now);
        assert!(p.overlay.unwrap().ce >= ce1, "CE must be a running max");
    }

    #[test]
    fn egress_and_feedback_close_the_loop() {
        let (_t, fib, mut c) = setup();
        let now = SimTime::from_micros(20);
        // Leaf 1 receives a packet from leaf 0 with lbtag 3, CE 6.
        let mut p = fabric_pkt(8, 0, 1);
        {
            let o = p.overlay.as_mut().unwrap();
            o.lbtag = 3;
            o.ce = 6;
        }
        c.leaf_egress(LeafId(1), &p, now);
        // When leaf 1 later sends to leaf 0, the feedback must ride along —
        // using the same FIB the dataplane was installed with.
        let mut rng = SimRng::new(5);
        let mut rev = fabric_pkt(9, 1, 0);
        let rcands = fib.up_candidates[1][0].clone();
        let chosen = c.leaf_ingress(LeafId(1), &mut rev, &rcands, now, &mut rng);
        assert!(rcands.contains(&chosen));
        let o = rev.overlay.unwrap();
        assert!(o.fb_valid);
        assert_eq!(o.fb_lbtag, 3);
        assert_eq!(o.fb_metric, 6);
        assert_eq!(
            o.lbtag,
            fib.lbtag_of[chosen.idx()],
            "reverse packet must carry the chosen uplink's tag"
        );
        // Leaf 0 receives the reverse packet: Congestion-To-Leaf updated.
        c.leaf_egress(LeafId(0), &rev, now);
        assert_eq!(c.leaves[0].to_leaf.read(1, 3, now), 6);
    }

    /// Synthetic decision inputs: `n` equal-cost uplinks with idle DREs and
    /// no remote table, so every candidate ties at metric 0.
    fn equal_cost_setup(n: usize) -> (Vec<Option<Dre>>, Vec<u8>, Vec<ChannelId>) {
        let params = CongaParams::paper_default();
        let dres = (0..n)
            .map(|_| Some(Dre::new(40_000_000_000, params.tdre, params.alpha)))
            .collect();
        let lbtag_of = vec![0u8; n];
        let candidates = (0..n).map(|i| ChannelId(i as u32)).collect();
        (dres, lbtag_of, candidates)
    }

    #[test]
    fn tie_break_is_uniform_beyond_max_lbtag_candidates() {
        // More equal-cost candidates than the old fixed tie buffer held:
        // the fixed [ChannelId; MAX_LBTAG] array silently dropped ties past
        // MAX_LBTAG, so uplinks 16..24 could never win. The reservoir pick
        // must select all 24 uniformly.
        let n = MAX_LBTAG + 8;
        let (mut dres, lbtag_of, candidates) = equal_cost_setup(n);
        let mut rng = SimRng::new(42);
        let q = CongaParams::paper_default().q_bits;
        let rounds = 24_000usize;
        let mut counts = vec![0usize; n];
        for _ in 0..rounds {
            let (ch, sticky) = Conga::decide(
                &mut dres,
                None,
                &lbtag_of,
                1,
                &candidates,
                None,
                q,
                SimTime::ZERO,
                &mut rng,
                None,
            );
            assert!(!sticky);
            counts[ch.idx()] += 1;
        }
        let expected = rounds / n; // 1000 per uplink
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c >= expected * 6 / 10 && c <= expected * 14 / 10,
                "uplink {i} won {c}/{rounds} decisions (expected ~{expected})"
            );
        }
    }

    #[test]
    fn tie_break_stays_sticky_beyond_max_lbtag_candidates() {
        // The previous port ties at a position past the old buffer bound:
        // stickiness must still hold (the old code would have evicted it).
        let n = MAX_LBTAG + 8;
        let (mut dres, lbtag_of, candidates) = equal_cost_setup(n);
        let mut rng = SimRng::new(43);
        let q = CongaParams::paper_default().q_bits;
        let prev = candidates[n - 1];
        for _ in 0..100 {
            let (ch, sticky) = Conga::decide(
                &mut dres,
                None,
                &lbtag_of,
                1,
                &candidates,
                Some(prev),
                q,
                SimTime::ZERO,
                &mut rng,
                None,
            );
            assert_eq!(ch, prev, "equal metrics: flow must not move");
            assert!(sticky);
        }
    }

    #[test]
    fn flow_moves_only_for_strictly_better_path() {
        let (_t, fib, mut c) = setup();
        let mut rng = SimRng::new(6);
        let cands = fib.up_candidates[0][1].clone();
        // First flowlet decides at t=0 (all metrics equal -> random).
        let mut p = fabric_pkt(55, 0, 1);
        let ch0 = c.leaf_ingress(LeafId(0), &mut p, &cands, SimTime::ZERO, &mut rng);
        // Let the flowlet expire with all metrics still equal: the flow
        // must stay (tie-break prefers the cached port).
        let later = SimTime::from_millis(5);
        let mut p2 = fabric_pkt(55, 0, 1);
        let ch1 = c.leaf_ingress(LeafId(0), &mut p2, &cands, later, &mut rng);
        assert_eq!(ch0, ch1, "no strictly better path: flow must not move");
        assert!(c.sticky_decisions >= 1);
    }

    #[test]
    fn spine_ecmp_spreads_flows_across_parallel_downlinks() {
        let (_t, fib, mut c) = setup();
        let mut rng = SimRng::new(7);
        let cands = fib.spine_down[0][1].clone();
        assert_eq!(cands.len(), 2);
        let mut hits = [0usize; 2];
        for f in 0..1000u64 {
            let mut p = fabric_pkt(ecmp_mix(f, 0xF00), 0, 1);
            let ch = c.spine_forward(SpineId(0), &mut p, &cands, SimTime::ZERO, &mut rng);
            hits[cands.iter().position(|&x| x == ch).unwrap()] += 1;
        }
        assert!(hits[0] > 350 && hits[1] > 350, "imbalanced: {hits:?}");
    }
}
