//! # conga-core — the CONGA dataplane and baseline load balancers
//!
//! Bit-faithful models of the mechanisms in *CONGA: Distributed
//! Congestion-Aware Load Balancing for Datacenters* (SIGCOMM 2014, §3):
//!
//! * [`Dre`] — the Discounting Rate Estimator measuring per-link load;
//! * [`FlowletTable`] — 64 K-entry hash table with age-bit gap detection;
//! * [`CongestionToLeaf`] / [`CongestionFromLeaf`] — the leaf-to-leaf
//!   feedback tables;
//! * [`Conga`] — the full dataplane wiring them together, implementing the
//!   `conga_net::Dataplane` trait;
//! * baselines: [`Ecmp`], [`LocalAware`], [`PacketSpray`],
//!   [`WeightedRandom`], [`LetFlow`], [`LatencyAware`], and the
//!   scheme-selection enum [`FabricPolicy`].

#![warn(missing_docs)]

mod conga;
mod dre;
mod flowlet;
mod params;
mod policies;
mod tables;

pub use conga::Conga;
pub use dre::Dre;
pub use flowlet::{FlowletStats, FlowletTable, Lookup};
pub use params::{CongaParams, GapMode};
pub use policies::{
    Ecmp, FabricPolicy, FallbackTable, Incremental, LatencyAware, LatencyAwareParams, LetFlow,
    LocalAware, PacketSpray, WeightedRandom,
};
pub use tables::{CongestionFromLeaf, CongestionToLeaf};
