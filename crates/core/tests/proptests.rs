//! Property-style tests for the CONGA dataplane components, driven by the
//! in-tree deterministic RNG with fixed seeds.

use conga_core::{
    CongaParams, CongestionFromLeaf, CongestionToLeaf, Dre, FlowletTable, GapMode, Lookup,
};
use conga_net::ChannelId;
use conga_sim::{SimDuration, SimRng, SimTime};

/// The DRE register is proportional to the offered rate in steady state,
/// for arbitrary rates and packet sizes.
#[test]
fn dre_tracks_rate() {
    let mut rng = SimRng::new(0xD4E_4A7E);
    let mut cases = 0;
    while cases < 64 {
        let load = 0.05 + 0.90 * rng.f64();
        let pkt = rng.range_u64(200, 9000) as u32;
        let cap = 10_000_000_000u64;
        let interval_ns = (pkt as f64 * 8.0 / (load * cap as f64) * 1e9) as u64;
        if interval_ns == 0 {
            continue;
        }
        cases += 1;
        let mut d = Dre::new(cap, SimDuration::from_micros(16), 0.1);
        let mut t = SimTime::ZERO;
        while t < SimTime::from_millis(2) {
            d.on_send(pkt, t);
            t += SimDuration::from_nanos(interval_ns);
        }
        let u = d.utilization(t);
        assert!((u - load).abs() < 0.12, "load {load} estimated {u}");
    }
}

/// Quantization is monotone in utilization and bounded by 2^Q - 1.
#[test]
fn dre_quantization_monotone() {
    for q in 1u8..8 {
        let mut d = Dre::new(1_000_000_000, SimDuration::from_micros(16), 0.1);
        let mut prev = 0u8;
        let now = SimTime::from_micros(1);
        for _ in 0..2000 {
            d.on_send(1500, now);
            let v = d.quantized(now, q);
            assert!(
                v >= prev,
                "quantized metric went down while only adding bytes"
            );
            assert!(v < (1 << q));
            prev = v;
        }
        assert_eq!(prev, (1 << q) - 1, "Q={q} should saturate");
    }
}

/// Flowlet table: packets spaced closer than T_fl never change port, for
/// random hash values and spacings (Exact mode).
#[test]
fn flowlet_no_move_within_gap() {
    let mut rng = SimRng::new(0xF10_77E7);
    for _case in 0..128 {
        let hash = rng.u64();
        let n = rng.range_u64(1, 50) as usize;
        let spacings: Vec<u64> = (0..n).map(|_| rng.range_u64(1, 499_000)).collect();
        let tfl = SimDuration::from_micros(500);
        let mut t = FlowletTable::new(1 << 12, tfl, GapMode::Exact);
        let mut now = SimTime::from_micros(3);
        let first_is_new = matches!(t.lookup(hash, now), Lookup::NewFlowlet { .. });
        assert!(first_is_new);
        t.commit(hash, ChannelId(7), now);
        for &gap in &spacings {
            now += SimDuration::from_nanos(gap);
            match t.lookup(hash, now) {
                Lookup::Active(p) => assert_eq!(p, ChannelId(7)),
                other => panic!("gap {gap} expired: {other:?}"),
            }
        }
    }
}

/// Age-bit mode detects gaps strictly within (T_fl, 2*T_fl] of the last
/// packet, for arbitrary phases.
#[test]
fn flowlet_agebit_gap_window() {
    let mut rng = SimRng::new(0xA6E_B175);
    for _case in 0..256 {
        let last_us = rng.below(10_000) as u64;
        let extra_ns = rng.below(2_000_000) as u64;
        let tfl_ns = 500_000u64;
        let mut t = FlowletTable::new(64, SimDuration::from_nanos(tfl_ns), GapMode::AgeBit);
        let last = SimTime::from_micros(last_us);
        t.lookup(9, last);
        t.commit(9, ChannelId(1), last);
        let probe = SimTime::from_nanos(last.as_nanos() + extra_ns);
        let expired = matches!(t.lookup(9, probe), Lookup::NewFlowlet { .. });
        let expiry = (last.as_nanos() / tfl_ns + 2) * tfl_ns;
        assert_eq!(expired, probe.as_nanos() >= expiry);
        if expired {
            assert!(extra_ns > tfl_ns, "expired before one full T_fl of idle");
        }
        if extra_ns > 2 * tfl_ns {
            assert!(expired, "still active after 2*T_fl idle");
        }
    }
}

/// Age-bit boundary semantics, tested without referencing the expiry
/// formula: the minimal idle gap that expires an entry is *discovered* by
/// probing fresh tables and must lie in `(T_fl, 2*T_fl]` for every phase of
/// the last packet within the sweep period — including a packet landing
/// exactly on a sweep boundary, which gets the full `2*T_fl`.
#[test]
fn flowlet_agebit_boundary_semantics_discovered() {
    let tfl_ns = 500_000u64;
    let tfl = SimDuration::from_nanos(tfl_ns);
    // Probe with a fresh table so the probe lookup itself cannot refresh
    // state observed by a later probe.
    let expired_after = |last: SimTime, gap_ns: u64| -> bool {
        let mut t = FlowletTable::new(64, tfl, GapMode::AgeBit);
        t.lookup(9, last);
        t.commit(9, ChannelId(1), last);
        matches!(
            t.lookup(9, SimTime::from_nanos(last.as_nanos() + gap_ns)),
            Lookup::NewFlowlet { .. }
        )
    };
    let mut rng = SimRng::new(0xB0_DA17);
    for case in 0..256u32 {
        let period = rng.below(64) as u64;
        // Every 4th case lands exactly on a sweep boundary (phase 0).
        let phase = if case % 4 == 0 {
            0
        } else {
            rng.below(tfl_ns as usize) as u64
        };
        let last = SimTime::from_nanos(period * tfl_ns + phase);
        // "Expired at gap g" is monotone in g: binary-search the smallest
        // expiring gap in [1, 2*T_fl + 1].
        assert!(!expired_after(last, 1), "phase {phase}: instant expiry");
        assert!(
            expired_after(last, 2 * tfl_ns + 1),
            "phase {phase}: survived past 2*T_fl"
        );
        let (mut lo, mut hi) = (1u64, 2 * tfl_ns + 1); // !expired(lo), expired(hi)
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if expired_after(last, mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let min_gap = hi;
        assert!(
            min_gap > tfl_ns && min_gap <= 2 * tfl_ns,
            "phase {phase}: minimal expiring gap {min_gap} outside (T_fl, 2*T_fl]"
        );
        if phase == 0 {
            // A packet exactly on a sweep boundary belongs to the period it
            // opens: the next sweep sets its age bit, the one after expires
            // it — the full 2*T_fl.
            assert_eq!(min_gap, 2 * tfl_ns, "boundary packet gets the full window");
        }
        // And the discovered gap is sharp: one nanosecond less stays active.
        assert!(!expired_after(last, min_gap - 1));
    }
}

/// Congestion tables: reads reflect the latest write until aging, and
/// feedback round-robin eventually reports every recorded tag.
#[test]
fn tables_roundtrip() {
    let mut rng = SimRng::new(0x7AB_1E57);
    for _case in 0..128 {
        let n = rng.range_u64(1, 40) as usize;
        let writes: Vec<(usize, u8, u8)> = (0..n)
            .map(|_| (rng.below(4), rng.below(12) as u8, rng.below(8) as u8))
            .collect();
        let age = SimDuration::from_millis(10);
        let mut to = CongestionToLeaf::new(4, 12, age);
        let now = SimTime::from_micros(100);
        let mut last = std::collections::HashMap::new();
        for &(leaf, tag, m) in &writes {
            to.update(leaf, tag, m, now);
            last.insert((leaf, tag), m);
        }
        for (&(leaf, tag), &m) in &last {
            assert_eq!(to.read(leaf, tag, now), m);
            assert_eq!(to.read(leaf, tag, now + SimDuration::from_millis(20)), 0);
        }

        let mut from = CongestionFromLeaf::new(4, 12, age);
        let mut tags_per_leaf: std::collections::HashMap<usize, std::collections::HashSet<u8>> =
            std::collections::HashMap::new();
        for &(leaf, tag, m) in &writes {
            from.record(leaf, tag, m, now);
            tags_per_leaf.entry(leaf).or_default().insert(tag);
        }
        for (&leaf, tags) in &tags_per_leaf {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..(tags.len() * 2 + 2) {
                if let Some((tag, _)) = from.select_feedback(leaf, now) {
                    seen.insert(tag);
                }
            }
            assert_eq!(&seen, tags, "round-robin must cover all recorded tags");
        }
    }
}

/// The full CONGA decision is always one of the offered candidates and
/// the packet's LBTag matches the chosen uplink.
#[test]
fn conga_decisions_are_valid() {
    use conga_core::Conga;
    use conga_net::{Dataplane, HostId, LeafId, LeafSpineBuilder, Overlay, Packet};
    let mut meta = SimRng::new(0xC09_6ADE);
    for _case in 0..64 {
        let seed = meta.u64();
        let nflows = meta.range_u64(1, 40) as usize;
        let topo = LeafSpineBuilder::new(2, 2, 2).parallel_links(2).build();
        let fib = topo.fib();
        let mut c = Conga::new(CongaParams::paper_default());
        c.install(&topo, &fib);
        let mut rng = SimRng::new(seed);
        let cands = fib.up_candidates[0][1].clone();
        for f in 0..nflows {
            let mut p = Packet::data(
                f as u32,
                0,
                seed ^ f as u64,
                HostId(0),
                HostId(2),
                0,
                1460,
                SimTime::ZERO,
            );
            p.overlay = Some(Overlay::new(LeafId(0), LeafId(1)));
            let t = SimTime::from_micros(f as u64 * 37);
            let ch = c.leaf_ingress(LeafId(0), &mut p, &cands, t, &mut rng);
            assert!(cands.contains(&ch));
            assert_eq!(p.overlay.unwrap().lbtag, fib.lbtag_of[ch.idx()]);
            c.on_fabric_tx(ch, &mut p, t);
        }
    }
}
