//! Fixed-interval time-series gauges with bounded-memory downsampling.
//!
//! A [`SeriesRegistry`] holds named series sampled on *simulated-time*
//! window boundaries (queue depth, utilization, DRE estimates, flowlet
//! occupancy, active flows, ...). Each series is a dense array of
//! buckets starting at window 0; a bucket at resolution `level` spans
//! `2^level` base windows and stores the **sum** of the recorded values
//! plus the **count** of base windows actually recorded, so its exported
//! value is the mean over the windows that were sampled.
//!
//! # Bounded memory
//!
//! When a series would exceed its bucket capacity, adjacent bucket pairs
//! are merged and the level is incremented — resolution halves, memory
//! stays bounded, and the long-run mean of every merged bucket is exact
//! (sums and window counts add).
//!
//! # Shard-domain merge
//!
//! A sharded run samples each series in the domain(s) that own the
//! underlying state; replicas record zeros or nothing at all.
//! [`SeriesRegistry::merge_domain`] aligns resolutions and then adds
//! bucket sums while taking the **max** of the window counts: two
//! domains that sampled the same window each contributed a *partial*
//! value of one observation, so the merged value is the sum of the
//! partials over one window — exactly the monolithic engine's reading.
//! A window sampled by only one domain keeps `max(1, 0) = 1`.
//!
//! # Determinism contract
//!
//! Series are keyed in a [`BTreeMap`], values derive only from simulated
//! state, timestamps are integer simulated nanoseconds, and the
//! [`SeriesRegistry::to_jsonl`] / [`SeriesRegistry::to_csv`] exporters
//! iterate in sorted-name order — same seed ⇒ byte-identical artifacts
//! for any `--jobs`/`--shards`/cache state. No wall-clock value can
//! reach these exporters (the profiler in [`crate::profile`] is the one
//! quarantined home for wall-clock).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use conga_sim::{SimDuration, SimTime};

/// Default bucket capacity per series before resolution halves.
pub const DEFAULT_SERIES_CAPACITY: usize = 512;

/// Schema tag stamped into every JSONL export; bump on layout changes.
pub const SERIES_SCHEMA: &str = "conga-series/v1";

#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Bucket {
    /// Sum of recorded window values.
    sum: f64,
    /// Base windows actually recorded into this bucket.
    windows: u64,
}

/// One named series: dense buckets from window 0 at resolution `level`.
#[derive(Debug, Clone, Default, PartialEq)]
struct Series {
    /// Each bucket spans `2^level` base windows.
    level: u32,
    buckets: Vec<Bucket>,
}

impl Series {
    /// Halve resolution: merge adjacent bucket pairs.
    fn downsample(&mut self) {
        let n = self.buckets.len().div_ceil(2);
        let mut merged = Vec::with_capacity(n);
        for pair in self.buckets.chunks(2) {
            let mut b = pair[0];
            if let Some(second) = pair.get(1) {
                b.sum += second.sum;
                b.windows += second.windows;
            }
            merged.push(b);
        }
        self.buckets = merged;
        self.level += 1;
    }

    /// Raise this series to at least `level`, downsampling as needed.
    fn raise_to(&mut self, level: u32) {
        while self.level < level {
            self.downsample();
        }
    }

    fn record(&mut self, base_window: u64, value: f64, cap: usize) {
        let mut idx = (base_window >> self.level) as usize;
        while idx >= cap {
            self.downsample();
            idx = (base_window >> self.level) as usize;
        }
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, Bucket::default());
        }
        self.buckets[idx].sum += value;
        self.buckets[idx].windows += 1;
    }
}

/// A registry of windowed time series (see module docs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesRegistry {
    /// Base window length in simulated nanoseconds (0 = disabled).
    window_ns: u64,
    cap: usize,
    series: BTreeMap<String, Series>,
}

impl SeriesRegistry {
    /// A disabled registry (window 0): `record` is a no-op.
    pub fn disabled() -> Self {
        SeriesRegistry::default()
    }

    /// A registry sampling on `window` boundaries with the default
    /// bucket capacity.
    pub fn new(window: SimDuration) -> Self {
        Self::with_capacity(window, DEFAULT_SERIES_CAPACITY)
    }

    /// A registry with an explicit per-series bucket capacity (≥ 2).
    pub fn with_capacity(window: SimDuration, cap: usize) -> Self {
        SeriesRegistry {
            window_ns: window.as_nanos(),
            cap: cap.max(2),
            series: BTreeMap::new(),
        }
    }

    /// Is sampling enabled?
    pub fn enabled(&self) -> bool {
        self.window_ns > 0
    }

    /// The base window length in nanoseconds (0 when disabled).
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// True if no series holds any data.
    pub fn is_empty(&self) -> bool {
        self.series.values().all(|s| s.buckets.is_empty())
    }

    /// The base window index containing simulated time `now`.
    pub fn window_index(&self, now: SimTime) -> u64 {
        debug_assert!(self.window_ns > 0, "window_index on a disabled registry");
        now.as_nanos() / self.window_ns.max(1)
    }

    /// Record one observation of `name` for the base window containing
    /// `now`. No-op when the registry is disabled.
    pub fn record(&mut self, name: &str, now: SimTime, value: f64) {
        if self.window_ns == 0 {
            return;
        }
        let w = now.as_nanos() / self.window_ns;
        let cap = self.cap;
        self.series
            .entry(name.to_owned())
            .or_default()
            .record(w, value, cap);
    }

    /// Sorted series names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// The points of one series: `(window start ns, window span ns,
    /// value)` for every bucket that holds at least one recorded window,
    /// in time order. The value is the mean over the recorded windows.
    pub fn points(&self, name: &str) -> Vec<(u64, u64, f64)> {
        let Some(s) = self.series.get(name) else {
            return Vec::new();
        };
        let span = self.window_ns << s.level;
        s.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.windows > 0)
            .map(|(i, b)| (i as u64 * span, span, b.sum / b.windows as f64))
            .collect()
    }

    /// Merge a shard domain's partial registry into this one (see module
    /// docs: sums add, window counts take the max). An empty/disabled
    /// incoming registry is a no-op; merging into a disabled registry
    /// adopts the incoming window.
    pub fn merge_domain(&mut self, other: &SeriesRegistry) {
        if other.window_ns == 0 {
            return;
        }
        if self.window_ns == 0 {
            self.window_ns = other.window_ns;
            self.cap = other.cap;
        }
        debug_assert_eq!(
            self.window_ns, other.window_ns,
            "merging series with different base windows"
        );
        for (name, theirs) in &other.series {
            let mine = self.series.entry(name.clone()).or_default();
            let mut theirs = theirs.clone();
            let level = mine.level.max(theirs.level);
            mine.raise_to(level);
            theirs.raise_to(level);
            if theirs.buckets.len() > mine.buckets.len() {
                mine.buckets.resize(theirs.buckets.len(), Bucket::default());
            }
            for (m, t) in mine.buckets.iter_mut().zip(&theirs.buckets) {
                m.sum += t.sum;
                m.windows = m.windows.max(t.windows);
            }
            while mine.buckets.len() > self.cap {
                mine.downsample();
            }
        }
    }

    /// Derive a new series from existing ones: for every bucket index
    /// where **all** inputs hold data (inputs are first aligned to their
    /// common coarsest resolution), call `f` with the input values in
    /// the order given; `Some(v)` records `v`, `None` skips the window.
    /// Inputs missing entirely make this a no-op.
    pub fn derive(&mut self, out_name: &str, inputs: &[String], f: impl Fn(&[f64]) -> Option<f64>) {
        if inputs.is_empty() || !inputs.iter().all(|n| self.series.contains_key(n)) {
            return;
        }
        let level = inputs
            .iter()
            .map(|n| self.series[n].level)
            .max()
            .unwrap_or(0);
        let aligned: Vec<Series> = inputs
            .iter()
            .map(|n| {
                let mut s = self.series[n].clone();
                s.raise_to(level);
                s
            })
            .collect();
        let len = aligned.iter().map(|s| s.buckets.len()).min().unwrap_or(0);
        let mut out = Series {
            level,
            buckets: Vec::with_capacity(len),
        };
        let mut vals = vec![0.0f64; aligned.len()];
        for i in 0..len {
            let mut complete = true;
            for (v, s) in vals.iter_mut().zip(&aligned) {
                let b = &s.buckets[i];
                if b.windows == 0 {
                    complete = false;
                    break;
                }
                *v = b.sum / b.windows as f64;
            }
            let bucket = if complete {
                match f(&vals) {
                    Some(v) => Bucket { sum: v, windows: 1 },
                    None => Bucket::default(),
                }
            } else {
                Bucket::default()
            };
            out.buckets.push(bucket);
        }
        self.series.insert(out_name.to_owned(), out);
    }

    /// The mean of a series' exported points (`None` for an empty or
    /// missing series).
    pub fn mean(&self, name: &str) -> Option<f64> {
        let pts = self.points(name);
        if pts.is_empty() {
            return None;
        }
        Some(pts.iter().map(|(_, _, v)| v).sum::<f64>() / pts.len() as f64)
    }

    /// Deterministic JSONL export: a header line with the schema tag and
    /// base window, then one line per point in sorted-name, time order.
    pub fn to_jsonl(&self) -> String {
        let _t = crate::profile::timer(crate::profile::Phase::Serialize);
        let mut out = String::with_capacity(64 + self.series.len() * 64);
        let _ = writeln!(
            out,
            "{{\"schema\": \"{SERIES_SCHEMA}\", \"window_ns\": {}}}",
            self.window_ns
        );
        for name in self.series.keys() {
            for (t, span, v) in self.points(name) {
                let _ = write!(
                    out,
                    "{{\"series\": \"{name}\", \"t_ns\": {t}, \"span_ns\": {span}, \"value\": "
                );
                write_json_f64(&mut out, v);
                out.push_str("}\n");
            }
        }
        out
    }

    /// Deterministic CSV export (`series,t_ns,span_ns,value` header).
    pub fn to_csv(&self) -> String {
        let _t = crate::profile::timer(crate::profile::Phase::Serialize);
        let mut out = String::from("series,t_ns,span_ns,value\n");
        for name in self.series.keys() {
            for (t, span, v) in self.points(name) {
                let _ = write!(out, "{name},{t},{span},");
                write_json_f64(&mut out, v);
                out.push('\n');
            }
        }
        out
    }
}

/// Shortest-round-trip f64 formatting shared with the report writer:
/// integral floats keep a trailing `.0`, non-finite values become `null`.
fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        let integral = !s.contains(['.', 'e', 'E']);
        out.push_str(&s);
        if integral {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_nanos(n * 1_000_000)
    }

    #[test]
    fn empty_registry_exports_header_only() {
        let r = SeriesRegistry::new(SimDuration::from_millis(10));
        assert!(r.is_empty());
        let j = r.to_jsonl();
        assert_eq!(j.lines().count(), 1, "header only");
        assert!(j.contains(SERIES_SCHEMA));
        assert_eq!(r.to_csv(), "series,t_ns,span_ns,value\n");
        assert_eq!(r.mean("nope"), None);
    }

    #[test]
    fn disabled_registry_ignores_records() {
        let mut r = SeriesRegistry::disabled();
        r.record("x", ms(10), 1.0);
        assert!(r.is_empty());
        assert!(!r.enabled());
    }

    #[test]
    fn single_window_run_round_trips() {
        let mut r = SeriesRegistry::new(SimDuration::from_millis(10));
        r.record("q", ms(10), 42.0);
        let pts = r.points("q");
        assert_eq!(pts, vec![(10_000_000, 10_000_000, 42.0)]);
        assert_eq!(r.mean("q"), Some(42.0));
        assert!(r.to_jsonl().contains("\"t_ns\": 10000000"));
    }

    #[test]
    fn unsampled_windows_are_skipped_not_zero() {
        let mut r = SeriesRegistry::new(SimDuration::from_millis(10));
        r.record("q", ms(10), 1.0);
        r.record("q", ms(40), 3.0);
        let pts = r.points("q");
        assert_eq!(pts.len(), 2, "gap windows emit nothing");
        assert_eq!(pts[1].0, 40_000_000);
    }

    #[test]
    fn downsample_at_capacity_round_trips_means() {
        let mut r = SeriesRegistry::with_capacity(SimDuration::from_millis(1), 4);
        // 8 windows of value = window index; capacity 4 forces level 1.
        for w in 0..8u64 {
            r.record("v", SimTime::from_nanos(w * 1_000_000), w as f64);
        }
        let pts = r.points("v");
        assert_eq!(pts.len(), 4);
        for (i, &(t, span, v)) in pts.iter().enumerate() {
            assert_eq!(span, 2_000_000, "level 1 = 2 base windows");
            assert_eq!(t, i as u64 * 2_000_000);
            // Mean of the two merged windows: (2i + 2i+1)/2.
            assert_eq!(v, (2 * i) as f64 + 0.5);
        }
        // A second downsample keeps the overall mean exact.
        for w in 8..16u64 {
            r.record("v", SimTime::from_nanos(w * 1_000_000), w as f64);
        }
        let total: f64 = r
            .points("v")
            .iter()
            .map(|(_, _, v)| v * 4.0) // level 2: 4 windows per bucket
            .sum();
        assert_eq!(total, (0..16).sum::<u64>() as f64);
    }

    #[test]
    fn merge_sums_partials_and_takes_max_windows() {
        let w = SimDuration::from_millis(10);
        let mut a = SeriesRegistry::new(w);
        let mut b = SeriesRegistry::new(w);
        // Both domains sampled window 1 with partial values.
        a.record("flows", ms(10), 2.0);
        b.record("flows", ms(10), 3.0);
        // Window 2 sampled by only one domain.
        b.record("flows", ms(20), 7.0);
        // A series only domain A has.
        a.record("dre", ms(10), 0.5);
        a.merge_domain(&b);
        assert_eq!(
            a.points("flows"),
            vec![(10_000_000, 10_000_000, 5.0), (20_000_000, 10_000_000, 7.0)]
        );
        assert_eq!(a.points("dre"), vec![(10_000_000, 10_000_000, 0.5)]);
    }

    #[test]
    fn merge_into_disabled_adopts_window() {
        let mut a = SeriesRegistry::disabled();
        let mut b = SeriesRegistry::new(SimDuration::from_millis(10));
        b.record("x", ms(10), 1.0);
        a.merge_domain(&b);
        assert_eq!(a.window_ns(), 10_000_000);
        assert_eq!(a.points("x").len(), 1);
        // Merging an empty/disabled registry is a no-op.
        let before = a.clone();
        a.merge_domain(&SeriesRegistry::disabled());
        assert_eq!(a, before);
    }

    #[test]
    fn merge_aligns_mismatched_levels() {
        let w = SimDuration::from_millis(1);
        let mut a = SeriesRegistry::with_capacity(w, 4);
        let mut b = SeriesRegistry::with_capacity(w, 4);
        for wdx in 0..8u64 {
            a.record("v", SimTime::from_nanos(wdx * 1_000_000), 1.0); // level 1
        }
        b.record("v", SimTime::from_nanos(0), 10.0); // level 0
        a.merge_domain(&b);
        let pts = a.points("v");
        assert_eq!(pts[0].1, 2_000_000, "merged at the coarser level");
        // Bucket 0: a contributed 1+1 over 2 windows, b contributed 10
        // over 1 window -> (2 + 10) / max(2, 1).
        assert_eq!(pts[0].2, 6.0);
    }

    #[test]
    fn derive_computes_imbalance_per_window() {
        let w = SimDuration::from_millis(10);
        let mut r = SeriesRegistry::new(w);
        for (i, utils) in [[0.5, 0.5], [0.8, 0.2]].iter().enumerate() {
            let t = ms(10 * (i as u64 + 1));
            r.record("u0", t, utils[0]);
            r.record("u1", t, utils[1]);
        }
        r.derive("imb", &["u0".into(), "u1".into()], |v| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            (mean > 0.0).then(|| (max - mean) / mean)
        });
        let pts = r.points("imb");
        assert_eq!(pts.len(), 2);
        assert!((pts[0].2 - 0.0).abs() < 1e-12);
        assert!((pts[1].2 - 0.6).abs() < 1e-12, "(0.8-0.5)/0.5");
        // Missing inputs: no-op.
        r.derive("nope", &["u0".into(), "missing".into()], |_| Some(1.0));
        assert!(r.points("nope").is_empty());
    }

    #[test]
    fn exports_are_deterministic_and_sorted() {
        let w = SimDuration::from_millis(10);
        let mut r = SeriesRegistry::new(w);
        r.record("z.last", ms(10), 1.0);
        r.record("a.first", ms(10), 2.5);
        let j = r.to_jsonl();
        assert_eq!(j, r.clone().to_jsonl());
        assert!(j.find("a.first").unwrap() < j.find("z.last").unwrap());
        let csv = r.to_csv();
        assert!(csv.contains("a.first,10000000,10000000,2.5"));
        assert!(csv.contains("z.last,10000000,10000000,1.0"));
    }
}
