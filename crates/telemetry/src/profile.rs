//! The engine self-profiler: scoped wall-clock phase timers.
//!
//! Unlike everything else in this crate, the profiler measures **wall
//! clock** — where real time goes: event dispatch, routing decisions,
//! transport callbacks, the sharded barrier, artifact serialization, and
//! result-cache I/O. Its output therefore follows the same quarantine
//! contract as `BENCH_SCHEMA` in `conga-bench`: the JSON *structure*
//! (schema tag, phase names, their order) is deterministic, while the
//! measured values live only in the clearly-marked `wall_ns` / `calls`
//! fields that no deterministic artifact may embed. The `obs-gate` CI
//! job grep-gates exactly that.
//!
//! Profiling is **off by default** and costs one relaxed atomic load per
//! instrumented site when off. [`enable`] turns it on process-wide (the
//! `fleet profile` subcommand does); timers accumulate into global
//! atomics so worker threads and shard barriers need no plumbing.
//! Phases nest — [`Phase::Dispatch`] brackets the whole event loop body,
//! so the routing/transport phases it contains are *also* counted inside
//! it; the report is a where-does-time-go table, not a partition.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The fixed phase set. Order here is the (deterministic) report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// One engine event popped and handled (brackets the phases below).
    Dispatch,
    /// Dataplane load-balancing decisions (`leaf_ingress`/`spine_forward`).
    Route,
    /// Host-agent callbacks (`on_packet`/`on_timer`) + their emissions.
    Transport,
    /// Worker threads blocked on the sharded conservative-window barrier.
    BarrierWait,
    /// Deterministic artifact rendering (reports, series exporters).
    Serialize,
    /// Result-cache lookups and stores.
    CacheIo,
}

/// Every phase, in report order.
pub const PHASES: [Phase; 6] = [
    Phase::Dispatch,
    Phase::Route,
    Phase::Transport,
    Phase::BarrierWait,
    Phase::Serialize,
    Phase::CacheIo,
];

impl Phase {
    /// Stable snake_case name used in `PROFILE.json` and manifests.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Dispatch => "event_dispatch",
            Phase::Route => "routing",
            Phase::Transport => "transport",
            Phase::BarrierWait => "barrier_wait",
            Phase::Serialize => "serialization",
            Phase::CacheIo => "cache_io",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Schema tag of `results/PROFILE.json`; bump on layout changes.
pub const PROFILE_SCHEMA: &str = "conga-profile/v1";

static ENABLED: AtomicBool = AtomicBool::new(false);
static NS: [AtomicU64; 6] = [const { AtomicU64::new(0) }; 6];
static CALLS: [AtomicU64; 6] = [const { AtomicU64::new(0) }; 6];

/// Turn profiling on process-wide (it stays on; callers [`reset`] between
/// measured sections instead of toggling).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Is profiling on?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero every accumulator.
pub fn reset() {
    for i in 0..PHASES.len() {
        NS[i].store(0, Ordering::Relaxed);
        CALLS[i].store(0, Ordering::Relaxed);
    }
}

/// A running phase timer; accumulates on drop.
pub struct Timer {
    phase: usize,
    start: Instant,
}

impl Drop for Timer {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        NS[self.phase].fetch_add(ns, Ordering::Relaxed);
        CALLS[self.phase].fetch_add(1, Ordering::Relaxed);
    }
}

/// Start timing `phase` — `None` (no allocation, no clock read) when
/// profiling is off. Bind the result: `let _t = profile::timer(...)`.
#[inline]
pub fn timer(phase: Phase) -> Option<Timer> {
    if !enabled() {
        return None;
    }
    Some(Timer {
        phase: phase.idx(),
        start: Instant::now(),
    })
}

/// A point-in-time copy of every accumulator, in [`PHASES`] order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `(phase name, accumulated wall ns, timer count)` per phase.
    pub entries: Vec<(&'static str, u64, u64)>,
}

/// Copy the current accumulators.
pub fn snapshot() -> Snapshot {
    Snapshot {
        entries: PHASES
            .iter()
            .map(|p| {
                (
                    p.name(),
                    NS[p.idx()].load(Ordering::Relaxed),
                    CALLS[p.idx()].load(Ordering::Relaxed),
                )
            })
            .collect(),
    }
}

impl Snapshot {
    /// The per-phase delta `self - earlier` (saturating), for bracketing
    /// one cell or one suite between two snapshots.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .zip(&earlier.entries)
                .map(|(&(n, ns, c), &(_, ens, ec))| {
                    (n, ns.saturating_sub(ens), c.saturating_sub(ec))
                })
                .collect(),
        }
    }

    /// Accumulated nanoseconds of one phase (0 if absent).
    pub fn wall_ns(&self, phase: Phase) -> u64 {
        self.entries
            .iter()
            .find(|(n, _, _)| *n == phase.name())
            .map(|&(_, ns, _)| ns)
            .unwrap_or(0)
    }

    /// True if no phase recorded anything.
    pub fn is_zero(&self) -> bool {
        self.entries.iter().all(|&(_, ns, c)| ns == 0 && c == 0)
    }

    /// Render `results/PROFILE.json`: deterministic structure (schema,
    /// suite, the six phases in fixed order), wall-clock values
    /// quarantined in `wall_ns`/`calls`.
    pub fn to_json(&self, suite: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + self.entries.len() * 80);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{PROFILE_SCHEMA}\",");
        let _ = writeln!(out, "  \"suite\": \"{suite}\",");
        out.push_str("  \"phases\": [\n");
        for (i, (name, ns, calls)) in self.entries.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"phase\": \"{name}\", \"wall_ns\": {ns}, \"calls\": {calls}}}"
            );
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A human top-down wall-clock table, largest phase first.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut rows = self.entries.clone();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let total_ms: f64 = self.wall_ns(Phase::Dispatch) as f64 / 1e6;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12} {:>8}",
            "phase", "wall_ms", "calls", "%disp"
        );
        for (name, ns, calls) in rows {
            let ms = ns as f64 / 1e6;
            let pct = if total_ms > 0.0 {
                ms / total_ms * 100.0
            } else {
                0.0
            };
            let _ = writeln!(out, "{name:<16} {ms:>12.3} {calls:>12} {pct:>7.1}%");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole module: the accumulators are process
    // globals, so parallel #[test] threads would race each other's
    // reset/enable if these were separate tests.
    #[test]
    fn profiler_lifecycle() {
        // Disabled: timer is free and nothing accumulates.
        assert!(!enabled());
        assert!(timer(Phase::Dispatch).is_none());
        assert!(snapshot().is_zero());

        enable();
        reset();
        {
            let _t = timer(Phase::Route);
            std::hint::black_box(0);
        }
        let s = snapshot();
        let route = s
            .entries
            .iter()
            .find(|(n, _, _)| *n == "routing")
            .expect("routing row");
        assert_eq!(route.2, 1, "one timer dropped");

        // Structure determinism: phase names and order are fixed.
        let names: Vec<&str> = s.entries.iter().map(|e| e.0).collect();
        assert_eq!(
            names,
            vec![
                "event_dispatch",
                "routing",
                "transport",
                "barrier_wait",
                "serialization",
                "cache_io"
            ]
        );
        let j = s.to_json("unit");
        assert!(j.contains(PROFILE_SCHEMA));
        assert!(j.contains("\"phase\": \"barrier_wait\""));
        // Zeroing values yields a byte-stable document regardless of
        // the measured run — the structural determinism contract.
        let zeroed = Snapshot {
            entries: s.entries.iter().map(|&(n, _, _)| (n, 0, 0)).collect(),
        };
        assert_eq!(zeroed.to_json("unit"), zeroed.clone().to_json("unit"));

        // Deltas bracket a section.
        let before = snapshot();
        {
            let _t = timer(Phase::CacheIo);
        }
        let d = snapshot().delta_since(&before);
        assert_eq!(
            d.entries
                .iter()
                .find(|(n, _, _)| *n == "cache_io")
                .unwrap()
                .2,
            1
        );
        assert_eq!(
            d.entries
                .iter()
                .find(|(n, _, _)| *n == "routing")
                .unwrap()
                .2,
            0,
            "delta removes earlier counts"
        );
        assert!(!d.table().is_empty());
        reset();
        assert!(snapshot().is_zero());
    }
}
